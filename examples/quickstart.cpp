// Quickstart: build a small database and an outerjoin/antijoin query, let
// the ECA optimizer reorder it (with compensation operators), execute both
// plans and confirm they agree.
//
// Scenario: employees, departments, and audit flags.
//   Q = employees loj[dept] departments laj[flag] audits
// i.e. keep every employee with their department (if any), except those
// with an audit flag — a shape a conventional optimizer cannot reorder
// freely because assoc/l-asscom around the antijoin are invalid.

#include <cstdio>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"

using namespace eca;

namespace {

Database MakeDatabase() {
  // R0 = employees(k, dept_id, salary)
  Relation employees(Schema({{0, "k", DataType::kInt64},
                             {0, "dept_id", DataType::kInt64},
                             {0, "salary", DataType::kInt64}}));
  employees.Add({Value::Int(1), Value::Int(10), Value::Int(90)});
  employees.Add({Value::Int(2), Value::Int(10), Value::Int(120)});
  employees.Add({Value::Int(3), Value::Int(20), Value::Int(80)});
  employees.Add({Value::Int(4), Value::Null(), Value::Int(70)});  // no dept
  employees.Add({Value::Int(5), Value::Int(30), Value::Int(150)});

  // R1 = departments(k, budget)
  Relation departments(Schema({{1, "k", DataType::kInt64},
                               {1, "budget", DataType::kInt64}}));
  departments.Add({Value::Int(10), Value::Int(1000)});
  departments.Add({Value::Int(20), Value::Int(500)});
  // dept 30 missing: employee 5 joins nothing

  // R2 = audits(k, emp_id)
  Relation audits(Schema({{2, "k", DataType::kInt64},
                          {2, "emp_id", DataType::kInt64}}));
  audits.Add({Value::Int(100), Value::Int(2)});
  audits.Add({Value::Int(101), Value::Int(9)});  // no such employee

  Database db;
  db.Add(std::move(employees));
  db.Add(std::move(departments));
  db.Add(std::move(audits));
  return db;
}

}  // namespace

int main() {
  Database db = MakeDatabase();

  // Q = (employees loj[p01] departments) laj[p02] audits
  PredRef p01 = EquiJoin(0, "dept_id", 1, "k", "p01");
  PredRef p02 = EquiJoin(0, "k", 2, "emp_id", "p02");
  PlanPtr query = Plan::Join(
      JoinOp::kLeftAnti, p02,
      Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));

  std::printf("query as written:\n%s\n", query->ToString().c_str());

  Optimizer eca;  // the paper's approach
  auto best = eca.Optimize(*query, db);
  std::printf("ECA-optimized plan (cost %.1f):\n%s\n", best.estimated_cost,
              best.plan->ToString().c_str());

  Relation direct = eca.Execute(*query, db);
  Relation optimized = eca.Execute(*best.plan, db);
  std::printf("direct result (%lld rows):\n%s\n",
              static_cast<long long>(direct.NumRows()),
              direct.ToString().c_str());
  bool same = SameMultiset(CanonicalizeColumnOrder(direct),
                           CanonicalizeColumnOrder(optimized));
  std::printf("optimized plan result matches: %s\n", same ? "yes" : "NO!");

  // How much of the ordering space each approach can reach for this query:
  auto thetas =
      AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
  for (auto approach : {Optimizer::Approach::kTBA, Optimizer::Approach::kCBA,
                        Optimizer::Approach::kECA}) {
    Optimizer::Options opts;
    opts.approach = approach;
    Optimizer opt{opts};
    int reachable = 0;
    for (const OrderingNodePtr& theta : thetas) {
      if (opt.Reorder(*query, *theta) != nullptr) ++reachable;
    }
    const char* name = approach == Optimizer::Approach::kTBA   ? "TBA"
                       : approach == Optimizer::Approach::kCBA ? "CBA"
                                                               : "ECA";
    std::printf("%s reaches %d of %zu join orderings\n", name, reachable,
                thetas.size());
  }
  return same ? 0 : 1;
}
