// Explores the join-ordering space of a random query: lists every ordering
// in JoinOrder(Q) (Section 3), shows which of TBA / CBA / ECA can realize
// it, prints the compensated plan ECA produces, and verifies each realized
// plan against the original by execution on random data.
//
// Usage: reorder_explorer [num_rels] [seed]

#include <cstdio>
#include <cstdlib>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

using namespace eca;

int main(int argc, char** argv) {
  int num_rels = argc > 1 ? std::atoi(argv[1]) : 4;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 7;

  Rng rng(seed);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = num_rels;
  Database db = RandomDatabase(rng, num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);

  std::printf("random query over %d relations (seed %llu):\n%s\n", num_rels,
              static_cast<unsigned long long>(seed),
              query->ToString().c_str());

  Optimizer::Options tba_opts, cba_opts;
  tba_opts.approach = Optimizer::Approach::kTBA;
  cba_opts.approach = Optimizer::Approach::kCBA;
  Optimizer tba{tba_opts};
  Optimizer cba{cba_opts};
  Optimizer eca;
  Relation reference =
      CanonicalizeColumnOrder(eca.Execute(*query, db));

  auto thetas =
      AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
  std::printf("JoinOrder(Q) contains %zu orderings:\n\n", thetas.size());
  int idx = 0;
  int verified = 0;
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr via_tba = tba.Reorder(*query, *theta);
    PlanPtr via_cba = cba.Reorder(*query, *theta);
    PlanPtr via_eca = eca.Reorder(*query, *theta);
    std::printf("[%2d] %-28s TBA:%s CBA:%s ECA:%s\n", ++idx,
                theta->Key().c_str(), via_tba ? "yes" : " no",
                via_cba ? "yes" : " no", via_eca ? "yes" : " no");
    if (via_eca != nullptr) {
      Relation out = CanonicalizeColumnOrder(eca.Execute(*via_eca, db));
      bool same = SameMultiset(reference, out);
      if (same) ++verified;
      std::printf("%s", via_eca->ToString().c_str());
      std::printf("     result %s\n\n", same ? "verified" : "MISMATCH!");
    }
  }
  std::printf("%d/%zu ECA plans verified against the original query.\n",
              verified, thetas.size());
  return verified == static_cast<int>(thetas.size()) ? 0 : 1;
}
