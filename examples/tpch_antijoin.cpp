// The paper's headline scenario end-to-end (Section 7, query Q1):
//   Q1 = Supplier laj[p12] (Partsupp laj[p23] sigma(Part))
// A conventional optimizer cannot reorder the two antijoins
// (assoc(laj, laj) is invalid); ECA evaluates Supplier loj Partsupp first
// via Table 3's Rule 15 and wins when the antijoin selectivity f12 is
// large. This example generates TPC-H-style data, shows both plans, and
// times them across the selectivity sweep.
//
// Usage: tpch_antijoin [scale_factor]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "tpch/paper_queries.h"

using namespace eca;

namespace {

double TimeMs(const Optimizer& opt, const Plan& plan, const Database& db) {
  auto t0 = std::chrono::steady_clock::now();
  Relation out = opt.Execute(plan, db);
  auto t1 = std::chrono::steady_clock::now();
  (void)out;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.005;
  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 7);
  std::printf("TPC-H-style data at SF %.3f: %lld suppliers, %lld partsupp, "
              "%lld parts\n\n",
              sf, static_cast<long long>(data.supplier.NumRows()),
              static_cast<long long>(data.partsupp.NumRows()),
              static_cast<long long>(data.part.NumRows()));

  Optimizer::Options tba_opts;
  tba_opts.approach = Optimizer::Approach::kTBA;
  Optimizer tba{tba_opts};
  Optimizer eca;  // kECA

  std::printf("%8s %8s %12s %12s %9s %8s\n", "nu", "f12", "t_direct(ms)",
              "t_ECA(ms)", "speedup", "match");
  bool all_match = true;
  for (double nu : {0.0, 50.0, 500.0, 2000.0, 10000.0}) {
    PaperQuery q = BuildQ1(data, nu);
    double f12 = MeasureF12(q.db, nu);

    // The direct plan is the only ordering TBA can produce for Q1.
    auto direct = tba.Optimize(*q.plan, q.db);
    // ECA's reordered plan: Supplier loj Partsupp first (Rule 15).
    auto thetas =
        AllJoinOrderingTrees(q.plan->leaves(), PredicateRefSets(*q.plan));
    PlanPtr reordered;
    for (const OrderingNodePtr& theta : thetas) {
      if (theta->Key() == "((R0,R1),R2)") {
        reordered = eca.Reorder(*q.plan, *theta);
      }
    }
    if (reordered == nullptr) {
      std::printf("ECA reordering unavailable!\n");
      return 1;
    }
    if (nu == 0.0) {
      std::printf("direct plan:\n%s", direct.plan->ToString().c_str());
      std::printf("ECA plan (Rule 15 compensation):\n%s\n",
                  reordered->ToString().c_str());
    }
    double t_direct = TimeMs(tba, *direct.plan, q.db);
    double t_eca = TimeMs(eca, *reordered, q.db);
    bool match = SameMultiset(
        CanonicalizeColumnOrder(eca.Execute(*direct.plan, q.db)),
        CanonicalizeColumnOrder(eca.Execute(*reordered, q.db)));
    all_match = all_match && match;
    std::printf("%8.0f %8.3f %12.2f %12.2f %8.2fx %8s\n", nu, f12, t_direct,
                t_eca, t_eca > 0 ? t_direct / t_eca : 0.0,
                match ? "yes" : "NO!");
  }
  return all_match ? 0 : 1;
}
