// Where does a compensated plan spend its time? This example runs
// EXPLAIN ANALYZE on both plans of the paper's Q1 and shows the per-
// operator row counts and timings: the direct plan pays two antijoin
// probes over all of Partsupp, while the ECA plan pays one outerjoin pass
// plus the best-match (gamma*) sort. It also demonstrates the pull-based
// engine's early-out on a row limit.
//
// Usage: profile_plans [scale_factor] [nu]

#include <cstdio>
#include <cstdlib>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "exec/explain.h"
#include "exec/iterator_exec.h"
#include "tpch/paper_queries.h"

using namespace eca;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  double nu = argc > 2 ? std::atof(argv[2]) : 1000.0;
  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 11);
  PaperQuery q = BuildQ1(data, nu);
  std::printf("Q1 at SF %.3f, nu=%.0f (f12 = %.3f)\n\n", sf, nu,
              MeasureF12(q.db, nu));

  std::printf("==== EXPLAIN ANALYZE: direct plan ====\n%s\n",
              ExplainAnalyze(*q.plan, q.db).c_str());

  Optimizer eca;
  PlanPtr reordered;
  for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
           q.plan->leaves(), PredicateRefSets(*q.plan))) {
    if (theta->Key() == "((R0,R1),R2)") reordered = eca.Reorder(*q.plan, *theta);
  }
  if (reordered == nullptr) {
    std::printf("reordering unavailable\n");
    return 1;
  }
  std::printf("==== EXPLAIN ANALYZE: ECA plan ====\n%s\n",
              ExplainAnalyze(*reordered, q.db).c_str());

  // Early-out: the pull engine can stop after the first few result rows.
  Relation first = ExecutePullLimit(*q.plan, q.db, 3);
  std::printf("first %lld rows via the pull engine:\n%s",
              static_cast<long long>(first.NumRows()),
              first.ToString().c_str());
  return 0;
}
