// Reproduces Figure 7: the SQL-level deployment of ECA (Section 6.1).
// Prints (a) the direct SQL for Q1 — two nested NOT EXISTS — and (b) the
// SQL that enforces ECA's reordered plan: LEFT JOINs, the window-function
// best-match, and the gamma IS NULL filter, exactly the construction the
// paper ran on PostgreSQL.

#include <cstdio>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "tpch/paper_queries.h"

using namespace eca;

int main() {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, /*nu=*/5.0);

  SqlOptions sql;
  sql.table_names = {"supplier", "partsupp", "part", "lineitem", "orders"};

  std::printf("==== Figure 7(a): SQL for the direct plan of Q1 ====\n\n");
  std::printf("%s\n\n",
              PlanToSql(*q.plan, q.db.BaseSchemas(), sql).c_str());

  Optimizer eca;
  PlanPtr reordered;
  for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
           q.plan->leaves(), PredicateRefSets(*q.plan))) {
    if (theta->Key() == "((R0,R1),R2)") {
      reordered = eca.Reorder(*q.plan, *theta);
    }
  }
  if (reordered == nullptr) {
    std::printf("reordering unavailable\n");
    return 1;
  }
  std::printf("==== Figure 7(b): SQL enforcing ECA's reordered plan ====\n");
  std::printf("(plan: %s)\n\n", reordered->ToInlineString().c_str());
  std::printf("%s\n",
              PlanToSql(*reordered, q.db.BaseSchemas(), sql).c_str());

  // Sanity: both plans produce identical results on the generated data.
  bool same = SameMultiset(
      CanonicalizeColumnOrder(eca.Execute(*q.plan, q.db)),
      CanonicalizeColumnOrder(eca.Execute(*reordered, q.db)));
  std::printf("results identical on SF 0.002 data: %s\n",
              same ? "yes" : "NO!");
  return same ? 0 : 1;
}
