#include "rewrite/oj_simplify.h"

namespace eca {

namespace {

// `rejected`: relations whose NULL-padded rows cannot survive the
// operators above this node.
int SimplifyRec(Plan* node, RelSet rejected) {
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return 0;
    case Plan::Kind::kComp:
      // Compensation operators either preserve rows (lambda), select the
      // NULL rows themselves (gamma/gamma*), or project; none of them
      // rejects NULL-padded rows, so the context resets conservatively.
      return SimplifyRec(node->child(), RelSet());
    case Plan::Kind::kJoin:
      break;
  }

  int changed = 0;
  const PredRef pred = node->pred();
  const bool intol = pred != nullptr && pred->null_intolerant();
  const RelSet refs = pred != nullptr ? pred->refs() : RelSet();
  const RelSet out_left = node->left()->output_rels();
  const RelSet out_right = node->right()->output_rels();

  // Strengthen this join under the context from above.
  switch (node->op()) {
    case JoinOp::kLeftOuter:  // pads the right side's attributes
      if (rejected.Intersects(out_right)) {
        node->set_op(JoinOp::kInner);
        ++changed;
      }
      break;
    case JoinOp::kRightOuter:
      if (rejected.Intersects(out_left)) {
        node->set_op(JoinOp::kInner);
        ++changed;
      }
      break;
    case JoinOp::kFullOuter: {
      // Rows padded on the left (unmatched right tuples) die when a
      // predicate above needs the left side, and vice versa.
      bool kill_left_padded_rows = rejected.Intersects(out_left);
      bool kill_right_padded_rows = rejected.Intersects(out_right);
      if (kill_left_padded_rows && kill_right_padded_rows) {
        node->set_op(JoinOp::kInner);
        ++changed;
      } else if (kill_right_padded_rows) {
        // Only (left, NULL) rows die: the join preserves the right side.
        node->set_op(JoinOp::kRightOuter);
        ++changed;
      } else if (kill_left_padded_rows) {
        node->set_op(JoinOp::kLeftOuter);
        ++changed;
      }
      break;
    }
    default:
      break;
  }

  // Context for the children, per the (possibly strengthened) operator.
  RelSet s_left, s_right;
  const RelSet own = intol ? refs : RelSet();
  switch (node->op()) {
    case JoinOp::kCross:
      s_left = rejected;
      s_right = rejected;
      break;
    case JoinOp::kInner:
      s_left = rejected.Union(own);
      s_right = rejected.Union(own);
      break;
    case JoinOp::kLeftOuter:
      // Left rows failing the predicate survive padded, so the predicate
      // rejects nothing on the left; right rows failing it vanish.
      s_left = rejected;
      s_right = rejected.Union(own);
      break;
    case JoinOp::kRightOuter:
      s_left = rejected.Union(own);
      s_right = rejected;
      break;
    case JoinOp::kFullOuter:
      s_left = RelSet();
      s_right = RelSet();
      break;
    case JoinOp::kLeftSemi:
      s_left = rejected.Union(own);
      s_right = own;
      break;
    case JoinOp::kRightSemi:
      s_left = own;
      s_right = rejected.Union(own);
      break;
    case JoinOp::kLeftAnti:
      // Unmatched rows (including NULL-predicate ones) are the output.
      s_left = rejected;
      s_right = own;
      break;
    case JoinOp::kRightAnti:
      s_left = own;
      s_right = rejected;
      break;
  }
  changed += SimplifyRec(node->left(), s_left);
  changed += SimplifyRec(node->right(), s_right);
  return changed;
}

}  // namespace

int SimplifyOuterJoins(Plan* plan) {
  // Iterate to a fixpoint: strengthening one join can expose further
  // rejections below it.
  int total = 0;
  while (true) {
    int changed = SimplifyRec(plan, RelSet());
    total += changed;
    if (changed == 0) break;
  }
  return total;
}

}  // namespace eca
