#include "rewrite/comp_simplify.h"

#include "rewrite/rules.h"

namespace eca {

namespace {

// Removes `node` (a comp) by replacing it with its child. `slot` owns node.
void Splice(PlanPtr* slot) {
  PlanPtr child = std::move((*slot)->mutable_child());
  *slot = std::move(child);
}

int SimplifyRec(PlanPtr* slot) {
  Plan* node = slot->get();
  int removed = 0;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return 0;
    case Plan::Kind::kJoin:
      removed += SimplifyRec(&node->mutable_left());
      removed += SimplifyRec(&node->mutable_right());
      return removed;
    case Plan::Kind::kComp:
      break;
  }
  // Simplify below first; that may expose removable stacks here.
  removed += SimplifyRec(&node->mutable_child());
  node = slot->get();

  const CompOp& c = node->comp();
  switch (c.kind) {
    case CompOp::Kind::kProject: {
      RelSet out = node->child()->output_rels();
      if (c.attrs.ContainsAll(out)) {
        Splice(slot);
        return removed + 1 + SimplifyRec(slot);
      }
      break;
    }
    case CompOp::Kind::kBeta: {
      const Plan* child = node->child();
      // beta over beta, or over anything already best-match clean.
      if (IsBetaClean(*child)) {
        Splice(slot);
        return removed + 1 + SimplifyRec(slot);
      }
      break;
    }
    case CompOp::Kind::kLambda:
      if (c.pred != nullptr &&
          c.pred->kind() == Predicate::Kind::kConstBool &&
          c.pred->const_bool()) {
        Splice(slot);
        return removed + 1 + SimplifyRec(slot);
      }
      break;
    case CompOp::Kind::kGamma: {
      const Plan* child = node->child();
      if (child->is_comp() &&
          child->comp().kind == CompOp::Kind::kGamma &&
          child->comp().attrs == c.attrs) {
        Splice(slot);  // identical adjacent gammas
        return removed + 1 + SimplifyRec(slot);
      }
      break;
    }
    case CompOp::Kind::kGammaStar:
      break;
  }
  return removed;
}

}  // namespace

int SimplifyCompensations(PlanPtr* plan) {
  ECA_CHECK(plan != nullptr && *plan != nullptr);
  return SimplifyRec(plan);
}

}  // namespace eca
