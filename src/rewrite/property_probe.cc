#include "rewrite/property_probe.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "exec/executor.h"
#include "testing/random_data.h"

namespace eca {

namespace {

// Predicate endpoints for each transform pattern: p_a joins (a0,a1),
// p_b joins (b0,b1) — see transform.h.
void PatternPredicatePairs(TransformType t, int* a0, int* a1, int* b0,
                           int* b1) {
  switch (t) {
    case TransformType::kAssoc:
      *a0 = 0; *a1 = 1; *b0 = 1; *b1 = 2;
      return;
    case TransformType::kLAsscom:
      *a0 = 0; *a1 = 1; *b0 = 0; *b1 = 2;
      return;
    case TransformType::kRAsscom:
      *a0 = 0; *a1 = 2; *b0 = 1; *b1 = 2;
      return;
  }
}

RandomDataOptions TrialOptions(int trial) {
  RandomDataOptions opts;
  // Rotate through several regimes so counterexamples requiring empties,
  // heavy NULLs, or dense matches all get exercised.
  switch (trial % 4) {
    case 0:
      opts.max_rows = 4;
      opts.domain = 2;
      opts.null_prob = 0.3;
      break;
    case 1:
      opts.max_rows = 8;
      opts.domain = 3;
      opts.null_prob = 0.15;
      break;
    case 2:
      opts.max_rows = 3;
      opts.domain = 2;
      opts.null_prob = 0.5;
      opts.empty_prob = 0.3;
      break;
    default:
      opts.max_rows = 10;
      opts.domain = 5;
      opts.null_prob = 0.1;
      opts.empty_prob = 0.0;
      break;
  }
  return opts;
}

}  // namespace

ProbeResult ClassifyTransform(TransformType t, JoinOp a, JoinOp b, int trials,
                              uint64_t seed0, bool tolerant_preds) {
  ProbeResult result;
  if (!TransformWellFormed(t, a, b)) {
    result.validity = Validity::kNotApplicable;
    return result;
  }
  int a0 = 0, a1 = 0, b0 = 0, b1 = 0;
  PatternPredicatePairs(t, &a0, &a1, &b0, &b1);
  for (int trial = 0; trial < trials; ++trial) {
    uint64_t seed = seed0 + static_cast<uint64_t>(trial);
    Rng rng(seed * 0x2545F4914F6CDD1DULL + 1);
    RandomDataOptions opts = TrialOptions(trial);
    Database db = RandomDatabase(rng, 3, opts);
    auto make_pred = [&](int r0, int r1, const char* label) {
      return tolerant_preds
                 ? RandomTolerantJoinPredicate(rng, RelSet::Single(r0),
                                               RelSet::Single(r1), opts,
                                               label)
                 : RandomJoinPredicate(rng, RelSet::Single(r0),
                                       RelSet::Single(r1), opts, label);
    };
    PredRef p_a = a == JoinOp::kCross ? nullptr : make_pred(a0, a1, "pa");
    PredRef p_b = b == JoinOp::kCross ? nullptr : make_pred(b0, b1, "pb");
    PlanPtr lhs = BuildTransformLHS(t, a, b, p_a, p_b);
    PlanPtr rhs = BuildTransformRHS(t, a, b, p_a, p_b);
    Executor el, er;
    Relation rl = CanonicalizeColumnOrder(el.Execute(*lhs, db));
    Relation rr = CanonicalizeColumnOrder(er.Execute(*rhs, db));
    ++result.trials_run;
    if (!SameMultiset(rl, rr)) {
      result.validity = Validity::kInvalid;
      result.counterexample_seed = seed;
      result.counterexample_detail =
          "LHS:\n" + lhs->ToString() + "RHS:\n" + rhs->ToString() +
          "diff:\n" + ExplainDifference(rl, rr);
      return result;
    }
  }
  result.validity = Validity::kValid;
  return result;
}

std::string RenderEmpiricalMatrix(TransformType t, int trials,
                                  bool tolerant_preds) {
  const JoinOp ops[] = {JoinOp::kCross,    JoinOp::kInner,
                        JoinOp::kLeftSemi, JoinOp::kLeftAnti,
                        JoinOp::kLeftOuter, JoinOp::kFullOuter};
  std::string out = StrFormat("%-10s", TransformTypeName(t));
  for (JoinOp b : ops) out += StrFormat("%7s", JoinOpName(b));
  out += "\n";
  for (JoinOp a : ops) {
    out += StrFormat("%-10s", JoinOpName(a));
    for (JoinOp b : ops) {
      ProbeResult r = ClassifyTransform(t, a, b, trials, 0, tolerant_preds);
      out += StrFormat("%7s", ValidityName(r.validity));
    }
    out += "\n";
  }
  return out;
}

}  // namespace eca
