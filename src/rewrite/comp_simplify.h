#ifndef ECA_REWRITE_COMP_SIMPLIFY_H_
#define ECA_REWRITE_COMP_SIMPLIFY_H_

#include "algebra/plan.h"

namespace eca {

// Cleanup pass over compensation operators. The compositional derivations
// (Equation 9 expansion + pull-ups) can leave operators that no longer do
// anything; this pass removes them:
//   - pi that keeps every visible relation of its child
//   - beta(beta(X)) -> beta(X)            (CBA Equation 3)
//   - beta directly above a best-match-clean subtree (IsBetaClean)
//   - lambda with a constant-TRUE predicate
//   - adjacent identical gammas
// The pass never changes plan semantics (verified by randomized testing);
// it reduces executed operator count and makes EXPLAIN output readable.
//
// Returns the number of operators removed.
int SimplifyCompensations(PlanPtr* plan);

}  // namespace eca

#endif  // ECA_REWRITE_COMP_SIMPLIFY_H_
