// Compensation-operator pull-up rules (Tables 2, 4, 5 and Equation 10 of the
// paper) and the anti/semijoin expansion rewrites (Equation 9 and the
// best-match semijoin form). Every rule here is verified by randomized
// equivalence testing in tests/rewrite/.

#include "rewrite/rules.h"

#include "common/metrics.h"
#include "expr/pred_normalize.h"

namespace eca {

namespace {

// One increment per applied pull-up, by the kind of the pulled operator
// (rewrite.rule.pull_* in the metric catalog, docs/observability.md).
Counter* PullRuleCounter(CompOp::Kind kind) {
  auto& reg = MetricsRegistry::Global();
  static Counter* const lambda = reg.counter("rewrite.rule.pull_lambda");
  static Counter* const beta = reg.counter("rewrite.rule.pull_beta");
  static Counter* const gamma = reg.counter("rewrite.rule.pull_gamma");
  static Counter* const gamma_star =
      reg.counter("rewrite.rule.pull_gamma_star");
  static Counter* const project = reg.counter("rewrite.rule.pull_project");
  switch (kind) {
    case CompOp::Kind::kLambda:
      return lambda;
    case CompOp::Kind::kBeta:
      return beta;
    case CompOp::Kind::kGamma:
      return gamma;
    case CompOp::Kind::kGammaStar:
      return gamma_star;
    case CompOp::Kind::kProject:
      return project;
  }
  return beta;
}

// Combined predicate for lambda folding: (pj AND q), labeled "pj&q".
// Normalized so that repeated folds stay flat and duplicate conjuncts
// collapse.
PredRef FoldPreds(const PredRef& pj, const PredRef& q) {
  PredRef folded = NormalizePredicate(Predicate::And({pj, q}));
  return Predicate::WithLabel(std::move(folded),
                              pj->DisplayName() + "&" + q->DisplayName());
}

// Records that pulling a compensation operator across join `j` changed the
// comp's form or the join's predicate/operator: any subplan boundary between
// the comp and the join now carries a dependency (Section 5.2, second
// scenario).
void RecordPullDependency(RewriteContext* ctx, const Plan& j,
                          const char* what, CompOp* comp) {
  if (ctx == nullptr) return;
  if (comp != nullptr && comp->vnode < 0) comp->vnode = ctx->NewVnode();
  DEdge e;
  e.src_pred = ctx->Interner().Intern(j.pred());
  e.label_a = ctx->Interner().InternName(what);
  e.label_b = e.src_pred;
  e.vnode = comp != nullptr ? comp->vnode : DEdge::kContextVnode;
  ctx->dedges.push_back(e);
}

}  // namespace

namespace {

// Stamps the expansion compensations with a fresh group id and records the
// join's dependency on them (without this, a subplan that pulled the
// compensations outside its boundary would look reusable in a context that
// kept them inside — Example 5.1's hazard).
int RecordExpansionDependency(RewriteContext* ctx, const PredRef& pred,
                              const char* what) {
  if (ctx == nullptr) return -1;
  int vnode = ctx->NewVnode();
  DEdge e;
  e.src_pred = ctx->Interner().Intern(pred);
  e.label_a = ctx->Interner().InternName(what);
  e.label_b = e.src_pred;
  e.vnode = vnode;
  ctx->dedges.push_back(e);
  return vnode;
}

}  // namespace

PlanPtr ExpandAntiJoinNode(PlanPtr node, RewriteContext* ctx) {
  static Counter* const applied =
      MetricsRegistry::Global().counter("rewrite.rule.expand_antijoin");
  applied->Increment();
  ECA_CHECK(node->is_join());
  if (node->op() == JoinOp::kRightAnti) NormalizeRightVariants(node.get());
  ECA_CHECK(node->op() == JoinOp::kLeftAnti);
  RelSet out_left = node->left()->output_rels();
  RelSet out_right = node->right()->output_rels();
  int vnode = RecordExpansionDependency(ctx, node->pred(), "eq9");
  node->set_op(JoinOp::kLeftOuter);
  CompOp gamma = CompOp::Gamma(out_right);
  gamma.vnode = vnode;
  CompOp pi = CompOp::Project(out_left);
  pi.vnode = vnode;
  PlanPtr inner = Plan::Comp(std::move(gamma), std::move(node));
  return Plan::Comp(std::move(pi), std::move(inner));
}

PlanPtr ExpandSemiJoinNode(PlanPtr node, RewriteContext* ctx) {
  static Counter* const applied =
      MetricsRegistry::Global().counter("rewrite.rule.expand_semijoin");
  applied->Increment();
  ECA_CHECK(node->is_join());
  if (node->op() == JoinOp::kRightSemi) NormalizeRightVariants(node.get());
  ECA_CHECK(node->op() == JoinOp::kLeftSemi);
  RelSet out_left = node->left()->output_rels();
  int vnode = RecordExpansionDependency(ctx, node->pred(), "semijoin");
  node->set_op(JoinOp::kInner);
  CompOp pi = CompOp::Project(out_left);
  pi.vnode = vnode;
  CompOp beta = CompOp::Beta();
  beta.vnode = vnode;
  PlanPtr projected = Plan::Comp(std::move(pi), std::move(node));
  return Plan::Comp(std::move(beta), std::move(projected));
}

bool IsBetaClean(const Plan& plan) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return true;  // base relations are duplicate-free (key columns)
    case Plan::Kind::kJoin:
      // Joins of clean inputs are clean: padded rows exist only for
      // unmatched tuples, so a padded and a non-padded row for the same
      // tuple never coexist, and distinct keys prevent cross-tuple
      // domination. Semi/antijoins select subsets of a clean input.
      return IsBetaClean(*plan.left()) &&
             (OutputsOneSide(plan.op()) && plan.op() != JoinOp::kRightSemi &&
                      plan.op() != JoinOp::kRightAnti
                  ? true
                  : IsBetaClean(*plan.right()));
    case Plan::Kind::kComp:
      switch (plan.comp().kind) {
        case CompOp::Kind::kBeta:
        case CompOp::Kind::kGammaStar:  // ends with a best-match
          return true;
        case CompOp::Kind::kGamma:  // selection of clean input stays clean
          return IsBetaClean(*plan.child());
        case CompOp::Kind::kLambda:   // nullified copies may be dominated
        case CompOp::Kind::kProject:  // projection may create duplicates
          return false;
      }
  }
  return false;
}

namespace {

bool PullCompAboveJoinImpl(PlanPtr* j_subtree_slot, bool comp_on_left,
                           RewriteContext* ctx) {
  PlanPtr j_subtree = std::move(*j_subtree_slot);
  Plan* j = j_subtree.get();
  // Every early-out below must restore the subtree before returning false.
  auto fail = [&]() {
    *j_subtree_slot = std::move(j_subtree);
    return false;
  };
  auto succeed = [&](PlanPtr result) {
    *j_subtree_slot = std::move(result);
    return true;
  };
  ECA_CHECK(j->is_join());
  // Right-variant joins are normalized by the caller (SwapUp); handle only
  // left variants plus cross/inner/full.
  ECA_CHECK(!IsRightVariant(j->op()));
  PlanPtr& comp_slot = comp_on_left ? j->mutable_left() : j->mutable_right();
  ECA_CHECK(comp_slot->is_comp());
  CompOp comp = comp_slot->comp();
  Plan* sibling = comp_on_left ? j->right() : j->left();
  const RelSet out_sibling = sibling->output_rels();
  const RelSet out_child = comp_slot->child()->output_rels();
  const JoinOp op = j->op();
  const PredRef pj = j->pred();
  const RelSet pj_refs = pj ? pj->refs() : RelSet();

  // Which role does the comp side play?
  const bool probe_side = OutputsOneSide(op) && !comp_on_left;
  const bool null_padded_side =  // unmatched sibling rows pad the comp side
      (op == JoinOp::kLeftOuter && !comp_on_left) || op == JoinOp::kFullOuter;

  auto splice_child = [&]() {
    // Replace the comp node by its child under j.
    PlanPtr child = std::move(comp_slot->mutable_child());
    comp_slot = std::move(child);
  };

  switch (comp.kind) {
    case CompOp::Kind::kProject: {
      // Equation 10: pi commutes with the join when the predicate only
      // needs surviving attributes.
      RelSet visible = comp.attrs.Intersect(out_child).Union(out_sibling);
      if (!visible.ContainsAll(pj_refs)) return fail();
      splice_child();
      if (probe_side) {
        // The probe side does not reach the output; the projection is
        // irrelevant once the predicate is known to survive it.
        return succeed(std::move(j_subtree));
      }
      CompOp up = CompOp::Project(
          OutputsOneSide(op) ? comp.attrs
                             : comp.attrs.Union(out_sibling));
      up.vnode = comp.vnode;
      return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
    }

    case CompOp::Kind::kGamma: {
      if (pj_refs.Intersects(comp.attrs)) return fail();
      if (op == JoinOp::kFullOuter || null_padded_side) {
        // Table 2 Rule 3 (and its full-outerjoin analog): a gamma below the
        // null-producing side becomes a gamma* that nullifies instead of
        // removing, keeping the sibling's attributes.
        splice_child();
        CompOp up = CompOp::GammaStar(comp.attrs, out_sibling);
        up.vnode = comp.vnode;
        RecordPullDependency(ctx, *j, "gamma->gamma*", &up);
        return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
      }
      if (probe_side) return fail();  // gamma changes matching; expand j
      // Selection on an output side commutes (inner/cross/left-preserved
      // outer/semi/anti-output side).
      splice_child();
      CompOp up = comp;
      return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
    }

    case CompOp::Kind::kGammaStar: {
      const RelSet nulled = out_child.Minus(comp.keep);
      if (pj != nullptr && pj->null_intolerant() &&
          pj_refs.Intersects(nulled) && IsBetaClean(*comp_slot->child())) {
        // The join predicate needs attributes that gamma* nullifies, so
        // the modified tuples can never match — they either vanish (inner,
        // probe side), stay padded (outerjoins), or survive unmatched
        // (antijoin output). A best-match-clean operand guarantees that
        // applying the modification after the join removes exactly the
        // same spurious tuples.
        if (op == JoinOp::kLeftOuter && comp_on_left) {
          // gamma*{A(B)}(X) loj[pj] Y = gamma*{A(B)}(X loj[pj] Y): failing
          // tuples join with original values, then both their non-B attrs
          // and the joined Y side are nullified, collapsing to the padded
          // rows the left side produced.
          splice_child();
          CompOp up = CompOp::GammaStar(comp.attrs, comp.keep);
          up.vnode = comp.vnode;
          RecordPullDependency(ctx, *j, "gamma*-keep", &up);
          return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
        }
        if (op == JoinOp::kLeftOuter && null_padded_side) {
          // Y loj[pj] gamma*{A(B)}(X) = gamma*{A(out Y)}(Y loj[pj] X):
          // in the result only Y's attributes survive for A-non-NULL rows
          // (matching the padded rows of the left-hand side).
          splice_child();
          CompOp up = CompOp::GammaStar(comp.attrs, out_sibling);
          up.vnode = comp.vnode;
          RecordPullDependency(ctx, *j, "gamma*-nullside", &up);
          return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
        }
        if (op == JoinOp::kInner || probe_side ||
            (op == JoinOp::kLeftSemi && comp_on_left)) {
          // Only A-all-NULL tuples participate: fold the gamma test into
          // the predicate; the gamma* vanishes (modified tuples cannot
          // reach the output).
          PredRef folded = Predicate::WithLabel(
              NormalizePredicate(
                  Predicate::And({pj, Predicate::AllNull(comp.attrs)})),
              pj->DisplayName() + "&gt");
          j->set_pred(folded);
          splice_child();
          RecordPullDependency(ctx, *j, "gamma*-fold", nullptr);
          return succeed(std::move(j_subtree));
        }
        if (op == JoinOp::kLeftAnti && comp_on_left) {
          // Modified tuples never match, so they survive the antijoin;
          // fold the gamma test and re-apply gamma* above.
          PredRef folded = Predicate::WithLabel(
              NormalizePredicate(
                  Predicate::And({pj, Predicate::AllNull(comp.attrs)})),
              pj->DisplayName() + "&gt");
          j->set_pred(folded);
          splice_child();
          CompOp up = CompOp::GammaStar(comp.attrs, comp.keep);
          up.vnode = comp.vnode;
          RecordPullDependency(ctx, *j, "gamma*-antijoin", &up);
          return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
        }
        return fail();
      }
      // The predicate only touches the preserved attributes B (plus the
      // sibling); the gamma* widens across the join.
      if (!comp.keep.Union(out_sibling).ContainsAll(pj_refs)) return fail();
      if (probe_side || OutputsOneSide(op)) return fail();  // expand j
      splice_child();
      CompOp up = CompOp::GammaStar(comp.attrs, comp.keep.Union(out_sibling));
      up.vnode = comp.vnode;
      RecordPullDependency(ctx, *j, "gamma*-widen", &up);
      return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
    }

    case CompOp::Kind::kLambda: {
      const PredRef q = comp.pred;
      if (!pj_refs.Intersects(comp.attrs)) {
        // Table 5, easy cases: the join predicate ignores the nullified
        // attributes, so nullification commutes with the join.
        splice_child();
        if (probe_side) return succeed(std::move(j_subtree));  // invisible
        CompOp up = comp;
        return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
      }
      // pj references the nullified attributes. Every fold/widen below
      // relies on nullified attributes never satisfying pj.
      if (pj != nullptr && !pj->null_intolerant()) return fail();
      if (op == JoinOp::kFullOuter) return fail();
      if (op == JoinOp::kInner || probe_side ||
          (op == JoinOp::kLeftOuter && null_padded_side) ||
          (op == JoinOp::kLeftSemi && comp_on_left)) {
        // Folding: tuples failing q cannot match pj anyway, so the lambda
        // becomes a conjunct of the join predicate (Section 4.4 discussion;
        // verified in rules_lambda_test.cc).
        ECA_CHECK(pj != nullptr);
        j->set_pred(FoldPreds(pj, q));
        splice_child();
        RecordPullDependency(ctx, *j, "lambda-fold", nullptr);
        return succeed(std::move(j_subtree));
      }
      if (op == JoinOp::kLeftAnti && comp_on_left) {
        // lambda_{q,A}(X) laj[pj] Y = lambda_{q,A}(X laj[pj AND q] Y):
        // failing tuples cannot match, so they survive the antijoin and are
        // then nullified.
        ECA_CHECK(pj != nullptr);
        j->set_pred(FoldPreds(pj, q));
        splice_child();
        CompOp up = comp;
        RecordPullDependency(ctx, *j, "lambda-antijoin", &up);
        return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
      }
      if (op == JoinOp::kLeftOuter && comp_on_left) {
        // Table 5 with best-match: lambda_{q,A}(X) loj[pj] Y =
        // beta(lambda_{q, A+out(Y)}(X loj[pj] Y)). Failing tuples join with
        // their original values; the widened lambda nullifies those joins
        // and beta removes the resulting spurious tuples.
        splice_child();
        CompOp up = CompOp::Lambda(q, comp.attrs.Union(out_sibling));
        up.vnode = comp.vnode;
        RecordPullDependency(ctx, *j, "lambda-widen", &up);
        PlanPtr with_lambda =
            Plan::Comp(std::move(up), std::move(j_subtree));
        CompOp beta = CompOp::Beta();
        beta.vnode = comp.vnode;
        return succeed(Plan::Comp(std::move(beta), std::move(with_lambda)));
      }
      return fail();
    }

    case CompOp::Kind::kBeta: {
      if (probe_side) {
        // Removing dominated/duplicate tuples never changes whether a tuple
        // has a match (dominated matches imply dominator matches — which
        // again needs a null-intolerant predicate), so beta on the probe
        // side of a semi/antijoin is a no-op for the result.
        if (pj != nullptr && !pj->null_intolerant()) return fail();
        splice_child();
        return succeed(std::move(j_subtree));
      }
      if (op == JoinOp::kLeftAnti) return fail();  // see rules_pull tests
      // The domination argument ("if a dominated tuple matches, its
      // dominator matches") needs a null-intolerant predicate.
      if (pj != nullptr && !pj->null_intolerant()) return fail();
      // For output-preserving joins the sibling must itself be free of
      // spurious tuples, or the pulled beta would remove cross-sibling
      // dominations the original did not. Semijoins output only the beta
      // side, so no sibling condition applies.
      if (op != JoinOp::kLeftSemi && !IsBetaClean(*sibling)) return fail();
      splice_child();
      CompOp up = comp;
      return succeed(Plan::Comp(std::move(up), std::move(j_subtree)));
    }
  }
  return fail();
}

}  // namespace

bool PullCompAboveJoin(PlanPtr* j_subtree_slot, bool comp_on_left,
                       RewriteContext* ctx) {
  Plan* j = j_subtree_slot->get();
  const CompOp::Kind kind =
      (comp_on_left ? j->left() : j->right())->comp().kind;
  if (!PullCompAboveJoinImpl(j_subtree_slot, comp_on_left, ctx)) return false;
  PullRuleCounter(kind)->Increment();
  return true;
}

}  // namespace eca
