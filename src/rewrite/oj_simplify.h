#ifndef ECA_REWRITE_OJ_SIMPLIFY_H_
#define ECA_REWRITE_OJ_SIMPLIFY_H_

#include "algebra/plan.h"

namespace eca {

// Classic null-rejection-based outerjoin simplification (Galindo-Legaria /
// Rosenthal; the paper's Section 2 cites this line of work as the early
// outerjoin-simplification research). A padded row dies wherever a
// null-intolerant predicate above references the padded side, so
//   full outer -> left/right outer -> inner
// degrade accordingly. Every mainstream optimizer (and all three compared
// approaches) performs this normalization before join reordering; the
// enumerators apply it to the initial plan.
//
// Returns the number of joins strengthened.
int SimplifyOuterJoins(Plan* plan);

}  // namespace eca

#endif  // ECA_REWRITE_OJ_SIMPLIFY_H_
