// The compensated swap primitive (Section 4.3 / Algorithm 3 and 5 of the
// paper). A child join m rises one level above its parent join p via an
// assoc / l-asscom / r-asscom step; when the step is invalid per Table 1 it
// is repaired by outerjoin simplification, anti/semijoin expansion
// (Equation 9), compensation pull-up, or the generalized-outerjoin
// compensation (lambda + beta). The paper's Table 3 rules 14-25 arise as
// compositions of these primitives (verified in rules_reorder_test.cc).

#include "rewrite/rules.h"

#include "common/metrics.h"

namespace eca {

namespace {

enum class Candidate { kAssocFwd, kLAsscom, kAssocRev, kRAsscom };

// rewrite.rule.* counters feed PlanProvenance and the --metrics table;
// one increment per applied rewrite (docs/observability.md).
Counter* PlainRuleCounter(Candidate c) {
  auto& reg = MetricsRegistry::Global();
  static Counter* const assoc = reg.counter("rewrite.rule.assoc");
  static Counter* const l_asscom = reg.counter("rewrite.rule.l_asscom");
  static Counter* const r_asscom = reg.counter("rewrite.rule.r_asscom");
  switch (c) {
    case Candidate::kAssocFwd:
    case Candidate::kAssocRev:
      return assoc;
    case Candidate::kLAsscom:
      return l_asscom;
    case Candidate::kRAsscom:
      return r_asscom;
  }
  return assoc;
}

// Mirrors a right-variant join node in place (children swapped).
void MirrorNode(Plan* j) {
  if (j->is_join() && IsRightVariant(j->op())) {
    j->set_op(Mirror(j->op()));
    std::swap(j->mutable_left(), j->mutable_right());
  }
}

void RecordSwapDEdges(RewriteContext* ctx, const PredRef& pm,
                      const PredRef& pp, int vnode) {
  if (ctx == nullptr) return;
  int la = ctx->Interner().Intern(pm);
  int lb = ctx->Interner().Intern(pp);
  for (int src : {la, lb}) {
    DEdge e;
    e.src_pred = src;
    e.label_a = la;
    e.label_b = lb;
    e.vnode = vnode;
    ctx->dedges.push_back(e);
  }
}

void RecordSimplifyDEdge(RewriteContext* ctx, const PredRef& changed,
                         const PredRef& cause) {
  static Counter* const applied =
      MetricsRegistry::Global().counter("rewrite.rule.oj_simplify");
  applied->Increment();
  if (ctx == nullptr) return;
  DEdge e;
  e.src_pred = ctx->Interner().Intern(changed);
  e.label_a = ctx->Interner().InternName("simplify");
  e.label_b = ctx->Interner().Intern(cause);
  e.vnode = DEdge::kContextVnode;
  ctx->dedges.push_back(e);
}

PlanPtr StripTopComps(PlanPtr sub, std::vector<CompOp>* comps) {
  while (sub->is_comp()) {
    comps->push_back(sub->comp());
    PlanPtr child = std::move(sub->mutable_child());
    sub = std::move(child);
  }
  return sub;
}

PlanPtr WrapComps(const std::vector<CompOp>& comps, PlanPtr child) {
  for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
    child = Plan::Comp(*it, std::move(child));
  }
  return child;
}

// Destructures the (p, m) pattern and rebuilds the risen shape for a
// table-valid transformation. Consumes `sub`.
PlanPtr RebuildPlain(PlanPtr sub, Candidate c, bool m_on_left) {
  PlainRuleCounter(c)->Increment();
  Plan* p = sub.get();
  PlanPtr m = std::move(m_on_left ? p->mutable_left() : p->mutable_right());
  JoinOp op_p = p->op(), op_m = m->op();
  PredRef pp = p->pred(), pm = m->pred();
  PlanPtr e1, e2, e3;
  if (m_on_left) {
    e1 = std::move(m->mutable_left());
    e2 = std::move(m->mutable_right());
    e3 = std::move(p->mutable_right());
  } else {
    e1 = std::move(p->mutable_left());
    e2 = std::move(m->mutable_left());
    e3 = std::move(m->mutable_right());
  }
  switch (c) {
    case Candidate::kAssocFwd:  // (e1 m e2) p e3 -> e1 m (e2 p e3)
      return Plan::Join(op_m, pm, std::move(e1),
                        Plan::Join(op_p, pp, std::move(e2), std::move(e3)));
    case Candidate::kLAsscom:  // (e1 m e2) p e3 -> (e1 p e3) m e2
      return Plan::Join(op_m, pm,
                        Plan::Join(op_p, pp, std::move(e1), std::move(e3)),
                        std::move(e2));
    case Candidate::kAssocRev:  // e1 p (e2 m e3) -> (e1 p e2) m e3
      return Plan::Join(op_m, pm,
                        Plan::Join(op_p, pp, std::move(e1), std::move(e2)),
                        std::move(e3));
    case Candidate::kRAsscom:  // e1 p (e2 m e3) -> e2 m (e1 p e3)
      return Plan::Join(op_m, pm, std::move(e2),
                        Plan::Join(op_p, pp, std::move(e1), std::move(e3)));
  }
  return nullptr;
}

// The generalized-outerjoin compensation:
//   e1 loj[pp] (e2 join[pm] e3)   [pp referencing e2]
//     = beta(lambda[pm, out(e2)+out(e3)]((e1 loj[pp] e2) loj[pm] e3))
// and the r-asscom variant with pp referencing e3:
//     = beta(lambda[pm, out(e2)+out(e3)]((e1 loj[pp] e3) loj[pm] e2))
// Consumes `sub` (whose root p must be kLeftOuter with inner join m =
// kInner on the right).
PlanPtr BuildGeneralizedOuterjoin(PlanPtr sub, Candidate c,
                                  RewriteContext* ctx) {
  static Counter* const applied =
      MetricsRegistry::Global().counter("rewrite.rule.gen_oj_comp");
  applied->Increment();
  Plan* p = sub.get();
  PlanPtr m = std::move(p->mutable_right());
  PredRef pp = p->pred(), pm = m->pred();
  PlanPtr e1 = std::move(p->mutable_left());
  PlanPtr e2 = std::move(m->mutable_left());
  PlanPtr e3 = std::move(m->mutable_right());
  RelSet nulled = e2->output_rels().Union(e3->output_rels());

  PlanPtr inner, top;
  if (c == Candidate::kAssocRev) {
    inner = Plan::Join(JoinOp::kLeftOuter, pp, std::move(e1), std::move(e2));
    top = Plan::Join(JoinOp::kLeftOuter, pm, std::move(inner), std::move(e3));
  } else {
    ECA_CHECK(c == Candidate::kRAsscom);
    inner = Plan::Join(JoinOp::kLeftOuter, pp, std::move(e1), std::move(e3));
    top = Plan::Join(JoinOp::kLeftOuter, pm, std::move(inner), std::move(e2));
  }
  int vnode = ctx != nullptr ? ctx->NewVnode() : -1;
  RecordSwapDEdges(ctx, pm, pp, vnode);
  CompOp lambda = CompOp::Lambda(pm, nulled);
  lambda.vnode = vnode;
  CompOp beta = CompOp::Beta();
  beta.vnode = vnode;
  return Plan::Comp(std::move(beta),
                    Plan::Comp(std::move(lambda), std::move(top)));
}

PlanPtr SwapAdjacentRec(PlanPtr sub, bool m_on_left, RewriteContext* ctx,
                        int depth) {
  if (depth > 16) return nullptr;
  Plan* p = sub.get();
  ECA_CHECK(p->is_join());
  if (IsRightVariant(p->op())) {
    MirrorNode(p);
    m_on_left = !m_on_left;
  }
  {
    PlanPtr& ms = m_on_left ? p->mutable_left() : p->mutable_right();
    ECA_CHECK(ms->is_join());
    MirrorNode(ms.get());
  }
  Plan* m = m_on_left ? p->left() : p->right();
  const PredRef pp = p->pred();
  const PredRef pm = m->pred();
  const RelSet pp_refs = pp ? pp->refs() : RelSet();
  const JoinOp op_p = p->op();
  const JoinOp op_m = m->op();

  // Pattern operands per the transform definitions.
  const Plan* e1 = m_on_left ? m->left() : p->left();
  const Plan* e2 = m_on_left ? m->right() : m->left();
  const Plan* e3 = m_on_left ? p->right() : m->right();
  const RelSet l1 = e1->leaves(), l2 = e2->leaves(), l3 = e3->leaves();

  // Which transforms does pp's shape admit?
  std::vector<Candidate> candidates;
  if (m_on_left) {
    if (!pp_refs.Intersects(l1)) candidates.push_back(Candidate::kAssocFwd);
    if (!pp_refs.Intersects(l2)) candidates.push_back(Candidate::kLAsscom);
  } else {
    if (!pp_refs.Intersects(l3)) candidates.push_back(Candidate::kAssocRev);
    if (!pp_refs.Intersects(l2)) candidates.push_back(Candidate::kRAsscom);
  }
  if (candidates.empty()) return nullptr;  // predicate spans both subtrees

  // CBA's nullification framework covers inner and outer joins only; it
  // cannot reorder across semi/antijoins at all (Section 2.2), which is
  // what makes TBA and CBA incomparable: TBA performs the *valid*
  // anti/semijoin transformations that CBA lacks, while CBA performs the
  // compensated outerjoin transformations that TBA forbids.
  if (PolicyOf(ctx) == SwapPolicy::kCBA &&
      (OutputsOneSide(op_m) || OutputsOneSide(op_p))) {
    return nullptr;
  }

  auto table_ops = [&](Candidate c, JoinOp* a, JoinOp* b) {
    if (c == Candidate::kAssocFwd || c == Candidate::kLAsscom) {
      *a = op_m;
      *b = op_p;
    } else {
      *a = op_p;
      *b = op_m;
    }
  };
  auto transform_of = [](Candidate c) {
    switch (c) {
      case Candidate::kAssocFwd:
      case Candidate::kAssocRev:
        return TransformType::kAssoc;
      case Candidate::kLAsscom:
        return TransformType::kLAsscom;
      case Candidate::kRAsscom:
        return TransformType::kRAsscom;
    }
    return TransformType::kAssoc;
  };

  // Appendix D: with null-tolerant predicates only the tolerant validity
  // matrix applies and the compensation machinery (whose derivations rely
  // on padded rows never matching) is off the table.
  const bool preds_intolerant =
      (pm == nullptr || pm->null_intolerant()) &&
      (pp == nullptr || pp->null_intolerant());

  // 1. Table-valid plain transformations (this is all TBA supports).
  for (Candidate c : candidates) {
    JoinOp a, b;
    table_ops(c, &a, &b);
    if (TableOneValidity(transform_of(c), a, b, preds_intolerant) ==
        Validity::kValid) {
      return RebuildPlain(std::move(sub), c, m_on_left);
    }
  }

  const SwapPolicy policy = PolicyOf(ctx);
  if (policy == SwapPolicy::kTBA) return nullptr;  // valid transforms only

  const bool pp_nullintol = pp != nullptr && pp->null_intolerant();

  // 2. Outerjoin simplifications: a null-intolerant predicate above kills
  // (or never sees) padded tuples, so the padding join degrades to a
  // stricter operator; then the transformation is re-dispatched.
  for (Candidate c : candidates) {
    Plan* mm = m_on_left ? p->left() : p->right();
    switch (c) {
      case Candidate::kAssocFwd:
        // (e1 m e2) p e3, pp references e2. Padded e2-NULL rows of m are
        // filtered by an inner/semi parent.
        if (pp_nullintol && pp_refs.Intersects(l2) &&
            (op_p == JoinOp::kInner || op_p == JoinOp::kLeftSemi)) {
          if (op_m == JoinOp::kLeftOuter) {
            mm->set_op(JoinOp::kInner);
            RecordSimplifyDEdge(ctx, pm, pp);
            return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
          }
          if (op_m == JoinOp::kFullOuter) {
            mm->set_op(JoinOp::kRightOuter);  // keep only e2's padding
            RecordSimplifyDEdge(ctx, pm, pp);
            return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
          }
        }
        break;
      case Candidate::kLAsscom:
        // (e1 m e2) p e3, pp references e1. Padded e1-NULL rows (full
        // outerjoin only) are filtered by an inner/semi parent.
        if (pp_nullintol && pp_refs.Intersects(l1) &&
            (op_p == JoinOp::kInner || op_p == JoinOp::kLeftSemi) &&
            op_m == JoinOp::kFullOuter) {
          mm->set_op(JoinOp::kLeftOuter);
          RecordSimplifyDEdge(ctx, pm, pp);
          return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
        }
        break;
      case Candidate::kAssocRev:
        // e1 p (e2 m e3), pp references e2. The inner operand's e2-NULL
        // padded rows never reach the output (p outputs only e1 plus
        // matches, or filters them) unless p is a full outerjoin.
        if (pp_nullintol && pp_refs.Intersects(l2) &&
            op_p != JoinOp::kFullOuter && op_m == JoinOp::kFullOuter) {
          mm->set_op(JoinOp::kLeftOuter);
          RecordSimplifyDEdge(ctx, pm, pp);
          return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
        }
        break;
      case Candidate::kRAsscom:
        // e1 p (e2 m e3), pp references e3: e3-NULL padded rows of m are
        // invisible below any non-full p.
        if (pp_nullintol && pp_refs.Intersects(l3) &&
            op_p != JoinOp::kFullOuter) {
          if (op_m == JoinOp::kLeftOuter) {
            mm->set_op(JoinOp::kInner);
            RecordSimplifyDEdge(ctx, pm, pp);
            return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
          }
          if (op_m == JoinOp::kFullOuter) {
            mm->set_op(JoinOp::kRightOuter);  // keep e3's padding only
            MirrorNode(mm);                   // normalize: preserved side left
            RecordSimplifyDEdge(ctx, pm, pp);
            return SwapAdjacentRec(std::move(sub), m_on_left, ctx, depth + 1);
          }
        }
        break;
    }
  }

  // 3. Generalized-outerjoin compensation for the two invalid core cases
  // with a left outerjoin parent and inner-join child on the right. The
  // lambda compensation relies on padded rows never matching pm, so pm
  // must be null-intolerant.
  if (!m_on_left && op_p == JoinOp::kLeftOuter && op_m == JoinOp::kInner &&
      pm != nullptr && pm->null_intolerant()) {
    for (Candidate c : candidates) {
      if (c == Candidate::kAssocRev || c == Candidate::kRAsscom) {
        return BuildGeneralizedOuterjoin(std::move(sub), c, ctx);
      }
    }
  }

  // 4. Anti/semijoin expansion (Equation 9 and the best-match semijoin
  // form), after which the pair is retried with outerjoin/inner operators.
  // The parent expands first: compensations of a later child expansion can
  // always be pulled through the parent's outerjoin form, but not through a
  // semi/antijoin probe side. This is what CBA lacks (gamma/gamma*), hence
  // its limited reorderability for antijoin queries (Section 2.2).
  if (policy != SwapPolicy::kECA) return nullptr;
  if (OutputsOneSide(op_p)) {
    sub = IsAnti(op_p) ? ExpandAntiJoinNode(std::move(sub), ctx)
                       : ExpandSemiJoinNode(std::move(sub), ctx);
    std::vector<CompOp> above;
    PlanPtr inner = StripTopComps(std::move(sub), &above);
    PlanPtr swapped =
        SwapAdjacentRec(std::move(inner), m_on_left, ctx, depth + 1);
    if (swapped == nullptr) return nullptr;
    return WrapComps(above, std::move(swapped));
  }
  if (OutputsOneSide(op_m)) {
    PlanPtr& ms = m_on_left ? p->mutable_left() : p->mutable_right();
    ms = IsAnti(op_m) ? ExpandAntiJoinNode(std::move(ms), ctx)
                      : ExpandSemiJoinNode(std::move(ms), ctx);
    // Pull the expansion's compensation operators above p.
    std::vector<CompOp> above;
    while ((m_on_left ? p->left() : p->right())->is_comp()) {
      if (!PullCompAboveJoin(&sub, m_on_left, ctx)) return nullptr;
      sub = StripTopComps(std::move(sub), &above);
      p = sub.get();
    }
    PlanPtr swapped = SwapAdjacentRec(std::move(sub), m_on_left, ctx,
                                      depth + 1);
    if (swapped == nullptr) return nullptr;
    return WrapComps(above, std::move(swapped));
  }

  return nullptr;
}

}  // namespace

PlanPtr SwapAdjacentJoins(PlanPtr p_subtree, bool m_on_left,
                          RewriteContext* ctx) {
  return SwapAdjacentRec(std::move(p_subtree), m_on_left, ctx, 0);
}

Plan* SwapUp(PlanPtr& root, Plan* m, RewriteContext* ctx,
             bool* tree_changed) {
  ECA_CHECK(m != nullptr && m->is_join());
  Plan* j = ParentJoin(root.get(), m);
  if (j == nullptr) return nullptr;
  if (IsRightVariant(j->op())) {
    MirrorNode(j);
    if (tree_changed != nullptr) *tree_changed = true;
  }
  bool m_side_left = FindSlot(j->mutable_left(), m) != nullptr ||
                     j->left() == m;

  // Pull every compensation operator between j and m above j. These pulls
  // are equivalence-preserving, so the tree stays valid even if the final
  // swap turns out to be infeasible. If a pull is blocked by j's
  // semi/antijoin semantics (e.g. beta cannot cross an antijoin's output,
  // gamma cannot cross a probe side), j itself is expanded via Equation 9
  // into its outerjoin form, which every compensation can cross.
  while (true) {
    Plan* child = m_side_left ? j->left() : j->right();
    if (child == m) break;
    ECA_CHECK(child->is_comp());
    PlanPtr* jslot = FindSlot(root, j);
    ECA_CHECK(jslot != nullptr);
    if (!PullCompAboveJoin(jslot, m_side_left, ctx)) {
      if (PolicyOf(ctx) != SwapPolicy::kECA || !OutputsOneSide(j->op())) {
        return nullptr;
      }
      PlanPtr expanded = IsAnti(j->op())
                             ? ExpandAntiJoinNode(std::move(*jslot), ctx)
                             : ExpandSemiJoinNode(std::move(*jslot), ctx);
      *jslot = std::move(expanded);
      if (tree_changed != nullptr) *tree_changed = true;
      // The join node under the new comp stack carries j's predicate.
      Plan* cur = jslot->get();
      while (cur->is_comp()) cur = cur->child();
      j = cur;
      if (!PullCompAboveJoin(FindSlot(root, j), m_side_left, ctx)) {
        return nullptr;
      }
    }
    // j is unchanged as a node; the pulled comp now sits above it.
    if (tree_changed != nullptr) *tree_changed = true;
  }

  // Attempt the adjacent swap on a clone so that failure leaves the plan
  // untouched; roll back any speculative d-edges on failure.
  PlanPtr* jslot = FindSlot(root, j);
  ECA_CHECK(jslot != nullptr);
  size_t dedge_mark = ctx != nullptr ? ctx->dedges.size() : 0;
  int vnode_mark = ctx != nullptr ? ctx->next_vnode : 0;
  PlanPtr attempt = (*jslot)->Clone();
  PlanPtr swapped = SwapAdjacentJoins(std::move(attempt), m_side_left, ctx);
  if (swapped == nullptr) {
    if (ctx != nullptr) {
      ctx->dedges.resize(dedge_mark);
      ctx->next_vnode = vnode_mark;
    }
    return nullptr;
  }
  *jslot = std::move(swapped);
  if (tree_changed != nullptr) *tree_changed = true;
  // The risen join is the first join below the comp stack at *jslot.
  Plan* cur = jslot->get();
  while (cur->is_comp()) cur = cur->child();
  ECA_CHECK(cur->is_join());
  return cur;
}

}  // namespace eca
