#ifndef ECA_REWRITE_PAPER_RULES_H_
#define ECA_REWRITE_PAPER_RULES_H_

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace eca {

// ---------------------------------------------------------------------------
// The paper's named rewrite rules, in their explicit closed forms.
//
// The swap machinery (rules_swap.cc) derives these compositionally; this
// module states them directly — Table 3's join reordering rules and the
// CBA rules of Section 2.2 — so each can be exhibited, tested and benched
// one-for-one against the paper. A rule is a pair of plan builders over
// leaf relations R0, R1, R2 with predicates p01 (R0-R1), p12 (R1-R2) and,
// for the r-asscom rules, p02 (R0-R2).
// ---------------------------------------------------------------------------

struct PaperRule {
  int number;              // the paper's rule number
  std::string transform;   // e.g. "assoc(laj, join)"
  std::string description;
  // Builds the two sides over fresh leaves; preds labeled p01/p12/p02.
  PlanPtr (*lhs)(PredRef pa, PredRef pb);
  PlanPtr (*rhs)(PredRef pa, PredRef pb);
  // Which relation pairs pa/pb connect: {a0,a1,b0,b1}.
  int endpoints[4];
};

// Rules 14-20 (the paper's new compensated reorderings, Table 3) and
// 21-25 (the CBA-style lambda/beta reorderings the approach inherits).
// The exact algebra is reconstructed from the paper's Appendix A proofs
// (Rule 3, Rule 18) and the Equation 9 / Table 2 derivations; every form is
// machine-verified in table3_rules_test.cc and bench_table3_rules.
const std::vector<PaperRule>& PaperTable3Rules();

// Table 2: the 13 rules for interchanging gamma / gamma* with the
// conventional join operators (reconstruction; rule 3 is the one proved in
// the paper's Appendix A). The builders take pa = the predicate of the
// outerjoin that the gamma's attribute set originates from (R0-R1) and
// pb = the interchanged join's predicate (endpoints per rule).
const std::vector<PaperRule>& PaperTable2Rules();

// ---------------------------------------------------------------------------
// CBA canonical-form rules (Section 2.2, Equations 1-2)
// ---------------------------------------------------------------------------

// The outer variant of the cartesian product (CBA's x-circle): preserves all
// tuples of non-empty operands. Implemented as a full outerjoin with a TRUE
// predicate.
PlanPtr OuterCross(PlanPtr left, PlanPtr right);

// Equation 1: R0 join[p] R1 = beta(lambda[p, {R0,R1}](R0 xo R1)).
PlanPtr CbaInnerJoinCanonical(PredRef p, PlanPtr left, PlanPtr right);

// Equation 2: R0 loj[p] R1 = beta(lambda[p, {R1}](R0 xo R1)).
PlanPtr CbaLeftOuterJoinCanonical(PredRef p, PlanPtr left, PlanPtr right);

// The full CBA canonical form of Section 2.2 for a query over
// {join, loj, roj, cross}:
//     beta(lambda[p_n,A_n](... lambda[p_1,A_1](R_1 xo ... xo R_n)))
// with the nullification operators ordered bottom-up (a join's lambda sits
// above the lambdas of its operands, so predicates over already-nullified
// attributes fail and cascade the nullification — the mechanism CBA's
// reordering relies on). Returns nullptr if the query contains operators
// outside CBA's scope (semi/antijoins, full outerjoins).
PlanPtr CbaCanonicalForm(const Plan& query);

// ---------------------------------------------------------------------------
// Table 4: swapping adjacent lambda operators (Rules 26-27)
// ---------------------------------------------------------------------------

// Rewrites lambda[p1,M](lambda[p2,N](X)) so that the p2-lambda is outermost:
//   Rule 26 (p1 does not reference N):
//       = lambda[p2,N](lambda[p1,M](X))
//   Rule 27 (p1 references N; requires p2 not referencing M):
//       = lambda[p2, N+M](lambda[p1,M](X))
// `chain` must be a lambda whose child is a lambda. Returns nullptr when
// neither side condition holds.
PlanPtr SwapLambdaPair(PlanPtr chain);

}  // namespace eca

#endif  // ECA_REWRITE_PAPER_RULES_H_
