#include "rewrite/paper_rules.h"

namespace eca {

namespace {

// Shorthands for the closed forms over leaves R0, R1, R2.
RelSet R(int i) { return RelSet::Single(i); }
RelSet R01() { return RelSet::FirstN(2); }
RelSet R12() { return R(1).Union(R(2)); }

PlanPtr L0() { return Plan::Leaf(0); }
PlanPtr L1() { return Plan::Leaf(1); }
PlanPtr L2() { return Plan::Leaf(2); }

PlanPtr Loj(PredRef p, PlanPtr l, PlanPtr r) {
  return Plan::Join(JoinOp::kLeftOuter, std::move(p), std::move(l),
                    std::move(r));
}
PlanPtr Inner(PredRef p, PlanPtr l, PlanPtr r) {
  return Plan::Join(JoinOp::kInner, std::move(p), std::move(l),
                    std::move(r));
}
PlanPtr Laj(PredRef p, PlanPtr l, PlanPtr r) {
  return Plan::Join(JoinOp::kLeftAnti, std::move(p), std::move(l),
                    std::move(r));
}
PlanPtr Pi(RelSet s, PlanPtr c) {
  return Plan::Comp(CompOp::Project(s), std::move(c));
}
PlanPtr Gam(RelSet s, PlanPtr c) {
  return Plan::Comp(CompOp::Gamma(s), std::move(c));
}
PlanPtr GamStar(RelSet a, RelSet keep, PlanPtr c) {
  return Plan::Comp(CompOp::GammaStar(a, keep), std::move(c));
}
PlanPtr BetaLambda(PredRef p, RelSet a, PlanPtr c) {
  return Plan::Comp(CompOp::Beta(),
                    Plan::Comp(CompOp::Lambda(std::move(p), a),
                               std::move(c)));
}

// (R0 loj[pa] R1) loj[pb] R2 — the shared spine of most right-hand sides.
PlanPtr Spine(PredRef pa, PredRef pb) {
  return Loj(std::move(pb), Loj(std::move(pa), L0(), L1()), L2());
}
// (R0 loj[pa] R2) loj[pb] R1 — the r-asscom spine.
PlanPtr SpineR(PredRef pa, PredRef pb) {
  return Loj(std::move(pb), Loj(std::move(pa), L0(), L2()), L1());
}

const std::vector<PaperRule>& Rules() {
  static const std::vector<PaperRule>* rules = new std::vector<PaperRule>{
      {14, "assoc(laj, join)",
       "R0 laj (R1 join R2) = pi{R0}(gamma{R1,R2}(beta(lambda[pb]("
       "(R0 loj R1) loj R2))))",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pa), L0(),
                    Inner(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R(0), Gam(R12(), BetaLambda(pb, R12(), Spine(pa, pb))));
       },
       {0, 1, 1, 2}},

      {15, "assoc(laj, laj)",
       "R0 laj (R1 laj R2) = pi{R0}(gamma{R1}(pi{R0,R1}(gamma*{R2(R0)}("
       "(R0 loj R1) loj R2))))",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pa), L0(), Laj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R(0), Gam(R(1), Pi(R01(), GamStar(R(2), R(0),
                                                     Spine(pa, pb)))));
       },
       {0, 1, 1, 2}},

      {16, "assoc(laj, loj)",
       "R0 laj (R1 loj R2) = pi{R0}(gamma{R1,R2}((R0 loj R1) loj R2))",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pa), L0(), Loj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R(0), Gam(R12(), Spine(pa, pb)));
       },
       {0, 1, 1, 2}},

      {17, "assoc(loj, laj) forward",
       "(R0 loj R1) laj R2 = pi{R0,R1}(gamma{R2}(R0 loj (R1 loj R2)))",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pb), Loj(std::move(pa), L0(), L1()), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R01(),
                   Gam(R(2), Loj(pa, L0(), Loj(pb, L1(), L2()))));
       },
       {0, 1, 1, 2}},

      {18, "assoc(loj, laj) reverse (Appendix A)",
       "R0 loj (R1 laj R2) = pi{R0,R1}(gamma*{R2(R0)}((R0 loj R1) loj R2))",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pa), L0(), Laj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R01(), GamStar(R(2), R(0), Spine(pa, pb)));
       },
       {0, 1, 1, 2}},

      {19, "r-asscom(laj, join)",
       "R0 laj (R1 join R2) = pi{R0}(gamma{R1,R2}(beta(lambda[pb]("
       "(R0 loj R2) loj R1)))) [pa joins R0-R2]",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pa), L0(), Inner(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R(0), Gam(R12(), BetaLambda(pb, R12(), SpineR(pa, pb))));
       },
       {0, 2, 1, 2}},

      {20, "r-asscom(laj, loj)",
       "R0 laj (R1 loj R2) = pi{R0}(gamma{R1,R2}(beta(lambda[pb]("
       "(R0 loj R2) loj R1)))) [pa joins R0-R2]",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pa), L0(), Loj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Pi(R(0), Gam(R12(), BetaLambda(pb, R12(), SpineR(pa, pb))));
       },
       {0, 2, 1, 2}},

      {21, "assoc(loj, join) reverse [CBA]",
       "R0 loj (R1 join R2) = beta(lambda[pb]((R0 loj R1) loj R2))",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pa), L0(), Inner(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return BetaLambda(pb, R12(), Spine(pa, pb));
       },
       {0, 1, 1, 2}},

      {22, "assoc(loj, join) forward [simplification]",
       "(R0 loj R1) join R2 = R0 join (R1 join R2) [pb null-intolerant on R1]",
       [](PredRef pa, PredRef pb) {
         return Inner(std::move(pb), Loj(std::move(pa), L0(), L1()), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Inner(pa, L0(), Inner(pb, L1(), L2()));
       },
       {0, 1, 1, 2}},

      {23, "r-asscom(loj, join) [CBA]",
       "R0 loj (R1 join R2) = beta(lambda[pb]((R0 loj R2) loj R1)) "
       "[pa joins R0-R2]",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pa), L0(), Inner(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return BetaLambda(pb, R12(), SpineR(pa, pb));
       },
       {0, 2, 1, 2}},

      {24, "r-asscom(join, loj) [simplification]",
       "R0 join (R1 loj R2) = R1 join (R0 join R2) [pa joins R0-R2]",
       [](PredRef pa, PredRef pb) {
         return Inner(std::move(pa), L0(), Loj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return Inner(pb, L1(), Inner(pa, L0(), L2()));
       },
       {0, 2, 1, 2}},

      {25, "r-asscom(loj, loj) [CBA]",
       "R0 loj (R1 loj R2) = beta(lambda[pb]((R0 loj R2) loj R1)) "
       "[pa joins R0-R2]",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pa), L0(), Loj(std::move(pb), L1(), L2()));
       },
       [](PredRef pa, PredRef pb) {
         return BetaLambda(pb, R12(), SpineR(pa, pb));
       },
       {0, 2, 1, 2}},
  };
  return *rules;
}

// Table 2 reconstruction: gamma / gamma* interchange with joins. The gamma
// operand X = (R0 loj[pa] R1) supplies the provenance for the attribute set
// A = {R1}; Y = R2 is the other join operand with predicate pb.
PlanPtr GammaChild(PredRef pa) {
  return Gam(R(1), Loj(std::move(pa), L0(), L1()));
}
PlanPtr GammaStarChild(PredRef pa) {
  return GamStar(R(1), R(0), Loj(std::move(pa), L0(), L1()));
}
PlanPtr LojBase(PredRef pa) { return Loj(std::move(pa), L0(), L1()); }

const std::vector<PaperRule>& Table2() {
  static const std::vector<PaperRule>* rules = new std::vector<PaperRule>{
      {1, "gamma x inner (left)",
       "gamma{R1}(X) join[pb] R2 = gamma{R1}(X join[pb] R2), pb !ref R1",
       [](PredRef pa, PredRef pb) {
         return Inner(std::move(pb), GammaChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Inner(std::move(pb), LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {2, "gamma x inner (right)",
       "R2 join[pb] gamma{R1}(X) = gamma{R1}(R2 join[pb] X), pb !ref R1",
       [](PredRef pa, PredRef pb) {
         return Inner(std::move(pb), L2(), GammaChild(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Inner(std::move(pb), L2(), LojBase(std::move(pa))));
       },
       {0, 1, 0, 2}},
      {3, "gamma below outerjoin null side (Appendix A)",
       "R2 loj[pb] gamma{R1}(X) = gamma*{R1(R2)}(R2 loj[pb] X)",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pb), L2(), GammaChild(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return GamStar(R(1), R(2),
                        Loj(std::move(pb), L2(), LojBase(std::move(pa))));
       },
       {0, 1, 0, 2}},
      {4, "gamma x left outerjoin (preserved side)",
       "gamma{R1}(X) loj[pb] R2 = gamma{R1}(X loj[pb] R2), pb !ref R1",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pb), GammaChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Loj(std::move(pb), LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {5, "gamma x left antijoin (output side)",
       "gamma{R1}(X) laj[pb] R2 = gamma{R1}(X laj[pb] R2), pb !ref R1",
       [](PredRef pa, PredRef pb) {
         return Laj(std::move(pb), GammaChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Laj(std::move(pb), LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {6, "gamma x left semijoin (output side)",
       "gamma{R1}(X) lsj[pb] R2 = gamma{R1}(X lsj[pb] R2), pb !ref R1",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftSemi, std::move(pb),
                           GammaChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1),
                    Plan::Join(JoinOp::kLeftSemi, std::move(pb),
                               LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {7, "gamma x full outerjoin",
       "gamma{R1}(X) foj[pb] R2 = gamma*{R1(R2)}(X foj[pb] R2)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kFullOuter, std::move(pb),
                           GammaChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return GamStar(R(1), R(2),
                        Plan::Join(JoinOp::kFullOuter, std::move(pb),
                                   LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {8, "gamma* x inner",
       "gamma*{R1(R0)}(X) join[pb] R2 = gamma*{R1(R0,R2)}(X join[pb] R2), "
       "pb refs subset of keep",
       [](PredRef pa, PredRef pb) {
         return Inner(std::move(pb), GammaStarChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return GamStar(R(1), R(0).Union(R(2)),
                        Inner(std::move(pb), LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {9, "gamma* x left outerjoin (preserved side)",
       "gamma*{R1(R0)}(X) loj[pb] R2 = gamma*{R1(R0,R2)}(X loj[pb] R2)",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pb), GammaStarChild(std::move(pa)), L2());
       },
       [](PredRef pa, PredRef pb) {
         return GamStar(R(1), R(0).Union(R(2)),
                        Loj(std::move(pb), LojBase(std::move(pa)), L2()));
       },
       {0, 1, 0, 2}},
      {10, "gamma* below outerjoin null side",
       "R2 loj[pb] gamma*{R1(R0)}(X) = gamma*{R1(R0,R2)}(R2 loj[pb] X)",
       [](PredRef pa, PredRef pb) {
         return Loj(std::move(pb), L2(), GammaStarChild(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return GamStar(R(1), R(0).Union(R(2)),
                        Loj(std::move(pb), L2(), LojBase(std::move(pa))));
       },
       {0, 1, 0, 2}},
      {11, "adjacent gammas commute",
       "gamma{R1}(gamma{R2}(X)) = gamma{R2}(gamma{R1}(X))",
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Gam(R(2),
                              Loj(std::move(pb),
                                  Loj(std::move(pa), L0(), L1()), L2())));
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(2), Gam(R(1),
                              Loj(std::move(pb),
                                  Loj(std::move(pa), L0(), L1()), L2())));
       },
       {0, 1, 0, 2}},
      {12, "gamma x projection (Equation 10 family)",
       "pi{R0,R1}(gamma{R1}(X joined with R2)) = "
       "gamma{R1}(pi{R0,R1}(X joined with R2))",
       [](PredRef pa, PredRef pb) {
         return Pi(R01(), Gam(R(1), Loj(std::move(pb),
                                        Loj(std::move(pa), L0(), L1()),
                                        L2())));
       },
       [](PredRef pa, PredRef pb) {
         return Gam(R(1), Pi(R01(), Loj(std::move(pb),
                                        Loj(std::move(pa), L0(), L1()),
                                        L2())));
       },
       {0, 1, 0, 2}},
      {13, "Equation 9 (antijoin via gamma)",
       "R0 laj[pa] R1 = pi{R0}(gamma{R1}(R0 loj[pa] R1))",
       [](PredRef pa, PredRef) { return Laj(std::move(pa), L0(), L1()); },
       [](PredRef pa, PredRef) {
         return Pi(R(0), Gam(R(1), Loj(std::move(pa), L0(), L1())));
       },
       {0, 1, 0, 2}},
  };
  return *rules;
}

}  // namespace

const std::vector<PaperRule>& PaperTable3Rules() { return Rules(); }

const std::vector<PaperRule>& PaperTable2Rules() { return Table2(); }

PlanPtr OuterCross(PlanPtr left, PlanPtr right) {
  PredRef truth = Predicate::WithLabel(Predicate::ConstBool(true), "true");
  return Plan::Join(JoinOp::kFullOuter, std::move(truth), std::move(left),
                    std::move(right));
}

PlanPtr CbaInnerJoinCanonical(PredRef p, PlanPtr left, PlanPtr right) {
  RelSet both = left->output_rels().Union(right->output_rels());
  PlanPtr cross = OuterCross(std::move(left), std::move(right));
  return Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(CompOp::Lambda(std::move(p), both), std::move(cross)));
}

PlanPtr CbaLeftOuterJoinCanonical(PredRef p, PlanPtr left, PlanPtr right) {
  RelSet null_side = right->output_rels();
  PlanPtr cross = OuterCross(std::move(left), std::move(right));
  return Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(CompOp::Lambda(std::move(p), null_side), std::move(cross)));
}

namespace {

// Recursive canonicalization: returns the cross-product tree and pushes
// the nullification operators (innermost first) onto `lambdas`.
PlanPtr CanonicalRec(const Plan& node, std::vector<CompOp>* lambdas) {
  switch (node.kind()) {
    case Plan::Kind::kLeaf:
      return Plan::Leaf(node.rel_id());
    case Plan::Kind::kComp:
      return nullptr;  // canonicalization applies to plain join queries
    case Plan::Kind::kJoin:
      break;
  }
  PlanPtr left = CanonicalRec(*node.left(), lambdas);
  if (left == nullptr) return nullptr;
  PlanPtr right = CanonicalRec(*node.right(), lambdas);
  if (right == nullptr) return nullptr;
  RelSet lrels = node.left()->output_rels();
  RelSet rrels = node.right()->output_rels();
  switch (node.op()) {
    case JoinOp::kCross:
      break;  // no nullification
    case JoinOp::kInner:
      lambdas->push_back(
          CompOp::Lambda(node.pred(), lrels.Union(rrels)));
      break;
    case JoinOp::kLeftOuter:
      lambdas->push_back(CompOp::Lambda(node.pred(), rrels));
      break;
    case JoinOp::kRightOuter:
      lambdas->push_back(CompOp::Lambda(node.pred(), lrels));
      break;
    default:
      return nullptr;  // semi/anti/full outside CBA's scope
  }
  return OuterCross(std::move(left), std::move(right));
}

}  // namespace

PlanPtr CbaCanonicalForm(const Plan& query) {
  std::vector<CompOp> lambdas;
  PlanPtr cross = CanonicalRec(query, &lambdas);
  if (cross == nullptr) return nullptr;
  PlanPtr plan = std::move(cross);
  for (CompOp& l : lambdas) {
    plan = Plan::Comp(std::move(l), std::move(plan));
  }
  return Plan::Comp(CompOp::Beta(), std::move(plan));
}

PlanPtr SwapLambdaPair(PlanPtr chain) {
  ECA_CHECK(chain->is_comp() &&
            chain->comp().kind == CompOp::Kind::kLambda);
  ECA_CHECK(chain->child()->is_comp() &&
            chain->child()->comp().kind == CompOp::Kind::kLambda);
  CompOp outer = chain->comp();                    // lambda[p1, M]
  CompOp inner = chain->child()->comp();           // lambda[p2, N]
  PlanPtr body = std::move(chain->mutable_child()->mutable_child());

  const bool p1_refs_n = outer.pred->refs().Intersects(inner.attrs);
  const bool p2_refs_m = inner.pred->refs().Intersects(outer.attrs);
  if (!p1_refs_n) {
    // Rule 26: independent lambdas commute (p2 must also not see M, or the
    // swap would change p2's inputs).
    if (p2_refs_m) return nullptr;
    return Plan::Comp(inner, Plan::Comp(outer, std::move(body)));
  }
  // Rule 27: p1 references N. After the swap, the p2-lambda must nullify M
  // as well: tuples failing p2 had N nulled first, which forced p1 to fail
  // and null M — the widened outer lambda reproduces that.
  if (p2_refs_m) return nullptr;
  CompOp widened = CompOp::Lambda(inner.pred, inner.attrs.Union(outer.attrs));
  widened.vnode = inner.vnode;
  return Plan::Comp(widened, Plan::Comp(outer, std::move(body)));
}

}  // namespace eca
