#ifndef ECA_REWRITE_PROPERTY_PROBE_H_
#define ECA_REWRITE_PROPERTY_PROBE_H_

#include <cstdint>
#include <string>

#include "rewrite/transform.h"

namespace eca {

// Result of an empirical validity classification for one transformation.
struct ProbeResult {
  Validity validity = Validity::kNotApplicable;
  int trials_run = 0;
  // Seed of the first counterexample when validity == kInvalid; lets a
  // failure be reproduced exactly.
  uint64_t counterexample_seed = 0;
  std::string counterexample_detail;  // plans + diff for the counterexample
};

// Classifies transform (t, a, b) by executing LHS and RHS patterns over
// randomized databases (varied sizes, NULL rates, skew, empty relations).
// A single mismatch proves kInvalid; survival of all trials reports kValid.
// This is the machinery that regenerates the paper's Table 1 and guards the
// hardcoded TableOneValidity used by the enumerators.
ProbeResult ClassifyTransform(TransformType t, JoinOp a, JoinOp b,
                              int trials = 300, uint64_t seed0 = 0,
                              bool tolerant_preds = false);

// Renders the full 6x6 matrix for a transform type (rows = op a,
// cols = op b) using the empirical classifier; used by bench_table1_matrix.
std::string RenderEmpiricalMatrix(TransformType t, int trials = 300,
                                  bool tolerant_preds = false);

}  // namespace eca

#endif  // ECA_REWRITE_PROPERTY_PROBE_H_
