#ifndef ECA_ENUMERATE_ENUMERATOR_H_
#define ECA_ENUMERATE_ENUMERATOR_H_

#include <cstdint>
#include <memory>

#include "algebra/plan.h"
#include "cost/cost_model.h"
#include "rewrite/rules.h"

namespace eca {

class SharedMemo;

// Hard resource limits for one Optimize() call. Enumeration cost grows
// explosively with query size, so a production deployment caps the search
// and accepts the best plan found so far (or, when nothing complete was
// found, the query as written). A field <= 0 means unlimited.
struct EnumeratorBudget {
  // Cap on GenerateSubplan invocations (the enumerated search-tree nodes).
  int64_t max_enumerated_nodes = 0;
  // Cap on memo entries; when reached, the search continues but stops
  // caching new subplans (bounds memory, costs reuse opportunities).
  int64_t max_memo_entries = 0;
  // Wall-clock deadline for the whole enumeration.
  int64_t wall_clock_ms = 0;

  bool Unlimited() const {
    return max_enumerated_nodes <= 0 && max_memo_entries <= 0 &&
           wall_clock_ms <= 0;
  }
};

// What cut the search short (EnumeratorStats::trigger).
enum class BudgetTrigger {
  kNone = 0,
  kEnumeratedNodes,  // EnumeratorBudget::max_enumerated_nodes reached
  kMemoEntries,      // memo capped: search completed without full reuse
  kWallClock,        // deadline passed
  kInjectedFault,    // FaultPoint::kEnumeratorBudget fired
  kAllocationFault,  // FaultPoint::kAllocation fired (clone denied)
  kRewriteFault,     // FaultPoint::kRewriteRule fired (swap denied)
  kSizesOnlyFallback,  // DP enumeration skipped entirely: the admission
                       // deadline left less than the configured planning
                       // budget, so the plan is a table-sizes-only greedy
                       // order (Optimizer::Options::sizes_only_fallback_ms)
};

const char* BudgetTriggerName(BudgetTrigger trigger);

// Configuration for the top-down plan enumerator (Section 5).
struct EnumeratorOptions {
  // Which rewrite arsenal Swap may use — the paper's ECA, or the TBA / CBA
  // baselines it compares against.
  SwapPolicy policy = SwapPolicy::kECA;
  // Enhanced mode (Algorithms 4-6, Appendix C): cache and reuse optimal
  // subplans keyed by relation set + external d-edge signature. When false,
  // runs the basic mode of Algorithms 1-3.
  bool reuse_subplans = true;
  // ABLATION ONLY (Example 5.1): reuse cached subplans on the relation set
  // alone, ignoring the external d-edge signature — the unsound shortcut
  // the paper's dependency tracking exists to prevent. Used by
  // bench_ablation_dedges and the corresponding test to demonstrate that
  // naive reuse produces plans that are NOT equivalent to the query.
  bool unsafe_ignore_dedges = false;
  // Branch-and-bound: prune a decomposition as soon as the already-fixed
  // part of the subtree costs at least the best complete alternative. Never
  // changes the selected plan (the cost model is additive, so a partial
  // cost is a lower bound; see docs/performance.md for the exactness
  // argument). Off = the plain exhaustive loop, kept for A/B checks.
  bool prune = true;
  // Memoize subtree costs by structural fingerprint (PlanFingerprint), so
  // the repeated costings of identical subtrees during the pair loop and
  // branch-and-bound checks hit a hash map instead of the cost model.
  bool cost_memo = true;
  // Worker threads for the top-level joinable-pair loop. The chosen plan is
  // byte-identical for every value (each root pair is searched as an
  // isolated task; results merge deterministically).
  int num_threads = 1;
  // Cycle guard: maximum SwapUp chain length while positioning one join.
  // Exceeding it abandons the decomposition and increments
  // EnumeratorStats::swap_chain_guard_trips.
  int max_swap_chain = 128;
  // Spin up the worker pool for the follower pairs only when the
  // sequential leader prefix took at least this long — queries that finish
  // in a millisecond cannot amortize thread creation. The chosen plan is
  // identical either way (scheduling never affects plan bytes); <= 0
  // always fans out when num_threads > 1 (used by stress tests to force
  // real concurrency).
  int64_t pool_spinup_us = 1500;
  // TESTING ONLY: degrade every memo signature to a single value so that
  // distinct ext-d-edge key vectors collide in one bucket — exercises the
  // stored-full-key verification that keeps 64-bit collisions sound.
  bool collide_signatures = false;
  // Cross-query plan cache (enumerate/shared_memo.h). When set, proven
  // subplans are published into / probed from this table, so a repeated
  // structurally-identical query under the same stats epoch reuses them
  // instead of re-enumerating. When null, Optimize uses a private
  // per-query table (the tasks of one query still share it). The caller
  // owns the memo and must keep it alive across the call; Optimize pins
  // it for the duration of the enumeration. Ignored (forced private
  // semantics) under unsafe_ignore_dedges.
  SharedMemo* shared_memo = nullptr;
  // Resource limits; default unlimited (exhaustive enumeration).
  EnumeratorBudget budget;
};

struct EnumeratorStats {
  int64_t subplan_calls = 0;
  int64_t pairs_considered = 0;
  int64_t swaps_attempted = 0;
  int64_t swaps_failed = 0;
  int64_t plans_completed = 0;  // complete plans costed at the top level
  int64_t reuses = 0;
  int64_t cache_entries = 0;
  // Decompositions abandoned by branch-and-bound (fixed part already
  // costed at least the best complete alternative).
  int64_t prunes = 0;
  // Full cost-model evaluations vs. subtree-fingerprint memo hits; their
  // sum is what the seed enumerator paid on every SubtreeCost call.
  int64_t cost_evals = 0;
  int64_t cost_memo_hits = 0;
  // Plan nodes deep-copied by the search (snapshot/restore/graft clones).
  // Together with cost_evals this is the "work" measure the perf bench
  // tracks (BENCH_enum.json).
  int64_t cloned_nodes = 0;
  // SwapUp chains abandoned by the cycle guard (options.max_swap_chain).
  int64_t swap_chain_guard_trips = 0;
  // Memo probes whose 64-bit signature matched but whose stored full key
  // did not — rejected grafts that a signature-only memo would have
  // performed unsoundly.
  int64_t sig_collisions = 0;
  // Root-level joinable pairs searched as (potentially parallel) tasks.
  int64_t root_tasks = 0;
  // Phase timing breakdown (bench_enumerator_perf): the sequential leader
  // pass over root pair 0, and the barrier-free follower pass over the
  // remaining pairs. Wall-clock microseconds, informational only.
  int64_t phase_leader_us = 0;
  int64_t phase_followers_us = 0;
  // True when the search was cut short (budget or injected fault): the
  // returned plan is correct but possibly not the enumeration optimum.
  bool degraded = false;
  // True when the cut-short search never completed a single plan and fell
  // back to the query as written. The Optimizer reroutes this case through
  // the sizes-only ordering (kSizesOnlyFallback) rather than executing the
  // unoptimized query.
  bool no_complete_plan = false;
  BudgetTrigger trigger = BudgetTrigger::kNone;
};

// Top-down plan enumeration with compensation operators (Algorithms 1-6).
//
// Starting from the initial plan P_init (the query as written), every
// feasible decomposition of the relation set is explored; joins are
// repositioned with SwapUp, which generates compensation operators for
// invalid transformations. The optimal subplan for each relation set is
// selected by estimated cost; in enhanced mode optimal subplans are reused
// across contexts when their external dependency edges match (Theorem 5.4).
//
// The search is clone-light (per-decomposition state is snapshot/restored
// in place of whole-plan deep copies), memoized ((relation set, 64-bit
// ext-d-edge signature) -> optimal subtree, with the full key stored for
// collision verification), branch-and-bound pruned, and parallel across
// root-level joinable pairs — all while selecting the same plan the plain
// exhaustive loop selects (docs/performance.md, bench_enumerator_perf).
class TopDownEnumerator {
 public:
  TopDownEnumerator(const CostModel* cost_model, EnumeratorOptions options)
      : cost_(cost_model), options_(options) {}

  struct Result {
    // Never null: on budget exhaustion with no complete plan, falls back
    // to the query as written (stats.degraded tells the two apart).
    PlanPtr plan;
    double cost = 0;
    EnumeratorStats stats;
  };

  // Wraps the search in an "enumerate" trace span and publishes the run's
  // EnumeratorStats as enum.* counter deltas in MetricsRegistry::Global()
  // (docs/observability.md), so a registry diff around one call matches
  // Result::stats exactly.
  Result Optimize(const Plan& query);

 private:
  Result OptimizeImpl(const Plan& query);

  const CostModel* cost_;
  EnumeratorOptions options_;
};

}  // namespace eca

#endif  // ECA_ENUMERATE_ENUMERATOR_H_
