#ifndef ECA_ENUMERATE_ENUMERATOR_H_
#define ECA_ENUMERATE_ENUMERATOR_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "cost/cost_model.h"
#include "enumerate/subtree.h"
#include "rewrite/rules.h"

namespace eca {

// Hard resource limits for one Optimize() call. Enumeration cost grows
// explosively with query size, so a production deployment caps the search
// and accepts the best plan found so far (or, when nothing complete was
// found, the query as written). A field <= 0 means unlimited.
struct EnumeratorBudget {
  // Cap on GenerateSubplan invocations (the enumerated search-tree nodes).
  int64_t max_enumerated_nodes = 0;
  // Cap on memo entries; when reached, the search continues but stops
  // caching new subplans (bounds memory, costs reuse opportunities).
  int64_t max_memo_entries = 0;
  // Wall-clock deadline for the whole enumeration.
  int64_t wall_clock_ms = 0;

  bool Unlimited() const {
    return max_enumerated_nodes <= 0 && max_memo_entries <= 0 &&
           wall_clock_ms <= 0;
  }
};

// What cut the search short (EnumeratorStats::trigger).
enum class BudgetTrigger {
  kNone = 0,
  kEnumeratedNodes,  // EnumeratorBudget::max_enumerated_nodes reached
  kMemoEntries,      // memo capped: search completed without full reuse
  kWallClock,        // deadline passed
  kInjectedFault,    // FaultPoint::kEnumeratorBudget fired
  kAllocationFault,  // FaultPoint::kAllocation fired (clone denied)
  kRewriteFault,     // FaultPoint::kRewriteRule fired (swap denied)
};

const char* BudgetTriggerName(BudgetTrigger trigger);

// Configuration for the top-down plan enumerator (Section 5).
struct EnumeratorOptions {
  // Which rewrite arsenal Swap may use — the paper's ECA, or the TBA / CBA
  // baselines it compares against.
  SwapPolicy policy = SwapPolicy::kECA;
  // Enhanced mode (Algorithms 4-6, Appendix C): cache and reuse optimal
  // subplans keyed by relation set + external d-edge signature. When false,
  // runs the basic mode of Algorithms 1-3.
  bool reuse_subplans = true;
  // ABLATION ONLY (Example 5.1): reuse cached subplans on the relation set
  // alone, ignoring the external d-edge signature — the unsound shortcut
  // the paper's dependency tracking exists to prevent. Used by
  // bench_ablation_dedges and the corresponding test to demonstrate that
  // naive reuse produces plans that are NOT equivalent to the query.
  bool unsafe_ignore_dedges = false;
  // Resource limits; default unlimited (exhaustive enumeration).
  EnumeratorBudget budget;
};

struct EnumeratorStats {
  int64_t subplan_calls = 0;
  int64_t pairs_considered = 0;
  int64_t swaps_attempted = 0;
  int64_t swaps_failed = 0;
  int64_t plans_completed = 0;  // complete plans costed at the top level
  int64_t reuses = 0;
  int64_t cache_entries = 0;
  // True when the search was cut short (budget or injected fault): the
  // returned plan is correct but possibly not the enumeration optimum.
  bool degraded = false;
  BudgetTrigger trigger = BudgetTrigger::kNone;
};

// Top-down plan enumeration with compensation operators (Algorithms 1-6).
//
// Starting from the initial plan P_init (the query as written), every
// feasible decomposition of the relation set is explored; joins are
// repositioned with SwapUp, which generates compensation operators for
// invalid transformations. The optimal subplan for each relation set is
// selected by estimated cost; in enhanced mode optimal subplans are reused
// across contexts when their external dependency edges match (Theorem 5.4).
class TopDownEnumerator {
 public:
  TopDownEnumerator(const CostModel* cost_model, EnumeratorOptions options)
      : cost_(cost_model), options_(options) {}

  struct Result {
    // Never null: on budget exhaustion with no complete plan, falls back
    // to the query as written (stats.degraded tells the two apart).
    PlanPtr plan;
    double cost = 0;
    EnumeratorStats stats;
  };

  Result Optimize(const Plan& query);

 private:
  struct APlan {
    PlanPtr root;
    RewriteContext ctx;

    APlan Clone() const {
      APlan c;
      c.root = root != nullptr ? root->Clone() : nullptr;
      c.ctx = ctx;
      return c;
    }
  };

  // Algorithm 2 / Algorithm 4. `i_path` locates the join node below which
  // the subplan for S must be produced (nullopt = S spans the whole query).
  // Returns the plan containing the best subplan found, or an empty APlan
  // if no arrangement is feasible.
  APlan GenerateSubplan(APlan p, const std::optional<NodePath>& i_path,
                        RelSet s);

  double SubtreeCost(const APlan& p, RelSet s) const;

  // Enhanced mode: external d-edge signature of subtree(P, S).
  std::vector<std::string> ExtDEdgeKeys(const APlan& p, RelSet s) const;
  // Algorithm 6: a cached plan whose subplan for S is reusable in `p`.
  const APlan* GetBestPlan(const APlan& p, RelSet s,
                           const std::vector<std::string>& ext_keys) const;
  void UpdateBestPlan(const APlan& p, RelSet s,
                      const std::vector<std::string>& ext_keys);
  // Replaces subtree(P, S) in `p` by a copy of subtree(best, S), remapping
  // compensation-group ids and dependency edges.
  void GraftSubplan(APlan* p, RelSet s, const APlan& best) const;

  // Budget enforcement: records `trigger` as the degradation cause; a
  // hard trigger additionally stops the search (Exhausted() turns true).
  void Trip(BudgetTrigger trigger, bool hard);
  // True once the search must stop — budget spent, deadline passed, or a
  // budget/allocation fault injected. Rechecks the budget on every call.
  bool Exhausted();

  const CostModel* cost_;
  EnumeratorOptions options_;
  EnumeratorStats stats_;
  bool stop_ = false;  // hard budget trigger seen; unwind the search
  int64_t deadline_ms_ = 0;  // absolute steady-clock deadline (0 = none)

  struct CacheEntry {
    APlan plan;
    double cost = 0;
    std::vector<std::string> ext_keys;
  };
  std::unordered_map<RelSet, std::vector<CacheEntry>, RelSetHash> cache_;
};

}  // namespace eca

#endif  // ECA_ENUMERATE_ENUMERATOR_H_
