#ifndef ECA_ENUMERATE_GREEDY_H_
#define ECA_ENUMERATE_GREEDY_H_

#include <cstdint>
#include <vector>

#include "algebra/plan.h"
#include "cost/cost_model.h"
#include "enumerate/realize.h"

namespace eca {

// The ordering builders behind the sizes-only and greedy plan policies
// (docs/planner-policies.md). Both return a left-deep OrderingNode tree
// over the query's relations — the Optimizer realizes it with the
// approach's compensation arsenal via RealizeOrdering — and nullptr for
// queries with fewer than two relations.

// Simpli-Squared (arXiv:2111.00163): a left-deep order from base-table
// row counts alone — start with the smallest table, then repeatedly
// attach the smallest table connected to the joined set by some join
// predicate (falling back to the smallest remaining table when the
// predicate graph leaves no connected choice). No cardinality estimates
// anywhere; `table_rows` is indexed by rel id and ties break on the
// lower id, so the ordering is deterministic.
OrderingNodePtr SizesOnlyOrdering(const Plan& query,
                                  const std::vector<int64_t>& table_rows);

// Cardinality-based greedy reorder (after ByConity's
// CardinalityBasedJoinReorder): start with the relation of smallest
// estimated cardinality, then repeatedly attach the connected relation
// minimizing the estimated cardinality of the joined result — current
// estimate x base cardinality x the selectivity of every predicate
// conjunct that becomes evaluable with the new relation. Unconnected
// relations are only attached once no connected choice remains. One
// O(n^2) pass over the join graph instead of DP's exponential search;
// the Optimizer gates it behind Options::max_join_size.
OrderingNodePtr GreedyCardinalityOrdering(const Plan& query,
                                          const CostModel& cost);

}  // namespace eca

#endif  // ECA_ENUMERATE_GREEDY_H_
