#include "enumerate/join_order.h"

#include <algorithm>

namespace eca {

namespace {

struct KeyedOrdering {
  std::string key;
  int min_rel;
};

// All orderings over `s` using the predicates in `preds` whose references
// fall within s. Each internal node hosts exactly one predicate (the
// paper's trees have one internal node per predicate).
std::vector<KeyedOrdering> Orderings(RelSet s,
                                     const std::vector<RelSet>& preds) {
  std::vector<KeyedOrdering> out;
  if (s.Count() == 1) {
    out.push_back({"R" + std::to_string(s.SingleId()), s.SingleId()});
    return out;
  }
  const uint64_t sbits = s.bits();
  const uint64_t low = sbits & (~sbits + 1);
  for (uint64_t m = (sbits - 1) & sbits; m != 0; m = (m - 1) & sbits) {
    if (!(m & low)) continue;  // canonical unordered split
    RelSet s1(m), s2(sbits ^ m);
    // Exactly one in-scope predicate must cross the split, and every other
    // in-scope predicate must fall entirely within one side.
    int crossing = 0;
    bool feasible = true;
    for (const RelSet& p : preds) {
      if (!s.ContainsAll(p)) continue;  // handled above this subtree
      if (p.Intersects(s1) && p.Intersects(s2)) {
        ++crossing;
      } else if (!s1.ContainsAll(p) && !s2.ContainsAll(p)) {
        feasible = false;
        break;
      }
    }
    if (!feasible || crossing != 1) continue;
    std::vector<KeyedOrdering> left = Orderings(s1, preds);
    std::vector<KeyedOrdering> right = Orderings(s2, preds);
    for (const KeyedOrdering& l : left) {
      for (const KeyedOrdering& r : right) {
        if (l.min_rel <= r.min_rel) {
          out.push_back({"(" + l.key + "," + r.key + ")",
                         std::min(l.min_rel, r.min_rel)});
        } else {
          out.push_back({"(" + r.key + "," + l.key + ")",
                         std::min(l.min_rel, r.min_rel)});
        }
      }
    }
  }
  return out;
}

}  // namespace

std::set<std::string> AllJoinOrderings(
    RelSet rels, const std::vector<RelSet>& pred_refs) {
  std::set<std::string> out;
  for (const KeyedOrdering& k : Orderings(rels, pred_refs)) {
    out.insert(k.key);
  }
  return out;
}

int64_t CountJoinOrderings(RelSet rels,
                           const std::vector<RelSet>& pred_refs) {
  return static_cast<int64_t>(AllJoinOrderings(rels, pred_refs).size());
}

std::vector<RelSet> PredicateRefSets(const Plan& plan) {
  std::vector<RelSet> out;
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(&plan), &joins);
  for (const Plan* j : joins) {
    if (j->pred() != nullptr) out.push_back(j->pred()->refs());
  }
  return out;
}

}  // namespace eca
