#include "enumerate/acyclic.h"

#include <algorithm>
#include <map>
#include <utility>

#include "algebra/join_op.h"
#include "common/str_util.h"

namespace eca {

namespace {

void SplitConjuncts(const PredRef& pred, std::vector<RelSet>* refs,
                    std::vector<PredRef>* preds) {
  if (pred == nullptr) return;
  if (pred->kind() == Predicate::Kind::kAnd) {
    for (const PredRef& child : pred->children()) {
      SplitConjuncts(child, refs, preds);
    }
    return;
  }
  refs->push_back(pred->refs());
  if (preds != nullptr) preds->push_back(pred);
}

void CollectConjuncts(const Plan& plan, std::vector<RelSet>* refs,
                      std::vector<PredRef>* preds) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      SplitConjuncts(plan.pred(), refs, preds);
      CollectConjuncts(*plan.left(), refs, preds);
      CollectConjuncts(*plan.right(), refs, preds);
      return;
    case Plan::Kind::kComp:
      CollectConjuncts(*plan.child(), refs, preds);
      return;
  }
}

}  // namespace

std::vector<RelSet> ConjunctRefSets(const Plan& plan) {
  return ConjunctRefSets(plan, nullptr);
}

std::vector<RelSet> ConjunctRefSets(const Plan& plan,
                                    std::vector<PredRef>* preds) {
  std::vector<RelSet> refs;
  CollectConjuncts(plan, &refs, preds);
  return refs;
}

bool GyoAcyclic(RelSet rels, const std::vector<RelSet>& edges) {
  std::vector<RelSet> live;
  for (RelSet e : edges) {
    if (!e.Empty()) live.push_back(e);
  }
  bool changed = true;
  while (changed && !live.empty()) {
    changed = false;
    // (a) Remove vertices that occur in at most one remaining edge.
    for (int v : rels) {
      int occurrences = 0;
      for (RelSet e : live) {
        if (e.Contains(v)) ++occurrences;
        if (occurrences > 1) break;
      }
      if (occurrences == 1) {
        for (RelSet& e : live) {
          if (e.Contains(v)) {
            e = e.Minus(RelSet::Single(v));
            changed = true;
          }
        }
      }
    }
    // (b) Remove edges that became empty or a subset of another edge
    // (one survivor of an equal pair stays to absorb the rest).
    std::vector<RelSet> kept;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].Empty()) {
        changed = true;
        continue;
      }
      bool subsumed = false;
      for (size_t j = 0; j < live.size(); ++j) {
        if (i == j) continue;
        bool subset = live[j].ContainsAll(live[i]);
        bool equal = subset && live[i].ContainsAll(live[j]);
        // Subset of a different edge, or equal to an earlier one.
        if ((subset && !equal) || (equal && j < i)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) {
        changed = true;
      } else {
        kept.push_back(live[i]);
      }
    }
    live.swap(kept);
  }
  return live.empty();
}

bool BuildSemijoinTree(const Plan& query,
                       const std::vector<int64_t>& table_rows,
                       SemijoinTree* out, std::string* why) {
  auto reject = [why](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };

  RelSet rels = query.leaves();
  if (rels.Count() < 2) return reject("fewer than two relations");

  // Inner joins only: semijoin reduction commutes with inner joins but
  // not with preserved/antijoined sides.
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(&query), &joins);
  for (const Plan* j : joins) {
    if (j->op() != JoinOp::kInner) {
      return reject(std::string("non-inner join (") + JoinOpName(j->op()) +
                    ")");
    }
    if (j->pred() == nullptr) return reject("join without a predicate");
  }

  std::vector<PredRef> preds;
  std::vector<RelSet> refs = ConjunctRefSets(query, &preds);

  // Binary conjuncts only, merged per relation pair.
  std::map<std::pair<int, int>, std::vector<PredRef>> by_pair;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].Count() != 2) {
      return reject("conjunct " + preds[i]->DisplayName() + " references " +
                    refs[i].ToString() + ", not exactly two relations");
    }
    int lo = refs[i].Min();
    int hi = refs[i].Minus(RelSet::Single(lo)).Min();
    by_pair[{lo, hi}].push_back(preds[i]);
  }

  if (!GyoAcyclic(rels, refs)) return reject("cyclic join graph");

  // Root at the largest base table: the reducers then shrink every probe
  // side before the biggest relation is joined at all.
  auto rows_of = [&table_rows](int id) -> int64_t {
    return id >= 0 && id < static_cast<int>(table_rows.size())
               ? table_rows[static_cast<size_t>(id)]
               : 0;
  };
  int root = -1;
  for (int id : rels) {
    if (root < 0 || rows_of(id) > rows_of(root)) root = id;
  }

  // BFS from the root over the pair graph; acyclic + connected means
  // every relation is reached exactly once.
  SemijoinTree tree;
  tree.root = root;
  tree.rels = rels;
  RelSet reached = RelSet::Single(root);
  std::vector<int> frontier = {root};
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int parent : frontier) {
      for (const auto& [pair, pair_preds] : by_pair) {
        int other = -1;
        if (pair.first == parent) other = pair.second;
        if (pair.second == parent) other = pair.first;
        if (other < 0 || reached.Contains(other)) continue;
        SemijoinTree::Edge edge;
        edge.parent = parent;
        edge.child = other;
        edge.pred = pair_preds.size() == 1
                        ? pair_preds[0]
                        : Predicate::And(pair_preds);
        tree.edges.push_back(std::move(edge));
        reached = reached.With(other);
        next.push_back(other);
      }
    }
    frontier.swap(next);
  }
  if (!reached.ContainsAll(rels)) {
    return reject("disconnected join graph (reached " + reached.ToString() +
                  " of " + rels.ToString() + ")");
  }
  if (out != nullptr) *out = std::move(tree);
  return true;
}

}  // namespace eca
