#include "enumerate/shared_memo.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"

namespace eca {

namespace {

// memo.* metric catalog (docs/performance.md). Registered once; the hot
// probe path never touches these directly — tasks accumulate locally and
// fold in via AccumulateProbeStats.
struct MemoCounters {
  Counter* probes;
  Counter* hits;
  Counter* sig_collisions;
  Counter* cost_probes;
  Counter* cost_hits;
  Counter* publishes;
  Counter* duplicate_publishes;
  Counter* full_rejects;
  Counter* mem_rejects;
  Counter* epoch_advances;
  Counter* epoch_invalidations;
  Counter* lru_evictions;
  Counter* sweeps;
};

const MemoCounters& Counters() {
  static const MemoCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    return MemoCounters{reg.counter("memo.probes"),
                        reg.counter("memo.hits"),
                        reg.counter("memo.sig_collisions"),
                        reg.counter("memo.cost_probes"),
                        reg.counter("memo.cost_hits"),
                        reg.counter("memo.publishes"),
                        reg.counter("memo.duplicate_publishes"),
                        reg.counter("memo.full_rejects"),
                        reg.counter("memo.mem_rejects"),
                        reg.counter("memo.epoch_advances"),
                        reg.counter("memo.epoch_invalidations"),
                        reg.counter("memo.lru_evictions"),
                        reg.counter("memo.sweeps")};
  }();
  return counters;
}

// Full-key equality of two payloads (the map key is just a hash; this is
// what makes a reuse decision sound).
bool SameFullKey(const MemoPayload& x, const MemoPayload& y) {
  return x.query_fp == y.query_fp && x.s == y.s && x.policy == y.policy &&
         x.epoch == y.epoch && x.ext_keys == y.ext_keys;
}

bool ProbeMatches(const MemoProbe& probe, const MemoPayload& p) {
  if (p.epoch != probe.epoch || p.policy != probe.policy ||
      p.query_fp != probe.query_fp || !(p.s == probe.s)) {
    return false;
  }
  return probe.ignore_ext || p.ext_keys == *probe.ext_keys;
}

}  // namespace

SharedMemo::SharedMemo(const Config& config)
    : table_(config.slot_count),
      cost_table_(config.cost_slot_count),
      max_bytes_(config.max_bytes) {
  if (config.parent != nullptr) {
    // Accounting-only child: the service's admission ledger reserves the
    // cache headroom; a hard limit here would fail publishes with a
    // Status nobody can act on (rejection is already the safe response).
    tracker_ = std::make_unique<MemoryTracker>(/*soft_bytes=*/0,
                                               /*hard_bytes=*/0,
                                               config.parent);
  }
  Counters();  // eager registration: first scrape shows the whole set
}

SharedMemo::~SharedMemo() { Clear(); }

void SharedMemo::AdvanceEpoch() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  Counters().epoch_advances->Increment();
}

const MemoPayload* SharedMemo::Find(const MemoProbe& probe, uint64_t gen,
                                    MemoProbeStats* stats) {
  stats->probes++;
  MemoNode* best_node = nullptr;
  const MemoPayload* best = nullptr;
  MemoNode* oldest_s = nullptr;  // ablation: first-stored s-match
  for (MemoNode* n = table_.Find(probe.map_key); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    // Determinism-critical visibility: earlier completed generations and
    // this generation's leader only. A task's own entries live in its
    // task-local map, so sibling-task timing can never change what a
    // probe observes (see the class comment).
    if (!(n->gen < gen || (n->gen == gen && n->leader))) continue;
    const MemoPayload& p = *n->payload;
    if (!ProbeMatches(probe, p)) {
      // Same map key, different full key: hash collision (forced by the
      // collide_signatures test knob; astronomically rare otherwise).
      if (p.s == probe.s && p.epoch == probe.epoch &&
          p.policy == probe.policy && p.query_fp == probe.query_fp) {
        stats->sig_collisions++;
      }
      continue;
    }
    if (probe.ignore_ext) {
      oldest_s = n;  // chain is newest-first; the last match is oldest
      continue;
    }
    // `<=` walking newest-to-oldest leaves the OLDEST minimum as winner,
    // reproducing the sequential first-stored-wins tie order.
    if (best == nullptr || p.cost <= best->cost) {
      best = &p;
      best_node = n;
    }
  }
  if (probe.ignore_ext && oldest_s != nullptr) {
    // Emulate the sequential ablation exactly: the first-stored s-match
    // wins, updated in place whenever a cheaper entry with its exact key
    // was stored later.
    for (MemoNode* n = table_.Find(probe.map_key); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      if (!(n->gen < gen || (n->gen == gen && n->leader))) continue;
      const MemoPayload& p = *n->payload;
      if (!SameFullKey(p, *oldest_s->payload)) continue;
      if (best == nullptr || p.cost <= best->cost) {
        best = &p;
        best_node = n;
      }
    }
  }
  if (best != nullptr) {
    stats->hits++;
    best_node->last_used.store(gen, std::memory_order_relaxed);
  }
  return best;
}

MemoPublishResult SharedMemo::Publish(
    uint64_t map_key, std::shared_ptr<const MemoPayload> payload,
    uint64_t gen, bool leader) {
  const MemoPayload& pl = *payload;
  if (max_bytes_ > 0 &&
      used_bytes_.load(std::memory_order_relaxed) + pl.bytes > max_bytes_) {
    Counters().mem_rejects->Increment();
    return MemoPublishResult::kRejectedMemory;
  }
  std::atomic<MemoNode*>* head = table_.ClaimHead(map_key);
  if (head == nullptr) {
    Counters().full_rejects->Increment();
    return MemoPublishResult::kRejectedFull;
  }
  MemoNode* node = nullptr;
  MemoNode* h = head->load(std::memory_order_acquire);
  for (;;) {
    // Dedup against the newest entry with the same full key, whatever
    // its generation: equal-or-cheaper means this publish adds nothing.
    bool improved = false;
    bool skip = false;
    for (MemoNode* n = h; n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      if (!SameFullKey(*n->payload, pl)) continue;
      if (n->payload->cost <= pl.cost) {
        skip = true;
      } else {
        improved = true;
      }
      break;
    }
    if (skip) {
      if (node != nullptr) {
        if (tracker_ != nullptr) tracker_->Release(pl.bytes);
        delete node;
      }
      Counters().duplicate_publishes->Increment();
      return MemoPublishResult::kSkippedDuplicate;
    }
    if (node == nullptr) {
      if (tracker_ != nullptr) {
        Status reserved = tracker_->Reserve(pl.bytes, "plan-cache entry");
        if (!reserved.ok()) {
          Counters().mem_rejects->Increment();
          return MemoPublishResult::kRejectedMemory;
        }
      }
      node = new MemoNode;
      node->gen = gen;
      node->leader = leader;
      node->last_used.store(gen, std::memory_order_relaxed);
      node->payload = std::move(payload);
    }
    node->next.store(h, std::memory_order_relaxed);
    if (head->compare_exchange_weak(h, node, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      used_bytes_.fetch_add(pl.bytes, std::memory_order_relaxed);
      entry_count_.fetch_add(1, std::memory_order_relaxed);
      Counters().publishes->Increment();
      return improved ? MemoPublishResult::kStoredImproved
                      : MemoPublishResult::kStoredNew;
    }
    // Lost the prepend race; `h` now holds the new head. Re-walk: the
    // winner may have published our key.
  }
}

std::vector<MemoExportEntry> SharedMemo::ExportEntries(uint64_t min_gen) {
  std::vector<MemoExportEntry> out;
  const uint64_t live_epoch = epoch();
  gate_.LockExclusive();
  struct Chain {
    uint64_t key;
    std::vector<MemoExportEntry> entries;  // oldest first
  };
  std::vector<Chain> chains;
  table_.ForEachChainExclusive([&](uint64_t key, MemoNode* chain_head) {
    Chain chain;
    chain.key = key;
    for (MemoNode* n = chain_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->gen < min_gen) continue;
      if (n->payload->epoch != live_epoch) continue;  // dead on load anyway
      chain.entries.push_back(MemoExportEntry{key, n->gen, n->payload});
    }
    if (chain.entries.empty()) return;
    // Chains store newest first; persist oldest first so a reload that
    // re-publishes in file order reproduces the probe tie order.
    std::reverse(chain.entries.begin(), chain.entries.end());
    chains.push_back(std::move(chain));
  });
  gate_.UnlockExclusive();
  std::sort(chains.begin(), chains.end(),
            [](const Chain& x, const Chain& y) { return x.key < y.key; });
  for (Chain& chain : chains) {
    for (MemoExportEntry& e : chain.entries) out.push_back(std::move(e));
  }
  return out;
}

MemoPublishResult SharedMemo::Import(
    uint64_t map_key, std::shared_ptr<const MemoPayload> payload) {
  Pin();
  MemoPublishResult result =
      Publish(map_key, std::move(payload), /*gen=*/0, /*leader=*/false);
  Unpin();
  return result;
}

void SharedMemo::AccumulateProbeStats(const MemoProbeStats& stats) {
  const MemoCounters& c = Counters();
  c.probes->Add(stats.probes);
  c.hits->Add(stats.hits);
  c.sig_collisions->Add(stats.sig_collisions);
  c.cost_probes->Add(stats.cost_probes);
  c.cost_hits->Add(stats.cost_hits);
}

void SharedMemo::ReleaseNode(MemoNode* node) {
  if (tracker_ != nullptr) tracker_->Release(node->payload->bytes);
  used_bytes_.fetch_sub(node->payload->bytes, std::memory_order_relaxed);
  entry_count_.fetch_sub(1, std::memory_order_relaxed);
  delete node;
}

template <typename Keep>
void SharedMemo::RebuildLocked(Keep&& keep) {
  struct Chain {
    uint64_t key;
    std::vector<MemoNode*> nodes;  // newest first, as stored
  };
  std::vector<Chain> chains;
  table_.ForEachChainExclusive([&](uint64_t key, MemoNode* chain_head) {
    Chain chain;
    chain.key = key;
    for (MemoNode* n = chain_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      chain.nodes.push_back(n);
    }
    chains.push_back(std::move(chain));
  });
  table_.ResetExclusive();
  for (Chain& chain : chains) {
    // Rebuild oldest-to-newest so relative chain depth — the probe tie
    // order — survives the sweep.
    MemoNode* rebuilt_head = nullptr;
    for (size_t i = chain.nodes.size(); i-- > 0;) {
      MemoNode* n = chain.nodes[i];
      if (!keep(n)) {
        ReleaseNode(n);
        continue;
      }
      n->next.store(rebuilt_head, std::memory_order_relaxed);
      rebuilt_head = n;
    }
    if (rebuilt_head == nullptr) continue;
    std::atomic<MemoNode*>* head = table_.ClaimHead(chain.key);
    // A fresh same-size table always re-admits the old key set.
    ECA_DCHECK(head != nullptr);
    head->store(rebuilt_head, std::memory_order_relaxed);
  }
  // Stale cost entries are keyed by dead epochs; recomputing the few
  // evicted live ones is cheaper than tracking them individually.
  cost_table_.ResetExclusive();
}

void SharedMemo::Sweep() {
  gate_.LockExclusive();
  SweepLocked();
  gate_.UnlockExclusive();
}

bool SharedMemo::TrySweep() {
  if (!gate_.TryLockExclusive()) return false;
  SweepLocked();
  gate_.UnlockExclusive();
  return true;
}

void SharedMemo::SweepLocked() {
  const MemoCounters& c = Counters();
  const uint64_t live_epoch = epoch();
  int64_t stale = 0;
  RebuildLocked([&](MemoNode* n) {
    if (n->payload->epoch != live_epoch) {
      ++stale;
      return false;
    }
    return true;
  });
  c.epoch_invalidations->Add(stale);
  if (max_bytes_ > 0 &&
      used_bytes_.load(std::memory_order_relaxed) > max_bytes_) {
    // LRU by generation stamp: evict the oldest-touched entries until the
    // budget holds again. Ties break on (gen, cost) so the pass is
    // deterministic for a given cache state.
    std::vector<MemoNode*> nodes;
    table_.ForEachChainExclusive([&](uint64_t, MemoNode* chain_head) {
      for (MemoNode* n = chain_head; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        nodes.push_back(n);
      }
    });
    std::stable_sort(nodes.begin(), nodes.end(),
                     [](const MemoNode* x, const MemoNode* y) {
                       uint64_t lx = x->last_used.load(std::memory_order_relaxed);
                       uint64_t ly = y->last_used.load(std::memory_order_relaxed);
                       if (lx != ly) return lx < ly;
                       if (x->gen != y->gen) return x->gen < y->gen;
                       return x->payload->cost < y->payload->cost;
                     });
    int64_t to_free =
        used_bytes_.load(std::memory_order_relaxed) - max_bytes_;
    std::vector<const MemoNode*> evict;
    for (MemoNode* n : nodes) {
      if (to_free <= 0) break;
      to_free -= n->payload->bytes;
      evict.push_back(n);
    }
    c.lru_evictions->Add(static_cast<int64_t>(evict.size()));
    RebuildLocked([&](MemoNode* n) {
      return std::find(evict.begin(), evict.end(), n) == evict.end();
    });
  }
  c.sweeps->Increment();
}

void SharedMemo::Clear() {
  gate_.LockExclusive();
  RebuildLocked([](MemoNode*) { return false; });
  gate_.UnlockExclusive();
}

}  // namespace eca
