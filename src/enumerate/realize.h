#ifndef ECA_ENUMERATE_REALIZE_H_
#define ECA_ENUMERATE_REALIZE_H_

#include <memory>
#include <vector>

#include "algebra/plan.h"
#include "common/rel_set.h"
#include "rewrite/rules.h"

namespace eca {

// A join ordering theta from JoinOrder(Q) (Section 3): an unordered binary
// tree over the query's relations. Children are stored with the smaller
// minimum relation id on the left (canonical orientation).
struct OrderingNode;
using OrderingNodePtr = std::shared_ptr<const OrderingNode>;

struct OrderingNode {
  RelSet rels;
  OrderingNodePtr left, right;  // null for leaves

  bool is_leaf() const { return left == nullptr; }
  // Canonical key, identical to OrderingKey() on plans.
  std::string Key() const;
};

// All ordering trees of JoinOrder(Q) for a query with relations `rels` and
// join predicates referencing `pred_refs`.
std::vector<OrderingNodePtr> AllJoinOrderingTrees(
    RelSet rels, const std::vector<RelSet>& pred_refs);

// Section 3, theta-reorderability: attempts to rewrite `query` into an
// equivalent plan whose operands are combined following `theta`, using the
// swap machinery under the given policy. Returns the realized plan (with
// whatever compensation operators the rewriting required) or nullptr when
// the ordering is not reachable under that policy.
PlanPtr RealizeOrdering(const Plan& query, const OrderingNode& theta,
                        SwapPolicy policy);

}  // namespace eca

#endif  // ECA_ENUMERATE_REALIZE_H_
