#include "enumerate/exhaustive.h"

#include <limits>

#include "enumerate/join_order.h"

namespace eca {

ExhaustiveResult ExhaustiveEnumerate(const Plan& query,
                                     const CostModel& cost_model,
                                     SwapPolicy policy) {
  ExhaustiveResult result;
  result.cost = std::numeric_limits<double>::infinity();
  auto thetas =
      AllJoinOrderingTrees(query.leaves(), PredicateRefSets(query));
  result.orderings_total = static_cast<int64_t>(thetas.size());
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr plan = RealizeOrdering(query, *theta, policy);
    if (plan == nullptr) continue;
    ++result.orderings_realized;
    double cost = cost_model.Cost(*plan);
    if (cost < result.cost) {
      result.cost = cost;
      result.plan = std::move(plan);
    }
  }
  if (result.plan == nullptr) {
    // At minimum the original ordering must be realizable.
    result.plan = query.Clone();
    result.cost = cost_model.Cost(*result.plan);
  }
  return result;
}

}  // namespace eca
