#include "enumerate/subtree.h"

namespace eca {

namespace {

bool PathToImpl(const Plan* cur, const Plan* node, NodePath* out) {
  if (cur == node) return true;
  switch (cur->kind()) {
    case Plan::Kind::kLeaf:
      return false;
    case Plan::Kind::kJoin:
      out->push_back(0);
      if (PathToImpl(cur->left(), node, out)) return true;
      out->back() = 1;
      if (PathToImpl(cur->right(), node, out)) return true;
      out->pop_back();
      return false;
    case Plan::Kind::kComp:
      out->push_back(0);
      if (PathToImpl(cur->child(), node, out)) return true;
      out->pop_back();
      return false;
  }
  return false;
}

}  // namespace

bool PathTo(const Plan* root, const Plan* node, NodePath* out) {
  out->clear();
  return PathToImpl(root, node, out);
}

Plan* ResolvePath(Plan* root, const NodePath& path) {
  Plan* cur = root;
  for (int step : path) {
    switch (cur->kind()) {
      case Plan::Kind::kLeaf:
        return nullptr;
      case Plan::Kind::kJoin:
        cur = step == 0 ? cur->left() : cur->right();
        break;
      case Plan::Kind::kComp:
        if (step != 0) return nullptr;
        cur = cur->child();
        break;
    }
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

Plan* SubtreeOf(Plan* root, RelSet s) {
  // Descend to the lowest node covering S.
  Plan* cur = root;
  while (true) {
    switch (cur->kind()) {
      case Plan::Kind::kLeaf:
        return cur;
      case Plan::Kind::kJoin: {
        if (cur->left()->leaves().ContainsAll(s)) {
          cur = cur->left();
          continue;
        }
        if (cur->right()->leaves().ContainsAll(s)) {
          cur = cur->right();
          continue;
        }
        // cur is the lowest join covering S; extend upward over the comp
        // chain directly above it (part of the subplan per Section 5.1).
        Plan* top = cur;
        while (true) {
          Plan* parent = ParentNode(root, top);
          if (parent == nullptr || !parent->is_comp()) break;
          top = parent;
        }
        return top;
      }
      case Plan::Kind::kComp:
        if (cur->child()->leaves().ContainsAll(s)) {
          // Only descend past a comp if a *lower* node still covers S —
          // which it always does (comp is unary); but we must not descend
          // below the lowest cover's comp chain. Descend; the upward
          // extension above re-adds the chain.
          cur = cur->child();
          continue;
        }
        return cur;
    }
  }
}

const Plan* SubtreeOf(const Plan* root, RelSet s) {
  return SubtreeOf(const_cast<Plan*>(root), s);
}

std::vector<JoinablePair> JoinablePairs(Plan* root, RelSet s) {
  std::vector<JoinablePair> out;
  if (s.Count() < 2) return out;
  std::vector<Plan*> joins;
  CollectJoins(root, &joins);
  // Enumerate unordered splits; keep the smallest relation in s1.
  const uint64_t sbits = s.bits();
  const uint64_t low = sbits & (~sbits + 1);
  for (uint64_t m = (sbits - 1) & sbits; m != 0;
       m = (m - 1) & sbits) {
    if (!(m & low)) continue;  // canonical orientation
    RelSet s1(m), s2(sbits ^ m);
    if (s2.Empty()) continue;
    Plan* unique_node = nullptr;
    int count = 0;
    for (Plan* j : joins) {
      RelSet refs = j->pred() ? j->pred()->refs() : RelSet();
      // Only predicates contained in S can be the node for this
      // decomposition; a crossing predicate that also references relations
      // outside S sits above the S-subtree and does not interfere.
      if (!s.ContainsAll(refs)) continue;
      if (refs.Intersects(s1) && refs.Intersects(s2)) {
        ++count;
        unique_node = j;
        if (count > 1) break;
      }
    }
    if (count == 1) {
      out.push_back({s1, s2, unique_node});
    }
  }
  return out;
}

namespace {

std::string OrderingKeyImpl(const Plan& plan, int* min_rel) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      *min_rel = plan.rel_id();
      return "R" + std::to_string(plan.rel_id());
    case Plan::Kind::kJoin: {
      int lmin = 0, rmin = 0;
      std::string l = OrderingKeyImpl(*plan.left(), &lmin);
      std::string r = OrderingKeyImpl(*plan.right(), &rmin);
      *min_rel = std::min(lmin, rmin);
      if (lmin <= rmin) return "(" + l + "," + r + ")";
      return "(" + r + "," + l + ")";
    }
    case Plan::Kind::kComp:
      return OrderingKeyImpl(*plan.child(), min_rel);
  }
  return "?";
}

}  // namespace

std::string OrderingKey(const Plan& plan) {
  int min_rel = 0;
  return OrderingKeyImpl(plan, &min_rel);
}

}  // namespace eca
