#ifndef ECA_ENUMERATE_SEMIJOIN_H_
#define ECA_ENUMERATE_SEMIJOIN_H_

#include "algebra/plan.h"
#include "enumerate/acyclic.h"

namespace eca {

// The Yannakakis pass for an acyclic query (arXiv:2601.00098): from the
// rooted join tree of BuildSemijoinTree, build
//
//   Red(v) = Leaf(v) ⋉_pred Red(c1) ⋉_pred ... ⋉_pred Red(ck)
//   J(v)   = Red(v) ⋈_pred J(c1) ⋈_pred ... ⋈_pred J(ck)
//
// over v's children c1..ck (ordered by relation id): every relation is
// first semijoin-reduced against its reduced children, then the reduced
// relations are inner-joined along the same tree. Each join input has
// already discarded every row that cannot contribute to the final result,
// so no intermediate exceeds the output size — the classic guarantee for
// acyclic queries. The reducers reference each relation a second time
// inside semijoin pruning sides, which plan validation only accepts in
// relaxed mode (ValidateOptions::allow_hidden_duplicates).
PlanPtr BuildYannakakisPlan(const SemijoinTree& tree);

}  // namespace eca

#endif  // ECA_ENUMERATE_SEMIJOIN_H_
