#ifndef ECA_ENUMERATE_EXHAUSTIVE_H_
#define ECA_ENUMERATE_EXHAUSTIVE_H_

#include "algebra/plan.h"
#include "cost/cost_model.h"
#include "enumerate/realize.h"

namespace eca {

// The CBA-style exhaustive baseline of Section 5.4: "their algorithm simply
// enumerates all possible join plans without any pruning or reusing of
// query subplans". This enumerator realizes every ordering in JoinOrder(Q)
// independently, costs each complete plan, and keeps the cheapest — no
// best-subplan caching, no cost-based pruning, every ordering paid in full.
// bench_enumeration contrasts it with the paper's top-down algorithms.
struct ExhaustiveResult {
  PlanPtr plan;                     // cheapest realized complete plan
  double cost = 0;
  int64_t orderings_total = 0;      // |JoinOrder(Q)|
  int64_t orderings_realized = 0;   // how many the policy could reach
};

ExhaustiveResult ExhaustiveEnumerate(const Plan& query,
                                     const CostModel& cost_model,
                                     SwapPolicy policy = SwapPolicy::kECA);

}  // namespace eca

#endif  // ECA_ENUMERATE_EXHAUSTIVE_H_
