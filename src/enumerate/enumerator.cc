#include "enumerate/enumerator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "enumerate/subtree.h"
#include "rewrite/oj_simplify.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int64_t SteadyNowMs() {
  int64_t real = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  // Routed through the fault clock so deadline behavior (mid-search and
  // between waves) is testable deterministically (testing/fault_injection).
  return FaultClock::NowMs(real);
}

uint64_t FpMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 1099511628211ULL;
}

int64_t CountNodes(const Plan* node) {
  if (node == nullptr) return 0;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return 1;
    case Plan::Kind::kJoin:
      return 1 + CountNodes(node->left()) + CountNodes(node->right());
    case Plan::Kind::kComp:
      return 1 + CountNodes(node->child());
  }
  return 1;
}

// A plan plus the rewrite history its swaps accumulated.
struct APlan {
  PlanPtr root;
  RewriteContext ctx;
};

// Sorted, deduplicated interned ids of the join predicates inside `sub`.
// Joins without a predicate intern as PredNameInterner::kCross, matching
// the "cross" pseudo-name the d-edge recording uses.
std::vector<int> JoinPredIdsOf(const Plan* sub, RewriteContext* ctx) {
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(sub), &joins);
  std::vector<int> ids;
  ids.reserve(joins.size());
  PredNameInterner& interner = ctx->Interner();
  for (const Plan* j : joins) ids.push_back(interner.Intern(j->pred()));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// Sorted, deduplicated comp-group vnodes in `node`'s subtree.
void CollectVnodes(const Plan* node, std::vector<int>* out) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      CollectVnodes(node->left(), out);
      CollectVnodes(node->right(), out);
      return;
    case Plan::Kind::kComp:
      if (node->comp().vnode >= 0) out->push_back(node->comp().vnode);
      CollectVnodes(node->child(), out);
      return;
  }
}

std::vector<int> VnodesOf(const Plan* node) {
  std::vector<int> v;
  CollectVnodes(node, &v);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void RemapVnodes(Plan* node, int offset) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      RemapVnodes(node->left(), offset);
      RemapVnodes(node->right(), offset);
      return;
    case Plan::Kind::kComp:
      if (node->mutable_comp().vnode >= 0) {
        node->mutable_comp().vnode += offset;
      }
      RemapVnodes(node->child(), offset);
      return;
  }
}

bool Contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

// One external d-edge key: the (source, label_a, label_b) name triple as
// interner ids. Ids are task-local but the memo is too, so exact id
// comparison is exact name comparison.
struct ExtKey {
  int src = 0;
  int a = 0;
  int b = 0;

  bool operator==(const ExtKey& o) const {
    return src == o.src && a == o.a && b == o.b;
  }
  bool operator<(const ExtKey& o) const {
    if (src != o.src) return src < o.src;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }
};

// A cached optimal subplan: just the subtree for S (not the whole plan the
// seed enumerator stored) plus everything a graft needs — the subtree's own
// d-edges and the producer's vnode counter for remapping into the consumer.
struct MemoEntry {
  RelSet s;
  std::vector<ExtKey> ext_keys;  // full key: verified on every probe
  PlanPtr subtree;
  double cost = 0;
  std::vector<DEdge> dedges;  // producer-id space; vnodes unremapped
  int next_vnode = 1;         // producer's counter at store time
};

// Budget state shared by every root task. Counters that feed hard caps are
// atomics; the degraded/trigger report is first-trigger-wins under a mutex.
struct SharedState {
  const EnumeratorOptions* options = nullptr;
  int64_t deadline_ms = 0;
  std::atomic<int64_t> subplan_calls{0};
  std::atomic<int64_t> cache_entries{0};
  std::atomic<bool> stop{false};
  std::mutex trip_mu;
  bool degraded = false;
  BudgetTrigger trigger = BudgetTrigger::kNone;

  void Trip(BudgetTrigger t, bool hard) {
    {
      std::lock_guard<std::mutex> lock(trip_mu);
      if (!degraded) {
        degraded = true;
        trigger = t;
      }
    }
    if (hard) stop.store(true, std::memory_order_relaxed);
  }

  bool Exhausted() {
    if (stop.load(std::memory_order_relaxed)) return true;
    if (FaultInjector::ShouldFail(FaultPoint::kEnumeratorBudget)) {
      Trip(BudgetTrigger::kInjectedFault, /*hard=*/true);
      return true;
    }
    const EnumeratorBudget& b = options->budget;
    if (b.max_enumerated_nodes > 0 &&
        subplan_calls.load(std::memory_order_relaxed) >=
            b.max_enumerated_nodes) {
      Trip(BudgetTrigger::kEnumeratedNodes, /*hard=*/true);
      return true;
    }
    if (deadline_ms > 0 && SteadyNowMs() >= deadline_ms) {
      Trip(BudgetTrigger::kWallClock, /*hard=*/true);
      return true;
    }
    return false;
  }
};

// The search state of one root task: its memo, its fingerprint caches and
// its slice of the statistics. Tasks never share a Search, so everything
// here is single-threaded; cross-task coordination goes through
// SharedState only.
class Search {
 public:
  Search(const CostModel* cost, SharedState* shared,
         const EnumeratorOptions& options)
      : cost_(cost), shared_(shared), opt_(options) {}

  EnumeratorStats stats;

  // In-place Algorithm 2/5: finds the cheapest realization of relation set
  // `s` inside p's subtree under the join at `i_path` (the whole plan when
  // absent). On success returns true with the winner installed in *p; on
  // failure returns false with *p exactly as on entry. `bound` is the
  // branch-and-bound upper limit inherited from the caller: any realization
  // costing strictly more than bound is useless to the caller, so the
  // search may abandon such candidates early. Realizations tying the bound
  // exactly must still complete — the root merge distinguishes equal-cost
  // plans by fingerprint. The search must not cache its best when the
  // bound cut anything off, because that best is only "best under the
  // bound".
  bool GenerateSubplan(APlan* p, const std::optional<NodePath>& i_path,
                       RelSet s, double bound);

  double SubtreeCost(const APlan& p, RelSet s) {
    const Plan* sub = SubtreeOf(p.root.get(), s);
    if (!opt_.cost_memo) {
      ++stats.cost_evals;
      return cost_->Cost(*sub);
    }
    uint64_t fp = PlanFingerprint(*sub, &pred_fp_);
    auto it = cost_memo_.find(fp);
    if (it != cost_memo_.end()) {
      ++stats.cost_memo_hits;
      return it->second;
    }
    if (base_cost_memo_ != nullptr) {
      auto bit = base_cost_memo_->find(fp);
      if (bit != base_cost_memo_->end()) {
        ++stats.cost_memo_hits;
        return bit->second;
      }
    }
    ++stats.cost_evals;
    double c = cost_->Cost(*sub);
    cost_memo_.emplace(fp, c);
    return c;
  }

  uint64_t Fingerprint(const Plan& plan) {
    return PlanFingerprint(plan, &pred_fp_);
  }

  // Wave memo sharing (see Optimize): this search probes `base` — a memo
  // from an earlier wave, frozen for the duration of this search — after
  // its own overlay. The caller guarantees `base` (and the cost memo)
  // outlives this search, is never written while any wave task runs, and
  // that the interner this search works with was forked from the base
  // interner after the last merge, so the int ids inside base entries keep
  // their meaning here.
  void SetBase(const Search& base) {
    base_memo_ = &base.memo_;
    base_cost_memo_ = &base.cost_memo_;
  }

  // Deterministic barrier merge for the multi-wave schedule: moves the
  // overlay task's memo entries into this (base) memo under the usual
  // update-if-strictly-cheaper discipline, translating interner ids from
  // the overlay's fork into the base id space by name (new names grow the
  // base interner, so later waves fork a superset and ids stay aligned).
  // Entry content is deterministic per task and merge order is pair order,
  // so the merged memo is identical at any thread count. Must only run
  // between waves — never while a task is probing this memo.
  void AbsorbOverlay(Search* overlay, const PredNameInterner& overlay_ids,
                     PredNameInterner* base_ids) {
    std::vector<int> xlat(static_cast<size_t>(overlay_ids.size()), -1);
    auto translate = [&](int id) {
      int& t = xlat[static_cast<size_t>(id)];
      if (t < 0) t = base_ids->InternName(overlay_ids.NameOf(id));
      return t;
    };
    for (auto& [map_key, entries] : overlay->memo_) {
      std::vector<MemoEntry>& bucket = memo_[map_key];
      for (MemoEntry& oe : entries) {
        for (ExtKey& k : oe.ext_keys) {
          k.src = translate(k.src);
          k.a = translate(k.a);
          k.b = translate(k.b);
        }
        // Probes sort keys by id; re-establish that order in base id space.
        std::sort(oe.ext_keys.begin(), oe.ext_keys.end());
        for (DEdge& e : oe.dedges) {
          e.src_pred = translate(e.src_pred);
          e.label_a = translate(e.label_a);
          e.label_b = translate(e.label_b);
        }
        bool matched = false;
        for (MemoEntry& be : bucket) {
          if (be.s == oe.s && be.ext_keys == oe.ext_keys) {
            if (oe.cost < be.cost) be = std::move(oe);
            matched = true;
            break;
          }
        }
        if (!matched) bucket.push_back(std::move(oe));
      }
    }
    overlay->memo_.clear();
    // Subtree costs are keyed by canonical fingerprints, so they merge
    // without translation; first writer wins (all writers agree).
    for (const auto& [fp, c] : overlay->cost_memo_) {
      cost_memo_.try_emplace(fp, c);
    }
    overlay->cost_memo_.clear();
  }

 private:
  struct Probe {
    std::vector<ExtKey> keys;  // sorted
    uint64_t map_key = 0;
  };

  // The external d-edge signature of subtree(p, s): every d-edge whose
  // source join lies inside but whose dependency target does not (or exists
  // both inside and out), per Theorem 5.4. The sorted key vector is the full
  // identity; map_key compresses (s, signature) to the 64-bit memo index.
  Probe MakeProbe(APlan* p, RelSet s) {
    const Plan* sub = SubtreeOf(p->root.get(), s);
    std::vector<int> inside_ids = JoinPredIdsOf(sub, &p->ctx);
    std::vector<int> inside_vnodes = VnodesOf(sub);
    std::vector<int> all_vnodes = VnodesOf(p->root.get());
    Probe probe;
    for (const DEdge& e : p->ctx.dedges) {
      if (!Contains(inside_ids, e.src_pred)) continue;
      bool external;
      if (e.vnode == DEdge::kContextVnode) {
        // Fold/simplify markers: the dependency is on the causing predicate.
        external = !Contains(inside_ids, e.label_b);
      } else {
        bool in = Contains(inside_vnodes, e.vnode);
        bool out_exists = !in && Contains(all_vnodes, e.vnode);
        external = !in || out_exists;
      }
      if (external) probe.keys.push_back({e.src_pred, e.label_a, e.label_b});
    }
    std::sort(probe.keys.begin(), probe.keys.end());
    uint64_t sig = 0;
    if (!opt_.collide_signatures && !opt_.unsafe_ignore_dedges) {
      // Hash canonical per-name hashes, not ids, so the signature depends
      // only on the names involved (ids are interner-order dependent).
      const PredNameInterner& interner = p->ctx.Interner();
      sig = 1469598103934665603ULL;
      for (const ExtKey& k : probe.keys) {
        sig = FpMix(sig, interner.HashOf(k.src));
        sig = FpMix(sig, interner.HashOf(k.a));
        sig = FpMix(sig, interner.HashOf(k.b));
      }
    }
    probe.map_key = FpMix(FpMix(0x5eedULL, s.bits()), sig);
    return probe;
  }

  const MemoEntry* FindIn(
      const std::unordered_map<uint64_t, std::vector<MemoEntry>>& memo,
      const Probe& probe, RelSet s, bool count_collisions) {
    auto it = memo.find(probe.map_key);
    if (it == memo.end()) return nullptr;
    if (opt_.unsafe_ignore_dedges) {
      // ABLATION (Example 5.1): first entry for the relation set, external
      // dependencies ignored — the unsound shortcut under test.
      for (const MemoEntry& e : it->second) {
        if (e.s == s) return &e;
      }
      return nullptr;
    }
    for (const MemoEntry& e : it->second) {
      if (e.s != s) continue;
      if (e.ext_keys == probe.keys) return &e;
      // Same 64-bit (s, signature) slot, different full key: a signature
      // collision a hash-only memo would have grafted unsoundly.
      if (count_collisions) ++stats.sig_collisions;
    }
    return nullptr;
  }

  // Overlay first, then the frozen base. An overlay entry shadows a base
  // entry with the same full key only when it is strictly cheaper
  // (StoreEntry maintains that invariant), so preferring the overlay is the
  // same update-if-cheaper discipline a single sequential memo has.
  const MemoEntry* FindEntry(const Probe& probe, RelSet s) {
    if (const MemoEntry* e =
            FindIn(memo_, probe, s, /*count_collisions=*/true)) {
      return e;
    }
    if (base_memo_ != nullptr) {
      return FindIn(*base_memo_, probe, s, /*count_collisions=*/true);
    }
    return nullptr;
  }

  void StoreEntry(APlan* p, RelSet s, const Probe& probe, double cost) {
    const Plan* sub = SubtreeOf(p->root.get(), s);
    std::vector<MemoEntry>& bucket = memo_[probe.map_key];
    for (MemoEntry& e : bucket) {
      if (e.s == s && e.ext_keys == probe.keys) {
        if (cost < e.cost) {
          e.subtree = sub->Clone();
          stats.cloned_nodes += CountNodes(e.subtree.get());
          e.cost = cost;
          e.dedges = OwnDEdges(p, sub);
          e.next_vnode = p->ctx.next_vnode;
        }
        return;
      }
    }
    if (base_memo_ != nullptr) {
      const MemoEntry* base =
          FindIn(*base_memo_, probe, s, /*count_collisions=*/false);
      // Seed semantics against the frozen base: a same-key entry only
      // enters the overlay when strictly cheaper than the base's, so
      // FindEntry's overlay-first order never returns a worse subplan.
      if (base != nullptr && cost >= base->cost) return;
    }
    const EnumeratorBudget& b = opt_.budget;
    if (b.max_memo_entries > 0 &&
        shared_->cache_entries.load(std::memory_order_relaxed) >=
            b.max_memo_entries) {
      // Memo full: keep searching without caching this subplan. The search
      // stays exhaustive (soft trigger), it just loses reuse opportunities.
      shared_->Trip(BudgetTrigger::kMemoEntries, /*hard=*/false);
      return;
    }
    MemoEntry e;
    e.s = s;
    e.ext_keys = probe.keys;
    e.subtree = sub->Clone();
    stats.cloned_nodes += CountNodes(e.subtree.get());
    e.cost = cost;
    e.dedges = OwnDEdges(p, sub);
    e.next_vnode = p->ctx.next_vnode;
    bucket.push_back(std::move(e));
    shared_->cache_entries.fetch_add(1, std::memory_order_relaxed);
  }

  // The d-edges whose source join lies inside `sub` — what a graft of this
  // subtree must carry along.
  std::vector<DEdge> OwnDEdges(APlan* p, const Plan* sub) {
    std::vector<int> ids = JoinPredIdsOf(sub, &p->ctx);
    std::vector<DEdge> out;
    for (const DEdge& e : p->ctx.dedges) {
      if (Contains(ids, e.src_pred)) out.push_back(e);
    }
    return out;
  }

  void Graft(APlan* p, RelSet s, const MemoEntry& entry) {
    Plan* dst = SubtreeOf(p->root.get(), s);
    // Drop dependency edges owned by the replaced subplan.
    std::vector<int> replaced = JoinPredIdsOf(dst, &p->ctx);
    std::vector<DEdge> kept;
    for (const DEdge& e : p->ctx.dedges) {
      if (!Contains(replaced, e.src_pred)) kept.push_back(e);
    }
    // Graft a clone with compensation-group ids remapped into p's id space,
    // and import the graft's dependency edges.
    PlanPtr graft = entry.subtree->Clone();
    stats.cloned_nodes += CountNodes(graft.get());
    int offset = p->ctx.next_vnode;
    RemapVnodes(graft.get(), offset);
    for (DEdge moved : entry.dedges) {
      if (moved.vnode >= 0) moved.vnode += offset;
      kept.push_back(moved);
    }
    p->ctx.next_vnode += entry.next_vnode;
    p->ctx.dedges = std::move(kept);
    PlanPtr* slot = FindSlot(p->root, dst);
    ECA_CHECK(slot != nullptr);
    *slot = std::move(graft);
  }

  const CostModel* cost_;
  SharedState* shared_;
  const EnumeratorOptions& opt_;
  // (relation set, ext-d-edge signature) -> candidate entries. Collisions
  // on the 64-bit index land in one bucket and are told apart by the stored
  // full key.
  std::unordered_map<uint64_t, std::vector<MemoEntry>> memo_;
  const std::unordered_map<uint64_t, std::vector<MemoEntry>>* base_memo_ =
      nullptr;
  std::unordered_map<const Predicate*, uint64_t> pred_fp_;
  std::unordered_map<uint64_t, double> cost_memo_;
  const std::unordered_map<uint64_t, double>* base_cost_memo_ = nullptr;
};

bool Search::GenerateSubplan(APlan* p, const std::optional<NodePath>& i_path,
                             RelSet s, double bound) {
  if (shared_->Exhausted()) return false;
  shared_->subplan_calls.fetch_add(1, std::memory_order_relaxed);
  if (s.Count() <= 1) {
    // Best access path: a scan of the base relation (the only access path
    // in this engine; bestAccess[] hook of Algorithm 1).
    return true;
  }

  Probe probe;
  if (opt_.reuse_subplans) {
    probe = MakeProbe(p, s);
    if (const MemoEntry* entry = FindEntry(probe, s)) {
      ++stats.reuses;
      Graft(p, s, *entry);
      return true;
    }
  }

  std::vector<JoinablePair> pairs = JoinablePairs(p->root.get(), s);
  if (pairs.empty()) return false;
  // Record each pair's node path up front: the node pointers die with the
  // first snapshot restore, the paths stay valid (restored trees are
  // structurally identical).
  std::vector<NodePath> pair_paths(pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    bool found = PathTo(p->root.get(), pairs[k].node, &pair_paths[k]);
    ECA_CHECK(found);
  }

  // Clone-light state management. Every mutation made while positioning a
  // join for pair k — the SwapUp chain and both recursions — stays inside
  // the child slot of the i node that contains pair k's join (SwapUp only
  // rewrites at and below the rising join's parent, which sits strictly
  // below i until the chain terminates). So instead of deep-copying the
  // whole plan per pair like the seed enumerator, we snapshot just that
  // slot's subtree (lazily, per side) and restore it before the next pair.
  // Slot keys: 0/1 = left/right child slot of the i node, 2 = the plan
  // root (top-level calls, and the conservative fallback when a pair's
  // join is not under the i node — the swap chain will fail for those, but
  // it may still canonicalize nodes it touches).
  auto slot_key_of = [&](size_t k) -> int {
    if (!i_path.has_value()) return 2;
    const NodePath& ip = *i_path;
    if (pair_paths[k].size() > ip.size() &&
        std::equal(ip.begin(), ip.end(), pair_paths[k].begin())) {
      return pair_paths[k][ip.size()] == 0 ? 0 : 1;
    }
    return 2;
  };
  auto slot_of = [&](int key) -> PlanPtr* {
    if (key == 2) return &p->root;
    Plan* i_node = ResolvePath(p->root.get(), *i_path);
    ECA_CHECK(i_node != nullptr && i_node->is_join());
    return key == 0 ? &i_node->mutable_left() : &i_node->mutable_right();
  };

  PlanPtr snapshots[3];
  RewriteContext saved_ctx = p->ctx;
  int dirty_key = -1;

  PlanPtr best_subtree;
  RewriteContext best_ctx;
  int best_key = -1;
  double best_cost = kInf;

  for (size_t k = 0; k < pairs.size(); ++k) {
    if (shared_->Exhausted()) break;
    if (FaultInjector::ShouldFail(FaultPoint::kAllocation)) {
      // Simulated clone-allocation failure: stop expanding this search
      // branch and settle for the best plan found so far.
      shared_->Trip(BudgetTrigger::kAllocationFault, /*hard=*/true);
      break;
    }
    ++stats.pairs_considered;
    if (dirty_key >= 0) {
      PlanPtr* dirty_slot = slot_of(dirty_key);
      *dirty_slot = snapshots[dirty_key]->Clone();
      stats.cloned_nodes += CountNodes(dirty_slot->get());
      p->ctx = saved_ctx;
      dirty_key = -1;
    }
    const int key = slot_key_of(k);
    PlanPtr* slot = slot_of(key);
    if (snapshots[key] == nullptr) {
      snapshots[key] = (*slot)->Clone();
      stats.cloned_nodes += CountNodes(snapshots[key].get());
    }
    // dirty_key is set lazily, at the first mutation this pair commits (a
    // SwapUp that reports a tree change, or a successful recursion). Pairs
    // whose swap chain fails without touching the tree — the common way a
    // decomposition dies — then cost no restore clone at the next pair.
    // A failed recursion needs no mark either: GenerateSubplan's failure
    // contract restores content exactly, so the slot is as the pair found
    // it.

    const JoinablePair& pair = pairs[k];
    Plan* j = ResolvePath(p->root.get(), pair_paths[k]);
    Plan* i_node =
        i_path.has_value() ? ResolvePath(p->root.get(), *i_path) : nullptr;
    // Pruning uses two cuts with different strictness. Against the local
    // best, >= is right: a candidate at or above it can never strictly
    // improve, which is all this loop asks. Against the inherited bound the
    // cut must be tie-permissive (strictly above, plus slack so rounding
    // only loosens it): a candidate costing exactly `bound` has to
    // complete, because callers — ultimately the root merge — distinguish
    // equal-cost plans by fingerprint, and the no-prune search would have
    // produced that tie candidate.
    const double tie_slack =
        bound < kInf ? 1e-9 * (std::abs(bound) + 1.0) : 0.0;
    const double eff_bound = opt_.prune ? std::min(bound, best_cost) : kInf;

    // Move j upward until its parent join is i (Algorithm 2, steps 6-7).
    bool feasible = true;
    int chain = 0;
    while (ParentJoin(p->root.get(), j) != i_node) {
      if (shared_->Exhausted()) {
        feasible = false;
        break;
      }
      ++stats.swaps_attempted;
      Plan* risen = nullptr;
      if (FaultInjector::ShouldFail(FaultPoint::kRewriteRule)) {
        // Simulated rewrite-rule failure: the swap is reported infeasible
        // (soft trigger — other decompositions may still complete).
        shared_->Trip(BudgetTrigger::kRewriteFault, /*hard=*/false);
      } else {
        bool sw_changed = false;
        risen = SwapUp(p->root, j, &p->ctx, &sw_changed);
        if (sw_changed) dirty_key = key;
      }
      if (risen == nullptr) {
        ++stats.swaps_failed;
        feasible = false;
        break;
      }
      j = risen;
      if (++chain > opt_.max_swap_chain) {
        ++stats.swap_chain_guard_trips;
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Recurse into the two sides (steps 8-9). j's child subtrees cover
    // pair.s1 and pair.s2 (in some orientation).
    NodePath j_path;
    if (!PathTo(p->root.get(), j, &j_path)) continue;
    RelSet left_set = j->left()->leaves();
    RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                       ? pair.s1
                       : pair.s2;
    RelSet second = first == pair.s1 ? pair.s2 : pair.s1;

    if (!GenerateSubplan(p, j_path, first, eff_bound)) continue;
    dirty_key = key;  // a successful recursion rewrote the slot's subtree
    double c1 = 0;
    if (opt_.prune) {
      // The cost model is additive with non-negative terms, so the first
      // side's cost is a lower bound on the candidate's final cost.
      c1 = SubtreeCost(*p, first);
      if (c1 >= best_cost || c1 > bound + tie_slack) {
        ++stats.prunes;
        continue;
      }
    }
    // Bound for the second side: what is left of eff_bound after paying
    // c1, slackened by one epsilon so floating-point rounding can only
    // loosen the pruning (never discard a would-be winner).
    const double bound2 =
        opt_.prune ? eff_bound - c1 + 1e-9 * (std::abs(eff_bound) + 1.0)
                   : kInf;
    if (!GenerateSubplan(p, j_path, second, bound2)) continue;

    double cost = SubtreeCost(*p, s);
    if (!i_path.has_value()) ++stats.plans_completed;
#ifndef NDEBUG
    if (opt_.prune) {
      // The pruning rule is sound only while child costs lower-bound the
      // parent cost; verify the cost model still satisfies that.
      ECA_CHECK(cost >= c1);
      double c2 = SubtreeCost(*p, second);
      ECA_CHECK(cost + 1e-6 * (std::abs(cost) + 1.0) >= c1 + c2);
    }
#endif
    if (cost < best_cost) {
      best_cost = cost;
      best_key = key;
      // Move the winner out instead of cloning it: the slot is dirty and
      // will be restored from its snapshot before the next pair anyway (or
      // refilled by the install below when this pair is the last).
      best_subtree = std::move(*slot_of(key));
      best_ctx = p->ctx;
    }
  }

  if (best_subtree != nullptr) {
    if (dirty_key >= 0 && dirty_key != best_key && best_key != 2) {
      *slot_of(dirty_key) = std::move(snapshots[dirty_key]);
    }
    *slot_of(best_key) = std::move(best_subtree);
    p->ctx = std::move(best_ctx);
    // Cache only a best the bound did not constrain: under a finite bound,
    // pruned candidates might have beaten this one for other callers.
    if (opt_.reuse_subplans && best_cost < bound) {
      StoreEntry(p, s, probe, best_cost);
    }
    return true;
  }
  if (dirty_key >= 0) {
    PlanPtr* dirty_slot = slot_of(dirty_key);
    *dirty_slot = std::move(snapshots[dirty_key]);
    p->ctx = std::move(saved_ctx);
  }
  return false;
}

}  // namespace

const char* BudgetTriggerName(BudgetTrigger trigger) {
  switch (trigger) {
    case BudgetTrigger::kNone:
      return "none";
    case BudgetTrigger::kEnumeratedNodes:
      return "max_enumerated_nodes";
    case BudgetTrigger::kMemoEntries:
      return "max_memo_entries";
    case BudgetTrigger::kWallClock:
      return "wall_clock_ms";
    case BudgetTrigger::kInjectedFault:
      return "injected-budget-fault";
    case BudgetTrigger::kAllocationFault:
      return "injected-allocation-fault";
    case BudgetTrigger::kRewriteFault:
      return "injected-rewrite-fault";
    case BudgetTrigger::kSizesOnlyFallback:
      return "sizes-only-fallback";
  }
  return "unknown";
}

namespace {

// One registry delta per Optimize() call, so a snapshot diff around a
// single call reproduces Result::stats (asserted by metrics_test).
void PublishEnumeratorStats(const EnumeratorStats& s) {
  auto& reg = MetricsRegistry::Global();
  static Counter* const subplan_calls = reg.counter("enum.subplan_calls");
  static Counter* const pairs = reg.counter("enum.pairs_considered");
  static Counter* const swaps = reg.counter("enum.swaps_attempted");
  static Counter* const swaps_failed = reg.counter("enum.swaps_failed");
  static Counter* const completed = reg.counter("enum.plans_completed");
  static Counter* const memo_hits = reg.counter("enum.memo_hits");
  static Counter* const memo_entries = reg.counter("enum.memo_entries");
  static Counter* const prunes = reg.counter("enum.bb_prunes");
  static Counter* const cost_evals = reg.counter("enum.cost_evals");
  static Counter* const cost_memo_hits = reg.counter("enum.cost_memo_hits");
  static Counter* const cloned = reg.counter("enum.cloned_nodes");
  static Counter* const guard = reg.counter("enum.swap_chain_guard_trips");
  static Counter* const collisions = reg.counter("enum.sig_collisions");
  static Counter* const root_tasks = reg.counter("enum.root_tasks");
  static Counter* const degraded = reg.counter("enum.degraded_runs");
  subplan_calls->Add(s.subplan_calls);
  pairs->Add(s.pairs_considered);
  swaps->Add(s.swaps_attempted);
  swaps_failed->Add(s.swaps_failed);
  completed->Add(s.plans_completed);
  memo_hits->Add(s.reuses);
  memo_entries->Add(s.cache_entries);
  prunes->Add(s.prunes);
  cost_evals->Add(s.cost_evals);
  cost_memo_hits->Add(s.cost_memo_hits);
  cloned->Add(s.cloned_nodes);
  guard->Add(s.swap_chain_guard_trips);
  collisions->Add(s.sig_collisions);
  root_tasks->Add(s.root_tasks);
  if (s.degraded) degraded->Increment();
}

}  // namespace

TopDownEnumerator::Result TopDownEnumerator::Optimize(const Plan& query) {
  TraceSpan span("enumerate");
  Result result = OptimizeImpl(query);
  PublishEnumeratorStats(result.stats);
  if (span.active()) {
    span.AppendArg("subplan_calls",
                   static_cast<long long>(result.stats.subplan_calls));
    span.AppendArg("memo_hits", static_cast<long long>(result.stats.reuses));
    span.AppendArg("prunes", static_cast<long long>(result.stats.prunes));
    if (result.stats.degraded) {
      span.AppendArg("degraded", BudgetTriggerName(result.stats.trigger));
    }
  }
  return result;
}

TopDownEnumerator::Result TopDownEnumerator::OptimizeImpl(const Plan& query) {
  SharedState shared;
  shared.options = &options_;
  shared.deadline_ms = options_.budget.wall_clock_ms > 0
                           ? SteadyNowMs() + options_.budget.wall_clock_ms
                           : 0;

  APlan init;
  init.root = query.Clone();
  SimplifyOuterJoins(init.root.get());
  init.ctx.policy = options_.policy;

  RelSet all = init.root->leaves();

  // Mirror the seed enumerator's top-level GenerateSubplan entry: the gate
  // check, the call count, and the trivial single-relation return.
  const bool root_live = !shared.Exhausted();
  if (root_live) {
    shared.subplan_calls.fetch_add(1, std::memory_order_relaxed);
  }

  Result result;
  if (root_live && all.Count() <= 1) {
    result.plan = std::move(init.root);
    result.cost = cost_->Cost(*result.plan);
    result.stats.subplan_calls = 1;
    return result;
  }

  std::vector<JoinablePair> pairs;
  std::vector<NodePath> pair_paths;
  if (root_live) {
    pairs = JoinablePairs(init.root.get(), all);
    pair_paths.resize(pairs.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      bool found = PathTo(init.root.get(), pairs[k].node, &pair_paths[k]);
      ECA_CHECK(found);
    }
  }

  // One task per root joinable pair: its own clone of the initial plan,
  // its own rewrite context and its own memo overlay. Beyond the budget
  // counters, tasks share only frozen state published at wave barriers
  // before they start (the multi-wave schedule below), so every task
  // computes the same result at any thread count and the merge is
  // deterministic. `search` and `interner` are kept alive past the task so
  // the barrier can absorb its overlay into the base memo.
  struct RootTask {
    bool found = false;
    PlanPtr plan;
    double cost = kInf;
    uint64_t fingerprint = 0;
    EnumeratorStats stats;
    std::unique_ptr<Search> search;
    std::shared_ptr<PredNameInterner> interner;
  };
  std::vector<RootTask> tasks(pairs.size());

  // ABLATION (Example 5.1): unsafe_ignore_dedges exists to demonstrate that
  // reuse without the d-edge guard corrupts plans, and the demonstration
  // needs the seed enumerator's semantics — one memo shared across every
  // root pair (isolated per-pair memos leave too few unsound reuse
  // opportunities to reliably misbehave). The mode runs sequentially with a
  // shared interner so cached ids stay comparable across tasks.
  const bool share_memo = options_.unsafe_ignore_dedges;
  std::unique_ptr<Search> shared_search;
  std::shared_ptr<PredNameInterner> shared_interner;
  if (share_memo) {
    shared_search = std::make_unique<Search>(cost_, &shared, options_);
    shared_interner = std::make_shared<PredNameInterner>();
  }

  // Multi-wave schedule (normal mode). Root pair 0 runs first, alone, and
  // publishes the base state: its memo (which every later task probes
  // through a private overlay), its interner (forked per task, so the int
  // ids inside base entries keep their meaning), and its plan cost (the
  // branch-and-bound bound for later tasks). The remaining pairs then run
  // in fixed-size waves; at each wave barrier the wave's overlays are
  // absorbed into the base in pair order and the bound is tightened to the
  // best cost seen so far. That recovers the cross-root-pair subplan reuse
  // a single sequential memo gives — without giving up determinism: wave
  // boundaries depend only on pair indices, and everything a task observes
  // is a function of the query and of fully-merged earlier waves, never of
  // timing or thread count.
  std::unique_ptr<Search> base_search;
  std::shared_ptr<PredNameInterner> base_interner;
  double wave_bound = kInf;
  if (!share_memo && !pairs.empty()) {
    base_search = std::make_unique<Search>(cost_, &shared, options_);
    base_interner = std::make_shared<PredNameInterner>();
  }

  auto run_pair = [&](int64_t k) {
    RootTask& task = tasks[static_cast<size_t>(k)];
    TraceSpan pair_span("root-pair");
    if (pair_span.active()) pair_span.AppendArg("k", k);
    if (shared.Exhausted()) return;
    if (FaultInjector::ShouldFail(FaultPoint::kAllocation)) {
      shared.Trip(BudgetTrigger::kAllocationFault, /*hard=*/true);
      return;
    }
    const bool is_base = !share_memo && k == 0;
    if (!share_memo && !is_base) {
      task.search = std::make_unique<Search>(cost_, &shared, options_);
      task.search->SetBase(*base_search);
    }
    Search& search = share_memo ? *shared_search
                     : is_base  ? *base_search
                                : *task.search;
    ++search.stats.pairs_considered;

    APlan p;
    p.root = init.root->Clone();
    search.stats.cloned_nodes += CountNodes(p.root.get());
    p.ctx.policy = options_.policy;
    if (share_memo) {
      p.ctx.interner = shared_interner;
    } else if (is_base) {
      p.ctx.interner = base_interner;
    } else {
      task.interner =
          std::make_shared<PredNameInterner>(base_interner->Fork());
      p.ctx.interner = task.interner;
    }

    const JoinablePair& pair = pairs[static_cast<size_t>(k)];
    Plan* j = ResolvePath(p.root.get(), pair_paths[static_cast<size_t>(k)]);
    bool feasible = true;
    int chain = 0;
    while (ParentJoin(p.root.get(), j) != nullptr) {
      if (shared.Exhausted()) {
        feasible = false;
        break;
      }
      ++search.stats.swaps_attempted;
      Plan* risen = nullptr;
      if (FaultInjector::ShouldFail(FaultPoint::kRewriteRule)) {
        shared.Trip(BudgetTrigger::kRewriteFault, /*hard=*/false);
      } else {
        risen = SwapUp(p.root, j, &p.ctx);
      }
      if (risen == nullptr) {
        ++search.stats.swaps_failed;
        feasible = false;
        break;
      }
      j = risen;
      if (++chain > options_.max_swap_chain) {
        ++search.stats.swap_chain_guard_trips;
        feasible = false;
        break;
      }
    }
    if (feasible) {
      NodePath j_path;
      if (PathTo(p.root.get(), j, &j_path)) {
        RelSet left_set = j->left()->leaves();
        RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                           ? pair.s1
                           : pair.s2;
        RelSet second = first == pair.s1 ? pair.s2 : pair.s1;
        // Task 0's bound is infinite, never the initial plan's cost: the
        // enumerator returns its best completed plan even when that is
        // worse than the query as written, and a tighter base bound would
        // suppress exactly those plans. Later tasks are bounded by the
        // best cost completed waves achieved: a candidate at or above it
        // cannot win the merge (equal-cost ties still complete — the
        // additive cost model means the c1 cut only ever discards strictly
        // worse plans), so the merged result is the same as with an
        // infinite bound.
        const double bound =
            is_base || !options_.prune ? kInf : wave_bound;
        const double tie_slack =
            bound < kInf ? 1e-9 * (std::abs(bound) + 1.0) : 0.0;
        bool viable = search.GenerateSubplan(&p, j_path, first, bound);
        double c1 = 0;
        if (viable && bound < kInf) {
          c1 = search.SubtreeCost(p, first);
          // Tie-permissive, like the in-search cut: a plan tying the bound
          // exactly must survive to the fingerprint tie-break.
          if (c1 > bound + tie_slack) {
            ++search.stats.prunes;
            viable = false;
          }
        }
        const double bound2 =
            bound < kInf ? bound - c1 + 1e-9 * (std::abs(bound) + 1.0)
                         : kInf;
        if (viable && search.GenerateSubplan(&p, j_path, second, bound2)) {
          task.cost = search.SubtreeCost(p, all);
          ++search.stats.plans_completed;
          task.fingerprint = search.Fingerprint(*p.root);
          task.plan = std::move(p.root);
          task.found = true;
        }
      }
    }
    if (!share_memo) task.stats = std::move(search.stats);
  };

  if (!pairs.empty()) {
    // Wave 0: root pair 0, alone. Publishes the base memo and the first
    // bound before any other task starts, at every thread count.
    {
      TraceSpan wave_span("wave-0");
      run_pair(0);
    }
    if (!share_memo && tasks[0].found) wave_bound = tasks[0].cost;
    const int64_t total = static_cast<int64_t>(pairs.size());
    // Wave width: fixed, so wave boundaries (and with them everything a
    // task can observe) are independent of the thread count. Four keeps
    // typical machines busy while still merging often enough that late
    // pairs see most earlier subplans.
    constexpr int64_t kRootWave = 4;
    std::optional<ThreadPool> pool;
    if (options_.num_threads > 1 && !share_memo && total > 1) {
      pool.emplace(options_.num_threads);
    }
    for (int64_t start = 1; start < total; start += kRootWave) {
      const int64_t count = std::min(kRootWave, total - start);
      char wave_name[Tracer::kNameSize];
      std::snprintf(wave_name, sizeof(wave_name), "wave-%lld",
                    static_cast<long long>(1 + (start - 1) / kRootWave));
      TraceSpan wave_span(wave_name);
      if (wave_span.active()) wave_span.AppendArg("pairs", count);
      if (pool.has_value()) {
        pool->ParallelFor(count, [&](int64_t i) { run_pair(start + i); });
      } else {
        for (int64_t i = 0; i < count; ++i) run_pair(start + i);
      }
      if (!share_memo) {
        // Barrier: absorb the wave's overlays into the base in pair order
        // and tighten the bound for the next wave. Both are deterministic —
        // they depend on task results, not on completion order.
        for (int64_t i = 0; i < count; ++i) {
          RootTask& t = tasks[static_cast<size_t>(start + i)];
          if (t.search != nullptr) {
            base_search->AbsorbOverlay(t.search.get(), *t.interner,
                                       base_interner.get());
            t.search.reset();
          }
          if (t.found && t.cost < wave_bound) wave_bound = t.cost;
        }
      }
      // The deadline is also observed between waves: a tripped budget ends
      // the schedule at this barrier with every completed wave's results
      // merged, so the final pick below is a true best-so-far.
      if (shared.Exhausted()) break;
    }
  }

  // Deterministic merge, independent of completion order: lowest cost wins;
  // equal costs tie-break on the structural fingerprint; remaining ties
  // keep the lowest pair index.
  int best_k = -1;
  for (int k = 0; k < static_cast<int>(tasks.size()); ++k) {
    const RootTask& t = tasks[static_cast<size_t>(k)];
    if (!t.found) continue;
    if (best_k < 0 || t.cost < tasks[static_cast<size_t>(best_k)].cost ||
        (t.cost == tasks[static_cast<size_t>(best_k)].cost &&
         t.fingerprint < tasks[static_cast<size_t>(best_k)].fingerprint)) {
      best_k = k;
    }
  }

  EnumeratorStats stats;
  stats.subplan_calls = shared.subplan_calls.load(std::memory_order_relaxed);
  stats.cache_entries = shared.cache_entries.load(std::memory_order_relaxed);
  stats.root_tasks = static_cast<int64_t>(tasks.size());
  auto accumulate = [&stats](const EnumeratorStats& t) {
    stats.pairs_considered += t.pairs_considered;
    stats.swaps_attempted += t.swaps_attempted;
    stats.swaps_failed += t.swaps_failed;
    stats.plans_completed += t.plans_completed;
    stats.reuses += t.reuses;
    stats.prunes += t.prunes;
    stats.cost_evals += t.cost_evals;
    stats.cost_memo_hits += t.cost_memo_hits;
    stats.cloned_nodes += t.cloned_nodes;
    stats.swap_chain_guard_trips += t.swap_chain_guard_trips;
    stats.sig_collisions += t.sig_collisions;
  };
  for (const RootTask& t : tasks) accumulate(t.stats);
  if (shared_search != nullptr) accumulate(shared_search->stats);
  {
    std::lock_guard<std::mutex> lock(shared.trip_mu);
    stats.degraded = shared.degraded;
    stats.trigger = shared.trigger;
  }
  result.stats = stats;

  if (best_k < 0) {
    // No complete plan: either no feasible reordering exists at the top
    // (single-relation queries, fully blocked swaps) or the budget ran
    // out before one was found. Fall back to the query as written —
    // always executable and trivially correct.
    result.plan = query.Clone();
    result.cost = cost_->Cost(*result.plan);
    return result;
  }
  result.plan = std::move(tasks[static_cast<size_t>(best_k)].plan);
  result.cost = cost_->Cost(*result.plan);
  return result;
}

}  // namespace eca
