#include "enumerate/enumerator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "enumerate/shared_memo.h"
#include "enumerate/subtree.h"
#include "rewrite/oj_simplify.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int64_t SteadyNowMs() {
  int64_t real = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  // Routed through the fault clock so deadline behavior (mid-search and
  // in the root fan-out) is testable deterministically
  // (testing/fault_injection).
  return FaultClock::NowMs(real);
}

int64_t WallNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FpMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 1099511628211ULL;
}

int64_t CountNodes(const Plan* node) {
  if (node == nullptr) return 0;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return 1;
    case Plan::Kind::kJoin:
      return 1 + CountNodes(node->left()) + CountNodes(node->right());
    case Plan::Kind::kComp:
      return 1 + CountNodes(node->child());
  }
  return 1;
}

// A plan plus the rewrite history its swaps accumulated.
struct APlan {
  PlanPtr root;
  RewriteContext ctx;
};

// Sorted, deduplicated interned ids of the join predicates inside `sub`.
// Joins without a predicate intern as PredNameInterner::kCross, matching
// the "cross" pseudo-name the d-edge recording uses.
std::vector<int> JoinPredIdsOf(const Plan* sub, RewriteContext* ctx) {
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(sub), &joins);
  std::vector<int> ids;
  ids.reserve(joins.size());
  PredNameInterner& interner = ctx->Interner();
  for (const Plan* j : joins) ids.push_back(interner.Intern(j->pred()));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// Sorted, deduplicated comp-group vnodes in `node`'s subtree.
void CollectVnodes(const Plan* node, std::vector<int>* out) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      CollectVnodes(node->left(), out);
      CollectVnodes(node->right(), out);
      return;
    case Plan::Kind::kComp:
      if (node->comp().vnode >= 0) out->push_back(node->comp().vnode);
      CollectVnodes(node->child(), out);
      return;
  }
}

std::vector<int> VnodesOf(const Plan* node) {
  std::vector<int> v;
  CollectVnodes(node, &v);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void RemapVnodes(Plan* node, int offset) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      RemapVnodes(node->left(), offset);
      RemapVnodes(node->right(), offset);
      return;
    case Plan::Kind::kComp:
      if (node->mutable_comp().vnode >= 0) {
        node->mutable_comp().vnode += offset;
      }
      RemapVnodes(node->child(), offset);
      return;
  }
}

bool Contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

// Budget state shared by every root task. Counters that feed hard caps are
// atomics; the degraded/trigger report is first-trigger-wins under a mutex.
struct SharedState {
  const EnumeratorOptions* options = nullptr;
  int64_t deadline_ms = 0;
  std::atomic<int64_t> subplan_calls{0};
  std::atomic<int64_t> cache_entries{0};
  std::atomic<bool> stop{false};
  std::mutex trip_mu;
  bool degraded = false;
  BudgetTrigger trigger = BudgetTrigger::kNone;

  void Trip(BudgetTrigger t, bool hard) {
    {
      std::lock_guard<std::mutex> lock(trip_mu);
      if (!degraded) {
        degraded = true;
        trigger = t;
      }
    }
    if (hard) stop.store(true, std::memory_order_relaxed);
  }

  bool Exhausted() {
    if (stop.load(std::memory_order_relaxed)) return true;
    if (FaultInjector::ShouldFail(FaultPoint::kEnumeratorBudget)) {
      Trip(BudgetTrigger::kInjectedFault, /*hard=*/true);
      return true;
    }
    const EnumeratorBudget& b = options->budget;
    if (b.max_enumerated_nodes > 0 &&
        subplan_calls.load(std::memory_order_relaxed) >=
            b.max_enumerated_nodes) {
      Trip(BudgetTrigger::kEnumeratedNodes, /*hard=*/true);
      return true;
    }
    if (deadline_ms > 0 && SteadyNowMs() >= deadline_ms) {
      Trip(BudgetTrigger::kWallClock, /*hard=*/true);
      return true;
    }
    return false;
  }
};

// The search state of one root task. Tasks never share a Search, so
// everything here is single-threaded; cross-task coordination goes through
// SharedState (budget) and SharedMemo (proven subplans) only.
//
// Memo layering: every entry this task stores lives in its task-local maps
// first — so the task's own discoveries are always visible to itself, no
// matter what the shared table did with them — and is then published into
// the SharedMemo, where the (gen, leader) visibility rule decides who else
// may see it (see shared_memo.h for the determinism argument). Probes go
// local-first: a local entry only exists when it was strictly cheaper than
// the visible shared entry at store time, so local-first is the same
// update-if-cheaper discipline a single sequential memo has.
class Search {
 public:
  Search(const CostModel* cost, SharedState* shared,
         const EnumeratorOptions& options, SharedMemo* memo,
         uint64_t query_fp, uint64_t epoch, uint64_t gen, bool leader)
      : cost_(cost),
        shared_(shared),
        opt_(options),
        memo_(memo),
        query_fp_(query_fp),
        epoch_(epoch),
        gen_(gen),
        leader_(leader) {}

  EnumeratorStats stats;

  // In-place Algorithm 2/5: finds the cheapest realization of relation set
  // `s` inside p's subtree under the join at `i_path` (the whole plan when
  // absent). On success returns true with the winner installed in *p; on
  // failure returns false with *p exactly as on entry. `bound` is the
  // branch-and-bound upper limit inherited from the caller: any realization
  // costing strictly more than bound is useless to the caller, so the
  // search may abandon such candidates early. Realizations tying the bound
  // exactly must still complete — the root merge distinguishes equal-cost
  // plans by fingerprint. The search must not cache its best when the
  // bound cut anything off, because that best is only "best under the
  // bound".
  bool GenerateSubplan(APlan* p, const std::optional<NodePath>& i_path,
                       RelSet s, double bound);

  double SubtreeCost(const APlan& p, RelSet s) {
    const Plan* sub = SubtreeOf(p.root.get(), s);
    if (!opt_.cost_memo) {
      ++stats.cost_evals;
      return cost_->Cost(*sub);
    }
    uint64_t fp = PlanFingerprint(*sub, &pred_fp_);
    auto it = cost_memo_.find(fp);
    if (it != cost_memo_.end()) {
      ++stats.cost_memo_hits;
      return it->second;
    }
    if (memo_ != nullptr) {
      // Shared subtree-cost table. Costs are a pure function of
      // (fingerprint, stats epoch) — every publisher computes the same
      // value — so sharing across tasks and queries can change how much
      // work is saved, never which plan is chosen.
      ++memo_stats_.cost_probes;
      double c;
      if (memo_->CostLookup(FpMix(fp, epoch_), &c)) {
        ++memo_stats_.cost_hits;
        ++stats.cost_memo_hits;
        cost_memo_.emplace(fp, c);
        return c;
      }
    }
    ++stats.cost_evals;
    double c = cost_->Cost(*sub);
    cost_memo_.emplace(fp, c);
    if (memo_ != nullptr) memo_->CostPublish(FpMix(fp, epoch_), c);
    return c;
  }

  uint64_t Fingerprint(const Plan& plan) {
    return PlanFingerprint(plan, &pred_fp_);
  }

  // Folds the locally-accumulated probe counters into the task stats and
  // the owning memo's metrics. Call exactly once, when the task finishes.
  void FinishTask() {
    stats.sig_collisions += memo_stats_.sig_collisions;
    if (memo_ != nullptr) memo_->AccumulateProbeStats(memo_stats_);
    memo_stats_ = MemoProbeStats{};
  }

 private:
  struct Probe {
    std::vector<MemoExtKey> keys;  // canonically sorted
    uint64_t map_key = 0;
  };

  // The external d-edge signature of subtree(p, s): every d-edge whose
  // source join lies inside but whose dependency target does not (or exists
  // both inside and out), per Theorem 5.4. The sorted key vector is the
  // full identity; map_key compresses the full cross-query key — relation
  // set, signature, query fingerprint, stats epoch and policy — to the
  // 64-bit table index.
  Probe MakeProbe(APlan* p, RelSet s) {
    const Plan* sub = SubtreeOf(p->root.get(), s);
    std::vector<int> inside_ids = JoinPredIdsOf(sub, &p->ctx);
    std::vector<int> inside_vnodes = VnodesOf(sub);
    std::vector<int> all_vnodes = VnodesOf(p->root.get());
    Probe probe;
    const PredNameInterner& interner = p->ctx.Interner();
    for (const DEdge& e : p->ctx.dedges) {
      if (!Contains(inside_ids, e.src_pred)) continue;
      bool external;
      if (e.vnode == DEdge::kContextVnode) {
        // Fold/simplify markers: the dependency is on the causing predicate.
        external = !Contains(inside_ids, e.label_b);
      } else {
        bool in = Contains(inside_vnodes, e.vnode);
        bool out_exists = !in && Contains(all_vnodes, e.vnode);
        external = !in || out_exists;
      }
      if (!external) continue;
      MemoExtKey k;
      k.src_hash = interner.HashOf(e.src_pred);
      k.a_hash = interner.HashOf(e.label_a);
      k.b_hash = interner.HashOf(e.label_b);
      k.src = interner.NameOf(e.src_pred);
      k.a = interner.NameOf(e.label_a);
      k.b = interner.NameOf(e.label_b);
      probe.keys.push_back(std::move(k));
    }
    // Canonical (hash, name) order: independent of any interner's id
    // assignment, so two tasks — or two queries — that discovered the same
    // external set through different rewrite histories still match.
    std::sort(probe.keys.begin(), probe.keys.end());
    uint64_t sig = 0;
    if (!opt_.collide_signatures && !opt_.unsafe_ignore_dedges) {
      sig = 1469598103934665603ULL;
      for (const MemoExtKey& k : probe.keys) {
        sig = FpMix(sig, k.src_hash);
        sig = FpMix(sig, k.a_hash);
        sig = FpMix(sig, k.b_hash);
      }
    }
    probe.map_key =
        FpMix(FpMix(FpMix(FpMix(FpMix(0x5eedULL, s.bits()), sig), query_fp_),
                    epoch_),
              static_cast<uint64_t>(opt_.policy));
    return probe;
  }

  MemoProbe ShapeProbe(const Probe& probe, RelSet s) const {
    MemoProbe mp;
    mp.map_key = probe.map_key;
    mp.query_fp = query_fp_;
    mp.s = s;
    mp.policy = static_cast<int>(opt_.policy);
    mp.epoch = epoch_;
    mp.ext_keys = &probe.keys;
    mp.ignore_ext = opt_.unsafe_ignore_dedges;
    return mp;
  }

  const MemoPayload* FindLocal(const Probe& probe, RelSet s) {
    auto it = local_memo_.find(probe.map_key);
    if (it == local_memo_.end()) return nullptr;
    if (opt_.unsafe_ignore_dedges) {
      // ABLATION (Example 5.1): first entry for the relation set, external
      // dependencies ignored — the unsound shortcut under test.
      for (const auto& e : it->second) {
        if (e->s == s) return e.get();
      }
      return nullptr;
    }
    for (const auto& e : it->second) {
      if (!(e->s == s)) continue;
      if (e->ext_keys == probe.keys) return e.get();
      // Same 64-bit (s, signature) slot, different full key: a signature
      // collision a hash-only memo would have grafted unsoundly.
      ++stats.sig_collisions;
    }
    return nullptr;
  }

  const MemoPayload* FindEntry(const Probe& probe, RelSet s) {
    if (const MemoPayload* e = FindLocal(probe, s)) return e;
    if (memo_ == nullptr) return nullptr;
    return memo_->Find(ShapeProbe(probe, s), gen_, &memo_stats_);
  }

  void StoreEntry(APlan* p, RelSet s, const Probe& probe, double cost) {
    auto& bucket = local_memo_[probe.map_key];
    for (auto& e : bucket) {
      if (e->s == s && e->ext_keys == probe.keys) {
        if (cost < e->cost) {
          e = BuildPayload(p, s, probe, cost);
          PublishShared(probe.map_key, e);
        }
        return;
      }
    }
    if (memo_ != nullptr) {
      // Seed semantics against the shared view: a same-key entry only
      // enters the local layer when strictly cheaper than the visible
      // shared one, so FindEntry's local-first order never returns a worse
      // subplan. Not counted as a probe — it is store bookkeeping.
      MemoProbeStats scratch;
      const MemoPayload* base = memo_->Find(ShapeProbe(probe, s), gen_,
                                            &scratch);
      if (base != nullptr && cost >= base->cost) return;
    }
    const EnumeratorBudget& b = opt_.budget;
    if (b.max_memo_entries > 0 &&
        shared_->cache_entries.load(std::memory_order_relaxed) >=
            b.max_memo_entries) {
      // Memo full: keep searching without caching this subplan. The search
      // stays exhaustive (soft trigger), it just loses reuse opportunities.
      shared_->Trip(BudgetTrigger::kMemoEntries, /*hard=*/false);
      return;
    }
    auto payload = BuildPayload(p, s, probe, cost);
    bucket.push_back(payload);
    shared_->cache_entries.fetch_add(1, std::memory_order_relaxed);
    PublishShared(probe.map_key, payload);
  }

  std::shared_ptr<const MemoPayload> BuildPayload(APlan* p, RelSet s,
                                                  const Probe& probe,
                                                  double cost) {
    const Plan* sub = SubtreeOf(p->root.get(), s);
    auto pl = std::make_shared<MemoPayload>();
    pl->query_fp = query_fp_;
    pl->s = s;
    pl->policy = static_cast<int>(opt_.policy);
    pl->epoch = epoch_;
    pl->ext_keys = probe.keys;
    pl->subtree = sub->Clone();
    int64_t subtree_nodes = CountNodes(pl->subtree.get());
    stats.cloned_nodes += subtree_nodes;
    pl->cost = cost;
    const PredNameInterner& interner = p->ctx.Interner();
    std::vector<int> ids = JoinPredIdsOf(sub, &p->ctx);
    for (const DEdge& e : p->ctx.dedges) {
      if (!Contains(ids, e.src_pred)) continue;
      MemoDEdge d;
      d.src_pred = interner.NameOf(e.src_pred);
      d.label_a = interner.NameOf(e.label_a);
      d.label_b = interner.NameOf(e.label_b);
      d.vnode = e.vnode;
      pl->dedges.push_back(std::move(d));
    }
    pl->next_vnode = p->ctx.next_vnode;
    int64_t bytes =
        static_cast<int64_t>(sizeof(MemoPayload)) + subtree_nodes * 160;
    for (const MemoExtKey& k : pl->ext_keys) {
      bytes += static_cast<int64_t>(sizeof(MemoExtKey) + k.src.size() +
                                    k.a.size() + k.b.size());
    }
    for (const MemoDEdge& d : pl->dedges) {
      bytes += static_cast<int64_t>(sizeof(MemoDEdge) + d.src_pred.size() +
                                    d.label_a.size() + d.label_b.size());
    }
    pl->bytes = bytes;
    return pl;
  }

  void PublishShared(uint64_t map_key,
                     const std::shared_ptr<const MemoPayload>& payload) {
    if (memo_ == nullptr) return;
    memo_->Publish(map_key, payload, gen_, leader_);
  }

  void Graft(APlan* p, RelSet s, const MemoPayload& entry) {
    Plan* dst = SubtreeOf(p->root.get(), s);
    // Drop dependency edges owned by the replaced subplan.
    std::vector<int> replaced = JoinPredIdsOf(dst, &p->ctx);
    std::vector<DEdge> kept;
    for (const DEdge& e : p->ctx.dedges) {
      if (!Contains(replaced, e.src_pred)) kept.push_back(e);
    }
    // Graft a clone with compensation-group ids remapped into p's id space,
    // and import the graft's dependency edges. Entry d-edges carry names
    // (the producer's interner is gone); re-intern them here.
    PlanPtr graft = entry.subtree->Clone();
    stats.cloned_nodes += CountNodes(graft.get());
    int offset = p->ctx.next_vnode;
    RemapVnodes(graft.get(), offset);
    PredNameInterner& interner = p->ctx.Interner();
    for (const MemoDEdge& moved : entry.dedges) {
      DEdge e;
      e.src_pred = interner.InternName(moved.src_pred);
      e.label_a = interner.InternName(moved.label_a);
      e.label_b = interner.InternName(moved.label_b);
      e.vnode = moved.vnode >= 0 ? moved.vnode + offset : moved.vnode;
      kept.push_back(e);
    }
    p->ctx.next_vnode += entry.next_vnode;
    p->ctx.dedges = std::move(kept);
    PlanPtr* slot = FindSlot(p->root, dst);
    ECA_CHECK(slot != nullptr);
    *slot = std::move(graft);
  }

  const CostModel* cost_;
  SharedState* shared_;
  const EnumeratorOptions& opt_;
  SharedMemo* memo_;  // null only in the unsafe_ignore_dedges ablation
  const uint64_t query_fp_;
  const uint64_t epoch_;
  const uint64_t gen_;
  const bool leader_;
  MemoProbeStats memo_stats_;
  // Task-local layer: everything this task stored, always visible to
  // itself. Collisions on the 64-bit index land in one bucket and are told
  // apart by the stored full key. Payloads are shared with the table.
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const MemoPayload>>>
      local_memo_;
  std::unordered_map<const Predicate*, uint64_t> pred_fp_;
  std::unordered_map<uint64_t, double> cost_memo_;
};

bool Search::GenerateSubplan(APlan* p, const std::optional<NodePath>& i_path,
                             RelSet s, double bound) {
  if (shared_->Exhausted()) return false;
  shared_->subplan_calls.fetch_add(1, std::memory_order_relaxed);
  if (s.Count() <= 1) {
    // Best access path: a scan of the base relation (the only access path
    // in this engine; bestAccess[] hook of Algorithm 1).
    return true;
  }

  Probe probe;
  if (opt_.reuse_subplans) {
    probe = MakeProbe(p, s);
    if (const MemoPayload* entry = FindEntry(probe, s)) {
      ++stats.reuses;
      Graft(p, s, *entry);
      return true;
    }
  }

  std::vector<JoinablePair> pairs = JoinablePairs(p->root.get(), s);
  if (pairs.empty()) return false;
  // Record each pair's node path up front: the node pointers die with the
  // first snapshot restore, the paths stay valid (restored trees are
  // structurally identical).
  std::vector<NodePath> pair_paths(pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    bool found = PathTo(p->root.get(), pairs[k].node, &pair_paths[k]);
    ECA_CHECK(found);
  }

  // Clone-light state management. Every mutation made while positioning a
  // join for pair k — the SwapUp chain and both recursions — stays inside
  // the child slot of the i node that contains pair k's join (SwapUp only
  // rewrites at and below the rising join's parent, which sits strictly
  // below i until the chain terminates). So instead of deep-copying the
  // whole plan per pair like the seed enumerator, we snapshot just that
  // slot's subtree (lazily, per side) and restore it before the next pair.
  // Slot keys: 0/1 = left/right child slot of the i node, 2 = the plan
  // root (top-level calls, and the conservative fallback when a pair's
  // join is not under the i node — the swap chain will fail for those, but
  // it may still canonicalize nodes it touches).
  auto slot_key_of = [&](size_t k) -> int {
    if (!i_path.has_value()) return 2;
    const NodePath& ip = *i_path;
    if (pair_paths[k].size() > ip.size() &&
        std::equal(ip.begin(), ip.end(), pair_paths[k].begin())) {
      return pair_paths[k][ip.size()] == 0 ? 0 : 1;
    }
    return 2;
  };
  auto slot_of = [&](int key) -> PlanPtr* {
    if (key == 2) return &p->root;
    Plan* i_node = ResolvePath(p->root.get(), *i_path);
    ECA_CHECK(i_node != nullptr && i_node->is_join());
    return key == 0 ? &i_node->mutable_left() : &i_node->mutable_right();
  };

  PlanPtr snapshots[3];
  RewriteContext saved_ctx = p->ctx;
  int dirty_key = -1;

  PlanPtr best_subtree;
  RewriteContext best_ctx;
  int best_key = -1;
  double best_cost = kInf;

  for (size_t k = 0; k < pairs.size(); ++k) {
    if (shared_->Exhausted()) break;
    if (FaultInjector::ShouldFail(FaultPoint::kAllocation)) {
      // Simulated clone-allocation failure: stop expanding this search
      // branch and settle for the best plan found so far.
      shared_->Trip(BudgetTrigger::kAllocationFault, /*hard=*/true);
      break;
    }
    ++stats.pairs_considered;
    if (dirty_key >= 0) {
      PlanPtr* dirty_slot = slot_of(dirty_key);
      *dirty_slot = snapshots[dirty_key]->Clone();
      stats.cloned_nodes += CountNodes(dirty_slot->get());
      p->ctx = saved_ctx;
      dirty_key = -1;
    }
    const int key = slot_key_of(k);
    PlanPtr* slot = slot_of(key);
    if (snapshots[key] == nullptr) {
      snapshots[key] = (*slot)->Clone();
      stats.cloned_nodes += CountNodes(snapshots[key].get());
    }
    // dirty_key is set lazily, at the first mutation this pair commits (a
    // SwapUp that reports a tree change, or a successful recursion). Pairs
    // whose swap chain fails without touching the tree — the common way a
    // decomposition dies — then cost no restore clone at the next pair.
    // A failed recursion needs no mark either: GenerateSubplan's failure
    // contract restores content exactly, so the slot is as the pair found
    // it.

    const JoinablePair& pair = pairs[k];
    Plan* j = ResolvePath(p->root.get(), pair_paths[k]);
    Plan* i_node =
        i_path.has_value() ? ResolvePath(p->root.get(), *i_path) : nullptr;
    // Pruning uses two cuts with different strictness. Against the local
    // best, >= is right: a candidate at or above it can never strictly
    // improve, which is all this loop asks. Against the inherited bound the
    // cut must be tie-permissive (strictly above, plus slack so rounding
    // only loosens it): a candidate costing exactly `bound` has to
    // complete, because callers — ultimately the root merge — distinguish
    // equal-cost plans by fingerprint, and the no-prune search would have
    // produced that tie candidate.
    const double tie_slack =
        bound < kInf ? 1e-9 * (std::abs(bound) + 1.0) : 0.0;
    const double eff_bound = opt_.prune ? std::min(bound, best_cost) : kInf;

    // Move j upward until its parent join is i (Algorithm 2, steps 6-7).
    bool feasible = true;
    int chain = 0;
    while (ParentJoin(p->root.get(), j) != i_node) {
      if (shared_->Exhausted()) {
        feasible = false;
        break;
      }
      ++stats.swaps_attempted;
      Plan* risen = nullptr;
      if (FaultInjector::ShouldFail(FaultPoint::kRewriteRule)) {
        // Simulated rewrite-rule failure: the swap is reported infeasible
        // (soft trigger — other decompositions may still complete).
        shared_->Trip(BudgetTrigger::kRewriteFault, /*hard=*/false);
      } else {
        bool sw_changed = false;
        risen = SwapUp(p->root, j, &p->ctx, &sw_changed);
        if (sw_changed) dirty_key = key;
      }
      if (risen == nullptr) {
        ++stats.swaps_failed;
        feasible = false;
        break;
      }
      j = risen;
      if (++chain > opt_.max_swap_chain) {
        ++stats.swap_chain_guard_trips;
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Recurse into the two sides (steps 8-9). j's child subtrees cover
    // pair.s1 and pair.s2 (in some orientation).
    NodePath j_path;
    if (!PathTo(p->root.get(), j, &j_path)) continue;
    RelSet left_set = j->left()->leaves();
    RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                       ? pair.s1
                       : pair.s2;
    RelSet second = first == pair.s1 ? pair.s2 : pair.s1;

    if (!GenerateSubplan(p, j_path, first, eff_bound)) continue;
    dirty_key = key;  // a successful recursion rewrote the slot's subtree
    double c1 = 0;
    if (opt_.prune) {
      // The cost model is additive with non-negative terms, so the first
      // side's cost is a lower bound on the candidate's final cost.
      c1 = SubtreeCost(*p, first);
      if (c1 >= best_cost || c1 > bound + tie_slack) {
        ++stats.prunes;
        continue;
      }
    }
    // Bound for the second side: what is left of eff_bound after paying
    // c1, slackened by one epsilon so floating-point rounding can only
    // loosen the pruning (never discard a would-be winner).
    const double bound2 =
        opt_.prune ? eff_bound - c1 + 1e-9 * (std::abs(eff_bound) + 1.0)
                   : kInf;
    if (!GenerateSubplan(p, j_path, second, bound2)) continue;

    double cost = SubtreeCost(*p, s);
    if (!i_path.has_value()) ++stats.plans_completed;
#ifndef NDEBUG
    if (opt_.prune) {
      // The pruning rule is sound only while child costs lower-bound the
      // parent cost; verify the cost model still satisfies that.
      ECA_CHECK(cost >= c1);
      double c2 = SubtreeCost(*p, second);
      ECA_CHECK(cost + 1e-6 * (std::abs(cost) + 1.0) >= c1 + c2);
    }
#endif
    if (cost < best_cost) {
      best_cost = cost;
      best_key = key;
      // Move the winner out instead of cloning it: the slot is dirty and
      // will be restored from its snapshot before the next pair anyway (or
      // refilled by the install below when this pair is the last).
      best_subtree = std::move(*slot_of(key));
      best_ctx = p->ctx;
    }
  }

  if (best_subtree != nullptr) {
    if (dirty_key >= 0 && dirty_key != best_key && best_key != 2) {
      *slot_of(dirty_key) = std::move(snapshots[dirty_key]);
    }
    *slot_of(best_key) = std::move(best_subtree);
    p->ctx = std::move(best_ctx);
    // Cache only a best the bound did not constrain: under a finite bound,
    // pruned candidates might have beaten this one for other callers.
    if (opt_.reuse_subplans && best_cost < bound) {
      StoreEntry(p, s, probe, best_cost);
    }
    return true;
  }
  if (dirty_key >= 0) {
    PlanPtr* dirty_slot = slot_of(dirty_key);
    *dirty_slot = std::move(snapshots[dirty_key]);
    p->ctx = std::move(saved_ctx);
  }
  return false;
}

}  // namespace

const char* BudgetTriggerName(BudgetTrigger trigger) {
  switch (trigger) {
    case BudgetTrigger::kNone:
      return "none";
    case BudgetTrigger::kEnumeratedNodes:
      return "max_enumerated_nodes";
    case BudgetTrigger::kMemoEntries:
      return "max_memo_entries";
    case BudgetTrigger::kWallClock:
      return "wall_clock_ms";
    case BudgetTrigger::kInjectedFault:
      return "injected-budget-fault";
    case BudgetTrigger::kAllocationFault:
      return "injected-allocation-fault";
    case BudgetTrigger::kRewriteFault:
      return "injected-rewrite-fault";
    case BudgetTrigger::kSizesOnlyFallback:
      return "sizes-only-fallback";
  }
  return "unknown";
}

namespace {

// One registry delta per Optimize() call, so a snapshot diff around a
// single call reproduces Result::stats (asserted by metrics_test).
void PublishEnumeratorStats(const EnumeratorStats& s) {
  auto& reg = MetricsRegistry::Global();
  static Counter* const subplan_calls = reg.counter("enum.subplan_calls");
  static Counter* const pairs = reg.counter("enum.pairs_considered");
  static Counter* const swaps = reg.counter("enum.swaps_attempted");
  static Counter* const swaps_failed = reg.counter("enum.swaps_failed");
  static Counter* const completed = reg.counter("enum.plans_completed");
  static Counter* const memo_hits = reg.counter("enum.memo_hits");
  static Counter* const memo_entries = reg.counter("enum.memo_entries");
  static Counter* const prunes = reg.counter("enum.bb_prunes");
  static Counter* const cost_evals = reg.counter("enum.cost_evals");
  static Counter* const cost_memo_hits = reg.counter("enum.cost_memo_hits");
  static Counter* const cloned = reg.counter("enum.cloned_nodes");
  static Counter* const guard = reg.counter("enum.swap_chain_guard_trips");
  static Counter* const collisions = reg.counter("enum.sig_collisions");
  static Counter* const root_tasks = reg.counter("enum.root_tasks");
  static Counter* const degraded = reg.counter("enum.degraded_runs");
  subplan_calls->Add(s.subplan_calls);
  pairs->Add(s.pairs_considered);
  swaps->Add(s.swaps_attempted);
  swaps_failed->Add(s.swaps_failed);
  completed->Add(s.plans_completed);
  memo_hits->Add(s.reuses);
  memo_entries->Add(s.cache_entries);
  prunes->Add(s.prunes);
  cost_evals->Add(s.cost_evals);
  cost_memo_hits->Add(s.cost_memo_hits);
  cloned->Add(s.cloned_nodes);
  guard->Add(s.swap_chain_guard_trips);
  collisions->Add(s.sig_collisions);
  root_tasks->Add(s.root_tasks);
  if (s.degraded) degraded->Increment();
}

}  // namespace

TopDownEnumerator::Result TopDownEnumerator::Optimize(const Plan& query) {
  TraceSpan span("enumerate");
  Result result = OptimizeImpl(query);
  PublishEnumeratorStats(result.stats);
  if (span.active()) {
    span.AppendArg("subplan_calls",
                   static_cast<long long>(result.stats.subplan_calls));
    span.AppendArg("memo_hits", static_cast<long long>(result.stats.reuses));
    span.AppendArg("prunes", static_cast<long long>(result.stats.prunes));
    if (result.stats.degraded) {
      span.AppendArg("degraded", BudgetTriggerName(result.stats.trigger));
    }
  }
  return result;
}

TopDownEnumerator::Result TopDownEnumerator::OptimizeImpl(const Plan& query) {
  SharedState shared;
  shared.options = &options_;
  shared.deadline_ms = options_.budget.wall_clock_ms > 0
                           ? SteadyNowMs() + options_.budget.wall_clock_ms
                           : 0;

  APlan init;
  init.root = query.Clone();
  SimplifyOuterJoins(init.root.get());
  init.ctx.policy = options_.policy;

  RelSet all = init.root->leaves();

  // Mirror the seed enumerator's top-level GenerateSubplan entry: the gate
  // check, the call count, and the trivial single-relation return.
  const bool root_live = !shared.Exhausted();
  if (root_live) {
    shared.subplan_calls.fetch_add(1, std::memory_order_relaxed);
  }

  Result result;
  if (root_live && all.Count() <= 1) {
    result.plan = std::move(init.root);
    result.cost = cost_->Cost(*result.plan);
    result.stats.subplan_calls = 1;
    return result;
  }

  std::vector<JoinablePair> pairs;
  std::vector<NodePath> pair_paths;
  if (root_live) {
    pairs = JoinablePairs(init.root.get(), all);
    pair_paths.resize(pairs.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      bool found = PathTo(init.root.get(), pairs[k].node, &pair_paths[k]);
      ECA_CHECK(found);
    }
  }

  // ABLATION (Example 5.1): unsafe_ignore_dedges exists to demonstrate that
  // reuse without the d-edge guard corrupts plans, and the demonstration
  // needs the seed enumerator's semantics — one memo shared across every
  // root pair (isolated per-pair memos leave too few unsound reuse
  // opportunities to reliably misbehave). The mode runs sequentially with a
  // shared interner and a purely task-local memo.
  const bool share_memo = options_.unsafe_ignore_dedges;

  // The shared memo: the caller's cross-query plan cache when provided,
  // else a private per-query table (the tasks of this query still share
  // it). Generation and epoch are captured once so every task keys its
  // entries identically even if the owner advances the epoch mid-flight.
  std::unique_ptr<SharedMemo> private_memo;
  SharedMemo* memo = nullptr;
  if (!share_memo && !pairs.empty()) {
    memo = options_.shared_memo;
    if (memo == nullptr) {
      // Private tables sized to the query: entry counts grow roughly
      // exponentially in the relation count, and over-allocating costs
      // real time per query (first-touch page faults dominate small
      // enumerations). Saturation only drops publishes, which is safe.
      SharedMemo::Config cfg;
      const int n = static_cast<int>(all.Count());
      cfg.slot_count = size_t{1} << std::min(13, n + 3);
      cfg.cost_slot_count = size_t{1} << std::min(15, n + 5);
      private_memo = std::make_unique<SharedMemo>(cfg);
      memo = private_memo.get();
    }
  }
  struct MemoPin {
    SharedMemo* memo = nullptr;
    ~MemoPin() {
      if (memo != nullptr) memo->Unpin();
    }
  } pin;
  uint64_t gen = 0;
  uint64_t epoch = 0;
  uint64_t query_fp = 0;
  if (memo != nullptr) {
    memo->Pin();
    pin.memo = memo;
    gen = memo->BeginQuery();
    epoch = memo->epoch();
    // Entries are keyed by the whole simplified query's fingerprint:
    // cross-query reuse happens only between structurally identical
    // queries, where a subplan's full surrounding context — and therefore
    // Theorem 5.4's external-d-edge reasoning — is known to transfer.
    std::unordered_map<const Predicate*, uint64_t> fp_cache;
    query_fp = PlanFingerprint(*init.root, &fp_cache);
  }

  // One task per root joinable pair: its own clone of the initial plan,
  // its own rewrite context and its own Search. Beyond the budget
  // counters, tasks share only the SharedMemo — whose (gen, leader)
  // visibility rule admits exactly the entries of completed earlier
  // queries and of this query's leader — so every task computes the same
  // result at any thread count and the merge is deterministic.
  struct RootTask {
    bool found = false;
    PlanPtr plan;
    double cost = kInf;
    uint64_t fingerprint = 0;
    EnumeratorStats stats;
  };
  std::vector<RootTask> tasks(pairs.size());

  std::unique_ptr<Search> shared_search;
  std::shared_ptr<PredNameInterner> shared_interner;
  if (share_memo) {
    shared_search =
        std::make_unique<Search>(cost_, &shared, options_, nullptr,
                                 /*query_fp=*/0, /*epoch=*/0,
                                 /*gen=*/0, /*leader=*/false);
    shared_interner = std::make_shared<PredNameInterner>();
  }

  // Leader/follower schedule (normal mode). The first few root pairs —
  // the leader prefix — run sequentially at EVERY thread count, each
  // publishing leader-visible memo entries and tightening the root bound
  // for its successors; this seeds the shared memo with the densest reuse
  // surface (it replaces the old wave-barrier absorb, without barriers).
  // The remaining pairs — the followers — then run barrier-free: workers
  // claim pair indices from an atomic cursor and publish into the shared
  // memo as subplans are proven. Follower publishes stay invisible to
  // sibling followers (the visibility rule above), so everything a task
  // observes is a function of the query, the cache's pre-query content
  // and the deterministic sequential prefix — never of sibling timing or
  // thread count.
  const int64_t total = static_cast<int64_t>(pairs.size());
  constexpr int64_t kLeaderPrefix = 4;
  const int64_t prefix = std::min(total, kLeaderPrefix);
  auto leader_interner = std::make_shared<PredNameInterner>();
  // The global best at root level. Tightened only between sequential
  // prefix tasks, then FROZEN before any follower starts — never
  // mid-flight: a moving bound would keep the chosen COST deterministic
  // but not the chosen BYTES, because which equal-cost realization a task
  // settles on depends on its bound trajectory. Candidates a tighter
  // bound would have cut lose the deterministic root merge anyway.
  std::atomic<double> root_bound{kInf};

  auto run_pair = [&](int64_t k) {
    RootTask& task = tasks[static_cast<size_t>(k)];
    TraceSpan pair_span("root-pair");
    if (pair_span.active()) pair_span.AppendArg("k", k);
    if (shared.Exhausted()) return;
    if (FaultInjector::ShouldFail(FaultPoint::kAllocation)) {
      shared.Trip(BudgetTrigger::kAllocationFault, /*hard=*/true);
      return;
    }
    const bool is_leader = !share_memo && k < prefix;
    std::unique_ptr<Search> own_search;
    if (!share_memo) {
      own_search = std::make_unique<Search>(cost_, &shared, options_, memo,
                                            query_fp, epoch, gen, is_leader);
    }
    Search& search = share_memo ? *shared_search : *own_search;
    ++search.stats.pairs_considered;

    APlan p;
    p.root = init.root->Clone();
    search.stats.cloned_nodes += CountNodes(p.root.get());
    p.ctx.policy = options_.policy;
    if (share_memo) {
      p.ctx.interner = shared_interner;
    } else if (is_leader) {
      // Prefix tasks run sequentially and share one interner (append-only,
      // single-threaded), so the fork the followers take below covers
      // every name the whole prefix discovered.
      p.ctx.interner = leader_interner;
    } else {
      // Fork the prefix's interner WITH its pointer cache: the follower
      // works on clones of the same initial plan and Plan::Clone shares
      // predicate objects, so the cached addresses stay valid and the
      // fork skips re-rendering every display name — the dominant
      // per-follower setup cost in profiles.
      p.ctx.interner =
          std::make_shared<PredNameInterner>(leader_interner->ForkWithPins());
    }

    const JoinablePair& pair = pairs[static_cast<size_t>(k)];
    Plan* j = ResolvePath(p.root.get(), pair_paths[static_cast<size_t>(k)]);
    bool feasible = true;
    int chain = 0;
    while (ParentJoin(p.root.get(), j) != nullptr) {
      if (shared.Exhausted()) {
        feasible = false;
        break;
      }
      ++search.stats.swaps_attempted;
      Plan* risen = nullptr;
      if (FaultInjector::ShouldFail(FaultPoint::kRewriteRule)) {
        shared.Trip(BudgetTrigger::kRewriteFault, /*hard=*/false);
      } else {
        risen = SwapUp(p.root, j, &p.ctx);
      }
      if (risen == nullptr) {
        ++search.stats.swaps_failed;
        feasible = false;
        break;
      }
      j = risen;
      if (++chain > options_.max_swap_chain) {
        ++search.stats.swap_chain_guard_trips;
        feasible = false;
        break;
      }
    }
    if (feasible) {
      NodePath j_path;
      if (PathTo(p.root.get(), j, &j_path)) {
        RelSet left_set = j->left()->leaves();
        RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                           ? pair.s1
                           : pair.s2;
        RelSet second = first == pair.s1 ? pair.s2 : pair.s1;
        // Pair 0's bound is infinite, never the initial plan's cost: the
        // enumerator returns its best completed plan even when that is
        // worse than the query as written, and a tighter base bound would
        // suppress exactly those plans. Later tasks are bounded by the
        // best cost their deterministic predecessors achieved: a candidate
        // at or above it cannot win the merge (equal-cost ties still
        // complete — the additive cost model means the c1 cut only ever
        // discards strictly worse plans), so the merged result is the same
        // as with an infinite bound.
        const double bound = k == 0 || share_memo || !options_.prune
                                 ? kInf
                                 : root_bound.load(std::memory_order_relaxed);
        const double tie_slack =
            bound < kInf ? 1e-9 * (std::abs(bound) + 1.0) : 0.0;
        bool viable = search.GenerateSubplan(&p, j_path, first, bound);
        double c1 = 0;
        if (viable && bound < kInf) {
          c1 = search.SubtreeCost(p, first);
          // Tie-permissive, like the in-search cut: a plan tying the bound
          // exactly must survive to the fingerprint tie-break.
          if (c1 > bound + tie_slack) {
            ++search.stats.prunes;
            viable = false;
          }
        }
        const double bound2 =
            bound < kInf ? bound - c1 + 1e-9 * (std::abs(bound) + 1.0)
                         : kInf;
        if (viable && search.GenerateSubplan(&p, j_path, second, bound2)) {
          task.cost = search.SubtreeCost(p, all);
          ++search.stats.plans_completed;
          task.fingerprint = search.Fingerprint(*p.root);
          task.plan = std::move(p.root);
          task.found = true;
        }
      }
    }
    if (!share_memo) {
      search.FinishTask();
      task.stats = std::move(search.stats);
    }
  };

  int64_t leader_us = 0;
  int64_t followers_us = 0;
  if (!pairs.empty()) {
    const int64_t t_start = WallNowUs();
    {
      TraceSpan leader_span("root-leader");
      if (leader_span.active()) leader_span.AppendArg("pairs", prefix);
      for (int64_t k = 0; k < prefix; ++k) {
        run_pair(k);
        if (!share_memo && tasks[static_cast<size_t>(k)].found &&
            tasks[static_cast<size_t>(k)].cost <
                root_bound.load(std::memory_order_relaxed)) {
          root_bound.store(tasks[static_cast<size_t>(k)].cost,
                           std::memory_order_relaxed);
        }
        if (shared.Exhausted()) break;
      }
    }
    const int64_t t_leader = WallNowUs();
    leader_us = t_leader - t_start;
    if (total > prefix && !shared.Exhausted()) {
      TraceSpan fan_span("root-followers");
      if (fan_span.active()) fan_span.AppendArg("pairs", total - prefix);
      const bool fan_out = options_.num_threads > 1 && !share_memo &&
                           (options_.pool_spinup_us <= 0 ||
                            leader_us >= options_.pool_spinup_us);
      if (fan_out) {
        // Barrier-free fan-out over a shared cursor: a slow pair never
        // stalls the rest of the queue, and a tripped budget drains it
        // immediately (each claimed pair re-checks Exhausted on entry).
        ThreadPool pool(options_.num_threads);
        std::atomic<int64_t> next{prefix};
        pool.RunOnWorkers([&](int) {
          for (;;) {
            const int64_t k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= total) return;
            run_pair(k);
          }
        });
      } else {
        for (int64_t k = prefix; k < total; ++k) run_pair(k);
      }
    }
    followers_us = WallNowUs() - t_leader;
  }

  // Deterministic merge, independent of completion order: lowest cost wins;
  // equal costs tie-break on the structural fingerprint; remaining ties
  // keep the lowest pair index.
  int best_k = -1;
  for (int k = 0; k < static_cast<int>(tasks.size()); ++k) {
    const RootTask& t = tasks[static_cast<size_t>(k)];
    if (!t.found) continue;
    if (best_k < 0 || t.cost < tasks[static_cast<size_t>(best_k)].cost ||
        (t.cost == tasks[static_cast<size_t>(best_k)].cost &&
         t.fingerprint < tasks[static_cast<size_t>(best_k)].fingerprint)) {
      best_k = k;
    }
  }

  EnumeratorStats stats;
  stats.subplan_calls = shared.subplan_calls.load(std::memory_order_relaxed);
  stats.cache_entries = shared.cache_entries.load(std::memory_order_relaxed);
  stats.root_tasks = static_cast<int64_t>(tasks.size());
  stats.phase_leader_us = leader_us;
  stats.phase_followers_us = followers_us;
  auto accumulate = [&stats](const EnumeratorStats& t) {
    stats.pairs_considered += t.pairs_considered;
    stats.swaps_attempted += t.swaps_attempted;
    stats.swaps_failed += t.swaps_failed;
    stats.plans_completed += t.plans_completed;
    stats.reuses += t.reuses;
    stats.prunes += t.prunes;
    stats.cost_evals += t.cost_evals;
    stats.cost_memo_hits += t.cost_memo_hits;
    stats.cloned_nodes += t.cloned_nodes;
    stats.swap_chain_guard_trips += t.swap_chain_guard_trips;
    stats.sig_collisions += t.sig_collisions;
  };
  for (const RootTask& t : tasks) accumulate(t.stats);
  if (shared_search != nullptr) {
    shared_search->FinishTask();
    accumulate(shared_search->stats);
  }
  {
    std::lock_guard<std::mutex> lock(shared.trip_mu);
    stats.degraded = shared.degraded;
    stats.trigger = shared.trigger;
  }
  result.stats = stats;

  if (best_k < 0) {
    // No complete plan: either no feasible reordering exists at the top
    // (single-relation queries, fully blocked swaps) or the budget ran
    // out before one was found. Fall back to the query as written —
    // always executable and trivially correct.
    result.stats.no_complete_plan = true;
    result.plan = query.Clone();
    result.cost = cost_->Cost(*result.plan);
    return result;
  }
  result.plan = std::move(tasks[static_cast<size_t>(best_k)].plan);
  result.cost = cost_->Cost(*result.plan);
  return result;
}

}  // namespace eca
