#include "enumerate/enumerator.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "rewrite/oj_simplify.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Collects the display names of the join predicates inside `sub`.
void CollectJoinPredNames(const Plan* sub, std::set<std::string>* out) {
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(sub), &joins);
  for (const Plan* j : joins) {
    out->insert(j->pred() ? j->pred()->DisplayName() : "cross");
  }
}

// Collects comp vnode ids in `node`'s subtree.
void CollectVnodes(const Plan* node, std::set<int>* out) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      CollectVnodes(node->left(), out);
      CollectVnodes(node->right(), out);
      return;
    case Plan::Kind::kComp:
      if (node->comp().vnode >= 0) out->insert(node->comp().vnode);
      CollectVnodes(node->child(), out);
      return;
  }
}

void RemapVnodes(Plan* node, int offset) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      RemapVnodes(node->left(), offset);
      RemapVnodes(node->right(), offset);
      return;
    case Plan::Kind::kComp:
      if (node->mutable_comp().vnode >= 0) {
        node->mutable_comp().vnode += offset;
      }
      RemapVnodes(node->child(), offset);
      return;
  }
}

}  // namespace

const char* BudgetTriggerName(BudgetTrigger trigger) {
  switch (trigger) {
    case BudgetTrigger::kNone:
      return "none";
    case BudgetTrigger::kEnumeratedNodes:
      return "max_enumerated_nodes";
    case BudgetTrigger::kMemoEntries:
      return "max_memo_entries";
    case BudgetTrigger::kWallClock:
      return "wall_clock_ms";
    case BudgetTrigger::kInjectedFault:
      return "injected-budget-fault";
    case BudgetTrigger::kAllocationFault:
      return "injected-allocation-fault";
    case BudgetTrigger::kRewriteFault:
      return "injected-rewrite-fault";
  }
  return "unknown";
}

void TopDownEnumerator::Trip(BudgetTrigger trigger, bool hard) {
  // The first trigger wins the report; later ones add no information.
  if (!stats_.degraded) {
    stats_.degraded = true;
    stats_.trigger = trigger;
  }
  if (hard) stop_ = true;
}

bool TopDownEnumerator::Exhausted() {
  if (stop_) return true;
  if (FaultInjector::ShouldFail(FaultPoint::kEnumeratorBudget)) {
    Trip(BudgetTrigger::kInjectedFault, /*hard=*/true);
    return true;
  }
  const EnumeratorBudget& b = options_.budget;
  if (b.max_enumerated_nodes > 0 &&
      stats_.subplan_calls >= b.max_enumerated_nodes) {
    Trip(BudgetTrigger::kEnumeratedNodes, /*hard=*/true);
    return true;
  }
  if (deadline_ms_ > 0 && SteadyNowMs() >= deadline_ms_) {
    Trip(BudgetTrigger::kWallClock, /*hard=*/true);
    return true;
  }
  return false;
}

double TopDownEnumerator::SubtreeCost(const APlan& p, RelSet s) const {
  const Plan* sub = SubtreeOf(p.root.get(), s);
  return cost_->Cost(*sub);
}

std::vector<std::string> TopDownEnumerator::ExtDEdgeKeys(const APlan& p,
                                                         RelSet s) const {
  const Plan* sub = SubtreeOf(p.root.get(), s);
  std::set<std::string> inside_srcs;
  CollectJoinPredNames(sub, &inside_srcs);
  std::set<int> inside_vnodes, all_vnodes;
  CollectVnodes(sub, &inside_vnodes);
  CollectVnodes(p.root.get(), &all_vnodes);
  std::vector<std::string> keys;
  for (const DEdge& e : p.ctx.dedges) {
    if (inside_srcs.find(e.src_pred) == inside_srcs.end()) continue;
    bool external;
    if (e.vnode == DEdge::kContextVnode) {
      // Fold/simplify markers: the dependency is on the causing predicate.
      external = inside_srcs.find(e.label_b) == inside_srcs.end();
    } else {
      bool in = inside_vnodes.count(e.vnode) > 0;
      bool out_exists = all_vnodes.count(e.vnode) > 0 && !in;
      external = !in || out_exists;
    }
    if (external) keys.push_back(e.Key());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

const TopDownEnumerator::APlan* TopDownEnumerator::GetBestPlan(
    const APlan& p, RelSet s,
    const std::vector<std::string>& ext_keys) const {
  auto it = cache_.find(s);
  if (it == cache_.end()) return nullptr;
  if (options_.unsafe_ignore_dedges && !it->second.empty()) {
    return &it->second.front().plan;  // ablation: ignore the guard
  }
  for (const CacheEntry& entry : it->second) {
    if (entry.ext_keys == ext_keys) return &entry.plan;
  }
  (void)p;
  return nullptr;
}

void TopDownEnumerator::UpdateBestPlan(
    const APlan& p, RelSet s, const std::vector<std::string>& ext_keys) {
  double cost = SubtreeCost(p, s);
  std::vector<CacheEntry>& entries = cache_[s];
  for (CacheEntry& entry : entries) {
    if (entry.ext_keys == ext_keys) {
      if (cost < entry.cost) {
        entry.plan = p.Clone();
        entry.cost = cost;
      }
      return;
    }
  }
  if (options_.budget.max_memo_entries > 0 &&
      stats_.cache_entries >= options_.budget.max_memo_entries) {
    // Memo full: keep searching without caching this subplan. The search
    // stays exhaustive (soft trigger), it just loses reuse opportunities.
    Trip(BudgetTrigger::kMemoEntries, /*hard=*/false);
    return;
  }
  entries.push_back({p.Clone(), cost, ext_keys});
  ++stats_.cache_entries;
}

void TopDownEnumerator::GraftSubplan(APlan* p, RelSet s,
                                     const APlan& best) const {
  Plan* dst_sub = SubtreeOf(p->root.get(), s);
  const Plan* src_sub = SubtreeOf(best.root.get(), s);
  // Drop dependency edges owned by the replaced subplan.
  std::set<std::string> replaced_srcs;
  CollectJoinPredNames(dst_sub, &replaced_srcs);
  std::vector<DEdge> kept;
  for (const DEdge& e : p->ctx.dedges) {
    if (replaced_srcs.find(e.src_pred) == replaced_srcs.end()) {
      kept.push_back(e);
    }
  }
  // Graft a clone with compensation-group ids remapped into p's id space,
  // and import the graft's dependency edges.
  PlanPtr graft = src_sub->Clone();
  int offset = p->ctx.next_vnode;
  RemapVnodes(graft.get(), offset);
  std::set<std::string> graft_srcs;
  CollectJoinPredNames(graft.get(), &graft_srcs);
  for (const DEdge& e : best.ctx.dedges) {
    if (graft_srcs.find(e.src_pred) == graft_srcs.end()) continue;
    DEdge moved = e;
    if (moved.vnode >= 0) moved.vnode += offset;
    kept.push_back(std::move(moved));
  }
  p->ctx.next_vnode += best.ctx.next_vnode;
  p->ctx.dedges = std::move(kept);
  PlanPtr* slot = FindSlot(p->root, dst_sub);
  ECA_CHECK(slot != nullptr);
  *slot = std::move(graft);
}

TopDownEnumerator::APlan TopDownEnumerator::GenerateSubplan(
    APlan p, const std::optional<NodePath>& i_path, RelSet s) {
  if (Exhausted()) return APlan();
  ++stats_.subplan_calls;
  if (s.Count() <= 1) {
    // Best access path: a scan of the base relation (the only access path
    // in this engine; bestAccess[] hook of Algorithm 1).
    return p;
  }

  std::vector<std::string> my_ext_keys;
  if (options_.reuse_subplans) {
    my_ext_keys = ExtDEdgeKeys(p, s);
    if (const APlan* cached = GetBestPlan(p, s, my_ext_keys)) {
      ++stats_.reuses;
      GraftSubplan(&p, s, *cached);
      return p;
    }
  }

  APlan best;
  double best_cost = kInf;

  std::vector<JoinablePair> pairs = JoinablePairs(p.root.get(), s);
  for (const JoinablePair& pair : pairs) {
    if (Exhausted()) break;
    if (FaultInjector::ShouldFail(FaultPoint::kAllocation)) {
      // Simulated clone-allocation failure: stop expanding this search
      // branch and settle for the best plan found so far.
      Trip(BudgetTrigger::kAllocationFault, /*hard=*/true);
      break;
    }
    ++stats_.pairs_considered;
    APlan work = p.Clone();
    // Re-locate the pair's join node in the clone.
    std::vector<JoinablePair> clone_pairs = JoinablePairs(work.root.get(), s);
    Plan* j = nullptr;
    for (const JoinablePair& cp : clone_pairs) {
      if (cp.s1 == pair.s1 && cp.s2 == pair.s2) {
        j = cp.node;
        break;
      }
    }
    if (j == nullptr) continue;

    // Move j upward until its parent join is i (Algorithm 2, steps 6-7).
    Plan* i_node =
        i_path.has_value() ? ResolvePath(work.root.get(), *i_path) : nullptr;
    bool feasible = true;
    int guard = 0;
    while (ParentJoin(work.root.get(), j) != i_node) {
      ++stats_.swaps_attempted;
      Plan* risen = nullptr;
      if (FaultInjector::ShouldFail(FaultPoint::kRewriteRule)) {
        // Simulated rewrite-rule failure: the swap is reported infeasible
        // (soft trigger — other decompositions may still complete).
        Trip(BudgetTrigger::kRewriteFault, /*hard=*/false);
      } else {
        risen = SwapUp(work.root, j, &work.ctx);
      }
      if (risen == nullptr) {
        ++stats_.swaps_failed;
        feasible = false;
        break;
      }
      j = risen;
      if (++guard > 128) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Recurse into the two sides (steps 8-9). j's child subtrees cover
    // pair.s1 and pair.s2 (in some orientation).
    NodePath j_path;
    if (!PathTo(work.root.get(), j, &j_path)) continue;
    RelSet left_set = j->left()->leaves();
    RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                       ? pair.s1
                       : pair.s2;
    RelSet second = first == pair.s1 ? pair.s2 : pair.s1;
    APlan done1 = GenerateSubplan(std::move(work), j_path, first);
    if (done1.root == nullptr) continue;
    APlan done2 = GenerateSubplan(std::move(done1), j_path, second);
    if (done2.root == nullptr) continue;

    double cost = SubtreeCost(done2, s);
    if (!i_path.has_value()) ++stats_.plans_completed;
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(done2);
    }
  }

  if (best.root != nullptr && options_.reuse_subplans) {
    UpdateBestPlan(best, s, my_ext_keys);
  }
  return best;
}

TopDownEnumerator::Result TopDownEnumerator::Optimize(const Plan& query) {
  stats_ = EnumeratorStats();
  cache_.clear();
  stop_ = false;
  deadline_ms_ = options_.budget.wall_clock_ms > 0
                     ? SteadyNowMs() + options_.budget.wall_clock_ms
                     : 0;

  APlan init;
  init.root = query.Clone();
  SimplifyOuterJoins(init.root.get());
  init.ctx.policy = options_.policy;

  RelSet all = init.root->leaves();
  APlan best = GenerateSubplan(std::move(init), std::nullopt, all);

  Result result;
  result.stats = stats_;
  if (best.root == nullptr) {
    // No complete plan: either no feasible reordering exists at the top
    // (single-relation queries, fully blocked swaps) or the budget ran
    // out before one was found. Fall back to the query as written —
    // always executable and trivially correct.
    result.plan = query.Clone();
    result.cost = cost_->Cost(*result.plan);
    return result;
  }
  result.plan = std::move(best.root);
  result.cost = cost_->Cost(*result.plan);
  return result;
}

}  // namespace eca
