#include "enumerate/realize.h"

#include "enumerate/subtree.h"
#include "rewrite/oj_simplify.h"

namespace eca {

std::string OrderingNode::Key() const {
  if (is_leaf()) return "R" + std::to_string(rels.SingleId());
  return "(" + left->Key() + "," + right->Key() + ")";
}

namespace {

std::vector<OrderingNodePtr> TreesOver(RelSet s,
                                       const std::vector<RelSet>& preds) {
  std::vector<OrderingNodePtr> out;
  if (s.Count() == 1) {
    auto leaf = std::make_shared<OrderingNode>();
    leaf->rels = s;
    out.push_back(std::move(leaf));
    return out;
  }
  const uint64_t sbits = s.bits();
  const uint64_t low = sbits & (~sbits + 1);
  for (uint64_t m = (sbits - 1) & sbits; m != 0; m = (m - 1) & sbits) {
    if (!(m & low)) continue;
    RelSet s1(m), s2(sbits ^ m);
    int crossing = 0;
    bool feasible = true;
    for (const RelSet& p : preds) {
      if (!s.ContainsAll(p)) continue;
      if (p.Intersects(s1) && p.Intersects(s2)) {
        ++crossing;
      } else if (!s1.ContainsAll(p) && !s2.ContainsAll(p)) {
        feasible = false;
        break;
      }
    }
    if (!feasible || crossing != 1) continue;
    for (const OrderingNodePtr& l : TreesOver(s1, preds)) {
      for (const OrderingNodePtr& r : TreesOver(s2, preds)) {
        auto node = std::make_shared<OrderingNode>();
        node->rels = s;
        if (l->rels.Min() <= r->rels.Min()) {
          node->left = l;
          node->right = r;
        } else {
          node->left = r;
          node->right = l;
        }
        out.push_back(std::move(node));
      }
    }
  }
  return out;
}

// Positions the join for the decomposition (theta.left, theta.right) as the
// direct child join of `i_node` (or the topmost join when i_node is null),
// then recurses into the two sides. Returns false when a required swap is
// infeasible under the policy.
bool RealizeRec(PlanPtr& root, RewriteContext* ctx, const Plan* i_node,
                const OrderingNode& theta) {
  if (theta.is_leaf()) return true;
  RelSet s1 = theta.left->rels, s2 = theta.right->rels;
  // The unique join whose predicate crosses the decomposition.
  std::vector<Plan*> joins;
  CollectJoins(root.get(), &joins);
  Plan* j = nullptr;
  int count = 0;
  for (Plan* cand : joins) {
    RelSet refs = cand->pred() ? cand->pred()->refs() : RelSet();
    if (refs.Intersects(s1) && refs.Intersects(s2) &&
        theta.rels.ContainsAll(refs)) {
      ++count;
      j = cand;
    }
  }
  if (count != 1) return false;
  int guard = 0;
  while (ParentJoin(root.get(), j) != i_node) {
    j = SwapUp(root, j, ctx);
    if (j == nullptr || ++guard > 128) return false;
  }
  // j's children now cover s1 and s2; recurse.
  if (!RealizeRec(root, ctx, j, *theta.left)) return false;
  return RealizeRec(root, ctx, j, *theta.right);
}

}  // namespace

std::vector<OrderingNodePtr> AllJoinOrderingTrees(
    RelSet rels, const std::vector<RelSet>& pred_refs) {
  return TreesOver(rels, pred_refs);
}

PlanPtr RealizeOrdering(const Plan& query, const OrderingNode& theta,
                        SwapPolicy policy) {
  ECA_CHECK(theta.rels == query.leaves());
  PlanPtr root = query.Clone();
  SimplifyOuterJoins(root.get());
  RewriteContext ctx;
  ctx.policy = policy;
  if (!RealizeRec(root, &ctx, nullptr, theta)) return nullptr;
  return root;
}

}  // namespace eca
