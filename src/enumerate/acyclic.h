#ifndef ECA_ENUMERATE_ACYCLIC_H_
#define ECA_ENUMERATE_ACYCLIC_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rel_set.h"
#include "expr/expr.h"

namespace eca {

// Acyclicity detection for the semijoin plan policy
// (docs/planner-policies.md): the query's join predicates are viewed as a
// hypergraph over its relations — one hyperedge per top-level conjunct —
// and reduced with the GYO (Graham / Yu–Ozsoyoglu) ear-removal algorithm.
// Alpha-acyclic queries admit a Yannakakis semijoin-reducer plan
// (enumerate/semijoin.h); everything else falls back to DP enumeration.

// The reference sets of every top-level conjunct in the query's join
// predicates: AND trees are split into their conjuncts (a clique query
// written as one AND-predicate per join contributes one hyperedge per
// pairwise comparison, which is what makes its cycles visible), other
// predicate shapes contribute their whole reference set. Join nodes
// without a predicate (cross products) contribute nothing.
std::vector<RelSet> ConjunctRefSets(const Plan& plan);

// Like ConjunctRefSets, but also hands back the conjunct predicates
// themselves, index-aligned with the returned reference sets.
std::vector<RelSet> ConjunctRefSets(const Plan& plan,
                                    std::vector<PredRef>* preds);

// GYO reduction: repeatedly (a) drop vertices that occur in at most one
// remaining hyperedge, (b) drop hyperedges that became empty or a subset
// of another remaining hyperedge. The hypergraph is (alpha-)acyclic iff
// the reduction consumes every edge. Vertices of `rels` that occur in no
// edge are ignored (an edge-free graph is trivially acyclic; the semijoin
// policy separately requires connectivity).
bool GyoAcyclic(RelSet rels, const std::vector<RelSet>& edges);

// A rooted join tree for the Yannakakis pass: every relation except the
// root hangs under exactly one parent, connected by the AND of all
// conjuncts between the two.
struct SemijoinTree {
  struct Edge {
    int parent = -1;
    int child = -1;
    PredRef pred;
  };
  int root = -1;
  RelSet rels;
  // In BFS order from the root, so edges[i].parent always appears as a
  // child (or the root) before index i.
  std::vector<Edge> edges;
};

// Eligibility test + join-tree construction for the semijoin policy.
// Requires: at least two relations, inner joins only, every conjunct
// referencing exactly two relations, a connected join graph, and GYO
// acyclicity. The root is the relation with the most base rows
// (`table_rows`, indexed by rel id; ties break on the lower id), so the
// reducers trim the probe side before the biggest table is touched.
// Returns false with a one-line reason in `*why` when ineligible.
bool BuildSemijoinTree(const Plan& query,
                       const std::vector<int64_t>& table_rows,
                       SemijoinTree* out, std::string* why);

}  // namespace eca

#endif  // ECA_ENUMERATE_ACYCLIC_H_
