#ifndef ECA_ENUMERATE_SUBTREE_H_
#define ECA_ENUMERATE_SUBTREE_H_

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace eca {

// Path from a root to a node: 0 = left/child slot, 1 = right slot.
using NodePath = std::vector<int>;

// Fills `out` with the path from `root` to `node`; false if absent.
bool PathTo(const Plan* root, const Plan* node, NodePath* out);

// Resolves a path produced by PathTo against (a clone of) the same tree.
Plan* ResolvePath(Plan* root, const NodePath& path);

// subtree(P, S) per Section 5.1: the smallest subtree containing every
// relation in S, extended upward over the compensation operators between
// its root join and the closest ancestor join. Returns nullptr if no
// single subtree covers exactly-or-more of S... (always succeeds for
// S = leaves of some subtree; for other S returns the lowest cover).
Plan* SubtreeOf(Plan* root, RelSet s);
const Plan* SubtreeOf(const Plan* root, RelSet s);

// A decomposition (S1, S2) of S with the unique join node whose predicate
// references both sides (the paper's joinable-pair criterion, Section 5.1).
struct JoinablePair {
  RelSet s1, s2;
  Plan* node = nullptr;
};

// All joinable pairs of S within plan `root` (unordered: s1 contains the
// smallest relation id of S).
std::vector<JoinablePair> JoinablePairs(Plan* root, RelSet s);

// Canonical key of the join ordering realized by `plan` (the unordered
// binary tree over its base relations, ignoring operators and compensation
// nodes) — e.g. "((R0,R1),R2)" with children ordered by smallest member.
std::string OrderingKey(const Plan& plan);

}  // namespace eca

#endif  // ECA_ENUMERATE_SUBTREE_H_
