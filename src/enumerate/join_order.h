#ifndef ECA_ENUMERATE_JOIN_ORDER_H_
#define ECA_ENUMERATE_JOIN_ORDER_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rel_set.h"

namespace eca {

// The space JoinOrder(Q) of Section 3: all unordered binary trees whose
// internal nodes are the query's predicates and whose leaves are its
// relations, such that each predicate references relations in both child
// subtrees of its node. Keys use the same canonical encoding as
// OrderingKey() so the two can be compared directly.
std::set<std::string> AllJoinOrderings(RelSet rels,
                                       const std::vector<RelSet>& pred_refs);

// The number of join orderings (size of the set above).
int64_t CountJoinOrderings(RelSet rels, const std::vector<RelSet>& pred_refs);

// Extracts the predicate reference sets of every join node in a query plan
// (for feeding AllJoinOrderings).
std::vector<RelSet> PredicateRefSets(const Plan& plan);

}  // namespace eca

#endif  // ECA_ENUMERATE_JOIN_ORDER_H_
