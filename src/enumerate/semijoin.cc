#include "enumerate/semijoin.h"

#include <algorithm>
#include <map>
#include <vector>

#include "algebra/join_op.h"

namespace eca {

namespace {

struct Child {
  int rel = -1;
  PredRef pred;
};

// Red(v): the base relation semijoin-reduced against its reduced children.
PlanPtr Reduce(int rel, const std::map<int, std::vector<Child>>& children) {
  PlanPtr plan = Plan::Leaf(rel);
  auto it = children.find(rel);
  if (it == children.end()) return plan;
  for (const Child& c : it->second) {
    plan = Plan::Join(JoinOp::kLeftSemi, c.pred, std::move(plan),
                      Reduce(c.rel, children));
  }
  return plan;
}

// J(v): the reduced relations inner-joined along the same tree.
PlanPtr JoinDown(int rel, const std::map<int, std::vector<Child>>& children) {
  PlanPtr plan = Reduce(rel, children);
  auto it = children.find(rel);
  if (it == children.end()) return plan;
  for (const Child& c : it->second) {
    plan = Plan::Join(JoinOp::kInner, c.pred, std::move(plan),
                      JoinDown(c.rel, children));
  }
  return plan;
}

}  // namespace

PlanPtr BuildYannakakisPlan(const SemijoinTree& tree) {
  if (tree.root < 0) return nullptr;
  std::map<int, std::vector<Child>> children;
  for (const SemijoinTree::Edge& e : tree.edges) {
    children[e.parent].push_back({e.child, e.pred});
  }
  for (auto& entry : children) {
    std::sort(entry.second.begin(), entry.second.end(),
              [](const Child& a, const Child& b) { return a.rel < b.rel; });
  }
  return JoinDown(tree.root, children);
}

}  // namespace eca
