#ifndef ECA_ENUMERATE_SHARED_MEMO_H_
#define ECA_ENUMERATE_SHARED_MEMO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/concurrent_table.h"
#include "common/memory_tracker.h"
#include "common/rel_set.h"

namespace eca {

// One external dependency edge of a memo entry (Theorem 5.4's reuse
// guard), in interner-independent form: the display-name strings of the
// participating predicates plus their FNV hashes. Strings are compared
// exactly on probe, so a hash collision can never cause a wrong reuse —
// it only costs a chain hop (counted as a sig collision). Keys are kept
// canonically sorted so two searches that discovered the same external
// set in different orders still match.
struct MemoExtKey {
  uint64_t src_hash = 0;
  uint64_t a_hash = 0;
  uint64_t b_hash = 0;
  std::string src;
  std::string a;
  std::string b;

  friend bool operator==(const MemoExtKey& x, const MemoExtKey& y) {
    return x.src_hash == y.src_hash && x.a_hash == y.a_hash &&
           x.b_hash == y.b_hash && x.src == y.src && x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const MemoExtKey& x, const MemoExtKey& y) {
    if (x.src_hash != y.src_hash) return x.src_hash < y.src_hash;
    if (x.a_hash != y.a_hash) return x.a_hash < y.a_hash;
    if (x.b_hash != y.b_hash) return x.b_hash < y.b_hash;
    if (x.src != y.src) return x.src < y.src;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

// A d-edge carried by a memoized subtree, with predicate names as strings
// so the entry can be grafted into any consumer's interner.
struct MemoDEdge {
  std::string src_pred;
  std::string label_a;
  std::string label_b;
  int vnode = 0;
};

// An immutable proven-optimal subplan entry. Entries store true optima
// for their (relation set, external-edge set) — the enumerator only
// publishes when the bounded search completed below its bound, which by
// the additive-cost cut argument means no better realization exists — so
// a value is a pure function of its full key and publishing is
// order-independent.
struct MemoPayload {
  // Full key, verified exactly on probe (the map key is only a hash).
  uint64_t query_fp = 0;  // fingerprint of the whole simplified query
  RelSet s;               // relations covered by the subtree
  int policy = 0;         // SwapPolicy
  uint64_t epoch = 0;     // stats epoch the costs were computed under
  std::vector<MemoExtKey> ext_keys;  // sorted external d-edge signature

  // Value.
  PlanPtr subtree;  // never mutated after publish; consumers clone
  double cost = 0.0;
  std::vector<MemoDEdge> dedges;  // d-edges local to the subtree
  int next_vnode = 1;             // vnode headroom the subtree consumes
  int64_t bytes = 0;              // charge estimate for the tracker
};

// Chain node: immutable after publish except for the LRU stamp.
struct MemoNode {
  std::atomic<MemoNode*> next{nullptr};
  uint64_t gen = 0;    // generation (BeginQuery tick) that published it
  bool leader = false;  // published by the generation's leader task
  std::atomic<uint64_t> last_used{0};  // generation of the last hit (LRU)
  std::shared_ptr<const MemoPayload> payload;
};

// A probe for SharedMemo::Find. `ext_keys` must be canonically sorted.
struct MemoProbe {
  uint64_t map_key = 0;
  uint64_t query_fp = 0;
  RelSet s;
  int policy = 0;
  uint64_t epoch = 0;
  const std::vector<MemoExtKey>* ext_keys = nullptr;
  // unsafe_ignore_dedges ablation: match on `s` alone, ignoring the
  // external signature (deliberately unsound, kept for the paper's
  // Theorem 5.4 counterexamples).
  bool ignore_ext = false;
};

enum class MemoPublishResult {
  kStoredNew,        // first entry for this full key
  kStoredImproved,   // cheaper than the visible entry for the key
  kSkippedDuplicate, // a visible entry is already as cheap
  kRejectedFull,     // probe window saturated; entry dropped
  kRejectedMemory,   // byte budget exhausted; entry dropped
};

// One exported cache entry: the map key it was filed under, the
// generation that published it (for incremental append watermarks) and a
// shared reference to the immutable payload. Snapshots serialize these;
// Import() files them back in (see cache_store.h).
struct MemoExportEntry {
  uint64_t map_key = 0;
  uint64_t gen = 0;
  std::shared_ptr<const MemoPayload> payload;
};

// Per-enumeration probe counters, accumulated locally by each search task
// and folded into the memo.* metrics once per task (per-probe global
// atomics would put contention right back on the lock-free read path).
struct MemoProbeStats {
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t sig_collisions = 0;
  int64_t cost_probes = 0;
  int64_t cost_hits = 0;
};

// Concurrent, fingerprint-keyed memo of proven-optimal subplans, shared
// by the enumeration tasks of one query and — when owned by the service —
// across queries as a plan cache (docs/performance.md, "Shared memo &
// plan cache").
//
// Thread model: Pin() once per enumeration, then Find/Publish/Cost* are
// lock-free; Sweep/Clear take the exclusive side of the gate and may
// rebuild the table wholesale. BeginQuery hands out a monotonic
// generation used for the determinism-critical visibility rule:
//
//   a node is visible to a probe of generation G iff
//     node.gen < G            (published by a completed earlier query), or
//     node.gen == G && leader (published by this query's leader task).
//
// Follower tasks keep their own publishes in task-local maps (always
// visible to themselves), so what any task can observe is a function of
// the cache's pre-query content, the leader's deterministic sequential
// run, and the task's own work — never of sibling-task timing. That is
// the whole byte-identical-at-any-thread-count argument; the chain walk
// resolves equal-cost ties toward the oldest visible entry, which
// reproduces the sequential first-stored-wins order.
class SharedMemo {
 public:
  struct Config {
    size_t slot_count = 1 << 13;       // chain-table slots (rounded up)
    size_t cost_slot_count = 1 << 13;  // cost-table slots (rounded up)
    // Byte budget for cached entries; 0 means unlimited (per-query
    // private memos). Publishes beyond the budget are rejected until the
    // next Sweep.
    int64_t max_bytes = 0;
    // When set, entry bytes are charged to a child of this tracker (the
    // service points it at the global root).
    MemoryTracker* parent = nullptr;
  };

  explicit SharedMemo(const Config& config);
  SharedMemo() : SharedMemo(Config{}) {}
  ~SharedMemo();

  SharedMemo(const SharedMemo&) = delete;
  SharedMemo& operator=(const SharedMemo&) = delete;

  // Hot-path gate: hold a pin for the duration of an enumeration.
  void Pin() { gate_.Pin(); }
  void Unpin() { gate_.Unpin(); }

  // New monotonic generation for a starting query (also the LRU clock).
  uint64_t BeginQuery() {
    return gen_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // The latest generation handed out so far. The persistence layer records
  // this as the snapshot watermark: a later incremental append exports
  // only entries published after it.
  uint64_t generation() const { return gen_.load(std::memory_order_relaxed); }

  // Stats epoch: bumped when base-relation statistics change. The epoch
  // is part of every entry's full key, so advancing it instantly makes
  // all older entries unreachable; Sweep() reclaims their bytes.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void AdvanceEpoch();

  // Cheapest visible entry matching `probe` exactly (nullptr on miss);
  // requires a pin. Ties resolve to the oldest entry.
  const MemoPayload* Find(const MemoProbe& probe, uint64_t gen,
                          MemoProbeStats* stats);

  // Publishes an entry; requires a pin. `gen`/`leader` tag visibility as
  // described above. Rejections are safe (they can only cost rework).
  MemoPublishResult Publish(uint64_t map_key,
                            std::shared_ptr<const MemoPayload> payload,
                            uint64_t gen, bool leader);

  // Shared subtree-cost memo, keyed by FpMix(plan fingerprint, epoch).
  // Costs are a pure function of the key, so cross-task sharing cannot
  // perturb results. Requires a pin.
  bool CostLookup(uint64_t key, double* value) {
    return cost_table_.Lookup(key, value);
  }
  void CostPublish(uint64_t key, double value) {
    cost_table_.Publish(key, value);
  }

  // Folds one task's local probe counters into the memo.* metrics.
  void AccumulateProbeStats(const MemoProbeStats& stats);

  // Persistence (docs/robustness.md, "Crash safety & persistence").
  //
  // ExportEntries snapshots every live entry of the current epoch whose
  // publishing generation is >= min_gen (0 exports everything, including
  // previously imported entries, which live at generation 0). Takes the
  // exclusive side of the gate, so it waits for in-flight enumerations;
  // the result is deterministic for a given cache state: sorted by
  // (map_key, chain depth oldest-first).
  std::vector<MemoExportEntry> ExportEntries(uint64_t min_gen = 0);

  // Files a deserialized entry back in at generation 0 / non-leader, which
  // the visibility rule (gen < G for every BeginQuery generation G >= 1)
  // makes visible to all future queries — and which a min_gen >= 1 export
  // never re-exports, so append logs don't accrete duplicates. Duplicate
  // or more-expensive entries dedup exactly like live publishes. Pins
  // internally; safe to call while the service is accepting queries.
  MemoPublishResult Import(uint64_t map_key,
                           std::shared_ptr<const MemoPayload> payload);

  // Maintenance (exclusive; waits for / excludes pinned enumerations).
  // Sweep drops entries from stale epochs, then evicts
  // least-recently-used entries until under the byte budget. TrySweep
  // skips (returning false) when an enumeration is in flight.
  void Sweep();
  bool TrySweep();
  // Drops everything and returns every tracked byte (service drain).
  void Clear();

  int64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  int64_t entry_count() const {
    return entry_count_.load(std::memory_order_relaxed);
  }
  int64_t max_bytes() const { return max_bytes_; }

 private:
  void SweepLocked();
  // Drops nodes selected by `keep` (called with every node; return false
  // to evict) and rebuilds the chain table. Gate held exclusively.
  template <typename Keep>
  void RebuildLocked(Keep&& keep);
  void ReleaseNode(MemoNode* node);

  ReaderGate gate_;
  ConcurrentChainTable<MemoNode> table_;
  ConcurrentCostTable cost_table_;
  const int64_t max_bytes_;
  std::unique_ptr<MemoryTracker> tracker_;  // child of config.parent
  std::atomic<uint64_t> gen_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t> used_bytes_{0};
  std::atomic<int64_t> entry_count_{0};
};

}  // namespace eca

#endif  // ECA_ENUMERATE_SHARED_MEMO_H_
