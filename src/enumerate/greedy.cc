#include "enumerate/greedy.h"

#include <algorithm>
#include <limits>

#include "enumerate/acyclic.h"
#include "enumerate/join_order.h"

namespace eca {

namespace {

OrderingNodePtr Leaf(int id) {
  auto n = std::make_shared<OrderingNode>();
  n->rels = RelSet::Single(id);
  return n;
}

OrderingNodePtr Attach(OrderingNodePtr tree, OrderingNodePtr rhs) {
  auto parent = std::make_shared<OrderingNode>();
  parent->rels = tree->rels.Union(rhs->rels);
  // Canonical orientation: smaller minimum relation id on the left.
  if (tree->rels.Min() <= rhs->rels.Min()) {
    parent->left = std::move(tree);
    parent->right = std::move(rhs);
  } else {
    parent->left = std::move(rhs);
    parent->right = std::move(tree);
  }
  return parent;
}

void Erase(std::vector<int>* remaining, int id) {
  remaining->erase(std::find(remaining->begin(), remaining->end(), id));
}

}  // namespace

OrderingNodePtr SizesOnlyOrdering(const Plan& query,
                                  const std::vector<int64_t>& table_rows) {
  std::vector<int> remaining;
  for (int id : query.leaves()) remaining.push_back(id);
  if (remaining.size() < 2) return nullptr;
  std::vector<RelSet> pred_refs = PredicateRefSets(query);

  auto rows_of = [&table_rows](int id) -> int64_t {
    return id >= 0 && id < static_cast<int>(table_rows.size())
               ? table_rows[static_cast<size_t>(id)]
               : 0;
  };
  auto take_smallest = [&](bool connected_only, RelSet joined) -> int {
    int best = -1;
    for (int cand : remaining) {
      if (connected_only) {
        RelSet combined = joined.Union(RelSet::Single(cand));
        bool connected = false;
        for (RelSet p : pred_refs) {
          if (p.Intersects(joined) && p.Contains(cand) &&
              combined.ContainsAll(p)) {
            connected = true;
            break;
          }
        }
        if (!connected) continue;
      }
      if (best < 0 || rows_of(cand) < rows_of(best) ||
          (rows_of(cand) == rows_of(best) && cand < best)) {
        best = cand;
      }
    }
    if (best >= 0) Erase(&remaining, best);
    return best;
  };

  OrderingNodePtr tree =
      Leaf(take_smallest(/*connected_only=*/false, RelSet()));
  while (!remaining.empty()) {
    int next = take_smallest(/*connected_only=*/true, tree->rels);
    if (next < 0) next = take_smallest(/*connected_only=*/false, tree->rels);
    tree = Attach(std::move(tree), Leaf(next));
  }
  return tree;
}

OrderingNodePtr GreedyCardinalityOrdering(const Plan& query,
                                          const CostModel& cost) {
  std::vector<int> remaining;
  for (int id : query.leaves()) remaining.push_back(id);
  if (remaining.size() < 2) return nullptr;

  std::vector<PredRef> preds;
  std::vector<RelSet> refs = ConjunctRefSets(query, &preds);

  auto card_of = [&cost](int id) { return cost.Cardinality(*Plan::Leaf(id)); };

  // Start with the relation of smallest estimated cardinality.
  int seed = remaining[0];
  for (int cand : remaining) {
    if (card_of(cand) < card_of(seed) ||
        (card_of(cand) == card_of(seed) && cand < seed)) {
      seed = cand;
    }
  }
  Erase(&remaining, seed);
  OrderingNodePtr tree = Leaf(seed);
  double cur_card = card_of(seed);

  while (!remaining.empty()) {
    // Estimated result of attaching `cand`: current estimate x base
    // cardinality x the selectivity of every conjunct that becomes fully
    // evaluable once `cand` joins the set. Conjuncts touching neither
    // side, or already absorbed, contribute nothing.
    auto joined_card = [&](int cand, bool* connected) -> double {
      RelSet combined = tree->rels.Union(RelSet::Single(cand));
      double card = cur_card * card_of(cand);
      *connected = false;
      for (size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].Contains(cand) && refs[i].Intersects(tree->rels) &&
            combined.ContainsAll(refs[i])) {
          *connected = true;
          card *= cost.Selectivity(*preds[i]);
        }
      }
      return card;
    };

    int best = -1;
    bool best_connected = false;
    double best_card = std::numeric_limits<double>::infinity();
    for (int cand : remaining) {
      bool connected = false;
      double card = joined_card(cand, &connected);
      // Connected candidates always beat cross products; among equals the
      // lower relation id wins, keeping the ordering deterministic.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           (card < best_card || (card == best_card && cand < best)))) {
        best = cand;
        best_connected = connected;
        best_card = card;
      }
    }
    Erase(&remaining, best);
    tree = Attach(std::move(tree), Leaf(best));
    cur_card = best_card;
  }
  return tree;
}

}  // namespace eca
