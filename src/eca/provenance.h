#ifndef ECA_ECA_PROVENANCE_H_
#define ECA_ECA_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>

#include "algebra/plan.h"
#include "common/metrics.h"
#include "enumerate/enumerator.h"

namespace eca {

// How the chosen plan came to be: which rewrite rules fired during the
// search, which compensation operators the winning plan carries, and
// whether the search ran to completion. Attached to Optimizer::Optimized
// and rendered by Optimizer::Explain and `ecatool --explain`.
struct PlanProvenance {
  std::string approach;  // "ECA" / "TBA" / "CBA"

  // Which plan policy the caller requested ("dp" / "sizes-only" / "greedy"
  // / "semijoin", eca/policy.h) and, when the policy deferred to another
  // planner, a one-line note saying why (greedy below its size threshold,
  // semijoin on a cyclic query, budget-tripped dp rerouted through
  // sizes-only, ...). Empty note = the requested policy planned the query.
  std::string policy;
  std::string policy_note;

  // Rewrite-rule applications during this Optimize call (rule name ->
  // count), read from the registry's rewrite.rule.* counters. Rule counts
  // cover the whole search, not just the winning chain — the enumerator
  // explores many orderings and keeps one. Process-global counters mean a
  // concurrent Optimize on another thread would bleed into the diff;
  // per-query provenance assumes the usual one-optimize-at-a-time caller.
  std::map<std::string, int64_t> rule_applications;

  // Compensation operators present in the chosen plan (kind -> count):
  // the paper's lambda / beta / gamma / gamma* plus projections.
  std::map<std::string, int64_t> compensations;

  int64_t join_nodes = 0;
  int64_t leaf_nodes = 0;
  int64_t subplan_calls = 0;
  int64_t memo_hits = 0;
  int64_t bb_prunes = 0;
  bool degraded = false;
  std::string degraded_trigger;

  // Multi-line "provenance:" block for plan printouts.
  std::string ToString() const;
};

// Builds provenance for `chosen` from the enumerator's stats and the
// registry snapshots taken around the Optimize call (their diff carries
// the rewrite.rule.* counts).
PlanProvenance BuildPlanProvenance(const Plan& chosen,
                                   const EnumeratorStats& stats,
                                   const MetricsSnapshot& before,
                                   const MetricsSnapshot& after,
                                   const char* approach,
                                   const char* policy = "dp",
                                   const std::string& policy_note = "");

}  // namespace eca

#endif  // ECA_ECA_PROVENANCE_H_
