#include "eca/policy.h"

#include <cctype>

namespace eca {

StatusOr<PlanPolicy> ParsePlanPolicy(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "dp") return PlanPolicy::kDp;
  if (lower == "sizes-only" || lower == "sizes_only") {
    return PlanPolicy::kSizesOnly;
  }
  if (lower == "greedy") return PlanPolicy::kGreedy;
  if (lower == "semijoin") return PlanPolicy::kSemijoin;
  return Status::InvalidArgument(
      "unknown plan policy '" + name +
      "' (expected dp, sizes-only, greedy or semijoin)");
}

const char* PlanPolicyName(PlanPolicy policy) {
  switch (policy) {
    case PlanPolicy::kDp:
      return "dp";
    case PlanPolicy::kSizesOnly:
      return "sizes-only";
    case PlanPolicy::kGreedy:
      return "greedy";
    case PlanPolicy::kSemijoin:
      return "semijoin";
  }
  return "unknown";
}

}  // namespace eca
