#ifndef ECA_ECA_OPTIMIZER_H_
#define ECA_ECA_OPTIMIZER_H_

#include <string>

#include "common/status.h"
#include "cost/cost_model.h"
#include "eca/policy.h"
#include "eca/provenance.h"
#include "enumerate/enumerator.h"
#include "enumerate/realize.h"
#include "exec/executor.h"
#include "exec/query_context.h"
#include "sqlgen/sqlgen.h"

namespace eca {

// The library's one-stop facade: build a logical plan (algebra/plan.h),
// hand it to Optimize() together with the data, execute or render the
// result.
//
//   Database db = ...;
//   PlanPtr query = Plan::Join(JoinOp::kLeftAnti, pred, ..., ...);
//   Optimizer opt;                       // ECA by default
//   auto best = opt.Optimize(*query, db);
//   Relation result = opt.Execute(*best.plan, db);
//
// The Approach selects the reordering arsenal: the paper's ECA, or the TBA
// / CBA baselines it is evaluated against (Sections 2 and 3).
class Optimizer {
 public:
  enum class Approach { kECA, kTBA, kCBA };

  struct Options {
    Approach approach = Approach::kECA;
    // Enhanced enumeration (Algorithms 4-6): reuse optimal subplans across
    // contexts when their external dependency edges match.
    bool reuse_subplans = true;
    Executor::JoinPreference join_preference =
        Executor::JoinPreference::kHash;
    // Threads for Execute()'s partitioned join/compensation evaluation and
    // for Optimize()'s root-level pair enumeration; results are
    // byte-identical for every value (docs/performance.md).
    int num_threads = 1;
    // Executor morsel/chunk granularity; results are byte-identical for
    // every legal value (fuzzed via ecafuzz --morsel-rows/--chunk-rows).
    ExecTuning exec_tuning;
    // Run the compensation cleanup pass on the chosen plan (removes
    // identity projections, redundant best-matches, ...).
    bool cleanup_compensations = true;
    // Resource budget for the enumeration (default unlimited). On
    // exhaustion Optimize degrades gracefully: it returns the best
    // complete plan found so far, or the query as written, and reports
    // stats.degraded plus the trigger. See docs/robustness.md.
    EnumeratorBudget budget{};
    // Degraded planning mode for deadline-squeezed governed queries
    // (docs/robustness.md, "Service hardening"): when OptimizeGoverned
    // finds less than this many milliseconds of deadline remaining, it
    // skips DP enumeration entirely and greedily orders joins from base
    // table sizes alone (the Simpli-Squared policy, arXiv:2111.00163 —
    // near-zero planning cost, no cardinality estimates). The result is
    // flagged stats.degraded with BudgetTrigger::kSizesOnlyFallback.
    // <= 0 disables the fallback (the enumerator's own wall-clock budget
    // still applies).
    int64_t sizes_only_fallback_ms = 0;
    // Cross-query plan cache (enumerate/shared_memo.h), shared across
    // Optimize() calls and owned by the caller (the service wires its
    // per-process cache here). Null = a private per-query memo; behavior
    // is unchanged, only cross-query reuse is lost. The caller must keep
    // the cache alive for the lifetime of this Optimizer and advance its
    // stats epoch whenever base-relation statistics change.
    SharedMemo* plan_cache = nullptr;
    // Which planner produces the plan (docs/planner-policies.md): the
    // paper's DP enumerator (default), the Simpli-Squared sizes-only
    // order, the cardinality-based greedy order, or the Yannakakis
    // semijoin pass for acyclic queries. Policies other than dp defer to
    // dp when they do not apply (greedy below max_join_size, semijoin on
    // cyclic/ineligible queries); the provenance's policy_note records
    // the deferral. Deliberate policy choices are NOT flagged degraded —
    // stats.degraded stays reserved for budget/deadline fallbacks.
    PlanPolicy plan_policy = PlanPolicy::kDp;
    // Greedy-policy threshold (after ByConity's max_join_size): queries
    // with at most this many relations still run DP enumeration; only
    // larger join graphs use the O(n^2) greedy order.
    int max_join_size = 10;
  };

  Optimizer() : Optimizer(Options()) {}
  explicit Optimizer(Options options) : options_(options) {}

  struct Optimized {
    PlanPtr plan;
    double estimated_cost = 0;
    EnumeratorStats stats;
    // How the plan came to be: rewrite rules fired during the search,
    // compensation operators carried by the winner, degradation state.
    // Render with provenance.ToString() or via Explain().
    PlanProvenance provenance;
  };

  // Cost-based join reordering of `query` over `db`'s statistics.
  // `query` must be well formed (CHECK-fails otherwise); for plans built
  // from user input, use OptimizeChecked.
  Optimized Optimize(const Plan& query, const Database& db) const;

  // Validating front door for externally-supplied plans: rejects plans
  // that reference missing relations/columns or violate the structural
  // invariants of ValidatePlan with INVALID_ARGUMENT instead of aborting.
  // On success, behaves exactly like Optimize (including budget-degraded
  // results — a degraded plan is a valid plan, not an error).
  StatusOr<Optimized> OptimizeChecked(const Plan& query,
                                      const Database& db) const;

  // Validating counterpart of Execute for externally-supplied plans.
  StatusOr<Relation> ExecuteChecked(const Plan& plan,
                                    const Database& db) const;

  // Governed optimization: like Optimize, but the enumeration budget's
  // wall clock is clamped to `ctx`'s remaining deadline, so one
  // --timeout-ms covers enumeration and execution as a single contract.
  // An already-expired context degrades immediately (best-so-far plan,
  // stats.degraded set) rather than erroring — callers decide whether a
  // degraded plan is still worth executing with the time they have left.
  // When Options::sizes_only_fallback_ms is set and the remaining
  // deadline is below it, DP enumeration is skipped in favor of
  // OptimizeSizesOnly.
  Optimized OptimizeGoverned(const Plan& query, const Database& db,
                             QueryContext* ctx) const;

  // The sizes-only degraded planner: greedily orders joins from base
  // table row counts alone (smallest tables first, connected relations
  // preferred) and realizes that ordering with the approach's
  // compensation arsenal; when the greedy ordering is not realizable the
  // query is returned as written. Always flags the result degraded with
  // BudgetTrigger::kSizesOnlyFallback. Exposed for tests and for callers
  // that want the fallback unconditionally.
  Optimized OptimizeSizesOnly(const Plan& query, const Database& db) const;

  // Governed execution: evaluates `plan` under `ctx`'s memory, deadline
  // and cancellation limits (Executor::ExecuteWithContext). On both
  // success and failure `stats`, when given, receives the executor's
  // counters (peak_bytes, spilled_partitions, ...).
  StatusOr<Relation> ExecuteGoverned(const Plan& plan, const Database& db,
                                     QueryContext* ctx,
                                     ExecStats* stats = nullptr) const;

  // "eca" / "tba" / "cba" (case-insensitive) -> Approach; the error lists
  // the valid names.
  static StatusOr<Approach> ParseApproach(const std::string& name);
  static const char* ApproachName(Approach approach);

  // Rewrites `query` to follow the join ordering `theta` (Section 3's
  // theta-reorderability); nullptr if unreachable under the approach.
  PlanPtr Reorder(const Plan& query, const OrderingNode& theta) const;

  // Evaluates a plan (compensation operators included).
  Relation Execute(const Plan& plan, const Database& db) const;

  // Multi-line report: the plan tree, its cost estimate, optionally the
  // provenance block of the Optimized that produced it, and (when table
  // names are provided) the enforcing SQL of Section 6.1.
  std::string Explain(const Plan& plan, const Database& db,
                      const SqlOptions* sql = nullptr,
                      const PlanProvenance* provenance = nullptr) const;

 private:
  // Cleanup + costing + provenance shared by every policy's exit path.
  Optimized Finish(PlanPtr plan, const CostModel& cost,
                   const MetricsSnapshot& before, const EnumeratorStats& stats,
                   const char* policy_name,
                   const std::string& policy_note) const;

  SwapPolicy policy() const {
    switch (options_.approach) {
      case Approach::kTBA:
        return SwapPolicy::kTBA;
      case Approach::kCBA:
        return SwapPolicy::kCBA;
      case Approach::kECA:
        break;
    }
    return SwapPolicy::kECA;
  }

  Options options_;
};

}  // namespace eca

#endif  // ECA_ECA_OPTIMIZER_H_
