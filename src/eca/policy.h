#ifndef ECA_ECA_POLICY_H_
#define ECA_ECA_POLICY_H_

#include <string>

#include "common/status.h"

namespace eca {

// Which planner produces the executed plan (docs/planner-policies.md).
// Orthogonal to Optimizer::Approach: the approach picks the rewrite
// arsenal (which orderings are reachable and at what compensation cost),
// the policy picks the search that selects one ordering.
enum class PlanPolicy {
  // The paper's top-down DP enumerator with compensation operators
  // (Algorithms 1-6) — exhaustive within budget, the default.
  kDp = 0,
  // Simpli-Squared (arXiv:2111.00163): a left-deep order from base-table
  // row counts alone — no cardinality estimates, near-zero planning cost.
  // Also the degraded-planning fallback every other policy drops to.
  kSizesOnly,
  // Cardinality-based greedy reorder for very large join graphs, after
  // ByConity's CardinalityBasedJoinReorder: only fires above the
  // Optimizer::Options::max_join_size DP threshold; below it, dp runs.
  kGreedy,
  // Yannakakis semijoin-reducer pass for GYO-acyclic queries
  // (arXiv:2601.00098); cyclic or otherwise ineligible queries fall back
  // to dp.
  kSemijoin,
};

// "dp" / "sizes-only" / "greedy" / "semijoin" (case-insensitive) ->
// PlanPolicy; the error lists the valid names.
StatusOr<PlanPolicy> ParsePlanPolicy(const std::string& name);
const char* PlanPolicyName(PlanPolicy policy);

}  // namespace eca

#endif  // ECA_ECA_POLICY_H_
