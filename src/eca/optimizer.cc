#include "eca/optimizer.h"

#include <cctype>
#include <memory>
#include <vector>

#include "algebra/validate.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "enumerate/join_order.h"
#include "rewrite/comp_simplify.h"

namespace eca {

namespace {

// The Simpli-Squared ordering (arXiv:2111.00163) adapted to ECA: build a
// left-deep join order from base-table row counts alone — start with the
// smallest table, then repeatedly attach the smallest table connected to
// the joined set by some join predicate (falling back to the smallest
// remaining table when the predicate graph leaves no connected choice).
// Ties break on relation id, so the ordering is deterministic. The
// ordering is then realized with the approach's compensation arsenal;
// nullptr when the swap machinery cannot reach it.
PlanPtr SizesOnlyRealize(const Plan& query, const Database& db,
                         SwapPolicy policy) {
  std::vector<int> remaining;
  for (int id : query.leaves()) remaining.push_back(id);
  if (remaining.size() < 2) return nullptr;
  std::vector<RelSet> pred_refs = PredicateRefSets(query);

  auto table_rows = [&db](int id) -> int64_t {
    return id < db.NumTables() ? db.table(id).NumRows() : 0;
  };
  auto take_smallest = [&](bool connected_only,
                           RelSet joined) -> int {
    int best = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int cand = remaining[i];
      if (connected_only) {
        RelSet combined = joined.Union(RelSet::Single(cand));
        bool connected = false;
        for (RelSet p : pred_refs) {
          if (p.Intersects(joined) && p.Contains(cand) &&
              combined.ContainsAll(p)) {
            connected = true;
            break;
          }
        }
        if (!connected) continue;
      }
      if (best < 0 || table_rows(cand) < table_rows(best) ||
          (table_rows(cand) == table_rows(best) && cand < best)) {
        best = cand;
      }
    }
    if (best >= 0) {
      for (size_t i = 0; i < remaining.size(); ++i) {
        if (remaining[i] == best) {
          remaining.erase(remaining.begin() + static_cast<long>(i));
          break;
        }
      }
    }
    return best;
  };

  auto leaf = [](int id) {
    auto n = std::make_shared<OrderingNode>();
    n->rels = RelSet::Single(id);
    return OrderingNodePtr(n);
  };

  int seed = take_smallest(/*connected_only=*/false, RelSet());
  OrderingNodePtr tree = leaf(seed);
  while (!remaining.empty()) {
    int next = take_smallest(/*connected_only=*/true, tree->rels);
    if (next < 0) next = take_smallest(/*connected_only=*/false, tree->rels);
    OrderingNodePtr rhs = leaf(next);
    auto parent = std::make_shared<OrderingNode>();
    parent->rels = tree->rels.Union(rhs->rels);
    // Canonical orientation: smaller minimum relation id on the left.
    if (tree->rels.Min() <= rhs->rels.Min()) {
      parent->left = tree;
      parent->right = rhs;
    } else {
      parent->left = rhs;
      parent->right = tree;
    }
    tree = parent;
  }
  return RealizeOrdering(query, *tree, policy);
}

}  // namespace

Optimizer::Optimized Optimizer::Optimize(const Plan& query,
                                         const Database& db) const {
  TraceSpan span("optimize");
  if (span.active()) span.AppendArg("approach", ApproachName(options_.approach));
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CostModel cost = [&] {
    TraceSpan model_span("cost-model");
    return CostModel::FromDatabase(db);
  }();
  EnumeratorOptions opts;
  opts.policy = policy();
  opts.reuse_subplans = options_.reuse_subplans;
  opts.num_threads = options_.num_threads;
  opts.budget = options_.budget;
  opts.shared_memo = options_.plan_cache;
  TopDownEnumerator enumerator(&cost, opts);
  auto result = enumerator.Optimize(query);
  Optimized out;
  out.plan = std::move(result.plan);
  if (options_.cleanup_compensations && out.plan != nullptr) {
    TraceSpan cleanup_span("rewrite-cleanup");
    SimplifyCompensations(&out.plan);
  }
  out.estimated_cost = cost.Cost(*out.plan);
  out.stats = result.stats;
  out.provenance =
      BuildPlanProvenance(*out.plan, out.stats, before,
                          MetricsRegistry::Global().Snapshot(),
                          ApproachName(options_.approach));
  return out;
}

StatusOr<Optimizer::Optimized> Optimizer::OptimizeChecked(
    const Plan& query, const Database& db) const {
  ECA_RETURN_IF_ERROR(
      ValidatePlanStatus(query, db.BaseSchemas()).WithContext("Optimize"));
  return Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteChecked(const Plan& plan,
                                             const Database& db) const {
  ECA_RETURN_IF_ERROR(
      ValidatePlanStatus(plan, db.BaseSchemas()).WithContext("Execute"));
  return Execute(plan, db);
}

Optimizer::Optimized Optimizer::OptimizeSizesOnly(const Plan& query,
                                                  const Database& db) const {
  TraceSpan span("optimize-sizes-only");
  if (span.active()) {
    span.AppendArg("approach", ApproachName(options_.approach));
  }
  static Counter* const fallbacks =
      MetricsRegistry::Global().counter("optimizer.sizes_only_fallback");
  fallbacks->Increment();
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CostModel cost = CostModel::FromDatabase(db);
  PlanPtr plan = SizesOnlyRealize(query, db, policy());
  if (plan == nullptr) plan = query.Clone();
  if (options_.cleanup_compensations) SimplifyCompensations(&plan);
  Optimized out;
  out.plan = std::move(plan);
  out.estimated_cost = cost.Cost(*out.plan);
  out.stats.degraded = true;
  out.stats.trigger = BudgetTrigger::kSizesOnlyFallback;
  out.provenance =
      BuildPlanProvenance(*out.plan, out.stats, before,
                          MetricsRegistry::Global().Snapshot(),
                          ApproachName(options_.approach));
  return out;
}

Optimizer::Optimized Optimizer::OptimizeGoverned(const Plan& query,
                                                 const Database& db,
                                                 QueryContext* ctx) const {
  Options opts = options_;
  int64_t remaining = ctx != nullptr ? ctx->RemainingMs() : INT64_MAX;
  if (remaining != INT64_MAX && options_.sizes_only_fallback_ms > 0 &&
      remaining < options_.sizes_only_fallback_ms) {
    // The admission deadline leaves no budget for DP enumeration with
    // compensation operators: degrade to the sizes-only order and save
    // every remaining millisecond for execution.
    return OptimizeSizesOnly(query, db);
  }
  if (remaining != INT64_MAX) {
    // An expired deadline still gets a 1ms budget: the enumerator notices
    // exhaustion at its first between-wave check and returns the query as
    // written, flagged degraded.
    int64_t ms = remaining > 0 ? remaining : 1;
    if (opts.budget.wall_clock_ms <= 0 || opts.budget.wall_clock_ms > ms) {
      opts.budget.wall_clock_ms = ms;
    }
  }
  return Optimizer(opts).Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteGoverned(const Plan& plan,
                                              const Database& db,
                                              QueryContext* ctx,
                                              ExecStats* stats) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads,
                        options_.exec_tuning});
  StatusOr<Relation> result = ex.ExecuteWithContext(plan, db, ctx);
  if (stats != nullptr) *stats = ex.stats();
  return result;
}

StatusOr<Optimizer::Approach> Optimizer::ParseApproach(
    const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "eca") return Approach::kECA;
  if (lower == "tba") return Approach::kTBA;
  if (lower == "cba") return Approach::kCBA;
  return Status::InvalidArgument("unknown approach '" + name +
                                 "' (expected eca, tba or cba)");
}

const char* Optimizer::ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kECA:
      return "ECA";
    case Approach::kTBA:
      return "TBA";
    case Approach::kCBA:
      return "CBA";
  }
  return "unknown";
}

PlanPtr Optimizer::Reorder(const Plan& query,
                           const OrderingNode& theta) const {
  return RealizeOrdering(query, theta, policy());
}

Relation Optimizer::Execute(const Plan& plan, const Database& db) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads,
                        options_.exec_tuning});
  return ex.Execute(plan, db);
}

std::string Optimizer::Explain(const Plan& plan, const Database& db,
                               const SqlOptions* sql,
                               const PlanProvenance* provenance) const {
  CostModel cost = CostModel::FromDatabase(db);
  std::string out = "plan:\n" + plan.ToString();
  out += StrFormat("estimated cost: %.1f, estimated rows: %.1f\n",
                   cost.Cost(plan), cost.Cardinality(plan));
  if (provenance != nullptr) out += provenance->ToString();
  if (sql != nullptr) {
    out += "SQL:\n" + PlanToSql(plan, db.BaseSchemas(), *sql) + "\n";
  }
  return out;
}

}  // namespace eca
