#include "eca/optimizer.h"

#include <cctype>
#include <memory>
#include <vector>

#include "algebra/validate.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "enumerate/acyclic.h"
#include "enumerate/greedy.h"
#include "enumerate/join_order.h"
#include "enumerate/semijoin.h"
#include "rewrite/comp_simplify.h"

namespace eca {

namespace {

std::vector<int64_t> BaseTableRows(const Database& db) {
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(db.NumTables()));
  for (int i = 0; i < db.NumTables(); ++i) {
    rows.push_back(db.table(i).NumRows());
  }
  return rows;
}

}  // namespace

Optimizer::Optimized Optimizer::Finish(PlanPtr plan, const CostModel& cost,
                                       const MetricsSnapshot& before,
                                       const EnumeratorStats& stats,
                                       const char* policy_name,
                                       const std::string& policy_note) const {
  Optimized out;
  out.plan = std::move(plan);
  if (options_.cleanup_compensations && out.plan != nullptr) {
    TraceSpan cleanup_span("rewrite-cleanup");
    SimplifyCompensations(&out.plan);
  }
  out.estimated_cost = cost.Cost(*out.plan);
  out.stats = stats;
  out.provenance = BuildPlanProvenance(
      *out.plan, out.stats, before, MetricsRegistry::Global().Snapshot(),
      ApproachName(options_.approach), policy_name, policy_note);
  return out;
}

Optimizer::Optimized Optimizer::Optimize(const Plan& query,
                                         const Database& db) const {
  TraceSpan span("optimize");
  if (span.active()) {
    span.AppendArg("approach", ApproachName(options_.approach));
    span.AppendArg("policy", PlanPolicyName(options_.plan_policy));
  }
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CostModel cost = [&] {
    TraceSpan model_span("cost-model");
    return CostModel::FromDatabase(db);
  }();
  const char* policy_name = PlanPolicyName(options_.plan_policy);

  // An ordering-producing policy (sizes-only, greedy) realizes its order
  // with the approach's compensation arsenal and skips DP entirely; these
  // are deliberate choices, not degradations, so stats stay clean. A
  // policy that does not apply falls through to DP with a note.
  auto realize = [&](OrderingNodePtr theta) {
    PlanPtr plan =
        theta != nullptr ? RealizeOrdering(query, *theta, policy()) : nullptr;
    if (plan == nullptr) plan = query.Clone();
    return plan;
  };
  std::string note;
  switch (options_.plan_policy) {
    case PlanPolicy::kDp:
      break;
    case PlanPolicy::kSizesOnly:
      return Finish(realize(SizesOnlyOrdering(query, BaseTableRows(db))),
                    cost, before, EnumeratorStats{}, policy_name, "");
    case PlanPolicy::kGreedy: {
      int num_rels = query.leaves().Count();
      if (num_rels > options_.max_join_size) {
        return Finish(realize(GreedyCardinalityOrdering(query, cost)), cost,
                      before, EnumeratorStats{}, policy_name, "");
      }
      note = StrFormat("%d relation(s) within max-join-size %d; dp ran",
                       num_rels, options_.max_join_size);
      break;
    }
    case PlanPolicy::kSemijoin: {
      SemijoinTree tree;
      std::string why;
      if (BuildSemijoinTree(query, BaseTableRows(db), &tree, &why)) {
        return Finish(BuildYannakakisPlan(tree), cost, before,
                      EnumeratorStats{}, policy_name,
                      StrFormat("yannakakis pass, root R%d", tree.root));
      }
      note = "ineligible: " + why + "; dp ran";
      break;
    }
  }

  EnumeratorOptions opts;
  opts.policy = policy();
  opts.reuse_subplans = options_.reuse_subplans;
  opts.num_threads = options_.num_threads;
  opts.budget = options_.budget;
  opts.shared_memo = options_.plan_cache;
  TopDownEnumerator enumerator(&cost, opts);
  auto result = enumerator.Optimize(query);
  if (result.stats.degraded && result.stats.no_complete_plan) {
    // The budget tripped before a single complete plan was costed, so the
    // enumerator fell back to the query as written. Realize the sizes-only
    // order instead — same near-zero planning cost, but the plan at least
    // reflects base-table sizes — and report it through the same trigger
    // as the deadline-squeezed fallback (docs/robustness.md).
    OrderingNodePtr theta = SizesOnlyOrdering(query, BaseTableRows(db));
    PlanPtr fallback =
        theta != nullptr ? RealizeOrdering(query, *theta, policy()) : nullptr;
    if (fallback != nullptr) {
      static Counter* const fallbacks = MetricsRegistry::Global().counter(
          "optimizer.sizes_only_fallback");
      fallbacks->Increment();
      result.plan = std::move(fallback);
      result.stats.trigger = BudgetTrigger::kSizesOnlyFallback;
      if (!note.empty()) note += "; ";
      note += "no complete plan within budget; sizes-only order realized";
    }
  }
  return Finish(std::move(result.plan), cost, before, result.stats,
                policy_name, note);
}

StatusOr<Optimizer::Optimized> Optimizer::OptimizeChecked(
    const Plan& query, const Database& db) const {
  ECA_RETURN_IF_ERROR(
      ValidatePlanStatus(query, db.BaseSchemas()).WithContext("Optimize"));
  return Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteChecked(const Plan& plan,
                                             const Database& db) const {
  // Relaxed duplicate handling: optimizer output may be a Yannakakis plan
  // whose reducers reference relations again inside semijoin pruning sides.
  ValidateOptions vopts;
  vopts.allow_hidden_duplicates = true;
  ECA_RETURN_IF_ERROR(ValidatePlanStatus(plan, db.BaseSchemas(), vopts)
                          .WithContext("Execute"));
  return Execute(plan, db);
}

Optimizer::Optimized Optimizer::OptimizeSizesOnly(const Plan& query,
                                                  const Database& db) const {
  TraceSpan span("optimize-sizes-only");
  if (span.active()) {
    span.AppendArg("approach", ApproachName(options_.approach));
  }
  static Counter* const fallbacks =
      MetricsRegistry::Global().counter("optimizer.sizes_only_fallback");
  fallbacks->Increment();
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CostModel cost = CostModel::FromDatabase(db);
  OrderingNodePtr theta = SizesOnlyOrdering(query, BaseTableRows(db));
  PlanPtr plan =
      theta != nullptr ? RealizeOrdering(query, *theta, policy()) : nullptr;
  if (plan == nullptr) plan = query.Clone();
  EnumeratorStats stats;
  stats.degraded = true;
  stats.trigger = BudgetTrigger::kSizesOnlyFallback;
  // Unlike a deliberate --policy sizes-only run, this path is always a
  // degradation; note which policy was displaced when it was not
  // sizes-only already.
  std::string note =
      options_.plan_policy == PlanPolicy::kSizesOnly
          ? ""
          : std::string("requested ") + PlanPolicyName(options_.plan_policy) +
                ", degraded to sizes-only";
  return Finish(std::move(plan), cost, before, stats,
                PlanPolicyName(PlanPolicy::kSizesOnly), note);
}

Optimizer::Optimized Optimizer::OptimizeGoverned(const Plan& query,
                                                 const Database& db,
                                                 QueryContext* ctx) const {
  Options opts = options_;
  int64_t remaining = ctx != nullptr ? ctx->RemainingMs() : INT64_MAX;
  if (remaining != INT64_MAX && options_.sizes_only_fallback_ms > 0 &&
      remaining < options_.sizes_only_fallback_ms) {
    // The admission deadline leaves no budget for DP enumeration with
    // compensation operators: degrade to the sizes-only order and save
    // every remaining millisecond for execution.
    return OptimizeSizesOnly(query, db);
  }
  if (remaining != INT64_MAX) {
    // An expired deadline still gets a 1ms budget: the enumerator notices
    // exhaustion at its first between-wave check and returns the query as
    // written, flagged degraded.
    int64_t ms = remaining > 0 ? remaining : 1;
    if (opts.budget.wall_clock_ms <= 0 || opts.budget.wall_clock_ms > ms) {
      opts.budget.wall_clock_ms = ms;
    }
  }
  return Optimizer(opts).Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteGoverned(const Plan& plan,
                                              const Database& db,
                                              QueryContext* ctx,
                                              ExecStats* stats) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads,
                        options_.exec_tuning});
  StatusOr<Relation> result = ex.ExecuteWithContext(plan, db, ctx);
  if (stats != nullptr) *stats = ex.stats();
  return result;
}

StatusOr<Optimizer::Approach> Optimizer::ParseApproach(
    const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "eca") return Approach::kECA;
  if (lower == "tba") return Approach::kTBA;
  if (lower == "cba") return Approach::kCBA;
  return Status::InvalidArgument("unknown approach '" + name +
                                 "' (expected eca, tba or cba)");
}

const char* Optimizer::ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kECA:
      return "ECA";
    case Approach::kTBA:
      return "TBA";
    case Approach::kCBA:
      return "CBA";
  }
  return "unknown";
}

PlanPtr Optimizer::Reorder(const Plan& query,
                           const OrderingNode& theta) const {
  return RealizeOrdering(query, theta, policy());
}

Relation Optimizer::Execute(const Plan& plan, const Database& db) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads,
                        options_.exec_tuning});
  return ex.Execute(plan, db);
}

std::string Optimizer::Explain(const Plan& plan, const Database& db,
                               const SqlOptions* sql,
                               const PlanProvenance* provenance) const {
  CostModel cost = CostModel::FromDatabase(db);
  std::string out = "plan:\n" + plan.ToString();
  out += StrFormat("estimated cost: %.1f, estimated rows: %.1f\n",
                   cost.Cost(plan), cost.Cardinality(plan));
  if (provenance != nullptr) out += provenance->ToString();
  if (sql != nullptr) {
    out += "SQL:\n" + PlanToSql(plan, db.BaseSchemas(), *sql) + "\n";
  }
  return out;
}

}  // namespace eca
