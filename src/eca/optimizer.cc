#include "eca/optimizer.h"

#include "common/str_util.h"
#include "rewrite/comp_simplify.h"

namespace eca {

Optimizer::Optimized Optimizer::Optimize(const Plan& query,
                                         const Database& db) const {
  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  opts.policy = policy();
  opts.reuse_subplans = options_.reuse_subplans;
  TopDownEnumerator enumerator(&cost, opts);
  auto result = enumerator.Optimize(query);
  Optimized out;
  out.plan = std::move(result.plan);
  if (options_.cleanup_compensations && out.plan != nullptr) {
    SimplifyCompensations(&out.plan);
  }
  out.estimated_cost = cost.Cost(*out.plan);
  out.stats = result.stats;
  return out;
}

PlanPtr Optimizer::Reorder(const Plan& query,
                           const OrderingNode& theta) const {
  return RealizeOrdering(query, theta, policy());
}

Relation Optimizer::Execute(const Plan& plan, const Database& db) const {
  Executor ex(Executor::Options{options_.join_preference});
  return ex.Execute(plan, db);
}

std::string Optimizer::Explain(const Plan& plan, const Database& db,
                               const SqlOptions* sql) const {
  CostModel cost = CostModel::FromDatabase(db);
  std::string out = "plan:\n" + plan.ToString();
  out += StrFormat("estimated cost: %.1f, estimated rows: %.1f\n",
                   cost.Cost(plan), cost.Cardinality(plan));
  if (sql != nullptr) {
    out += "SQL:\n" + PlanToSql(plan, db.BaseSchemas(), *sql) + "\n";
  }
  return out;
}

}  // namespace eca
