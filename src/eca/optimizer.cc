#include "eca/optimizer.h"

#include <cctype>

#include "algebra/validate.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "rewrite/comp_simplify.h"

namespace eca {

Optimizer::Optimized Optimizer::Optimize(const Plan& query,
                                         const Database& db) const {
  TraceSpan span("optimize");
  if (span.active()) span.AppendArg("approach", ApproachName(options_.approach));
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CostModel cost = [&] {
    TraceSpan model_span("cost-model");
    return CostModel::FromDatabase(db);
  }();
  EnumeratorOptions opts;
  opts.policy = policy();
  opts.reuse_subplans = options_.reuse_subplans;
  opts.num_threads = options_.num_threads;
  opts.budget = options_.budget;
  TopDownEnumerator enumerator(&cost, opts);
  auto result = enumerator.Optimize(query);
  Optimized out;
  out.plan = std::move(result.plan);
  if (options_.cleanup_compensations && out.plan != nullptr) {
    TraceSpan cleanup_span("rewrite-cleanup");
    SimplifyCompensations(&out.plan);
  }
  out.estimated_cost = cost.Cost(*out.plan);
  out.stats = result.stats;
  out.provenance =
      BuildPlanProvenance(*out.plan, out.stats, before,
                          MetricsRegistry::Global().Snapshot(),
                          ApproachName(options_.approach));
  return out;
}

StatusOr<Optimizer::Optimized> Optimizer::OptimizeChecked(
    const Plan& query, const Database& db) const {
  ECA_RETURN_IF_ERROR(
      ValidatePlanStatus(query, db.BaseSchemas()).WithContext("Optimize"));
  return Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteChecked(const Plan& plan,
                                             const Database& db) const {
  ECA_RETURN_IF_ERROR(
      ValidatePlanStatus(plan, db.BaseSchemas()).WithContext("Execute"));
  return Execute(plan, db);
}

Optimizer::Optimized Optimizer::OptimizeGoverned(const Plan& query,
                                                 const Database& db,
                                                 QueryContext* ctx) const {
  Options opts = options_;
  int64_t remaining = ctx != nullptr ? ctx->RemainingMs() : INT64_MAX;
  if (remaining != INT64_MAX) {
    // An expired deadline still gets a 1ms budget: the enumerator notices
    // exhaustion at its first between-wave check and returns the query as
    // written, flagged degraded.
    int64_t ms = remaining > 0 ? remaining : 1;
    if (opts.budget.wall_clock_ms <= 0 || opts.budget.wall_clock_ms > ms) {
      opts.budget.wall_clock_ms = ms;
    }
  }
  return Optimizer(opts).Optimize(query, db);
}

StatusOr<Relation> Optimizer::ExecuteGoverned(const Plan& plan,
                                              const Database& db,
                                              QueryContext* ctx,
                                              ExecStats* stats) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads});
  StatusOr<Relation> result = ex.ExecuteWithContext(plan, db, ctx);
  if (stats != nullptr) *stats = ex.stats();
  return result;
}

StatusOr<Optimizer::Approach> Optimizer::ParseApproach(
    const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "eca") return Approach::kECA;
  if (lower == "tba") return Approach::kTBA;
  if (lower == "cba") return Approach::kCBA;
  return Status::InvalidArgument("unknown approach '" + name +
                                 "' (expected eca, tba or cba)");
}

const char* Optimizer::ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kECA:
      return "ECA";
    case Approach::kTBA:
      return "TBA";
    case Approach::kCBA:
      return "CBA";
  }
  return "unknown";
}

PlanPtr Optimizer::Reorder(const Plan& query,
                           const OrderingNode& theta) const {
  return RealizeOrdering(query, theta, policy());
}

Relation Optimizer::Execute(const Plan& plan, const Database& db) const {
  Executor ex(
      Executor::Options{options_.join_preference, options_.num_threads});
  return ex.Execute(plan, db);
}

std::string Optimizer::Explain(const Plan& plan, const Database& db,
                               const SqlOptions* sql,
                               const PlanProvenance* provenance) const {
  CostModel cost = CostModel::FromDatabase(db);
  std::string out = "plan:\n" + plan.ToString();
  out += StrFormat("estimated cost: %.1f, estimated rows: %.1f\n",
                   cost.Cost(plan), cost.Cardinality(plan));
  if (provenance != nullptr) out += provenance->ToString();
  if (sql != nullptr) {
    out += "SQL:\n" + PlanToSql(plan, db.BaseSchemas(), *sql) + "\n";
  }
  return out;
}

}  // namespace eca
