#include "eca/provenance.h"

#include "common/str_util.h"

namespace eca {

namespace {

const char* CompKindName(CompOp::Kind kind) {
  switch (kind) {
    case CompOp::Kind::kLambda:
      return "lambda";
    case CompOp::Kind::kBeta:
      return "beta";
    case CompOp::Kind::kGamma:
      return "gamma";
    case CompOp::Kind::kGammaStar:
      return "gamma*";
    case CompOp::Kind::kProject:
      return "project";
  }
  return "unknown";
}

void WalkPlan(const Plan& node, PlanProvenance* out) {
  switch (node.kind()) {
    case Plan::Kind::kLeaf:
      ++out->leaf_nodes;
      return;
    case Plan::Kind::kJoin:
      ++out->join_nodes;
      WalkPlan(*node.left(), out);
      WalkPlan(*node.right(), out);
      return;
    case Plan::Kind::kComp:
      ++out->compensations[CompKindName(node.comp().kind)];
      WalkPlan(*node.child(), out);
      return;
  }
}

}  // namespace

PlanProvenance BuildPlanProvenance(const Plan& chosen,
                                   const EnumeratorStats& stats,
                                   const MetricsSnapshot& before,
                                   const MetricsSnapshot& after,
                                   const char* approach, const char* policy,
                                   const std::string& policy_note) {
  PlanProvenance out;
  out.approach = approach;
  out.policy = policy;
  out.policy_note = policy_note;
  const std::string prefix = "rewrite.rule.";
  MetricsSnapshot diff = after.DiffSince(before);
  for (const auto& [name, value] : diff.counters) {
    if (value == 0) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    out.rule_applications[name.substr(prefix.size())] = value;
  }
  WalkPlan(chosen, &out);
  out.subplan_calls = stats.subplan_calls;
  out.memo_hits = stats.reuses;
  out.bb_prunes = stats.prunes;
  out.degraded = stats.degraded;
  if (stats.degraded) {
    out.degraded_trigger = BudgetTriggerName(stats.trigger);
  }
  return out;
}

std::string PlanProvenance::ToString() const {
  std::string out = "provenance:\n";
  out += StrFormat("  approach: %s%s\n", approach.c_str(),
                   degraded ? StrFormat(" (degraded: %s)",
                                        degraded_trigger.c_str())
                                  .c_str()
                            : "");
  if (!policy.empty()) {
    out += StrFormat("  policy: %s%s\n", policy.c_str(),
                     policy_note.empty()
                         ? ""
                         : StrFormat(" (%s)", policy_note.c_str()).c_str());
  }
  out += StrFormat("  shape: %lld joins, %lld leaves\n",
                   static_cast<long long>(join_nodes),
                   static_cast<long long>(leaf_nodes));
  out += "  compensations:";
  if (compensations.empty()) {
    out += " none\n";
  } else {
    for (const auto& [kind, count] : compensations) {
      out += StrFormat(" %s=%lld", kind.c_str(),
                       static_cast<long long>(count));
    }
    out += '\n';
  }
  out += "  rewrites:";
  if (rule_applications.empty()) {
    out += " none\n";
  } else {
    for (const auto& [rule, count] : rule_applications) {
      out += StrFormat(" %s=%lld", rule.c_str(),
                       static_cast<long long>(count));
    }
    out += '\n';
  }
  out += StrFormat("  search: %lld subplan calls, %lld memo hits, %lld prunes\n",
                   static_cast<long long>(subplan_calls),
                   static_cast<long long>(memo_hits),
                   static_cast<long long>(bb_prunes));
  return out;
}

}  // namespace eca
