#include "common/status.h"

namespace eca {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Error(code_, context + ": " + message_);
}

}  // namespace eca
