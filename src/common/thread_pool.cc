#include "common/thread_pool.h"

namespace eca {

namespace {

// Iterations claimed per lock acquisition. Coarse enough to keep lock
// traffic negligible for the executor's partition/chunk-sized tasks,
// fine enough that a skewed chunk can still be stolen around.
constexpr int64_t kClaimGrain = 1;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  ranges_.resize(static_cast<size_t>(num_threads_));
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  bool run_inline = num_threads_ == 1 || count == 1;
  if (!run_inline) {
    std::lock_guard<std::mutex> lock(mu_);
    // Reentrant call from inside a loop body: run sequentially.
    if (in_loop_) run_inline = true;
  }
  if (run_inline) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t per = count / num_threads_;
    int64_t extra = count % num_threads_;
    int64_t begin = 0;
    for (int w = 0; w < num_threads_; ++w) {
      int64_t len = per + (w < extra ? 1 : 0);
      ranges_[static_cast<size_t>(w)] = {begin, begin + len};
      begin += len;
    }
    fn_ = &fn;
    in_loop_ = true;
    active_workers_ = num_threads_ - 1;  // workers; the caller joins too
    ++epoch_;
  }
  work_cv_.notify_all();

  DrainLoop(/*worker=*/0);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  fn_ = nullptr;
  in_loop_ = false;
}

void ThreadPool::RunOnWorkers(const std::function<void(int)>& fn) {
  bool run_inline = num_threads_ == 1;
  if (!run_inline) {
    std::lock_guard<std::mutex> lock(mu_);
    // Reentrant call from inside a loop body: run once on this thread.
    if (in_loop_) run_inline = true;
  }
  if (run_inline) {
    fn(0);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_fn_ = &fn;
    in_loop_ = true;
    active_workers_ = num_threads_ - 1;  // workers; the caller joins too
    ++epoch_;
  }
  work_cv_.notify_all();

  fn(0);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  worker_fn_ = nullptr;
  in_loop_ = false;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* worker_fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      worker_fn = worker_fn_;
    }
    if (worker_fn != nullptr) {
      (*worker_fn)(worker);
    } else {
      DrainLoop(worker);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::DrainLoop(int worker) {
  const std::function<void(int64_t)>* fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn = fn_;
  }
  for (;;) {
    int64_t begin = -1, end = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Range& own = ranges_[static_cast<size_t>(worker)];
      if (own.next < own.end) {
        begin = own.next;
        end = begin + kClaimGrain < own.end ? begin + kClaimGrain : own.end;
        own.next = end;
      } else {
        // Own range drained: steal the upper half of the largest
        // remaining sibling range.
        int victim = -1;
        int64_t victim_left = 0;
        for (int w = 0; w < num_threads_; ++w) {
          int64_t left = ranges_[static_cast<size_t>(w)].end -
                         ranges_[static_cast<size_t>(w)].next;
          if (left > victim_left) {
            victim_left = left;
            victim = w;
          }
        }
        if (victim < 0) return;  // loop finished
        Range& v = ranges_[static_cast<size_t>(victim)];
        // Upper half (rounded up, so a 1-item range is fully stolen).
        int64_t mid = v.next + (v.end - v.next) / 2;
        own.next = mid;
        own.end = v.end;
        v.end = mid;
        continue;
      }
    }
    for (int64_t i = begin; i < end; ++i) (*fn)(i);
  }
}

}  // namespace eca
