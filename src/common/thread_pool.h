#ifndef ECA_COMMON_THREAD_POOL_H_
#define ECA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eca {

// Shared atomic work cursor for morsel-driven loops: workers claim
// fixed-size contiguous row ranges ("morsels") with one fetch_add each,
// so there is no per-worker pre-split, no stealing bookkeeping, and no
// lock on the claim path. Morsel boundaries depend only on (total,
// morsel_rows) — never on the thread count — which is what lets outputs
// assembled in morsel-index order stay byte-identical for any number of
// workers (docs/performance.md, "Vectorized executor").
class MorselCursor {
 public:
  MorselCursor(int64_t total_rows, int64_t morsel_rows)
      : total_(total_rows < 0 ? 0 : total_rows),
        morsel_(morsel_rows < 1 ? 1 : morsel_rows) {}

  // Claims the next morsel as [*begin, *end); false when the input is
  // exhausted. *morsel_index receives the zero-based morsel number (the
  // slot to write per-morsel output into).
  bool Next(int64_t* begin, int64_t* end, int64_t* morsel_index) {
    int64_t m = next_.fetch_add(1, std::memory_order_relaxed);
    int64_t b = m * morsel_;
    if (b >= total_) return false;
    *begin = b;
    *end = b + morsel_ < total_ ? b + morsel_ : total_;
    *morsel_index = m;
    return true;
  }

  int64_t num_morsels() const {
    return total_ == 0 ? 0 : (total_ + morsel_ - 1) / morsel_;
  }
  int64_t total_rows() const { return total_; }
  int64_t morsel_rows() const { return morsel_; }

 private:
  std::atomic<int64_t> next_{0};
  const int64_t total_;
  const int64_t morsel_;
};

// A small work-stealing thread pool for data-parallel loops.
//
// The pool owns `num_threads - 1` persistent workers; the caller's thread
// participates as worker 0, so ParallelFor(n, f) with num_threads == 1
// degenerates to a plain sequential loop with zero synchronization. Each
// ParallelFor splits [0, count) into one contiguous range per worker;
// workers drain their own range from the front and, when empty, steal the
// upper half of the largest remaining range. Range splits keep iteration
// chunks contiguous, which the executor relies on for order-preserving
// (and therefore thread-count-independent) output assembly.
//
// Tasks must not throw; the engine reports errors through Status values
// computed inside the loop body, never exceptions.
class ThreadPool {
 public:
  // Creates a pool that runs loops on up to `num_threads` threads
  // (clamped to >= 1). `num_threads - 1` workers are spawned eagerly and
  // parked on a condition variable between loops.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(i) for every i in [0, count), distributed over the pool,
  // and blocks until all iterations finish. Iterations may run in any
  // order and concurrently; fn must be safe to call from multiple threads.
  // Reentrant calls from inside fn run sequentially on the calling thread
  // (nested parallelism is not worth its complexity here).
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  // Runs fn(worker) once on every pool thread (the caller participates as
  // worker 0) and blocks until all invocations return. This is the morsel
  // driver: each invocation pulls morsels from a shared MorselCursor until
  // the input is dry, so the only cross-thread coordination for the whole
  // loop is the cursor's fetch_add — no per-operator barrier phases, no
  // range pre-splitting. Returning from RunOnWorkers synchronizes-with
  // every fn invocation (reads after it see all their writes). Reentrant
  // calls run fn once on the calling thread.
  void RunOnWorkers(const std::function<void(int)>& fn);

  // Heuristic shard count for a loop body over `count` items: enough
  // shards to balance moderately skewed work, never more than the items.
  int64_t ShardsFor(int64_t count) const {
    int64_t target = static_cast<int64_t>(num_threads_) * 4;
    return count < target ? (count < 1 ? 1 : count) : target;
  }

 private:
  // One contiguous, stealable slice of the iteration space.
  struct Range {
    int64_t next = 0;  // first unclaimed iteration
    int64_t end = 0;   // one past the last iteration
  };

  void WorkerLoop(int worker);
  // Runs iterations for `worker` until the current loop has no work left,
  // stealing from sibling ranges once its own is exhausted.
  void DrainLoop(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new loop
  std::condition_variable done_cv_;   // caller waits for loop completion
  std::vector<Range> ranges_;         // per-worker slices of current loop
  const std::function<void(int64_t)>* fn_ = nullptr;
  // Non-null during RunOnWorkers: workers call worker_fn_(worker) once
  // instead of draining ranges.
  const std::function<void(int)>* worker_fn_ = nullptr;
  uint64_t epoch_ = 0;      // bumped per ParallelFor; wakes workers
  int active_workers_ = 0;  // workers still inside the current loop
  bool in_loop_ = false;    // guards against reentrant ParallelFor
  bool shutdown_ = false;
};

}  // namespace eca

#endif  // ECA_COMMON_THREAD_POOL_H_
