#ifndef ECA_COMMON_MEMORY_TRACKER_H_
#define ECA_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace eca {

// Hierarchical memory accounting for one query (query -> operator).
//
// A tracker holds an atomic usage counter plus two thresholds:
//
//  - `soft_bytes`: the spill threshold. Reservations always succeed past
//    it, but SoftExceeded()/WouldExceedSoft() flip, which is the signal
//    operators use to escalate to a spilling algorithm (grace hash join,
//    external merge sort) before the hard limit is in danger.
//  - `hard_bytes`: the limit. A reservation that would cross it fails
//    with kResourceExhausted; the operator unwinds with that Status and
//    the query fails cleanly instead of taking the process down.
//
// A child tracker (one per operator) charges its parent first, so the
// query-level counter always reflects the sum of its operators while each
// operator can still report its own usage/peak. All counters are atomics:
// parallel operator chunks charge concurrently without locks. <= 0 for a
// threshold means unlimited (accounting only).
//
// MemoryTracker does not allocate or own memory; callers charge what they
// are about to allocate and release what they free. Estimates, not
// malloc-byte truth — see ApproxTupleBytes in storage/relation.h for the
// row heuristic the executor uses.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(int64_t soft_bytes, int64_t hard_bytes,
                MemoryTracker* parent = nullptr)
      : soft_bytes_(soft_bytes), hard_bytes_(hard_bytes), parent_(parent) {}
  // A failed query's tracker is discarded with charges still outstanding
  // (the executor stops releasing once the query carries an error); the
  // leftover is returned to the ancestors here so a long-lived parent —
  // the service's global root — stays balanced across failed queries.
  ~MemoryTracker();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Charges `bytes` against this tracker and every ancestor. On a hard
  // limit hit anywhere in the chain, nothing is charged and the Status
  // names the exhausted tracker's usage. `bytes` < 0 is a programming
  // error.
  Status Reserve(int64_t bytes, const char* what = "allocation");

  // Returns the charge. Releasing more than was reserved is a programming
  // error (DCHECK), clamped in release builds.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t soft_bytes() const { return soft_bytes_; }
  int64_t hard_bytes() const { return hard_bytes_; }
  MemoryTracker* parent() const { return parent_; }

  // True once usage is at or above the soft threshold (somewhere in the
  // chain: a child is soft-exceeded when its parent is).
  bool SoftExceeded() const;
  // True if reserving `bytes` now would put usage at or above the soft
  // threshold (here or in an ancestor). The spill-escalation predicate.
  bool WouldExceedSoft(int64_t bytes) const;

 private:
  void Charge(int64_t bytes);

  const int64_t soft_bytes_ = 0;  // <= 0: no spill threshold
  const int64_t hard_bytes_ = 0;  // <= 0: no hard limit
  MemoryTracker* const parent_ = nullptr;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

// RAII charge: reserves in the constructor (check ok() before relying on
// it), releases the reserved amount on destruction. Add() grows the charge
// later (e.g. per output chunk).
class ScopedReservation {
 public:
  explicit ScopedReservation(MemoryTracker* tracker) : tracker_(tracker) {}
  ScopedReservation(MemoryTracker* tracker, int64_t bytes,
                    const char* what = "allocation")
      : tracker_(tracker) {
    status_ = Add(bytes, what);
  }
  ~ScopedReservation() { Reset(); }

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  Status Add(int64_t bytes, const char* what = "allocation") {
    if (tracker_ == nullptr || bytes <= 0) return Status::OK();
    Status s = tracker_->Reserve(bytes, what);
    if (s.ok()) bytes_ += bytes;
    return s;
  }

  // Releases everything reserved so far.
  void Reset() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
    bytes_ = 0;
  }

  // Hands the accumulated charge to the caller (it will not be released
  // on destruction). Used when the charged object outlives this scope.
  int64_t Detach() {
    int64_t b = bytes_;
    bytes_ = 0;
    return b;
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  int64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  int64_t bytes_ = 0;
  Status status_;
};

}  // namespace eca

#endif  // ECA_COMMON_MEMORY_TRACKER_H_
