#ifndef ECA_COMMON_MACROS_H_
#define ECA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. The library does not use exceptions (Google style);
// violated invariants are programming errors and abort with a message.
#define ECA_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ECA_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ECA_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ECA_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define ECA_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define ECA_DCHECK(cond) ECA_CHECK(cond)
#endif

#endif  // ECA_COMMON_MACROS_H_
