#include "common/metrics.h"

#include <cstdio>

namespace eca {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

}  // namespace

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  // Bucket k >= 1 holds [2^(k-1), 2^k): k = bit_width(value).
  int k = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++k;
  }
  return k < kNumBuckets ? k : kNumBuckets - 1;
}

int64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return static_cast<int64_t>(1) << (b - 1);
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    int64_t prev = it != base.counters.end() ? it->second : 0;
    out.counters[name] = value - prev;
  }
  for (const auto& [name, hist] : histograms) {
    HistogramSnapshot d = hist;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        d.buckets[b] -= it->second.buckets[b];
      }
    }
    out.histograms[name] = d;
  }
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    std::snprintf(line, sizeof(line), "  %-40s %12lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    if (hist.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-40s count=%lld sum=%lld mean=%.1f\n", name.c_str(),
                  static_cast<long long>(hist.count),
                  static_cast<long long>(hist.sum), hist.Mean());
    out += line;
  }
  if (out.empty()) out = "  (no activity)\n";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char num[96];
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(num, sizeof(num), "\":%lld",
                  static_cast<long long>(value));
    out += num;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(num, sizeof(num), "\":{\"count\":%lld,\"sum\":%lld",
                  static_cast<long long>(hist.count),
                  static_cast<long long>(hist.sum));
    out += num;
    out += ",\"buckets\":[";
    // Trailing all-zero buckets are elided to keep the JSON compact.
    int last = Histogram::kNumBuckets - 1;
    while (last >= 0 && hist.buckets[static_cast<size_t>(last)] == 0) --last;
    for (int b = 0; b <= last; ++b) {
      if (b > 0) out += ',';
      std::snprintf(num, sizeof(num), "%lld",
                    static_cast<long long>(
                        hist.buckets[static_cast<size_t>(b)]));
      out += num;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed:
  return *r;  // cached metric pointers must outlive static teardown
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) {
    out.counters[name] = c->value();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.count = h->count();
    s.sum = h->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      s.buckets[static_cast<size_t>(b)] =
          h->buckets_[b].load(std::memory_order_relaxed);
    }
    out.histograms[name] = s;
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      h->buckets_[b].store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace eca
