#ifndef ECA_COMMON_TRACE_H_
#define ECA_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace eca {

// Low-overhead query-lifecycle span tracer (docs/observability.md).
//
// Disabled (the default) the whole machinery is a single relaxed atomic
// load per span: TraceSpan's constructor reads the flag and does nothing
// else — no allocation, no clock read, no buffer registration (asserted
// by trace_test's zero-allocation case). Enabled, every completed span
// becomes one fixed-size Event in a per-thread ring buffer:
//
//  - writes touch only the calling thread's ring (one uncontended mutex
//    acquisition; the exporter is the only other party that ever takes
//    it), so governed, parallel and spilled runs trace correctly at any
//    thread count without synchronizing with each other;
//  - rings have fixed capacity; when full, the oldest events of that
//    thread are overwritten and DroppedCount() grows — tracing never
//    allocates beyond the ring it created at registration;
//  - ToJson()/WriteJson() render the retained events in Chrome trace
//    event format ("traceEvents", ph "X"/"i"), loadable directly in
//    chrome://tracing or https://ui.perfetto.dev.
//
// Event names and args are copied into fixed-size char arrays, so spans
// may be named from stack-built strings ("wave-3") without lifetime
// concerns. Args render as one "detail" string in the JSON.
class Tracer {
 public:
  static constexpr size_t kNameSize = 40;
  static constexpr size_t kArgsSize = 56;
  static constexpr size_t kDefaultCapacity = 16384;  // events per thread

  struct Event {
    char name[kNameSize];
    char args[kArgsSize];
    int tid = 0;
    int64_t start_ns = 0;
    int64_t dur_ns = 0;  // kInstant for instant ("i") events
  };
  static constexpr int64_t kInstant = -1;

  // Starts recording with fresh, empty buffers (any previously retained
  // events are discarded). Threads register their ring lazily on first
  // span; each ring holds `per_thread_capacity` events.
  static void Enable(size_t per_thread_capacity = kDefaultCapacity);

  // Stops recording. Retained events stay exportable until the next
  // Enable().
  static void Disable();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // A zero-duration marker event (governor trips, escalations, ...).
  static void Instant(const char* name, const char* args = nullptr);

  // Chrome trace event JSON of every retained event, across threads.
  static std::string ToJson();
  static Status WriteJson(const std::string& path);

  // Retained / overwritten event counts and the number of registered
  // per-thread rings, for tests and the CLI summary line.
  static int64_t EventCount();
  static int64_t DroppedCount();
  static int ThreadBufferCount();

  // Heap allocations the tracer itself has performed since process start
  // (ring registration and JSON export only). Stays at zero as long as
  // the tracer is disabled — the hook trace_test uses to pin down the
  // disabled-mode zero-allocation guarantee.
  static int64_t AllocationCountForTest();

  // Time since the tracer's clock epoch; the timestamp base of Event.
  static int64_t NowNs();

 private:
  friend class TraceSpan;

  static void Emit(const char* name, const char* args, int64_t start_ns,
                   int64_t dur_ns);

  static std::atomic<bool> enabled_;
};

// RAII span: construction stamps the start time, destruction emits one
// Event covering the enclosed scope. Construct-before-work so nested
// spans nest in the timeline. AppendArg formats into a fixed on-stack
// buffer (no allocation); args added after the span is created show up
// in the exported event.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Tracer::enabled()) return;
    Begin(name);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) End();
  }

  // True when the tracer was enabled at construction; callers use this to
  // skip arg formatting entirely on the disabled path.
  bool active() const { return active_; }

  void AppendArg(const char* key, long long value);
  void AppendArg(const char* key, const char* value);

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  int64_t start_ns_ = 0;
  char name_[Tracer::kNameSize];
  char args_[Tracer::kArgsSize];
};

}  // namespace eca

#endif  // ECA_COMMON_TRACE_H_
