#ifndef ECA_COMMON_RNG_H_
#define ECA_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace eca {

// Deterministic, seedable PRNG (splitmix64 core). Used by the data
// generators and the randomized rule-verification harness so that every
// test failure is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    ECA_DCHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace eca

#endif  // ECA_COMMON_RNG_H_
