#ifndef ECA_COMMON_REL_SET_H_
#define ECA_COMMON_REL_SET_H_

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace eca {

// A set of query-relation ids (0..63) represented as a 64-bit bitmask.
//
// Every attribute set that appears in the paper's compensation operators
// (the A of lambda/gamma, the A and B of gamma*, the projection list of the
// relation-level pi) is a union of whole-relation attribute sets, so the
// rewrite layer manipulates RelSets instead of column lists. The executor
// maps relation ids back to column ranges.
class RelSet {
 public:
  constexpr RelSet() : bits_(0) {}
  constexpr explicit RelSet(uint64_t bits) : bits_(bits) {}

  static constexpr RelSet Single(int rel_id) {
    return RelSet(uint64_t{1} << rel_id);
  }
  // Relations with ids in [0, n).
  static constexpr RelSet FirstN(int n) {
    return n >= 64 ? RelSet(~uint64_t{0}) : RelSet((uint64_t{1} << n) - 1);
  }

  constexpr bool Empty() const { return bits_ == 0; }
  constexpr bool Contains(int rel_id) const {
    return (bits_ >> rel_id) & uint64_t{1};
  }
  constexpr bool ContainsAll(RelSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(RelSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  int Count() const { return __builtin_popcountll(bits_); }

  // The single element of a singleton set.
  int SingleId() const {
    ECA_DCHECK(Count() == 1);
    return __builtin_ctzll(bits_);
  }
  // Smallest element; set must be non-empty.
  int Min() const {
    ECA_DCHECK(!Empty());
    return __builtin_ctzll(bits_);
  }

  constexpr RelSet Union(RelSet other) const {
    return RelSet(bits_ | other.bits_);
  }
  constexpr RelSet Intersect(RelSet other) const {
    return RelSet(bits_ & other.bits_);
  }
  constexpr RelSet Minus(RelSet other) const {
    return RelSet(bits_ & ~other.bits_);
  }
  RelSet With(int rel_id) const { return Union(Single(rel_id)); }
  RelSet Without(int rel_id) const { return Minus(Single(rel_id)); }

  constexpr uint64_t bits() const { return bits_; }

  friend constexpr bool operator==(RelSet a, RelSet b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(RelSet a, RelSet b) {
    return a.bits_ != b.bits_;
  }
  friend constexpr bool operator<(RelSet a, RelSet b) {
    return a.bits_ < b.bits_;
  }

  // Iterates over set members in increasing order.
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return __builtin_ctzll(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

  // Renders as e.g. "{R0,R2,R3}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int id : *this) {
      if (!first) out += ",";
      out += "R" + std::to_string(id);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

struct RelSetHash {
  size_t operator()(RelSet s) const {
    uint64_t x = s.bits();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace eca

#endif  // ECA_COMMON_REL_SET_H_
