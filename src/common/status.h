#ifndef ECA_COMMON_STATUS_H_
#define ECA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace eca {

// Error taxonomy for fallible operations. The library does not use
// exceptions (Google style); operations that can fail on *user input* —
// malformed data files, hand-built plans, bad CLI arguments, exhausted
// resource budgets — return Status / StatusOr<T> instead of aborting.
// ECA_CHECK remains reserved for programming-error invariants.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input (plan, predicate, CLI flag)
  kNotFound,           // missing file / table / column
  kOutOfRange,         // index or id outside its valid domain
  kResourceExhausted,  // budget or memory limit hit
  kDataLoss,           // unreadable or truncated data file
  kInternal,           // invariant violation surfaced as an error
  kDeadlineExceeded,   // wall-clock deadline passed (query governor)
  kCancelled,          // cooperative cancellation (CancelToken)
  kUnavailable,        // transient service failure (draining, dropped
                       // connection) — safe to retry with backoff
};

const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or an (code, message) error.
// The message of an error Status is never empty: every failure must be
// actionable for the user who caused it.
class Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    ECA_DCHECK(code != StatusCode::kOk);
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }
  static Status InvalidArgument(std::string message) {
    return Error(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Error(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Error(StatusCode::kOutOfRange, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Error(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Error(StatusCode::kDataLoss, std::move(message));
  }
  static Status Internal(std::string message) {
    return Error(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Error(StatusCode::kCancelled, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Error(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  // Prefixes the message with context ("while reading foo.tbl: ...");
  // no-op on OK.
  Status WithContext(const std::string& context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a T or the Status explaining why there is none. The wrapped
// Status of a value-holding StatusOr is OK; an error StatusOr never holds
// a value. value() on an error is a programming error and CHECK-fails.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT
      : status_(std::move(status)) {
    ECA_CHECK_MSG(!status_.ok(), "OK status used to construct StatusOr");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ECA_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    ECA_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    ECA_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagation helpers, usable in any function returning Status or
// StatusOr<T> (both convert from Status).
#define ECA_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::eca::Status eca_status_ = (expr);        \
    if (!eca_status_.ok()) return eca_status_; \
  } while (0)

#define ECA_STATUS_CONCAT_INNER_(a, b) a##b
#define ECA_STATUS_CONCAT_(a, b) ECA_STATUS_CONCAT_INNER_(a, b)

#define ECA_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto ECA_STATUS_CONCAT_(eca_statusor_, __LINE__) = (expr);         \
  if (!ECA_STATUS_CONCAT_(eca_statusor_, __LINE__).ok()) {           \
    return ECA_STATUS_CONCAT_(eca_statusor_, __LINE__).status();     \
  }                                                                  \
  lhs = std::move(ECA_STATUS_CONCAT_(eca_statusor_, __LINE__)).value()

}  // namespace eca

#endif  // ECA_COMMON_STATUS_H_
