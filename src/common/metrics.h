#ifndef ECA_COMMON_METRICS_H_
#define ECA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace eca {

// Process-wide metrics registry (docs/observability.md): named counters
// and fixed-bucket histograms with lock-free increments. Registration
// (name -> object) takes a mutex once; hot paths cache the returned
// pointer (objects are never destroyed or moved, so a cached pointer
// stays valid for the life of the process — the usual pattern is a
// function-local `static Counter* const`). Readers take consistent-enough
// relaxed snapshots; the snapshot/diff API is how per-query views are
// carved out of the monotonically-growing process totals.

class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

// Power-of-two bucketed histogram for non-negative int64 samples: bucket
// 0 counts value 0, bucket k (k >= 1) counts [2^(k-1), 2^k). 48 buckets
// cover the full non-negative range, so there is no overflow bucket to
// lose tail samples in.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  // Inclusive lower bound of bucket index `b`.
  static int64_t BucketLowerBound(int b);
  static int BucketFor(int64_t value);

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  std::array<int64_t, Histogram::kNumBuckets> buckets = {};

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

// A point-in-time copy of every registered metric. DiffSince() yields the
// activity between two snapshots — what ecatool prints per approach and
// what the registry-vs-ExecStats consistency tests compare.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  MetricsSnapshot DiffSince(const MetricsSnapshot& base) const;

  // Human-readable table (counters first, then histograms), zero-valued
  // entries elided.
  std::string ToTable() const;
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // The process registry. Library code records here; there is exactly one
  // way to count things (docs/observability.md has the name catalog).
  static MetricsRegistry& Global();

  // Get-or-create; returned pointers are stable forever.
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric, keeping the objects (and thus every
  // cached pointer) alive. Tests only — production code diffs snapshots
  // instead of resetting shared state.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace eca

#endif  // ECA_COMMON_METRICS_H_
