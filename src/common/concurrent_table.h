#ifndef ECA_COMMON_CONCURRENT_TABLE_H_
#define ECA_COMMON_CONCURRENT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>

namespace eca {

// Murmur3 finalizer: full-avalanche 64-bit mix used to spread table keys
// over power-of-two slot arrays.
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Coordination between the lock-free fast path of the shared memo tables
// and their stop-the-world maintenance (sweep / clear / reset).
//
// Readers and writers on the hot path take a shared pin once per
// enumeration — NOT per probe — so every individual table operation stays
// lock-free; maintenance takes the exclusive side, which both waits for
// in-flight enumerations and blocks new pins while slots are rebuilt.
class ReaderGate {
 public:
  void Pin() { mu_.lock_shared(); }
  void Unpin() { mu_.unlock_shared(); }
  void LockExclusive() { mu_.lock(); }
  bool TryLockExclusive() { return mu_.try_lock(); }
  void UnlockExclusive() { mu_.unlock(); }

 private:
  std::shared_mutex mu_;
};

// Open-addressing hash table from 64-bit keys to immutable chains of
// nodes, in the style of sylvan's lock-free unique tables: a slot is
// claimed for a key with one CAS on an atomic 64-bit word, and nodes are
// prepended to the slot's chain with a CAS on the head pointer. There are
// no locks anywhere on the find/claim path and slots are never unclaimed
// or rehashed while the table is pinned, so a reader can walk a chain
// with plain acquire loads.
//
// `Node` must expose `std::atomic<Node*> next`. The table does not own
// nodes; every published node is reachable from exactly one chain, and
// the owner reclaims them via ForEachNodeExclusive + ResetExclusive under
// a ReaderGate's exclusive side.
//
// Capacity is fixed at construction. When a key's probe window (64 slots)
// is saturated, ClaimHead returns nullptr and the caller must treat the
// publish as rejected (a probe miss later is always safe).
template <typename Node>
class ConcurrentChainTable {
 public:
  static constexpr int kMaxProbe = 64;

  explicit ConcurrentChainTable(size_t slot_count) {
    size_t n = 16;
    while (n < slot_count) n <<= 1;
    mask_ = n - 1;
    slots_ = new Slot[n];
  }
  ~ConcurrentChainTable() { delete[] slots_; }

  ConcurrentChainTable(const ConcurrentChainTable&) = delete;
  ConcurrentChainTable& operator=(const ConcurrentChainTable&) = delete;

  // Head of `key`'s chain (newest node first); nullptr when the key has
  // no slot yet. Lock-free.
  Node* Find(uint64_t key) const {
    key = Normalize(key);
    const size_t start = Mix64(key);
    const int limit = ProbeLimit();
    for (int i = 0; i < limit; ++i) {
      const Slot& s = slots_[(start + static_cast<size_t>(i)) & mask_];
      uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == 0) return nullptr;  // never unclaimed: probe ends here
      if (k == key) return s.head.load(std::memory_order_acquire);
    }
    return nullptr;
  }

  // The chain-head cell for `key`, claiming an empty slot when the key is
  // new; nullptr when the probe window is saturated (publish rejected).
  // Lock-free. Prepend by CAS-ing the head from an observed value to a
  // node whose `next` points at that value.
  std::atomic<Node*>* ClaimHead(uint64_t key) {
    key = Normalize(key);
    const size_t start = Mix64(key);
    const int limit = ProbeLimit();
    for (int i = 0; i < limit; ++i) {
      Slot& s = slots_[(start + static_cast<size_t>(i)) & mask_];
      uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == 0) {
        if (s.key.compare_exchange_strong(k, key, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          claimed_.fetch_add(1, std::memory_order_relaxed);
          return &s.head;
        }
        // Lost the claim race; `k` holds the winner's key.
      }
      if (k == key) return &s.head;
    }
    return nullptr;
  }

  // Visits every node in the table. Caller must hold the exclusive side
  // of the owning gate.
  template <typename Fn>
  void ForEachNodeExclusive(Fn&& fn) const {
    for (size_t i = 0; i <= mask_; ++i) {
      for (Node* n = slots_[i].head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        fn(n);
      }
    }
  }

  // Visits every non-empty chain as (key, head). Caller must hold the
  // exclusive side of the owning gate.
  template <typename Fn>
  void ForEachChainExclusive(Fn&& fn) const {
    for (size_t i = 0; i <= mask_; ++i) {
      uint64_t k = slots_[i].key.load(std::memory_order_relaxed);
      Node* h = slots_[i].head.load(std::memory_order_relaxed);
      if (k != 0 && h != nullptr) fn(k, h);
    }
  }

  // Unclaims every slot (nodes are untouched: collect them first).
  // Caller must hold the exclusive side of the owning gate.
  void ResetExclusive() {
    for (size_t i = 0; i <= mask_; ++i) {
      slots_[i].key.store(0, std::memory_order_relaxed);
      slots_[i].head.store(nullptr, std::memory_order_relaxed);
    }
    claimed_.store(0, std::memory_order_relaxed);
  }

  size_t slot_count() const { return mask_ + 1; }
  size_t claimed() const { return claimed_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> key{0};  // 0 = unclaimed
    std::atomic<Node*> head{nullptr};
  };

  // Key 0 marks an unclaimed slot; remap the (astronomically rare) real
  // zero key instead of widening every slot.
  static uint64_t Normalize(uint64_t key) {
    return key != 0 ? key : 0x9e3779b97f4a7c15ULL;
  }
  int ProbeLimit() const {
    size_t n = mask_ + 1;
    return n < static_cast<size_t>(kMaxProbe) ? static_cast<int>(n)
                                              : kMaxProbe;
  }

  Slot* slots_ = nullptr;
  size_t mask_ = 0;
  std::atomic<size_t> claimed_{0};
};

// Lock-free open-addressing map from 64-bit keys to doubles, for values
// that are a pure function of their key (subtree costs keyed by plan
// fingerprint + stats epoch): duplicate publishes are benign because every
// publisher writes the same value, so the claim CAS needs no retry loop
// and a reader that catches a slot mid-publish simply reports a miss.
// Fixed capacity; a saturated probe window drops the publish.
class ConcurrentCostTable {
 public:
  static constexpr int kMaxProbe = 32;

  explicit ConcurrentCostTable(size_t slot_count) {
    size_t n = 16;
    while (n < slot_count) n <<= 1;
    mask_ = n - 1;
    slots_ = new Slot[n];
  }
  ~ConcurrentCostTable() { delete[] slots_; }

  ConcurrentCostTable(const ConcurrentCostTable&) = delete;
  ConcurrentCostTable& operator=(const ConcurrentCostTable&) = delete;

  bool Lookup(uint64_t key, double* value) const {
    key = Normalize(key);
    const size_t start = Mix64(key);
    const int limit = ProbeLimit();
    for (int i = 0; i < limit; ++i) {
      const Slot& s = slots_[(start + static_cast<size_t>(i)) & mask_];
      uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == 0) return false;
      if (k == key) {
        if (s.ready.load(std::memory_order_acquire) == 0) return false;
        uint64_t bits = s.bits.load(std::memory_order_relaxed);
        double v;
        static_assert(sizeof(v) == sizeof(bits));
        __builtin_memcpy(&v, &bits, sizeof(v));
        *value = v;
        return true;
      }
    }
    return false;
  }

  void Publish(uint64_t key, double value) {
    key = Normalize(key);
    const size_t start = Mix64(key);
    const int limit = ProbeLimit();
    for (int i = 0; i < limit; ++i) {
      Slot& s = slots_[(start + static_cast<size_t>(i)) & mask_];
      uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == 0 &&
          s.key.compare_exchange_strong(k, key, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        uint64_t bits;
        __builtin_memcpy(&bits, &value, sizeof(bits));
        s.bits.store(bits, std::memory_order_relaxed);
        s.ready.store(1, std::memory_order_release);
        return;
      }
      if (k == key) return;  // same pure value already (being) published
    }
    // Window saturated: drop. Lookup misses are always safe.
  }

  // Caller must hold the exclusive side of the owning gate.
  void ResetExclusive() {
    for (size_t i = 0; i <= mask_; ++i) {
      slots_[i].key.store(0, std::memory_order_relaxed);
      slots_[i].bits.store(0, std::memory_order_relaxed);
      slots_[i].ready.store(0, std::memory_order_relaxed);
    }
  }

  size_t slot_count() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> bits{0};
    std::atomic<uint32_t> ready{0};
  };

  static uint64_t Normalize(uint64_t key) {
    return key != 0 ? key : 0x9e3779b97f4a7c15ULL;
  }
  int ProbeLimit() const {
    size_t n = mask_ + 1;
    return n < static_cast<size_t>(kMaxProbe) ? static_cast<int>(n)
                                              : kMaxProbe;
  }

  Slot* slots_ = nullptr;
  size_t mask_ = 0;
};

}  // namespace eca

#endif  // ECA_COMMON_CONCURRENT_TABLE_H_
