#include "common/memory_tracker.h"

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace eca {

MemoryTracker::~MemoryTracker() {
  int64_t leftover = used_.load(std::memory_order_relaxed);
  if (parent_ != nullptr && leftover > 0) parent_->Release(leftover);
}

Status MemoryTracker::Reserve(int64_t bytes, const char* what) {
  ECA_DCHECK(bytes >= 0);
  if (bytes <= 0) return Status::OK();
  // Charge parents first so the query-level counter is the one that
  // enforces the limit for the whole operator tree.
  if (parent_ != nullptr) {
    ECA_RETURN_IF_ERROR(parent_->Reserve(bytes, what));
  }
  if (hard_bytes_ > 0) {
    // Optimistic add, undo on overflow: concurrent reservations may
    // transiently exceed by their own size, never by another thread's.
    int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (now > hard_bytes_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      if (parent_ != nullptr) parent_->Release(bytes);
      static Counter* const fails =
          MetricsRegistry::Global().counter("governor.reserve_fail");
      fails->Increment();
      Tracer::Instant("governor/reserve-fail", what);
      return Status::ResourceExhausted(StrFormat(
          "memory limit exceeded: %s of %lld bytes would put tracked usage "
          "at %lld of %lld",
          what, static_cast<long long>(bytes), static_cast<long long>(now),
          static_cast<long long>(hard_bytes_)));
    }
    Charge(0);  // refresh peak from the successful add
  } else {
    used_.fetch_add(bytes, std::memory_order_relaxed);
    Charge(0);
  }
  return Status::OK();
}

void MemoryTracker::Charge(int64_t bytes) {
  int64_t now = used_.load(std::memory_order_relaxed) + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(int64_t bytes) {
  ECA_DCHECK(bytes >= 0);
  if (bytes <= 0) return;
  int64_t prev = used_.fetch_sub(bytes, std::memory_order_relaxed);
  ECA_DCHECK(prev >= bytes);
  if (prev < bytes) used_.store(0, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

bool MemoryTracker::SoftExceeded() const {
  if (soft_bytes_ > 0 && used() >= soft_bytes_) return true;
  return parent_ != nullptr && parent_->SoftExceeded();
}

bool MemoryTracker::WouldExceedSoft(int64_t bytes) const {
  if (soft_bytes_ > 0 && used() + bytes >= soft_bytes_) return true;
  return parent_ != nullptr && parent_->WouldExceedSoft(bytes);
}

}  // namespace eca
