#ifndef ECA_COMMON_STR_UTIL_H_
#define ECA_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace eca {

// Joins the elements of `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Repeats `s` `n` times.
std::string StrRepeat(const std::string& s, int n);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace eca

#endif  // ECA_COMMON_STR_UTIL_H_
