#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace eca {

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrRepeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(len), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace eca
