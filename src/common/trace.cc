#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace eca {

namespace {

// Every heap allocation the tracer makes goes through here so the
// disabled-mode zero-allocation guarantee is testable.
std::atomic<int64_t> g_allocations{0};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<Tracer::Event> ring;  // fixed capacity, slot = count % cap
  uint64_t count = 0;               // total events ever pushed
  int tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  size_t capacity = Tracer::kDefaultCapacity;
  // Bumped by Enable(): thread-local cached buffers from an older epoch
  // re-register, so every Enable() starts from clean rings.
  std::atomic<uint64_t> epoch{0};
  std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: threads may
  return *r;                            // outlive static teardown
}

struct LocalSlot {
  uint64_t epoch = 0;
  std::shared_ptr<ThreadBuffer> buf;
};

ThreadBuffer* LocalBuffer() {
  thread_local LocalSlot slot;
  Registry& reg = registry();
  uint64_t epoch = reg.epoch.load(std::memory_order_acquire);
  if (slot.buf == nullptr || slot.epoch != epoch) {
    auto buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(reg.mu);
    buf->ring.resize(reg.capacity);
    buf->tid = static_cast<int>(reg.buffers.size()) + 1;
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    reg.buffers.push_back(buf);
    slot.buf = std::move(buf);
    slot.epoch = epoch;
  }
  return slot.buf.get();
}

void CopyBounded(char* dst, size_t cap, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::snprintf(dst, cap, "%s", src);
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

int64_t Tracer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().t0)
      .count();
}

void Tracer::Enable(size_t per_thread_capacity) {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.clear();
    reg.capacity = per_thread_capacity > 0 ? per_thread_capacity : 1;
    reg.t0 = std::chrono::steady_clock::now();
  }
  reg.epoch.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::Emit(const char* name, const char* args, int64_t start_ns,
                  int64_t dur_ns) {
  ThreadBuffer* buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  Event& e = buf->ring[static_cast<size_t>(buf->count % buf->ring.size())];
  CopyBounded(e.name, kNameSize, name);
  CopyBounded(e.args, kArgsSize, args);
  e.tid = buf->tid;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  ++buf->count;
}

void Tracer::Instant(const char* name, const char* args) {
  if (!enabled()) return;
  Emit(name, args, NowNs(), kInstant);
}

std::string Tracer::ToJson() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[160];
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    const uint64_t cap = buf->ring.size();
    const uint64_t begin = buf->count > cap ? buf->count - cap : 0;
    for (uint64_t i = begin; i < buf->count; ++i) {
      const Event& e = buf->ring[static_cast<size_t>(i % cap)];
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      AppendEscaped(&out, e.name);
      out += "\",\"cat\":\"eca\",\"pid\":1,";
      // Timestamps are microseconds in the trace event format; keep ns
      // resolution with fractional microseconds.
      if (e.dur_ns == kInstant) {
        std::snprintf(num, sizeof(num),
                      "\"tid\":%d,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f",
                      e.tid, static_cast<double>(e.start_ns) / 1000.0);
      } else {
        std::snprintf(num, sizeof(num),
                      "\"tid\":%d,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                      e.tid, static_cast<double>(e.start_ns) / 1000.0,
                      static_cast<double>(e.dur_ns) / 1000.0);
      }
      out += num;
      if (e.args[0] != '\0') {
        out += ",\"args\":{\"detail\":\"";
        AppendEscaped(&out, e.args);
        out += "\"}";
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

Status Tracer::WriteJson(const std::string& path) {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output '" + path + "'");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

int64_t Tracer::EventCount() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  int64_t total = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += static_cast<int64_t>(
        buf->count > buf->ring.size() ? buf->ring.size() : buf->count);
  }
  return total;
}

int64_t Tracer::DroppedCount() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  int64_t dropped = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    if (buf->count > buf->ring.size()) {
      dropped += static_cast<int64_t>(buf->count - buf->ring.size());
    }
  }
  return dropped;
}

int Tracer::ThreadBufferCount() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return static_cast<int>(reg.buffers.size());
}

int64_t Tracer::AllocationCountForTest() {
  return g_allocations.load(std::memory_order_relaxed);
}

void TraceSpan::Begin(const char* name) {
  active_ = true;
  CopyBounded(name_, Tracer::kNameSize, name);
  args_[0] = '\0';
  start_ns_ = Tracer::NowNs();
}

void TraceSpan::End() {
  // A span that straddles Disable() is dropped rather than recorded into
  // buffers that a concurrent Enable() may be recycling.
  if (!Tracer::enabled()) return;
  Tracer::Emit(name_, args_, start_ns_, Tracer::NowNs() - start_ns_);
}

void TraceSpan::AppendArg(const char* key, long long value) {
  if (!active_) return;
  size_t len = std::strlen(args_);
  std::snprintf(args_ + len, Tracer::kArgsSize - len, "%s%s=%lld",
                len > 0 ? " " : "", key, value);
}

void TraceSpan::AppendArg(const char* key, const char* value) {
  if (!active_) return;
  size_t len = std::strlen(args_);
  std::snprintf(args_ + len, Tracer::kArgsSize - len, "%s%s=%s",
                len > 0 ? " " : "", key, value);
}

}  // namespace eca
