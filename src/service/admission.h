#ifndef ECA_SERVICE_ADMISSION_H_
#define ECA_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/status.h"

namespace eca {

// Multi-query admission control for the ecad service (docs/robustness.md,
// "Service hardening"). Every query passes through Admit() before it may
// optimize or execute; the controller enforces three independent bounds:
//
//  - concurrency: at most `max_concurrent` queries run at once; further
//    arrivals wait in a bounded FIFO queue.
//  - memory commit: each query declares a memory budget (its hard limit);
//    the sum of admitted budgets stays under `commit_limit_bytes`. A query
//    whose budget does not currently fit queues until running queries
//    release theirs — except when nothing is running, where it is admitted
//    alone so a single over-sized budget cannot starve forever.
//  - overload shedding: an arrival that finds the queue full is rejected
//    immediately with kResourceExhausted — a cheap, clean "try later"
//    instead of unbounded queue growth.
//
// Queued work is deadline-aware: a waiter whose remaining deadline can no
// longer cover its estimated runtime (`est_run_ms`) is rejected early with
// kResourceExhausted instead of being admitted just to blow its deadline
// mid-execution. Admission also decides the degraded-planning bit: a
// query admitted with less than `degrade_below_ms` of deadline left is
// told to plan with the sizes-only fallback
// (Optimizer::Options::sizes_only_fallback_ms) so every remaining
// millisecond goes to execution.
//
// BeginDrain() flips the controller into shutdown mode: every queued
// waiter wakes with kUnavailable and new arrivals are rejected the same
// way, while already-admitted queries keep their slots until Release().
//
// Everything increments the service.* metrics (docs/observability.md):
// admitted / queued / shed / deadline_rejected / drain_rejected counters
// and the queue_wait_ms histogram.
struct AdmissionConfig {
  int max_concurrent = 4;
  int max_queue = 16;
  // Sum of admitted queries' memory budgets; <= 0 = unlimited.
  int64_t commit_limit_bytes = 0;
  // Budget charged for queries that declare none.
  int64_t default_commit_bytes = 64ll << 20;
  // Estimated per-query runtime for deadline-aware queue rejection;
  // <= 0 disables the early reject (waiters still time out at their
  // deadline itself).
  int64_t est_run_ms = 0;
  // Remaining deadline below this at admission time => advise degraded
  // (sizes-only) planning; <= 0 disables.
  int64_t degrade_below_ms = 0;
};

// What Admit() grants; pass back to Release() exactly once.
struct Admission {
  int64_t commit_bytes = 0;
  int64_t queue_wait_ms = 0;
  // Plan with the sizes-only fallback: the deadline is too tight for DP
  // enumeration (AdmissionConfig::degrade_below_ms).
  bool degrade_plan = false;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Blocks until the query may run. `commit_bytes` <= 0 uses the default
  // budget; `remaining_deadline_ms` <= 0 means no deadline (waits
  // indefinitely for a slot). Errors:
  //   kResourceExhausted  queue full on arrival (shed), or the remaining
  //                       deadline cannot cover the estimated runtime
  //   kUnavailable        the controller is draining
  StatusOr<Admission> Admit(int64_t commit_bytes,
                            int64_t remaining_deadline_ms);

  // Returns the admission's slot and commit budget; wakes waiters.
  void Release(const Admission& admission);

  // Shutdown mode: rejects new arrivals and queued waiters with
  // kUnavailable. Idempotent.
  void BeginDrain();
  bool draining() const;

  // Blocks until no admitted query remains (drain completion barrier).
  void WaitIdle();

  int active() const;
  int queued() const;
  int64_t committed_bytes() const;

 private:
  // True when a waiter with this budget may start now (slot + commit).
  bool FitsLocked(int64_t commit_bytes) const;

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool draining_ = false;
  int active_ = 0;
  int queued_ = 0;
  int64_t committed_bytes_ = 0;
  int64_t next_ticket_ = 0;        // FIFO order for queued waiters
  std::set<int64_t> waiting_;      // tickets still in the queue; the
                                   // smallest is the admission head
};

}  // namespace eca

#endif  // ECA_SERVICE_ADMISSION_H_
