#ifndef ECA_SERVICE_SERVER_H_
#define ECA_SERVICE_SERVER_H_

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/session.h"

namespace eca {

// The always-on query service (docs/service.md): a unix-domain stream
// socket, one session thread per connection, every request answered by
// the shared ServiceState (admission control, global memory root,
// per-query governor). The server owns the whole lifecycle:
//
//   Start()  sweeps orphaned spill directories left by crashed processes,
//            binds the socket and spawns the accept loop.
//   Stop()   graceful drain: admission rejects new work (kUnavailable),
//            every in-flight query's CancelToken fires (clients get a
//            clean kCancelled response), admitted work fully releases,
//            connections close, threads join. Idempotent. After Stop()
//            the global tracker is back at zero — Stop() DCHECKs it.
//
// Robustness hooks: FaultPoint::kServiceAccept drops a just-accepted
// connection (clients must treat it as retryable), and any session I/O
// failure ends only that session — the query it was running unwinds
// through its governor without touching other sessions.
struct ServerConfig {
  // Unix socket path; must fit sockaddr_un (~100 bytes). An existing
  // socket file at the path is replaced.
  std::string socket_path;
  ServiceOptions service;
  // Fault arming for robustness tests (fault state is thread-local, so
  // the threads that hit the points must arm them themselves): >= 0 arms
  // kServiceAccept on the accept thread / kServiceWrite on every session
  // thread with that skip count; < 0 (default) leaves them disarmed.
  int64_t fault_accept_skip = -1;
  int64_t fault_write_skip = -1;
};

class EcadServer {
 public:
  // `db` must outlive the server.
  EcadServer(const Database* db, ServerConfig config);
  ~EcadServer();

  EcadServer(const EcadServer&) = delete;
  EcadServer& operator=(const EcadServer&) = delete;

  Status Start();
  void Stop();

  bool started() const { return started_; }
  const std::string& socket_path() const { return config_.socket_path; }
  ServiceState& state() { return state_; }
  // Orphaned spill directories reclaimed by Start()'s crash-recovery
  // sweep.
  int64_t swept_spill_dirs() const { return swept_spill_dirs_; }
  // Outcome of Start()'s plan-cache load (all-zero when no cache file is
  // configured). A degraded load is a cold-cache start, never a failure.
  const CacheStore::LoadResult& cache_load() const { return cache_load_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServerConfig config_;
  ServiceState state_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  int64_t swept_spill_dirs_ = 0;
  CacheStore::LoadResult cache_load_;
  std::thread accept_thread_;

  // Live connection fds (shutdown() on Stop unblocks idle sessions) and
  // their threads (joined on Stop).
  std::mutex conn_mu_;
  std::set<int> conn_fds_;
  std::vector<std::thread> sessions_;
};

}  // namespace eca

#endif  // ECA_SERVICE_SERVER_H_
