#ifndef ECA_SERVICE_WIRE_H_
#define ECA_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace eca {

// The ecad wire protocol (docs/service.md): length-prefixed frames over a
// local stream socket. Each frame is a 4-byte little-endian payload length
// followed by the payload; the payload is a line-oriented message — the
// first line names the message type, every further line is one
// percent-escaped "key=value" field. Keys may repeat (QUERY carries one
// "pred" field per predicate), and field order is preserved, so encoding
// is deterministic: two equal messages produce byte-identical frames.
//
// Message types (requests -> responses):
//   QUERY   -> RESULT   optimize + execute one plan under the governor
//   METRICS -> METRICS  scrape the process metrics registry (JSON)
//   PING    -> PONG     liveness probe (served even when saturated)
//   any     -> ERROR    malformed frame / unknown type / shed / failure
//
// Frames are capped at kMaxFrameBytes so a corrupt or hostile length
// prefix cannot make the server allocate unbounded memory. All transport
// errors surface as Status: kUnavailable for connection-level failures
// (the client's retry class), kInvalidArgument for malformed payloads.
// FaultPoint::kServiceWrite makes WriteFrame fail deterministically so
// dropped-connection handling is testable without real sockets
// misbehaving.

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

struct WireMessage {
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  void Add(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
  void AddInt(std::string key, int64_t value) {
    Add(std::move(key), std::to_string(value));
  }

  // First value for `key`, or nullptr when absent.
  const std::string* Find(const std::string& key) const;
  // All values for `key`, in insertion order.
  std::vector<std::string> FindAll(const std::string& key) const;
  // First value for `key` parsed as a strict base-10 int64; `fallback`
  // when the key is absent; kInvalidArgument when present but malformed.
  StatusOr<int64_t> FindInt(const std::string& key, int64_t fallback) const;
};

// Payload encoding (without the length prefix). Deterministic.
std::string EncodeMessage(const WireMessage& msg);
StatusOr<WireMessage> DecodeMessage(const std::string& payload);

// Blocking framed I/O over a file descriptor (handles short reads/writes
// and EINTR). WriteFrame consults FaultPoint::kServiceWrite before every
// write syscall. ReadFrame sets *eof (and returns OK with an empty
// message) when the peer closed the connection cleanly before any byte of
// a frame; a close mid-frame is kUnavailable.
Status WriteFrame(int fd, const WireMessage& msg);
StatusOr<WireMessage> ReadFrame(int fd, bool* eof);

// Convenience for clients and tests: one request -> one response.
StatusOr<WireMessage> RoundTrip(int fd, const WireMessage& request);

// --- Client-side retry helpers (ecaclient, smoke tools) ---------------
//
// The retryable class is exactly kUnavailable: connection refused while
// the daemon restarts, a connection reset at accept or mid-frame, a
// server that closed before responding, and the in-band kUnavailable a
// draining server answers with. Everything else (parse errors, shed,
// cancel, query failures) must surface immediately.
bool IsRetryableWireStatus(const Status& status);

// Backoff before the `attempt`-th re-attempt (attempt >= 1): 50ms base,
// doubling, capped at 2s, plus a deterministic jitter in [0, 25) ms
// derived from hash(salt, attempt) — synchronized clients fan out, and
// tests stay reproducible. Callers typically pass their pid as `salt`.
int64_t RetryBackoffMs(int64_t attempt, uint64_t salt);

// Connects a blocking AF_UNIX stream socket. Connect-time failures that
// mean "the daemon is not there right now" — ECONNREFUSED and a missing
// socket file during a restart window — are kUnavailable so callers can
// retry them with RetryBackoffMs; a malformed path is kInvalidArgument.
StatusOr<int> ConnectUnixSocket(const std::string& path);

// Builds the standard ERROR response for a failed request.
WireMessage ErrorResponse(const Status& status);
// Maps a RESULT/ERROR response's "status" field back to a StatusCode
// (kInternal for names this build does not know).
StatusCode ParseStatusCodeName(const std::string& name);

}  // namespace eca

#endif  // ECA_SERVICE_WIRE_H_
