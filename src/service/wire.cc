#include "service/wire.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "testing/fault_injection.h"

namespace eca {

namespace {

// Values are percent-escaped so newlines (the line separator) and '%'
// round-trip; '=' only separates on the first occurrence, so it needs no
// escape. Keys are restricted to [A-Za-z0-9_.-] by construction.
void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    if (c == '\n') {
      *out += "%0A";
    } else if (c == '\r') {
      *out += "%0D";
    } else if (c == '%') {
      *out += "%25";
    } else {
      *out += c;
    }
  }
}

bool HexVal(char c, int* v) {
  if (c >= '0' && c <= '9') {
    *v = c - '0';
    return true;
  }
  if (c >= 'A' && c <= 'F') {
    *v = c - 'A' + 10;
    return true;
  }
  if (c >= 'a' && c <= 'f') {
    *v = c - 'a' + 10;
    return true;
  }
  return false;
}

StatusOr<std::string> Unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    int hi = 0, lo = 0;
    if (i + 2 >= in.size() || !HexVal(in[i + 1], &hi) ||
        !HexVal(in[i + 2], &lo)) {
      return Status::InvalidArgument("wire: truncated %-escape in field");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

Status FullWrite(int fd, const unsigned char* data, size_t len) {
#ifdef _WIN32
  (void)fd;
  (void)data;
  (void)len;
  return Status::Internal("wire I/O is POSIX-only");
#else
  size_t off = 0;
  while (off < len) {
    if (FaultInjector::ShouldFail(FaultPoint::kServiceWrite)) {
      return Status::Unavailable("service write fault injected");
    }
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE -> kUnavailable
    // instead of a process-killing SIGPIPE (callers cannot be assumed to
    // ignore it — the gtest binaries do not).
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::write(fd, data + off, len - off);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire write failed: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
#endif
}

// Reads exactly `len` bytes. *eof flags a clean close before the first
// byte when allow_eof; any other short read is kUnavailable.
Status FullRead(int fd, unsigned char* data, size_t len, bool allow_eof,
                bool* eof) {
#ifdef _WIN32
  (void)fd;
  (void)data;
  (void)len;
  (void)allow_eof;
  (void)eof;
  return Status::Internal("wire I/O is POSIX-only");
#else
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire read failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      if (allow_eof && off == 0 && eof != nullptr) {
        *eof = true;
        return Status::OK();
      }
      return Status::Unavailable("wire: connection closed mid-frame");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
#endif
}

}  // namespace

const std::string* WireMessage::Find(const std::string& key) const {
  for (const auto& kv : fields) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

std::vector<std::string> WireMessage::FindAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& kv : fields) {
    if (kv.first == key) out.push_back(kv.second);
  }
  return out;
}

StatusOr<int64_t> WireMessage::FindInt(const std::string& key,
                                       int64_t fallback) const {
  const std::string* raw = Find(key);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("wire: field '" + key +
                                   "' is not an integer: '" + *raw + "'");
  }
  return static_cast<int64_t>(value);
}

std::string EncodeMessage(const WireMessage& msg) {
  std::string out = msg.type;
  out += '\n';
  for (const auto& kv : msg.fields) {
    out += kv.first;
    out += '=';
    AppendEscaped(kv.second, &out);
    out += '\n';
  }
  return out;
}

StatusOr<WireMessage> DecodeMessage(const std::string& payload) {
  WireMessage msg;
  size_t pos = 0;
  bool first = true;
  while (pos < payload.size()) {
    size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("wire: unterminated message line");
    }
    std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    if (first) {
      if (line.empty()) {
        return Status::InvalidArgument("wire: empty message type");
      }
      msg.type = std::move(line);
      first = false;
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("wire: field line without key: '" +
                                     line + "'");
    }
    StatusOr<std::string> value = Unescape(line.substr(eq + 1));
    ECA_RETURN_IF_ERROR(value.status());
    msg.Add(line.substr(0, eq), *std::move(value));
  }
  if (first) return Status::InvalidArgument("wire: empty frame");
  return msg;
}

Status WriteFrame(int fd, const WireMessage& msg) {
  std::string payload = EncodeMessage(msg);
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds " +
                                   std::to_string(kMaxFrameBytes) +
                                   " bytes");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char frame[4];
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<unsigned char>((len >> (8 * i)) & 0xff);
  }
  ECA_RETURN_IF_ERROR(FullWrite(fd, frame, sizeof(frame)));
  return FullWrite(
      fd, reinterpret_cast<const unsigned char*>(payload.data()),
      payload.size());
}

StatusOr<WireMessage> ReadFrame(int fd, bool* eof) {
  if (eof != nullptr) *eof = false;
  unsigned char hdr[4];
  ECA_RETURN_IF_ERROR(
      FullRead(fd, hdr, sizeof(hdr), /*allow_eof=*/true, eof));
  if (eof != nullptr && *eof) return WireMessage{};
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(hdr[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame length " +
                                   std::to_string(len) + " exceeds cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    ECA_RETURN_IF_ERROR(
        FullRead(fd, reinterpret_cast<unsigned char*>(payload.data()), len,
                 /*allow_eof=*/false, nullptr));
  }
  return DecodeMessage(payload);
}

StatusOr<WireMessage> RoundTrip(int fd, const WireMessage& request) {
  ECA_RETURN_IF_ERROR(WriteFrame(fd, request));
  bool eof = false;
  StatusOr<WireMessage> response = ReadFrame(fd, &eof);
  ECA_RETURN_IF_ERROR(response.status());
  if (eof) {
    return Status::Unavailable("wire: server closed before responding");
  }
  return response;
}

bool IsRetryableWireStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

int64_t RetryBackoffMs(int64_t attempt, uint64_t salt) {
  if (attempt < 1) attempt = 1;
  int64_t shift = attempt - 1 < 5 ? attempt - 1 : 5;
  int64_t backoff_ms = 50ll << shift;
  if (backoff_ms > 2000) backoff_ms = 2000;
  // Splitmix-style mix: deterministic for a fixed (salt, attempt), so
  // tests can assert exact values, yet different per client.
  uint64_t h = salt * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(attempt);
  h ^= h >> 31;
  return backoff_ms + static_cast<int64_t>(h % 25);
}

StatusOr<int> ConnectUnixSocket(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return Status::Internal("wire I/O is POSIX-only");
#else
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // ECONNREFUSED (socket file without a listener — the daemon died) and
    // ENOENT (the restarting daemon has not bound yet) are the transient
    // restart window; other errnos are unexpected but a retry is still
    // the safest client response, so the whole class is kUnavailable.
    Status failed = Status::Unavailable("cannot connect to '" + path +
                                        "': " + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  return fd;
#endif
}

WireMessage ErrorResponse(const Status& status) {
  WireMessage msg;
  msg.type = "ERROR";
  msg.Add("status", StatusCodeName(status.code()));
  msg.Add("message", status.message());
  return msg;
}

StatusCode ParseStatusCodeName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kDataLoss, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace eca
