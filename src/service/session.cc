#include "service/session.h"

#include <map>
#include <utility>

#include "algebra/plan_parser.h"
#include "algebra/validate.h"
#include "common/metrics.h"
#include "eca/optimizer.h"
#include "enumerate/enumerator.h"
#include "expr/pred_parser.h"
#include "storage/csv.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

struct SessionCounters {
  Counter* requests;
  Counter* degraded;
  Counter* drained;
};

const SessionCounters& Counters() {
  static const SessionCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    return SessionCounters{reg.counter("service.requests"),
                           reg.counter("service.degraded"),
                           reg.counter("service.drained")};
  }();
  return counters;
}

}  // namespace

void CancelRegistry::Register(CancelToken* token) {
  bool cancel_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_.insert(token);
    cancel_now = cancel_all_;
  }
  if (cancel_now) token->Cancel();
}

void CancelRegistry::Unregister(CancelToken* token) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_.erase(token);
}

int64_t CancelRegistry::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_all_ = true;
  for (CancelToken* token : tokens_) token->Cancel();
  Counters().drained->Add(static_cast<int64_t>(tokens_.size()));
  return static_cast<int64_t>(tokens_.size());
}

bool CancelRegistry::cancelled_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_all_;
}

ServiceState::ServiceState(const Database* db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      // The global root has no limit of its own: per-query hard limits and
      // the admission commit ledger bound usage; the root is the shared
      // soft-spill signal and the drain-to-zero accounting truth.
      root_(options_.admission.commit_limit_bytes,
            /*hard_bytes=*/0),
      admission_(options_.admission) {
  // Eager metric registration: the first METRICS scrape shows the whole
  // service.* set at zero (the AdmissionController ctor does the same
  // for the admission counters).
  Counters();
  if (!options_.plan_cache_file.empty() && options_.plan_cache_bytes <= 0) {
    options_.plan_cache_bytes = 32ll << 20;
  }
  if (options_.plan_cache_bytes > 0) {
    SharedMemo::Config config;
    // Size the slot arrays from the byte budget assuming ~1KB per cached
    // entry, clamped to [2^13, 2^20] slots; the cost table runs 4x wider
    // (entries are one 16-byte slot each).
    size_t slots = size_t{1} << 13;
    while (slots < size_t{1} << 20 &&
           static_cast<int64_t>(slots) * 1024 < options_.plan_cache_bytes) {
      slots <<= 1;
    }
    config.slot_count = slots;
    config.cost_slot_count = slots * 4;
    config.max_bytes = options_.plan_cache_bytes;
    config.parent = &root_;
    plan_cache_ = std::make_unique<SharedMemo>(config);
  }
  if (plan_cache_ != nullptr && !options_.plan_cache_file.empty()) {
    cache_store_ = std::make_unique<CacheStore>(options_.plan_cache_file);
    // A cache file written against different data must never warm us.
    catalog_fp_ = CatalogFingerprint(*db_);
  }
}

CacheStore::LoadResult ServiceState::LoadPlanCache() {
  if (cache_store_ == nullptr) return CacheStore::LoadResult{};
  return cache_store_->Load(plan_cache_.get(), catalog_fp_);
}

Status ServiceState::FlushPlanCache(bool snapshot) {
  if (cache_store_ == nullptr) return Status::OK();
  return snapshot ? cache_store_->WriteSnapshot(plan_cache_.get(), catalog_fp_)
                  : cache_store_->AppendNew(plan_cache_.get(), catalog_fp_);
}

WireMessage ServiceState::Handle(const WireMessage& request) {
  Counters().requests->Increment();
  if (request.type == "PING") {
    WireMessage pong;
    pong.type = "PONG";
    return pong;
  }
  if (request.type == "METRICS") return HandleMetrics();
  if (request.type == "QUERY") return HandleQuery(request);
  return ErrorResponse(Status::InvalidArgument(
      "unknown request type '" + request.type + "'"));
}

WireMessage ServiceState::HandleMetrics() {
  WireMessage response;
  response.type = "METRICS";
  response.Add("json", MetricsRegistry::Global().Snapshot().ToJson());
  return response;
}

WireMessage ServiceState::HandleQuery(const WireMessage& request) {
  // -- Parse and validate the request before spending any admission slot.
  const std::string* plan_text = request.Find("plan");
  if (plan_text == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("QUERY is missing the 'plan' field"));
  }
  std::map<std::string, PredRef> preds;
  for (const std::string& spec : request.FindAll("pred")) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      return ErrorResponse(Status::InvalidArgument(
          "bad 'pred' field '" + spec + "' (want name=expr)"));
    }
    std::string name = spec.substr(0, eq);
    std::string error;
    PredRef pred = ParsePredicate(spec.substr(eq + 1), name, &error);
    if (pred == nullptr) {
      return ErrorResponse(Status::InvalidArgument(
          "cannot parse predicate '" + spec + "': " + error));
    }
    preds[name] = std::move(pred);
  }
  std::string error;
  PlanPtr plan = ParsePlan(*plan_text, preds, &error);
  if (plan == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("cannot parse plan: " + error));
  }
  Status valid = ValidatePlanStatus(*plan, db_->BaseSchemas());
  if (!valid.ok()) return ErrorResponse(valid);

  Optimizer::Approach approach = Optimizer::Approach::kECA;
  if (const std::string* name = request.Find("approach")) {
    StatusOr<Optimizer::Approach> parsed = Optimizer::ParseApproach(*name);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    approach = *parsed;
  }
  PlanPolicy plan_policy = options_.policy;
  if (const std::string* name = request.Find("policy")) {
    StatusOr<PlanPolicy> parsed = ParsePlanPolicy(*name);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    plan_policy = *parsed;
  }
  StatusOr<int64_t> timeout_ms =
      request.FindInt("timeout_ms", options_.default_timeout_ms);
  if (!timeout_ms.ok()) return ErrorResponse(timeout_ms.status());
  StatusOr<int64_t> mem_limit_mb = request.FindInt("mem_limit_mb", 0);
  if (!mem_limit_mb.ok()) return ErrorResponse(mem_limit_mb.status());
  StatusOr<int64_t> want_rows = request.FindInt("rows", 0);
  if (!want_rows.ok()) return ErrorResponse(want_rows.status());

  // Per-query hard limit: what the client asked for, clamped to the
  // service cap; the cap itself when it asked for nothing.
  int64_t mem_limit_bytes = *mem_limit_mb > 0 ? (*mem_limit_mb << 20) : 0;
  if (options_.client_mem_limit_bytes > 0 &&
      (mem_limit_bytes <= 0 ||
       mem_limit_bytes > options_.client_mem_limit_bytes)) {
    mem_limit_bytes = options_.client_mem_limit_bytes;
  }

  // -- Admission: may queue; sheds or rejects with a clean error.
  StatusOr<Admission> admitted =
      admission_.Admit(mem_limit_bytes, *timeout_ms);
  if (!admitted.ok()) return ErrorResponse(admitted.status());

  // Chaos-harness crash step: die like kill -9 right after taking an
  // admission slot — the successor process must find a clean slate.
  CrashInjector::MaybeCrash("query-admitted");

  WireMessage response;
  {
    // The query scope: the context (and with it the per-query spill
    // subdirectory and every tracker byte) dies before the admission slot
    // is released, so an admitted successor never sees leftovers.
    QueryContext::Limits limits;
    limits.mem_limit_bytes = mem_limit_bytes;
    limits.timeout_ms = *timeout_ms;
    limits.spill_dir = options_.spill_dir;
    limits.parent_tracker = &root_;
    QueryContext ctx(limits);
    ctx.Arm();
    cancels_.Register(ctx.cancel_token());

    Optimizer::Options opts;
    opts.approach = approach;
    opts.plan_policy = plan_policy;
    opts.num_threads = options_.num_threads;
    opts.sizes_only_fallback_ms = options_.admission.degrade_below_ms;
    opts.plan_cache = plan_cache_.get();
    Optimizer opt{opts};

    // The admission verdict can force degraded planning outright (the
    // queue ate the deadline); otherwise OptimizeGoverned re-checks the
    // remaining time itself.
    Optimizer::Optimized best = admitted->degrade_plan
                                    ? opt.OptimizeSizesOnly(*plan, *db_)
                                    : opt.OptimizeGoverned(*plan, *db_, &ctx);
    if (best.stats.degraded) Counters().degraded->Increment();

    ExecStats exec_stats;
    StatusOr<Relation> result =
        opt.ExecuteGoverned(*best.plan, *db_, &ctx, &exec_stats);
    cancels_.Unregister(ctx.cancel_token());

    // Chaos-harness crash step: die with the result computed but the
    // response unsent and the query scope (spill dir, tracker bytes)
    // still alive — the nastiest point for crash-safety.
    CrashInjector::MaybeCrash("query-executed");

    if (!result.ok()) {
      response = ErrorResponse(result.status());
    } else {
      response.type = "RESULT";
      response.Add("status", StatusCodeName(StatusCode::kOk));
      response.AddInt("rows", result->NumRows());
      if (*want_rows != 0) response.Add("data", RelationToTbl(*result));
    }
    response.AddInt("degraded", best.stats.degraded ? 1 : 0);
    if (best.stats.degraded) {
      response.Add("trigger", BudgetTriggerName(best.stats.trigger));
    }
    // Which planner actually produced the plan ("sizes-only" when the
    // admission verdict or a budget trip displaced the requested policy).
    response.Add("policy", best.provenance.policy);
    response.AddInt("queue_wait_ms", admitted->queue_wait_ms);
    response.AddInt("peak_bytes", exec_stats.peak_bytes);
  }
  admission_.Release(*admitted);
  // Opportunistic cache maintenance outside the query scope: when the
  // publish path hit the byte budget, drop stale-epoch and LRU entries.
  // TrySweep is a no-op while another query holds a pin — the next idle
  // moment gets it.
  if (plan_cache_ != nullptr &&
      plan_cache_->used_bytes() >= plan_cache_->max_bytes()) {
    plan_cache_->TrySweep();
  }
  return response;
}

}  // namespace eca
