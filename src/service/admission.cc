#include "service/admission.h"

#include <chrono>
#include <set>

#include "common/metrics.h"
#include "common/trace.h"

namespace eca {

namespace {

using Clock = std::chrono::steady_clock;

struct ServiceCounters {
  Counter* admitted;
  Counter* queued;
  Counter* shed;
  Counter* deadline_rejected;
  Counter* drain_rejected;
  Histogram* queue_wait_ms;
};

// Registered once; pointers are stable for the process lifetime.
const ServiceCounters& Counters() {
  static const ServiceCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    return ServiceCounters{reg.counter("service.admitted"),
                           reg.counter("service.queued"),
                           reg.counter("service.shed"),
                           reg.counter("service.deadline_rejected"),
                           reg.counter("service.drain_rejected"),
                           reg.histogram("service.queue_wait_ms")};
  }();
  return counters;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  // Register the service.* metrics up front so the very first METRICS
  // scrape reports the full set at zero rather than omitting counters
  // whose events have not happened yet.
  Counters();
}

bool AdmissionController::FitsLocked(int64_t commit_bytes) const {
  if (active_ >= config_.max_concurrent) return false;
  if (config_.commit_limit_bytes > 0 &&
      committed_bytes_ + commit_bytes > config_.commit_limit_bytes) {
    // A budget larger than the whole commit limit still runs — alone —
    // once everything else has drained; otherwise over-sized queries
    // would starve forever.
    return active_ == 0;
  }
  return true;
}

StatusOr<Admission> AdmissionController::Admit(int64_t commit_bytes,
                                               int64_t remaining_deadline_ms) {
  const ServiceCounters& counters = Counters();
  if (commit_bytes <= 0) commit_bytes = config_.default_commit_bytes;

  Admission granted;
  granted.commit_bytes = commit_bytes;

  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    counters.drain_rejected->Increment();
    return Status::Unavailable("ecad is draining; retry another instance");
  }

  // Fast path: nothing queued ahead of us and resources fit.
  if (queued_ == 0 && FitsLocked(commit_bytes)) {
    ++active_;
    committed_bytes_ += commit_bytes;
    counters.admitted->Increment();
    counters.queue_wait_ms->Record(0);
    granted.degrade_plan = config_.degrade_below_ms > 0 &&
                           remaining_deadline_ms > 0 &&
                           remaining_deadline_ms < config_.degrade_below_ms;
    return granted;
  }

  // Queue entry: shed on overload, reject hopeless deadlines early.
  if (queued_ >= config_.max_queue) {
    counters.shed->Increment();
    Tracer::Instant("service/shed");
    return Status::ResourceExhausted(
        "ecad overloaded: admission queue is full (" +
        std::to_string(config_.max_queue) + " waiting)");
  }
  if (remaining_deadline_ms > 0 && config_.est_run_ms > 0 &&
      remaining_deadline_ms <= config_.est_run_ms) {
    counters.deadline_rejected->Increment();
    return Status::ResourceExhausted(
        "deadline of " + std::to_string(remaining_deadline_ms) +
        "ms cannot cover estimated query cost of " +
        std::to_string(config_.est_run_ms) + "ms");
  }

  const int64_t ticket = next_ticket_++;
  waiting_.insert(ticket);
  ++queued_;
  counters.queued->Increment();
  const Clock::time_point enqueued = Clock::now();
  // Give up early enough that the estimated runtime still fits.
  const bool has_deadline = remaining_deadline_ms > 0;
  const Clock::time_point give_up =
      enqueued + std::chrono::milliseconds(
                     has_deadline ? remaining_deadline_ms -
                                        (config_.est_run_ms > 0
                                             ? config_.est_run_ms
                                             : 0)
                                  : 0);

  auto wake_reason = [&]() -> int {
    // 1 = admitted, 2 = draining, 0 = keep waiting. FIFO: only the
    // longest-waiting ticket may take a freed slot.
    if (draining_) return 2;
    if (*waiting_.begin() == ticket && FitsLocked(commit_bytes)) return 1;
    return 0;
  };

  int reason = 0;
  for (;;) {
    reason = wake_reason();
    if (reason != 0) break;
    if (has_deadline) {
      if (cv_.wait_until(lock, give_up) == std::cv_status::timeout &&
          wake_reason() == 0) {
        reason = 3;  // deadline-aware rejection
        break;
      }
    } else {
      cv_.wait(lock);
    }
  }

  --queued_;
  waiting_.erase(ticket);
  const int64_t waited_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                Clock::now() - enqueued)
                                .count();
  cv_.notify_all();

  if (reason == 2) {
    counters.drain_rejected->Increment();
    return Status::Unavailable("ecad is draining; retry another instance");
  }
  if (reason == 3) {
    counters.deadline_rejected->Increment();
    return Status::ResourceExhausted(
        "queued for " + std::to_string(waited_ms) +
        "ms; remaining deadline cannot cover estimated query cost");
  }

  ++active_;
  committed_bytes_ += commit_bytes;
  counters.admitted->Increment();
  counters.queue_wait_ms->Record(waited_ms);
  const int64_t remaining_now =
      has_deadline ? remaining_deadline_ms - waited_ms : 0;
  granted.queue_wait_ms = waited_ms;
  granted.degrade_plan = config_.degrade_below_ms > 0 && has_deadline &&
                         remaining_now < config_.degrade_below_ms;
  return granted;
}

void AdmissionController::Release(const Admission& admission) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    committed_bytes_ -= admission.commit_bytes;
    ECA_DCHECK(active_ >= 0);
    ECA_DCHECK(committed_bytes_ >= 0);
  }
  cv_.notify_all();
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return active_ == 0 && queued_ == 0; });
}

int AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

int64_t AdmissionController::committed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_bytes_;
}

}  // namespace eca
