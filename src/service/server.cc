#include "service/server.h"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "service/wire.h"
#include "storage/spill_file.h"
#include "testing/fault_injection.h"

namespace eca {

#ifdef _WIN32

EcadServer::EcadServer(const Database* db, ServerConfig config)
    : config_(std::move(config)), state_(db, config_.service) {}
EcadServer::~EcadServer() = default;
Status EcadServer::Start() {
  return Status::Internal("ecad is POSIX-only");
}
void EcadServer::Stop() {}
void EcadServer::AcceptLoop() {}
void EcadServer::ServeConnection(int) {}

#else

namespace {

struct ServerCounters {
  Counter* connections;
  Counter* accept_faults;
};

const ServerCounters& Counters() {
  static const ServerCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    return ServerCounters{reg.counter("service.connections"),
                          reg.counter("service.accept_faults")};
  }();
  return counters;
}

}  // namespace

EcadServer::EcadServer(const Database* db, ServerConfig config)
    : config_(std::move(config)), state_(db, config_.service) {
  Counters();  // eager registration, same reason as ServiceState's ctor
}

EcadServer::~EcadServer() { Stop(); }

Status EcadServer::Start() {
  if (started_) return Status::Internal("EcadServer::Start called twice");

  // Crash recovery before anything can spill: reclaim per-query spill
  // directories whose owning process is gone (storage/spill_file.h).
  const std::string& spill_dir = config_.service.spill_dir;
  if (!spill_dir.empty()) {
    swept_spill_dirs_ = SweepOrphanQuerySpillDirs(spill_dir);
  }

  // Warm the plan cache from disk after the sweep, before the socket
  // exists: no query can race the import, and a corrupt file degrades to
  // a cold cache (never a failed startup — see CacheStore::Load).
  cache_load_ = state_.LoadPlanCache();

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "bad socket path '" + config_.socket_path + "' (want 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status bound = Status::Internal("cannot bind '" + config_.socket_path +
                                    "': " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return bound;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status listening = Status::Internal(
        "cannot listen on '" + config_.socket_path +
        "': " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    return listening;
  }
  if (::pipe(stop_pipe_) != 0) {
    Status piped = Status::Internal(std::string("pipe() failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    return piped;
  }

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EcadServer::AcceptLoop() {
  if (config_.fault_accept_skip >= 0) {
    FaultInjector::Arm(FaultPoint::kServiceAccept,
                       config_.fault_accept_skip);
  }
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Deterministic accept-time connection drop: the client sees an
    // immediate close and must retry (kUnavailable class). One-shot —
    // Arm() fails every hit from the (skip+1)-th onward, but a server
    // that drops every connection forever would make retry untestable.
    if (FaultInjector::ShouldFail(FaultPoint::kServiceAccept)) {
      FaultInjector::Disarm(FaultPoint::kServiceAccept);
      Counters().accept_faults->Increment();
      Tracer::Instant("service/accept-fault");
      ::close(fd);
      continue;
    }
    Counters().connections->Increment();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Lost the race with Stop(): this fd would miss the shutdown()
      // pass, so refuse it here rather than strand a session thread.
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    sessions_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void EcadServer::ServeConnection(int fd) {
  if (config_.fault_write_skip >= 0) {
    FaultInjector::Arm(FaultPoint::kServiceWrite, config_.fault_write_skip);
  }
  for (;;) {
    bool eof = false;
    StatusOr<WireMessage> request = ReadFrame(fd, &eof);
    if (!request.ok() || eof) break;
    WireMessage response = request->type.empty()
                               ? ErrorResponse(Status::InvalidArgument(
                                     "wire: empty request type"))
                               : state_.Handle(*request);
    // A failed response write (peer gone, kServiceWrite fault) ends the
    // session; the query already unwound through its governor, so
    // nothing leaks — tests assert the root tracker is back at zero.
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
}

void EcadServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // Graceful drain, in dependency order (docs/robustness.md):
  // 1. No new admissions — arrivals and queued waiters get kUnavailable.
  state_.admission().BeginDrain();
  // 2. Cancel in-flight queries; their sessions still write a clean
  //    kCancelled ERROR response before the connection closes.
  state_.cancels().CancelAll();
  // 3. Wait until every admitted query released its slot and budget.
  state_.admission().WaitIdle();

  // 4. Stop accepting and unblock idle session reads.
  stopping_.store(true, std::memory_order_release);
  char byte = 0;
  (void)!::write(stop_pipe_[1], &byte, 1);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // SHUT_RD only: idle reads unblock with EOF, but a session still
    // mid-write can finish delivering its (kCancelled) response.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  accept_thread_.join();
  // The accept loop is done, so sessions_ cannot grow anymore.
  for (std::thread& t : sessions_) t.join();
  sessions_.clear();

  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());

  // Every session has joined, so no enumeration pin remains: persist the
  // final cache state (full snapshot, compacting the write-behind log),
  // then drop the entries and return their bytes to the root. A failed
  // snapshot only costs warmth on the next start.
  Status flushed = state_.FlushPlanCache(/*snapshot=*/true);
  (void)flushed;  // logged by ecad; harmless for the drain invariant
  state_.ClearPlanCache();

  // Every query context died with its session and the plan cache was
  // drained: the global accounting root must be empty, or a release was
  // lost somewhere.
  ECA_DCHECK(state_.root_tracker().used() == 0);
}

#endif  // _WIN32

}  // namespace eca
