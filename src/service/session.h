#ifndef ECA_SERVICE_SESSION_H_
#define ECA_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/memory_tracker.h"
#include "eca/policy.h"
#include "enumerate/shared_memo.h"
#include "exec/database.h"
#include "exec/query_context.h"
#include "service/admission.h"
#include "service/wire.h"
#include "storage/cache_store.h"

namespace eca {

// Request execution for the ecad service: ServiceState owns everything the
// concurrent sessions share — the catalog, the global MemoryTracker root,
// the admission controller and the per-query defaults — and Handle() turns
// one decoded request into one response. The transport lives in
// server.cc; keeping Handle() socket-free is what makes every robustness
// behavior unit-testable in process.

// Tracks the CancelTokens of in-flight queries so a drain can fire them
// all. Registering after CancelAll() cancels the token immediately: a
// query that slipped past admission while the drain flag was being set
// still stops at its first governor check.
class CancelRegistry {
 public:
  void Register(CancelToken* token);
  void Unregister(CancelToken* token);
  // Fires every registered token; returns how many were cancelled.
  int64_t CancelAll();
  bool cancelled_all() const;

 private:
  mutable std::mutex mu_;
  std::set<CancelToken*> tokens_;
  bool cancel_all_ = false;
};

struct ServiceOptions {
  AdmissionConfig admission;
  // Per-query hard memory limit: the cap on what a client may request and
  // the default when it requests nothing. <= 0 = unlimited queries (the
  // admission commit ledger then uses admission.default_commit_bytes).
  int64_t client_mem_limit_bytes = 64ll << 20;
  // Deadline applied to queries that send no timeout_ms; <= 0 = none.
  int64_t default_timeout_ms = 0;
  // Spill root shared by all queries (each gets its own crash-sweepable
  // subdirectory via QueryContext); "" = system temp dir.
  std::string spill_dir;
  // Worker threads per query (execution + root enumeration).
  int num_threads = 1;
  // Default plan policy for queries that send no "policy" field (ecad
  // --policy; docs/planner-policies.md). A request-level "policy" field
  // overrides it per query. Either way, an admission verdict that forces
  // degraded planning still downgrades to the sizes-only fallback — the
  // response's degraded/trigger fields record that explicitly.
  PlanPolicy policy = PlanPolicy::kDp;
  // Cross-query plan cache byte budget (ecad --plan-cache-mb). When > 0
  // the service owns a SharedMemo charged to the global tracker root:
  // repeated structurally-identical queries under the same stats epoch
  // reuse proven subplans instead of re-enumerating. 0 disables the
  // cache (every query keeps a private per-query memo).
  int64_t plan_cache_bytes = 0;
  // Crash-safe plan-cache persistence (ecad --plan-cache-file): proven
  // entries are loaded from this snapshot+log pair on startup and written
  // back on drain and on the write-behind flush interval
  // (docs/robustness.md, "Crash safety & persistence"). "" = in-memory
  // only. Setting a file with plan_cache_bytes == 0 enables the cache at
  // a 32 MB default budget.
  std::string plan_cache_file;
  // Write-behind flush period driven by ecad's main loop; <= 0 disables
  // periodic flushing (drain still snapshots).
  int64_t cache_flush_ms = 2000;
};

class ServiceState {
 public:
  // `db` must outlive the state and is shared read-only by all sessions —
  // per-query isolation means no query, failed or cancelled, ever mutates
  // it.
  ServiceState(const Database* db, ServiceOptions options);

  ServiceState(const ServiceState&) = delete;
  ServiceState& operator=(const ServiceState&) = delete;

  // Executes one request end to end (admission included for QUERY).
  // Always returns a well-formed response message; failures become ERROR
  // responses, never exceptions or aborts.
  WireMessage Handle(const WireMessage& request);

  AdmissionController& admission() { return admission_; }
  CancelRegistry& cancels() { return cancels_; }
  MemoryTracker& root_tracker() { return root_; }
  const ServiceOptions& options() const { return options_; }
  const Database& db() const { return *db_; }
  // The cross-query plan cache; nullptr when plan_cache_bytes == 0.
  SharedMemo* plan_cache() { return plan_cache_.get(); }
  // Drain hook (server Stop): drops every cached entry and returns its
  // bytes to the root tracker so the drained-to-zero invariant holds.
  void ClearPlanCache() {
    if (plan_cache_ != nullptr) plan_cache_->Clear();
  }

  // Plan-cache persistence (plan_cache_file). LoadPlanCache imports the
  // on-disk snapshot+log; it degrades (cold cache) on any corruption,
  // never fails. FlushPlanCache writes entries published since the last
  // flush (`snapshot` = full atomic snapshot + log compaction, else an
  // append to the write-behind log). Both are no-ops without a configured
  // file.
  bool has_cache_store() const { return cache_store_ != nullptr; }
  CacheStore::LoadResult LoadPlanCache();
  Status FlushPlanCache(bool snapshot);

 private:
  WireMessage HandleQuery(const WireMessage& request);
  WireMessage HandleMetrics();

  const Database* db_;
  ServiceOptions options_;
  // Global accounting root: every query tracker chains to it, so its
  // usage is the true concurrent footprint and must return to zero when
  // the service drains.
  MemoryTracker root_;
  AdmissionController admission_;
  CancelRegistry cancels_;
  std::unique_ptr<SharedMemo> plan_cache_;
  std::unique_ptr<CacheStore> cache_store_;
  uint64_t catalog_fp_ = 0;
};

}  // namespace eca

#endif  // ECA_SERVICE_SESSION_H_
