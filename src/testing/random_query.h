#ifndef ECA_TESTING_RANDOM_QUERY_H_
#define ECA_TESTING_RANDOM_QUERY_H_

#include "algebra/plan.h"
#include "common/rng.h"
#include "testing/random_data.h"

namespace eca {

// Options for random query generation (class C_J of the paper and its
// subclasses).
struct RandomQueryOptions {
  int num_rels = 4;
  bool allow_full_outer = false;  // off = the C_J^{no-foj} class
  bool allow_semi_anti = true;
  // Probability that a join predicate is null-tolerant (Appendix D).
  double tolerant_pred_prob = 0.0;
  // Probability weights for operator selection.
  double inner_weight = 0.35;
  double outer_weight = 0.35;
  double semi_weight = 0.10;
  double anti_weight = 0.20;
};

// A random well-formed join query over relations 0..num_rels-1: a random
// binary tree where each join's predicate references a visible relation in
// each child subtree (so the query is in JoinOrder-normal form with one
// predicate per join). Right-variant operators appear via random child
// orientation of the left variants.
PlanPtr RandomQuery(Rng& rng, const RandomQueryOptions& qopts,
                    const RandomDataOptions& dopts);

}  // namespace eca

#endif  // ECA_TESTING_RANDOM_QUERY_H_
