#ifndef ECA_TESTING_FAULT_INJECTION_H_
#define ECA_TESTING_FAULT_INJECTION_H_

#include <cstdint>

namespace eca {

// Deterministic fault injection for robustness testing. Production code
// asks ShouldFail(point) at the few places where an external failure can
// occur (resource budget exhausted, rewrite rule giving up, allocation
// failure); tests and the differential fuzzer arm a point for the Nth hit
// and verify that the optimizer degrades gracefully instead of crashing
// or producing a wrong plan.
//
// Disarmed points cost one branch on a thread-local counter, so the hooks
// stay compiled into release builds (the fuzzer runs against the shipped
// code, not a special build).
enum class FaultPoint {
  kEnumeratorBudget = 0,  // forces budget exhaustion in the enumerator
  kRewriteRule,           // forces SwapUp to report an infeasible swap
  kAllocation,            // forces a plan-clone allocation failure
  kExecAllocation,        // forces an executor memory reservation failure
  kSpillIo,               // forces a spill-file open/write/read I/O error
  kCancelRace,            // forces a governor cancellation check to fire
  kServiceAccept,         // forces ecad's accept loop to drop a connection
  kServiceWrite,          // forces a service wire write (response frame)
                          // to fail mid-stream
  kNumPoints,             // sentinel
};

const char* FaultPointName(FaultPoint point);

// Per-point arming state. All state is thread-local: concurrent fuzzer
// shards never observe each other's faults.
class FaultInjector {
 public:
  // Arms `point` to fail on its (skip+1)-th upcoming hit and on every hit
  // after that, until Disarm or Reset.
  static void Arm(FaultPoint point, int64_t skip = 0);
  static void Disarm(FaultPoint point);
  // Disarms every point and zeroes the hit counters.
  static void Reset();

  // Production-side probe: counts the hit and reports whether the armed
  // failure fires. Always false for disarmed points.
  static bool ShouldFail(FaultPoint point);

  // Observability for tests: hits seen since the last Reset.
  static int64_t HitCount(FaultPoint point);
  static bool IsArmed(FaultPoint point);
};

// RAII arming for tests: arms in the constructor, resets the point on
// destruction.
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint point, int64_t skip = 0) : point_(point) {
    FaultInjector::Arm(point_, skip);
  }
  ~ScopedFault() { FaultInjector::Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint point_;
};

// Deterministic clock override for deadline logic. When armed, every
// NowMs() call returns the override value and then advances it by
// `step_ms`, so a test can make a wall-clock deadline fire at an exact
// check count without sleeping. Unlike the fault points the override is
// process-global (atomics, no locks): deadline checks run on pool worker
// threads, which must observe the same fake time as the arming thread.
class FaultClock {
 public:
  // Arms the override: NowMs() returns now_ms, now_ms + step_ms, ... in
  // call order (across all threads; the interleaving is irrelevant for
  // deadline tests, which only need time to advance past the deadline
  // after a bounded number of checks).
  static void Arm(int64_t now_ms, int64_t step_ms = 0);
  static void Disarm();
  static bool IsArmed();

  // The governed clock: fake time when armed, `real_now_ms` otherwise.
  // Call sites pass their steady-clock reading so the disarmed path costs
  // one relaxed load.
  static int64_t NowMs(int64_t real_now_ms);
};

// RAII arming for tests.
class ScopedFaultClock {
 public:
  explicit ScopedFaultClock(int64_t now_ms, int64_t step_ms = 0) {
    FaultClock::Arm(now_ms, step_ms);
  }
  ~ScopedFaultClock() { FaultClock::Disarm(); }

  ScopedFaultClock(const ScopedFaultClock&) = delete;
  ScopedFaultClock& operator=(const ScopedFaultClock&) = delete;
};

}  // namespace eca

#endif  // ECA_TESTING_FAULT_INJECTION_H_
