#ifndef ECA_TESTING_FAULT_INJECTION_H_
#define ECA_TESTING_FAULT_INJECTION_H_

#include <cstdint>

namespace eca {

// Deterministic fault injection for robustness testing. Production code
// asks ShouldFail(point) at the few places where an external failure can
// occur (resource budget exhausted, rewrite rule giving up, allocation
// failure); tests and the differential fuzzer arm a point for the Nth hit
// and verify that the optimizer degrades gracefully instead of crashing
// or producing a wrong plan.
//
// Disarmed points cost one branch on a thread-local counter, so the hooks
// stay compiled into release builds (the fuzzer runs against the shipped
// code, not a special build).
enum class FaultPoint {
  kEnumeratorBudget = 0,  // forces budget exhaustion in the enumerator
  kRewriteRule,           // forces SwapUp to report an infeasible swap
  kAllocation,            // forces a plan-clone allocation failure
  kExecAllocation,        // forces an executor memory reservation failure
  kSpillIo,               // forces a spill-file open/write/read I/O error
  kCancelRace,            // forces a governor cancellation check to fire
  kServiceAccept,         // forces ecad's accept loop to drop a connection
  kServiceWrite,          // forces a service wire write (response frame)
                          // to fail mid-stream
  kCacheIo,               // forces a plan-cache file open/write/fsync/
                          // rename/read I/O error
  kCrashPoint,            // process-global crash hook: see CrashInjector
  kNumPoints,             // sentinel
};

const char* FaultPointName(FaultPoint point);

// How an armed fault presents at the call site. Most points only support
// kDefault (the hit fails outright); kSpillIo additionally distinguishes
// a short write (the syscall "succeeds" after writing a prefix, tearing
// the record on disk) from ENOSPC (the device is full — the write is
// refused but earlier bytes may already be durable).
enum class FaultVariant {
  kDefault = 0,
  kShortWrite,  // partial write() return: a torn record lands on disk
  kEnospc,      // write refused with "no space left on device"
};

const char* FaultVariantName(FaultVariant variant);

// Per-point arming state. All state is thread-local: concurrent fuzzer
// shards never observe each other's faults.
class FaultInjector {
 public:
  // Arms `point` to fail on its (skip+1)-th upcoming hit and on every hit
  // after that, until Disarm or Reset. `variant` shapes how the failure
  // presents at call sites that distinguish variants (see FaultVariant).
  static void Arm(FaultPoint point, int64_t skip = 0,
                  FaultVariant variant = FaultVariant::kDefault);
  static void Disarm(FaultPoint point);
  // Disarms every point and zeroes the hit counters.
  static void Reset();

  // Production-side probe: counts the hit and reports whether the armed
  // failure fires. Always false for disarmed points.
  static bool ShouldFail(FaultPoint point);

  // Observability for tests: hits seen since the last Reset.
  static int64_t HitCount(FaultPoint point);
  static bool IsArmed(FaultPoint point);

  // The variant `point` was armed with (kDefault when disarmed). Call
  // sites that support variants read this after ShouldFail returns true.
  static FaultVariant Variant(FaultPoint point);
};

// RAII arming for tests: arms in the constructor, resets the point on
// destruction.
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint point, int64_t skip = 0,
                       FaultVariant variant = FaultVariant::kDefault)
      : point_(point) {
    FaultInjector::Arm(point_, skip, variant);
  }
  ~ScopedFault() { FaultInjector::Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint point_;
};

// Deterministic clock override for deadline logic. When armed, every
// NowMs() call returns the override value and then advances it by
// `step_ms`, so a test can make a wall-clock deadline fire at an exact
// check count without sleeping. Unlike the fault points the override is
// process-global (atomics, no locks): deadline checks run on pool worker
// threads, which must observe the same fake time as the arming thread.
class FaultClock {
 public:
  // Arms the override: NowMs() returns now_ms, now_ms + step_ms, ... in
  // call order (across all threads; the interleaving is irrelevant for
  // deadline tests, which only need time to advance past the deadline
  // after a bounded number of checks).
  static void Arm(int64_t now_ms, int64_t step_ms = 0);
  static void Disarm();
  static bool IsArmed();

  // The governed clock: fake time when armed, `real_now_ms` otherwise.
  // Call sites pass their steady-clock reading so the disarmed path costs
  // one relaxed load.
  static int64_t NowMs(int64_t real_now_ms);
};

// Process-global hard-crash injection for the chaos harness. Production
// code calls MaybeCrash(step_name) at the handful of places where a real
// SIGKILL would be most damaging (between a cache write and its rename,
// mid-query, mid-flush); when armed via `ecad --crash-at N`, the N-th
// process-wide hit calls _exit(137) — no destructors, no atexit, no
// flush, exactly like a kill -9 — so tools/chaos_smoke.sh can drive a
// deterministic crash at each distinct step and assert recovery.
//
// Unlike FaultInjector this is process-global (atomics): the crash must
// fire no matter which session or pool thread reaches the step first,
// and "the N-th hit" must count across all of them.
class CrashInjector {
 public:
  // Arms the crash: the at_hit-th (1-based) upcoming MaybeCrash() call in
  // this process exits with _exit(137). at_hit <= 0 disarms.
  static void Arm(int64_t at_hit);
  static void Disarm();
  static bool IsArmed();

  // Production-side probe: counts the hit; exits the process when the
  // armed hit count is reached. `step` names the site for the crash log
  // line (written to stderr with write(2) before _exit).
  static void MaybeCrash(const char* step);

  // Hits observed since process start (armed or not) — lets tests and
  // the harness discover how many distinct crash steps a workload has.
  static int64_t Hits();
};

// RAII arming for tests.
class ScopedFaultClock {
 public:
  explicit ScopedFaultClock(int64_t now_ms, int64_t step_ms = 0) {
    FaultClock::Arm(now_ms, step_ms);
  }
  ~ScopedFaultClock() { FaultClock::Disarm(); }

  ScopedFaultClock(const ScopedFaultClock&) = delete;
  ScopedFaultClock& operator=(const ScopedFaultClock&) = delete;
};

}  // namespace eca

#endif  // ECA_TESTING_FAULT_INJECTION_H_
