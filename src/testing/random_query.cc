#include "testing/random_query.h"

#include <vector>

namespace eca {

PlanPtr RandomQuery(Rng& rng, const RandomQueryOptions& qopts,
                    const RandomDataOptions& dopts) {
  ECA_CHECK(qopts.num_rels >= 2);
  std::vector<PlanPtr> forest;
  forest.reserve(static_cast<size_t>(qopts.num_rels));
  for (int i = 0; i < qopts.num_rels; ++i) {
    forest.push_back(Plan::Leaf(i));
  }
  int pred_counter = 0;
  while (forest.size() > 1) {
    // Pick two distinct subplans to join.
    size_t a = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(forest.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(forest.size()) - 2));
    if (b >= a) ++b;
    PlanPtr left = std::move(forest[a]);
    PlanPtr right = std::move(forest[b]);

    // Choose an operator.
    double total = qopts.inner_weight + qopts.outer_weight +
                   (qopts.allow_semi_anti ? qopts.semi_weight : 0) +
                   (qopts.allow_semi_anti ? qopts.anti_weight : 0) +
                   (qopts.allow_full_outer ? 0.15 : 0);
    double dice = rng.NextDouble() * total;
    JoinOp op;
    if ((dice -= qopts.inner_weight) < 0) {
      op = JoinOp::kInner;
    } else if ((dice -= qopts.outer_weight) < 0) {
      op = rng.Bernoulli(0.5) ? JoinOp::kLeftOuter : JoinOp::kRightOuter;
    } else if (qopts.allow_semi_anti && (dice -= qopts.semi_weight) < 0) {
      op = rng.Bernoulli(0.5) ? JoinOp::kLeftSemi : JoinOp::kRightSemi;
    } else if (qopts.allow_semi_anti && (dice -= qopts.anti_weight) < 0) {
      op = rng.Bernoulli(0.5) ? JoinOp::kLeftAnti : JoinOp::kRightAnti;
    } else {
      op = JoinOp::kFullOuter;
    }

    // Predicate over one visible relation of each side.
    std::string label = "p" + std::to_string(pred_counter++);
    PredRef pred =
        rng.Bernoulli(qopts.tolerant_pred_prob)
            ? RandomTolerantJoinPredicate(rng, left->output_rels(),
                                          right->output_rels(), dopts, label)
            : RandomJoinPredicate(rng, left->output_rels(),
                                  right->output_rels(), dopts, label);
    PlanPtr joined = Plan::Join(op, std::move(pred), std::move(left),
                                std::move(right));
    // Compact the forest.
    forest.erase(forest.begin() + static_cast<long>(std::max(a, b)));
    forest.erase(forest.begin() + static_cast<long>(std::min(a, b)));
    forest.push_back(std::move(joined));
  }
  return std::move(forest[0]);
}

}  // namespace eca
