#ifndef ECA_TESTING_RANDOM_DATA_H_
#define ECA_TESTING_RANDOM_DATA_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/database.h"
#include "expr/expr.h"

namespace eca {

// Options for random base-relation generation. Defaults produce small
// relations with frequent join matches, NULLs in data columns, and repeated
// data values — the regime in which unsound rewrite rules break fastest.
struct RandomDataOptions {
  int min_rows = 0;
  int max_rows = 8;
  int data_cols = 2;       // non-key columns per relation ("a", "b", ...)
  int64_t domain = 4;      // data values drawn from [0, domain)
  double null_prob = 0.2;  // probability a data value is NULL
  double empty_prob = 0.1; // probability a relation is empty
};

// A relation with a unique key column "k" (values 0..n-1) and `data_cols`
// small-domain nullable int columns. The unique key reflects the standard
// assumption of compensation-based reordering that base tuples are
// distinguishable (see DESIGN.md).
Relation RandomRelation(Rng& rng, int rel_id, const RandomDataOptions& opts);

// A database of `num_rels` random relations with rel_ids 0..num_rels-1.
Database RandomDatabase(Rng& rng, int num_rels,
                        const RandomDataOptions& opts = RandomDataOptions());

// A random null-intolerant join predicate between a column of some relation
// in `left` and a column of some relation in `right` (both drawn from data
// columns; equality with high probability, inequality otherwise). `label`
// is attached for plan printing.
PredRef RandomJoinPredicate(Rng& rng, RelSet left, RelSet right,
                            const RandomDataOptions& opts,
                            const std::string& label);

// A null-TOLERANT join predicate (Appendix D): a comparison OR-ed with an
// IS NULL test, so it can evaluate to true on NULL inputs.
PredRef RandomTolerantJoinPredicate(Rng& rng, RelSet left, RelSet right,
                                    const RandomDataOptions& opts,
                                    const std::string& label);

}  // namespace eca

#endif  // ECA_TESTING_RANDOM_DATA_H_
