#include "testing/random_data.h"

namespace eca {

Relation RandomRelation(Rng& rng, int rel_id, const RandomDataOptions& opts) {
  std::vector<Column> cols;
  cols.push_back({rel_id, "k", DataType::kInt64});
  for (int i = 0; i < opts.data_cols; ++i) {
    cols.push_back({rel_id, std::string(1, static_cast<char>('a' + i)),
                    DataType::kInt64});
  }
  Relation r{Schema(std::move(cols))};
  if (rng.Bernoulli(opts.empty_prob)) return r;
  int n = static_cast<int>(rng.Uniform(opts.min_rows, opts.max_rows));
  for (int row = 0; row < n; ++row) {
    Tuple t;
    t.push_back(Value::Int(row));  // unique key
    for (int i = 0; i < opts.data_cols; ++i) {
      if (rng.Bernoulli(opts.null_prob)) {
        t.push_back(Value::Null(DataType::kInt64));
      } else {
        t.push_back(Value::Int(rng.Uniform(0, opts.domain - 1)));
      }
    }
    r.Add(std::move(t));
  }
  return r;
}

Database RandomDatabase(Rng& rng, int num_rels,
                        const RandomDataOptions& opts) {
  Database db;
  for (int i = 0; i < num_rels; ++i) {
    db.Add(RandomRelation(rng, i, opts));
  }
  return db;
}

PredRef RandomTolerantJoinPredicate(Rng& rng, RelSet left, RelSet right,
                                    const RandomDataOptions& opts,
                                    const std::string& label) {
  PredRef base = RandomJoinPredicate(rng, left, right, opts, "");
  // OR with an IS NULL test on one side: true on some NULL inputs.
  RelSet side = rng.Bernoulli(0.5) ? left : right;
  int rel = side.Min();
  std::string col(1, static_cast<char>('a' + rng.Uniform(0, opts.data_cols - 1)));
  PredRef tolerant =
      Predicate::Or({base, Predicate::IsNull(Col(rel, col))});
  return Predicate::WithLabel(std::move(tolerant), label);
}

PredRef RandomJoinPredicate(Rng& rng, RelSet left, RelSet right,
                            const RandomDataOptions& opts,
                            const std::string& label) {
  ECA_CHECK(!left.Empty() && !right.Empty());
  auto pick_rel = [&rng](RelSet s) {
    int n = s.Count();
    int want = static_cast<int>(rng.Uniform(0, n - 1));
    for (int id : s) {
      if (want-- == 0) return id;
    }
    return s.Min();
  };
  auto pick_col = [&](int) {
    return std::string(
        1, static_cast<char>('a' + rng.Uniform(0, opts.data_cols - 1)));
  };
  int lr = pick_rel(left);
  int rr = pick_rel(right);
  ScalarRef l = Col(lr, pick_col(lr));
  ScalarRef r = Col(rr, pick_col(rr));
  PredRef p;
  double dice = rng.NextDouble();
  if (dice < 0.7) {
    p = Eq(std::move(l), std::move(r));
  } else if (dice < 0.85) {
    p = Lt(std::move(l), std::move(r));
  } else {
    p = Predicate::Compare(Predicate::CmpOp::kLe, std::move(l), std::move(r));
  }
  return Predicate::WithLabel(std::move(p), label);
}

}  // namespace eca
