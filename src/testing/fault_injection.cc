#include "testing/fault_injection.h"

#include <atomic>

#include "common/macros.h"

namespace eca {

namespace {

constexpr int kNumPoints = static_cast<int>(FaultPoint::kNumPoints);

struct PointState {
  bool armed = false;
  int64_t skip = 0;   // hits to let pass before failing
  int64_t hits = 0;   // hits observed since Reset
};

thread_local PointState g_points[kNumPoints];

PointState& StateOf(FaultPoint point) {
  int idx = static_cast<int>(point);
  ECA_CHECK(idx >= 0 && idx < kNumPoints);
  return g_points[idx];
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kEnumeratorBudget:
      return "enumerator-budget";
    case FaultPoint::kRewriteRule:
      return "rewrite-rule";
    case FaultPoint::kAllocation:
      return "allocation";
    case FaultPoint::kExecAllocation:
      return "exec-allocation";
    case FaultPoint::kSpillIo:
      return "spill-io";
    case FaultPoint::kCancelRace:
      return "cancel-race";
    case FaultPoint::kServiceAccept:
      return "service-accept";
    case FaultPoint::kServiceWrite:
      return "service-write";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

void FaultInjector::Arm(FaultPoint point, int64_t skip) {
  PointState& s = StateOf(point);
  s.armed = true;
  s.skip = skip;
}

void FaultInjector::Disarm(FaultPoint point) {
  PointState& s = StateOf(point);
  s.armed = false;
  s.skip = 0;
}

void FaultInjector::Reset() {
  for (int i = 0; i < kNumPoints; ++i) {
    g_points[i] = PointState();
  }
}

bool FaultInjector::ShouldFail(FaultPoint point) {
  PointState& s = StateOf(point);
  ++s.hits;
  if (!s.armed) return false;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  return true;
}

int64_t FaultInjector::HitCount(FaultPoint point) {
  return StateOf(point).hits;
}

bool FaultInjector::IsArmed(FaultPoint point) { return StateOf(point).armed; }

namespace {

// Global (not thread-local): deadline checks run on worker threads that
// must see the fake time the test thread armed.
std::atomic<bool> g_clock_armed{false};
std::atomic<int64_t> g_clock_now_ms{0};
std::atomic<int64_t> g_clock_step_ms{0};

}  // namespace

void FaultClock::Arm(int64_t now_ms, int64_t step_ms) {
  g_clock_now_ms.store(now_ms, std::memory_order_relaxed);
  g_clock_step_ms.store(step_ms, std::memory_order_relaxed);
  g_clock_armed.store(true, std::memory_order_release);
}

void FaultClock::Disarm() {
  g_clock_armed.store(false, std::memory_order_release);
}

bool FaultClock::IsArmed() {
  return g_clock_armed.load(std::memory_order_acquire);
}

int64_t FaultClock::NowMs(int64_t real_now_ms) {
  if (!IsArmed()) return real_now_ms;
  int64_t step = g_clock_step_ms.load(std::memory_order_relaxed);
  return g_clock_now_ms.fetch_add(step, std::memory_order_relaxed);
}

}  // namespace eca
