#include "testing/fault_injection.h"

#include "common/macros.h"

namespace eca {

namespace {

constexpr int kNumPoints = static_cast<int>(FaultPoint::kNumPoints);

struct PointState {
  bool armed = false;
  int64_t skip = 0;   // hits to let pass before failing
  int64_t hits = 0;   // hits observed since Reset
};

thread_local PointState g_points[kNumPoints];

PointState& StateOf(FaultPoint point) {
  int idx = static_cast<int>(point);
  ECA_CHECK(idx >= 0 && idx < kNumPoints);
  return g_points[idx];
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kEnumeratorBudget:
      return "enumerator-budget";
    case FaultPoint::kRewriteRule:
      return "rewrite-rule";
    case FaultPoint::kAllocation:
      return "allocation";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

void FaultInjector::Arm(FaultPoint point, int64_t skip) {
  PointState& s = StateOf(point);
  s.armed = true;
  s.skip = skip;
}

void FaultInjector::Disarm(FaultPoint point) {
  PointState& s = StateOf(point);
  s.armed = false;
  s.skip = 0;
}

void FaultInjector::Reset() {
  for (int i = 0; i < kNumPoints; ++i) {
    g_points[i] = PointState();
  }
}

bool FaultInjector::ShouldFail(FaultPoint point) {
  PointState& s = StateOf(point);
  ++s.hits;
  if (!s.armed) return false;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  return true;
}

int64_t FaultInjector::HitCount(FaultPoint point) {
  return StateOf(point).hits;
}

bool FaultInjector::IsArmed(FaultPoint point) { return StateOf(point).armed; }

}  // namespace eca
