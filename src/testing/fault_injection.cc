#include "testing/fault_injection.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/macros.h"

namespace eca {

namespace {

constexpr int kNumPoints = static_cast<int>(FaultPoint::kNumPoints);

struct PointState {
  bool armed = false;
  int64_t skip = 0;   // hits to let pass before failing
  int64_t hits = 0;   // hits observed since Reset
  FaultVariant variant = FaultVariant::kDefault;
};

thread_local PointState g_points[kNumPoints];

PointState& StateOf(FaultPoint point) {
  int idx = static_cast<int>(point);
  ECA_CHECK(idx >= 0 && idx < kNumPoints);
  return g_points[idx];
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kEnumeratorBudget:
      return "enumerator-budget";
    case FaultPoint::kRewriteRule:
      return "rewrite-rule";
    case FaultPoint::kAllocation:
      return "allocation";
    case FaultPoint::kExecAllocation:
      return "exec-allocation";
    case FaultPoint::kSpillIo:
      return "spill-io";
    case FaultPoint::kCancelRace:
      return "cancel-race";
    case FaultPoint::kServiceAccept:
      return "service-accept";
    case FaultPoint::kServiceWrite:
      return "service-write";
    case FaultPoint::kCacheIo:
      return "cache-io";
    case FaultPoint::kCrashPoint:
      return "crash-point";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

const char* FaultVariantName(FaultVariant variant) {
  switch (variant) {
    case FaultVariant::kDefault:
      return "default";
    case FaultVariant::kShortWrite:
      return "short-write";
    case FaultVariant::kEnospc:
      return "enospc";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultPoint point, int64_t skip, FaultVariant variant) {
  PointState& s = StateOf(point);
  s.armed = true;
  s.skip = skip;
  s.variant = variant;
}

void FaultInjector::Disarm(FaultPoint point) {
  PointState& s = StateOf(point);
  s.armed = false;
  s.skip = 0;
  s.variant = FaultVariant::kDefault;
}

void FaultInjector::Reset() {
  for (int i = 0; i < kNumPoints; ++i) {
    g_points[i] = PointState();
  }
}

bool FaultInjector::ShouldFail(FaultPoint point) {
  PointState& s = StateOf(point);
  ++s.hits;
  if (!s.armed) return false;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  return true;
}

int64_t FaultInjector::HitCount(FaultPoint point) {
  return StateOf(point).hits;
}

bool FaultInjector::IsArmed(FaultPoint point) { return StateOf(point).armed; }

FaultVariant FaultInjector::Variant(FaultPoint point) {
  return StateOf(point).variant;
}

namespace {

// Global (not thread-local): the chaos harness arms the crash once per
// process via `ecad --crash-at N`, then any session thread may reach the
// armed step first.
std::atomic<int64_t> g_crash_at{0};  // 0 = disarmed; >0 = hit that crashes
std::atomic<int64_t> g_crash_hits{0};

}  // namespace

void CrashInjector::Arm(int64_t at_hit) {
  g_crash_at.store(at_hit > 0 ? at_hit : 0, std::memory_order_release);
}

void CrashInjector::Disarm() {
  g_crash_at.store(0, std::memory_order_release);
}

bool CrashInjector::IsArmed() {
  return g_crash_at.load(std::memory_order_acquire) > 0;
}

void CrashInjector::MaybeCrash(const char* step) {
  int64_t hit = g_crash_hits.fetch_add(1, std::memory_order_acq_rel) + 1;
  int64_t at = g_crash_at.load(std::memory_order_acquire);
  if (at <= 0 || hit != at) return;
  // Simulate kill -9 as closely as an injected fault can: log with raw
  // write(2) (async-signal-safe, no stdio buffering to lose) and _exit —
  // no destructors, no atexit handlers, no stream flush.
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "ecad: CRASH INJECTED at step %lld (%s)\n",
                        static_cast<long long>(hit), step ? step : "?");
  if (n > 0) {
#ifndef _WIN32
    ssize_t ignored = ::write(2, buf, static_cast<size_t>(n));
    (void)ignored;
#endif
  }
  ::_exit(137);
}

int64_t CrashInjector::Hits() {
  return g_crash_hits.load(std::memory_order_acquire);
}

namespace {

// Global (not thread-local): deadline checks run on worker threads that
// must see the fake time the test thread armed.
std::atomic<bool> g_clock_armed{false};
std::atomic<int64_t> g_clock_now_ms{0};
std::atomic<int64_t> g_clock_step_ms{0};

}  // namespace

void FaultClock::Arm(int64_t now_ms, int64_t step_ms) {
  g_clock_now_ms.store(now_ms, std::memory_order_relaxed);
  g_clock_step_ms.store(step_ms, std::memory_order_relaxed);
  g_clock_armed.store(true, std::memory_order_release);
}

void FaultClock::Disarm() {
  g_clock_armed.store(false, std::memory_order_release);
}

bool FaultClock::IsArmed() {
  return g_clock_armed.load(std::memory_order_acquire);
}

int64_t FaultClock::NowMs(int64_t real_now_ms) {
  if (!IsArmed()) return real_now_ms;
  int64_t step = g_clock_step_ms.load(std::memory_order_relaxed);
  return g_clock_now_ms.fetch_add(step, std::memory_order_relaxed);
}

}  // namespace eca
