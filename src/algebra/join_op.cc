#include "algebra/join_op.h"

namespace eca {

const char* JoinOpName(JoinOp op) {
  switch (op) {
    case JoinOp::kCross:
      return "cross";
    case JoinOp::kInner:
      return "join";
    case JoinOp::kLeftOuter:
      return "loj";
    case JoinOp::kRightOuter:
      return "roj";
    case JoinOp::kFullOuter:
      return "foj";
    case JoinOp::kLeftSemi:
      return "lsj";
    case JoinOp::kRightSemi:
      return "rsj";
    case JoinOp::kLeftAnti:
      return "laj";
    case JoinOp::kRightAnti:
      return "raj";
  }
  return "?";
}

bool IsSemi(JoinOp op) {
  return op == JoinOp::kLeftSemi || op == JoinOp::kRightSemi;
}

bool IsAnti(JoinOp op) {
  return op == JoinOp::kLeftAnti || op == JoinOp::kRightAnti;
}

bool OutputsOneSide(JoinOp op) { return IsSemi(op) || IsAnti(op); }

bool PadsLeft(JoinOp op) {
  return op == JoinOp::kLeftOuter || op == JoinOp::kFullOuter;
}

bool PadsRight(JoinOp op) {
  return op == JoinOp::kRightOuter || op == JoinOp::kFullOuter;
}

bool IsRightVariant(JoinOp op) {
  return op == JoinOp::kRightOuter || op == JoinOp::kRightSemi ||
         op == JoinOp::kRightAnti;
}

JoinOp Mirror(JoinOp op) {
  switch (op) {
    case JoinOp::kLeftOuter:
      return JoinOp::kRightOuter;
    case JoinOp::kRightOuter:
      return JoinOp::kLeftOuter;
    case JoinOp::kLeftSemi:
      return JoinOp::kRightSemi;
    case JoinOp::kRightSemi:
      return JoinOp::kLeftSemi;
    case JoinOp::kLeftAnti:
      return JoinOp::kRightAnti;
    case JoinOp::kRightAnti:
      return JoinOp::kLeftAnti;
    case JoinOp::kCross:
    case JoinOp::kInner:
    case JoinOp::kFullOuter:
      return op;
  }
  return op;
}

}  // namespace eca
