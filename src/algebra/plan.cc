#include "algebra/plan.h"

#include "common/str_util.h"

namespace eca {

std::string CompOp::ToString() const {
  switch (kind) {
    case Kind::kLambda:
      return "lambda[" + (pred ? pred->DisplayName() : "?") + "," +
             attrs.ToString() + "]";
    case Kind::kBeta:
      return "beta";
    case Kind::kGamma:
      return "gamma" + attrs.ToString();
    case Kind::kGammaStar:
      return "gamma*[" + attrs.ToString() + " keep " + keep.ToString() + "]";
    case Kind::kProject:
      return "pi" + attrs.ToString();
  }
  return "?";
}

PlanPtr Plan::Leaf(int rel_id) {
  auto p = PlanPtr(new Plan());
  p->kind_ = Kind::kLeaf;
  p->rel_id_ = rel_id;
  return p;
}

PlanPtr Plan::Join(JoinOp op, PredRef pred, PlanPtr left, PlanPtr right) {
  ECA_CHECK(left != nullptr && right != nullptr);
  ECA_CHECK(pred != nullptr || op == JoinOp::kCross);
  auto p = PlanPtr(new Plan());
  p->kind_ = Kind::kJoin;
  p->op_ = op;
  p->pred_ = std::move(pred);
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

PlanPtr Plan::Comp(CompOp comp, PlanPtr child) {
  ECA_CHECK(child != nullptr);
  auto p = PlanPtr(new Plan());
  p->kind_ = Kind::kComp;
  p->comp_ = std::move(comp);
  p->left_ = std::move(child);
  return p;
}

RelSet Plan::leaves() const {
  switch (kind_) {
    case Kind::kLeaf:
      return RelSet::Single(rel_id_);
    case Kind::kJoin:
      return left_->leaves().Union(right_->leaves());
    case Kind::kComp:
      return left_->leaves();
  }
  return RelSet();
}

RelSet Plan::output_rels() const {
  switch (kind_) {
    case Kind::kLeaf:
      return RelSet::Single(rel_id_);
    case Kind::kJoin: {
      switch (op_) {
        case JoinOp::kLeftSemi:
        case JoinOp::kLeftAnti:
          return left_->output_rels();
        case JoinOp::kRightSemi:
        case JoinOp::kRightAnti:
          return right_->output_rels();
        default:
          return left_->output_rels().Union(right_->output_rels());
      }
    }
    case Kind::kComp:
      if (comp_.kind == CompOp::Kind::kProject) {
        return left_->output_rels().Intersect(comp_.attrs);
      }
      return left_->output_rels();
  }
  return RelSet();
}

PlanPtr Plan::Clone() const {
  auto p = PlanPtr(new Plan());
  p->kind_ = kind_;
  p->rel_id_ = rel_id_;
  p->op_ = op_;
  p->pred_ = pred_;
  p->comp_ = comp_;
  if (left_) p->left_ = left_->Clone();
  if (right_) p->right_ = right_->Clone();
  return p;
}

void Plan::AppendTo(std::string* out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind_) {
    case Kind::kLeaf:
      *out += pad + "R" + std::to_string(rel_id_) + "\n";
      break;
    case Kind::kJoin:
      *out += pad + std::string(JoinOpName(op_)) +
              (pred_ ? "[" + pred_->DisplayName() + "]" : "") + "\n";
      left_->AppendTo(out, indent + 1);
      right_->AppendTo(out, indent + 1);
      break;
    case Kind::kComp:
      *out += pad + comp_.ToString() + "\n";
      left_->AppendTo(out, indent + 1);
      break;
  }
}

std::string Plan::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

std::string Plan::ToInlineString() const {
  switch (kind_) {
    case Kind::kLeaf:
      return "R" + std::to_string(rel_id_);
    case Kind::kJoin:
      return "(" + left_->ToInlineString() + " " + JoinOpName(op_) +
             (pred_ ? "[" + pred_->DisplayName() + "]" : "") + " " +
             right_->ToInlineString() + ")";
    case Kind::kComp:
      return comp_.ToString() + "(" + left_->ToInlineString() + ")";
  }
  return "?";
}

Schema PlanOutputSchema(const Plan& plan, const std::vector<Schema>& base) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      ECA_CHECK(plan.rel_id() >= 0 &&
                plan.rel_id() < static_cast<int>(base.size()));
      return base[static_cast<size_t>(plan.rel_id())];
    case Plan::Kind::kJoin: {
      Schema l = PlanOutputSchema(*plan.left(), base);
      Schema r = PlanOutputSchema(*plan.right(), base);
      switch (plan.op()) {
        case JoinOp::kLeftSemi:
        case JoinOp::kLeftAnti:
          return l;
        case JoinOp::kRightSemi:
        case JoinOp::kRightAnti:
          return r;
        default:
          return l.Concat(r);
      }
    }
    case Plan::Kind::kComp: {
      Schema c = PlanOutputSchema(*plan.child(), base);
      if (plan.comp().kind == CompOp::Kind::kProject) {
        return c.Project(plan.comp().attrs);
      }
      return c;
    }
  }
  return Schema();
}

bool PlanEquals(const Plan& a, const Plan& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Plan::Kind::kLeaf:
      return a.rel_id() == b.rel_id();
    case Plan::Kind::kJoin: {
      if (a.op() != b.op()) return false;
      const bool preds_equal =
          (a.pred() == b.pred()) ||
          (a.pred() && b.pred() && a.pred()->ToString() == b.pred()->ToString());
      if (!preds_equal) return false;
      return PlanEquals(*a.left(), *b.left()) &&
             PlanEquals(*a.right(), *b.right());
    }
    case Plan::Kind::kComp: {
      const CompOp& ca = a.comp();
      const CompOp& cb = b.comp();
      if (ca.kind != cb.kind || ca.attrs != cb.attrs || ca.keep != cb.keep) {
        return false;
      }
      const bool preds_equal =
          (ca.pred == cb.pred) ||
          (ca.pred && cb.pred && ca.pred->ToString() == cb.pred->ToString());
      if (!preds_equal) return false;
      return PlanEquals(*a.child(), *b.child());
    }
  }
  return false;
}

namespace {

// Same mixing recipe as expr.cc's StructuralFingerprint.
uint64_t FpMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 1099511628211ULL;
}

uint64_t PredFp(const PredRef& pred,
                std::unordered_map<const Predicate*, uint64_t>* cache) {
  if (pred == nullptr) return 0x63726f7373ULL;  // "cross"
  if (cache != nullptr) {
    auto [it, fresh] = cache->try_emplace(pred.get(), 0);
    if (fresh) it->second = StructuralFingerprint(*pred);
    return it->second;
  }
  return StructuralFingerprint(*pred);
}

}  // namespace

uint64_t PlanFingerprint(
    const Plan& plan,
    std::unordered_map<const Predicate*, uint64_t>* pred_cache) {
  uint64_t h = FpMix(1469598103934665603ULL,
                     static_cast<uint64_t>(plan.kind()) + 0xb5ULL);
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return FpMix(h, static_cast<uint64_t>(plan.rel_id()));
    case Plan::Kind::kJoin:
      h = FpMix(h, static_cast<uint64_t>(plan.op()));
      h = FpMix(h, PredFp(plan.pred(), pred_cache));
      h = FpMix(h, PlanFingerprint(*plan.left(), pred_cache));
      return FpMix(h, PlanFingerprint(*plan.right(), pred_cache));
    case Plan::Kind::kComp: {
      const CompOp& c = plan.comp();
      h = FpMix(h, static_cast<uint64_t>(c.kind));
      h = FpMix(h, PredFp(c.pred, pred_cache));
      h = FpMix(h, c.attrs.bits());
      h = FpMix(h, c.keep.bits());
      h = FpMix(h, static_cast<uint64_t>(c.vnode) + 3);
      return FpMix(h, PlanFingerprint(*plan.child(), pred_cache));
    }
  }
  return h;
}

PlanPtr* FindSlot(PlanPtr& root_slot, const Plan* node) {
  if (root_slot.get() == node) return &root_slot;
  Plan* p = root_slot.get();
  if (p == nullptr) return nullptr;
  switch (p->kind()) {
    case Plan::Kind::kLeaf:
      return nullptr;
    case Plan::Kind::kJoin: {
      if (PlanPtr* s = FindSlot(p->mutable_left(), node)) return s;
      return FindSlot(p->mutable_right(), node);
    }
    case Plan::Kind::kComp:
      return FindSlot(p->mutable_child(), node);
  }
  return nullptr;
}

namespace {

// Finds the immediate parent of `node` under `cur`; nullptr if absent.
Plan* FindParentImpl(Plan* cur, const Plan* node) {
  switch (cur->kind()) {
    case Plan::Kind::kLeaf:
      return nullptr;
    case Plan::Kind::kJoin: {
      if (cur->left() == node || cur->right() == node) return cur;
      if (Plan* p = FindParentImpl(cur->left(), node)) return p;
      return FindParentImpl(cur->right(), node);
    }
    case Plan::Kind::kComp: {
      if (cur->child() == node) return cur;
      return FindParentImpl(cur->child(), node);
    }
  }
  return nullptr;
}

}  // namespace

Plan* ParentNode(Plan* root, const Plan* node) {
  if (root == node) return nullptr;
  return FindParentImpl(root, node);
}

Plan* ParentJoin(Plan* root, const Plan* node) {
  Plan* p = ParentNode(root, node);
  while (p != nullptr && !p->is_join()) {
    p = ParentNode(root, p);
  }
  return p;
}

void CollectJoins(Plan* root, std::vector<Plan*>* out) {
  switch (root->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      out->push_back(root);
      CollectJoins(root->left(), out);
      CollectJoins(root->right(), out);
      return;
    case Plan::Kind::kComp:
      CollectJoins(root->child(), out);
      return;
  }
}

void NormalizeRightVariants(Plan* plan) {
  switch (plan->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      if (IsRightVariant(plan->op())) {
        plan->set_op(Mirror(plan->op()));
        std::swap(plan->mutable_left(), plan->mutable_right());
      }
      NormalizeRightVariants(plan->left());
      NormalizeRightVariants(plan->right());
      return;
    case Plan::Kind::kComp:
      NormalizeRightVariants(plan->child());
      return;
  }
}

}  // namespace eca
