#include "algebra/plan_parser.h"

#include <cctype>

namespace eca {

namespace {

class Parser {
 public:
  Parser(const std::string& text,
         const std::map<std::string, PredRef>& preds)
      : text_(text), preds_(preds) {}

  PlanPtr Parse(std::string* error) {
    PlanPtr plan = ParsePlanExpr();
    SkipSpace();
    if (plan == nullptr || pos_ != text_.size()) {
      if (error != nullptr) {
        *error = error_.empty()
                     ? "trailing input at offset " + std::to_string(pos_)
                     : error_;
      }
      return nullptr;
    }
    return plan;
  }

 private:
  void Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(Peek())) ++pos_;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeWord(const std::string& w) {
    if (text_.compare(pos_, w.size(), w) == 0) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  // "R<k>" -> relation id.
  bool ParseRelId(int* out) {
    if (!Consume('R')) {
      Fail("expected 'R<k>'");
      return false;
    }
    if (!std::isdigit(Peek())) {
      Fail("expected digit after 'R'");
      return false;
    }
    int v = 0;
    while (std::isdigit(Peek())) v = v * 10 + (text_[pos_++] - '0');
    *out = v;
    return true;
  }

  // "{R0,R2}" -> RelSet.
  bool ParseRelSet(RelSet* out) {
    if (!Consume('{')) {
      Fail("expected '{'");
      return false;
    }
    RelSet s;
    if (!Consume('}')) {
      while (true) {
        int id = 0;
        if (!ParseRelId(&id)) return false;
        s = s.With(id);
        if (Consume(',')) continue;
        if (Consume('}')) break;
        Fail("expected ',' or '}' in relation set");
        return false;
      }
    }
    *out = s;
    return true;
  }

  // Everything up to the given terminator (used for predicate labels).
  bool ParseUntil(char term, std::string* out) {
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != term) ++pos_;
    if (pos_ >= text_.size()) {
      Fail(std::string("expected '") + term + "'");
      return false;
    }
    *out = text_.substr(start, pos_ - start);
    return true;
  }

  PredRef LookupPred(const std::string& label) {
    auto it = preds_.find(label);
    if (it == preds_.end()) {
      Fail("unknown predicate label '" + label + "'");
      return nullptr;
    }
    return it->second;
  }

  PlanPtr ParsePlanExpr() {
    SkipSpace();
    // Compensation operators.
    if (ConsumeWord("pi{")) {
      --pos_;  // re-read '{' via ParseRelSet
      RelSet s;
      if (!ParseRelSet(&s)) return nullptr;
      return WrapComp(CompOp::Project(s));
    }
    if (ConsumeWord("gamma*[")) {
      RelSet a, keep;
      if (!ParseRelSet(&a)) return nullptr;
      if (!ConsumeWord(" keep ")) {
        Fail("expected ' keep '");
        return nullptr;
      }
      if (!ParseRelSet(&keep)) return nullptr;
      if (!Consume(']')) {
        Fail("expected ']'");
        return nullptr;
      }
      return WrapComp(CompOp::GammaStar(a, keep));
    }
    if (ConsumeWord("gamma{")) {
      --pos_;
      RelSet s;
      if (!ParseRelSet(&s)) return nullptr;
      return WrapComp(CompOp::Gamma(s));
    }
    if (ConsumeWord("lambda[")) {
      std::string label;
      if (!ParseUntil(',', &label)) return nullptr;
      ++pos_;  // consume ','
      PredRef p = LookupPred(label);
      if (p == nullptr) return nullptr;
      RelSet s;
      if (!ParseRelSet(&s)) return nullptr;
      if (!Consume(']')) {
        Fail("expected ']'");
        return nullptr;
      }
      return WrapComp(CompOp::Lambda(std::move(p), s));
    }
    if (ConsumeWord("beta")) {
      return WrapComp(CompOp::Beta());
    }
    // Leaf.
    if (Peek() == 'R') {
      int id = 0;
      if (!ParseRelId(&id)) return nullptr;
      return Plan::Leaf(id);
    }
    // Join: "(" plan " " op... ")".
    if (Consume('(')) {
      PlanPtr left = ParsePlanExpr();
      if (left == nullptr) return nullptr;
      SkipSpace();
      JoinOp op;
      if (ConsumeWord("cross")) {
        op = JoinOp::kCross;
        SkipSpace();
        PlanPtr right = ParsePlanExpr();
        if (right == nullptr) return nullptr;
        SkipSpace();
        if (!Consume(')')) {
          Fail("expected ')'");
          return nullptr;
        }
        return Plan::Join(op, nullptr, std::move(left), std::move(right));
      }
      if (ConsumeWord("join")) {
        op = JoinOp::kInner;
      } else if (ConsumeWord("loj")) {
        op = JoinOp::kLeftOuter;
      } else if (ConsumeWord("roj")) {
        op = JoinOp::kRightOuter;
      } else if (ConsumeWord("foj")) {
        op = JoinOp::kFullOuter;
      } else if (ConsumeWord("lsj")) {
        op = JoinOp::kLeftSemi;
      } else if (ConsumeWord("rsj")) {
        op = JoinOp::kRightSemi;
      } else if (ConsumeWord("laj")) {
        op = JoinOp::kLeftAnti;
      } else if (ConsumeWord("raj")) {
        op = JoinOp::kRightAnti;
      } else {
        Fail("expected a join operator");
        return nullptr;
      }
      if (!Consume('[')) {
        Fail("expected '[' after join operator");
        return nullptr;
      }
      std::string label;
      if (!ParseUntil(']', &label)) return nullptr;
      ++pos_;  // consume ']'
      PredRef p = LookupPred(label);
      if (p == nullptr) return nullptr;
      SkipSpace();
      PlanPtr right = ParsePlanExpr();
      if (right == nullptr) return nullptr;
      SkipSpace();
      if (!Consume(')')) {
        Fail("expected ')'");
        return nullptr;
      }
      return Plan::Join(op, std::move(p), std::move(left),
                        std::move(right));
    }
    Fail("expected a plan expression");
    return nullptr;
  }

  PlanPtr WrapComp(CompOp comp) {
    if (!Consume('(')) {
      Fail("expected '(' after compensation operator");
      return nullptr;
    }
    PlanPtr child = ParsePlanExpr();
    if (child == nullptr) return nullptr;
    SkipSpace();
    if (!Consume(')')) {
      Fail("expected ')'");
      return nullptr;
    }
    return Plan::Comp(std::move(comp), std::move(child));
  }

  const std::string& text_;
  const std::map<std::string, PredRef>& preds_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

PlanPtr ParsePlan(const std::string& text,
                  const std::map<std::string, PredRef>& predicates,
                  std::string* error) {
  Parser parser(text, predicates);
  return parser.Parse(error);
}

}  // namespace eca
