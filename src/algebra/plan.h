#ifndef ECA_ALGEBRA_PLAN_H_
#define ECA_ALGEBRA_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/comp_op.h"
#include "algebra/join_op.h"
#include "catalog/schema.h"
#include "common/rel_set.h"
#include "expr/expr.h"

namespace eca {

class Plan;
using PlanPtr = std::unique_ptr<Plan>;

// A logical query plan node: a base-relation leaf, a binary join, or a unary
// compensation/projection operator. Plans are mutable trees owned through
// unique_ptr; Clone() produces deep copies.
class Plan {
 public:
  enum class Kind { kLeaf, kJoin, kComp };

  static PlanPtr Leaf(int rel_id);
  static PlanPtr Join(JoinOp op, PredRef pred, PlanPtr left, PlanPtr right);
  static PlanPtr Comp(CompOp comp, PlanPtr child);

  Kind kind() const { return kind_; }
  bool is_leaf() const { return kind_ == Kind::kLeaf; }
  bool is_join() const { return kind_ == Kind::kJoin; }
  bool is_comp() const { return kind_ == Kind::kComp; }

  // Leaf accessors.
  int rel_id() const { return rel_id_; }

  // Join accessors.
  JoinOp op() const { return op_; }
  void set_op(JoinOp op) { op_ = op; }
  const PredRef& pred() const { return pred_; }
  void set_pred(PredRef p) { pred_ = std::move(p); }
  Plan* left() { return left_.get(); }
  const Plan* left() const { return left_.get(); }
  Plan* right() { return right_.get(); }
  const Plan* right() const { return right_.get(); }
  PlanPtr& mutable_left() { return left_; }
  PlanPtr& mutable_right() { return right_; }

  // Comp accessors (the child is stored in the left slot).
  const CompOp& comp() const { return comp_; }
  CompOp& mutable_comp() { return comp_; }
  Plan* child() { return left_.get(); }
  const Plan* child() const { return left_.get(); }
  PlanPtr& mutable_child() { return left_; }

  // The set of base relations appearing as leaves of this subtree
  // (the enumerator's S; includes relations consumed by semi/antijoins).
  RelSet leaves() const;

  // The set of relations whose attributes are visible in the output
  // (semi/antijoins hide their pruning side, kProject narrows).
  RelSet output_rels() const;

  PlanPtr Clone() const;

  // Multi-line indented rendering, compensation operators inline.
  std::string ToString() const;
  // Single-line rendering, e.g. "pi{R0}(gamma{R1}((R0 loj[p01] R1)))".
  std::string ToInlineString() const;

 private:
  Plan() = default;
  void AppendTo(std::string* out, int indent) const;

  Kind kind_ = Kind::kLeaf;
  int rel_id_ = -1;
  JoinOp op_ = JoinOp::kInner;
  PredRef pred_;
  CompOp comp_;
  PlanPtr left_;   // join left child, or comp child
  PlanPtr right_;  // join right child
};

// Output schema of `plan` given the base-relation schemas (indexed by
// rel_id).
Schema PlanOutputSchema(const Plan& plan, const std::vector<Schema>& base);

// Structural equality (same shape, ops, predicates by pointer-or-label,
// comp parameters).
bool PlanEquals(const Plan& a, const Plan& b);

// Order-sensitive 64-bit structural fingerprint of the whole tree: node
// kinds, leaf relation ids, join operators, predicate structure
// (StructuralFingerprint — labels ignored) and compensation parameters
// including the group vnode. Two plans with equal fingerprints are
// structurally identical modulo 64-bit collisions; the enumerator keys its
// subtree-cost memo on this and uses it as the deterministic tie-break when
// merging parallel search results. `pred_cache`, when given, memoizes
// predicate fingerprints by object identity (predicates are shared across
// clones, so a search-long cache turns the predicate walk into a lookup).
uint64_t PlanFingerprint(
    const Plan& plan,
    std::unordered_map<const Predicate*, uint64_t>* pred_cache = nullptr);

// Returns the unique_ptr slot that owns `node` within `root`, or nullptr if
// `node` is not in the tree. (`root_slot` must own the tree root.)
PlanPtr* FindSlot(PlanPtr& root_slot, const Plan* node);

// Returns the closest ancestor *join* node of `node` in `root` (skipping
// comp nodes), or nullptr if none.
Plan* ParentJoin(Plan* root, const Plan* node);

// Immediate parent node (join or comp), or nullptr if `node` is the root.
Plan* ParentNode(Plan* root, const Plan* node);

// Collects every join node of the subtree in preorder.
void CollectJoins(Plan* root, std::vector<Plan*>* out);

// Normalizes right-variant joins (roj/rsj/raj) to their left variants by
// swapping children, recursively. The resulting plan is semantically equal.
void NormalizeRightVariants(Plan* plan);

}  // namespace eca

#endif  // ECA_ALGEBRA_PLAN_H_
