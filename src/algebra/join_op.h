#ifndef ECA_ALGEBRA_JOIN_OP_H_
#define ECA_ALGEBRA_JOIN_OP_H_

#include <string>

namespace eca {

// The conventional join operators of the paper's query class C_J
// (Section 1), plus the cartesian/cross product used by canonical forms.
enum class JoinOp {
  kCross,       // x    cartesian product
  kInner,       // |><|
  kLeftOuter,   // =|><|   preserves left operand
  kRightOuter,  // |><|=   preserves right operand
  kFullOuter,   // =|><|=  preserves both
  kLeftSemi,    // |><     output schema = left operand
  kRightSemi,   // ><|     output schema = right operand
  kLeftAnti,    // |>      output schema = left operand
  kRightAnti,   // <|      output schema = right operand
};

// Short ASCII name used in plan printouts ("loj", "laj", ...).
const char* JoinOpName(JoinOp op);

// True for kLeftSemi/kRightSemi.
bool IsSemi(JoinOp op);
// True for kLeftAnti/kRightAnti.
bool IsAnti(JoinOp op);
// True if the output schema covers only one operand (semi/anti joins).
bool OutputsOneSide(JoinOp op);
// True if unmatched tuples of the left (resp. right) operand are preserved
// with NULL padding.
bool PadsLeft(JoinOp op);   // kLeftOuter, kFullOuter
bool PadsRight(JoinOp op);  // kRightOuter, kFullOuter

// True for the right-variants kRightOuter/kRightSemi/kRightAnti, which are
// mirror images of a left-variant.
bool IsRightVariant(JoinOp op);

// The operator that produces the same result with the operands swapped:
// e.g. Mirror(kLeftOuter) = kRightOuter, Mirror(kInner) = kInner.
JoinOp Mirror(JoinOp op);

}  // namespace eca

#endif  // ECA_ALGEBRA_JOIN_OP_H_
