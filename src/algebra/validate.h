#ifndef ECA_ALGEBRA_VALIDATE_H_
#define ECA_ALGEBRA_VALIDATE_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace eca {

// Structural well-formedness checks for plans. The rewrite layer produces
// well-formed plans by construction; validation catches hand-built or
// corrupted plans before execution and is run on every optimizer output in
// the test suite. Returns an empty vector when the plan is valid, else a
// list of human-readable problems.
//
// Checked invariants:
//  - leaf rel_ids are within the base schema vector and used at most once
//  - join operands cover disjoint relation sets
//  - every predicate's referenced relations are visible in the operand
//    schemas where it is evaluated
//  - gamma/gamma*/lambda attribute sets are visible in their child's output
//  - pi keeps a non-empty subset of the child's output
//  - gamma* actually nullifies something (its keep set does not cover the
//    whole child output)
//  - every column referenced by a join/lambda predicate exists in its base
//    relation's schema (so execution cannot hit an unresolved column)
struct ValidateOptions {
  // Accept a relation appearing once per semi/antijoin pruning side in
  // addition to its visible leaf. The enumerator never produces such
  // plans (strict mode stays the default), but the Yannakakis pass of the
  // semijoin policy references each relation a second time inside the
  // reducers' pruning sides — hidden subtrees whose rows never reach the
  // output, so the once-per-output invariant still holds. Each pruning
  // side is checked with a fresh leaf set of its own, keeping genuine
  // duplicates within one subtree detectable.
  bool allow_hidden_duplicates = false;
};

std::vector<std::string> ValidatePlan(const Plan& plan,
                                      const std::vector<Schema>& base,
                                      const ValidateOptions& opts = {});

// Status form for propagating callers (the Optimizer facade, tools):
// INVALID_ARGUMENT joining every problem found, OK when valid.
Status ValidatePlanStatus(const Plan& plan, const std::vector<Schema>& base,
                          const ValidateOptions& opts = {});

// Convenience: CHECK-fails with the first problem (for tests).
void CheckPlanValid(const Plan& plan, const std::vector<Schema>& base);

}  // namespace eca

#endif  // ECA_ALGEBRA_VALIDATE_H_
