#include "algebra/validate.h"

#include "common/str_util.h"

namespace eca {

namespace {

// Checks that every column a scalar references exists in its base
// relation's schema. Execution aborts on unresolved columns (they are a
// programming error there); validation turns them into reportable
// problems for externally-supplied plans.
void CheckScalarColumns(const Scalar* s, const std::vector<Schema>& base,
                        const std::string& pred_name,
                        std::vector<std::string>* problems) {
  if (s == nullptr) return;
  switch (s->kind()) {
    case Scalar::Kind::kColumn: {
      int rel = s->rel_id();
      if (rel < 0 || rel >= static_cast<int>(base.size())) {
        problems->push_back(StrFormat(
            "predicate %s references R%d, outside the database's %d "
            "relation(s)",
            pred_name.c_str(), rel, static_cast<int>(base.size())));
        return;
      }
      StatusOr<int> idx = base[static_cast<size_t>(rel)].ResolveColumn(
          rel, s->column_name());
      if (!idx.ok()) {
        problems->push_back("predicate " + pred_name + ": " +
                            idx.status().message());
      }
      return;
    }
    case Scalar::Kind::kConst:
      return;
    case Scalar::Kind::kArith:
      CheckScalarColumns(s->left().get(), base, pred_name, problems);
      CheckScalarColumns(s->right().get(), base, pred_name, problems);
      return;
  }
}

void CheckPredicateColumns(const Predicate* p,
                           const std::vector<Schema>& base,
                           std::vector<std::string>* problems) {
  if (p == nullptr) return;
  CheckScalarColumns(p->scalar_left().get(), base, p->DisplayName(),
                     problems);
  CheckScalarColumns(p->scalar_right().get(), base, p->DisplayName(),
                     problems);
  for (const PredRef& c : p->children()) {
    CheckPredicateColumns(c.get(), base, problems);
  }
}

void Visit(const Plan& plan, const std::vector<Schema>& base,
           const ValidateOptions& opts, std::vector<std::string>* problems,
           RelSet* seen_leaves) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      int id = plan.rel_id();
      if (id < 0 || id >= static_cast<int>(base.size())) {
        problems->push_back(StrFormat("leaf rel_id %d out of range", id));
        return;
      }
      if (seen_leaves->Contains(id)) {
        problems->push_back(
            StrFormat("relation R%d appears as more than one leaf", id));
      }
      *seen_leaves = seen_leaves->With(id);
      return;
    }
    case Plan::Kind::kJoin: {
      if (opts.allow_hidden_duplicates && OutputsOneSide(plan.op())) {
        // The pruning side never reaches the output; check it against a
        // fresh leaf set so its relations may reappear elsewhere.
        const Plan& kept =
            IsRightVariant(plan.op()) ? *plan.right() : *plan.left();
        const Plan& pruning =
            IsRightVariant(plan.op()) ? *plan.left() : *plan.right();
        Visit(kept, base, opts, problems, seen_leaves);
        RelSet hidden_seen;
        Visit(pruning, base, opts, problems, &hidden_seen);
      } else {
        Visit(*plan.left(), base, opts, problems, seen_leaves);
        Visit(*plan.right(), base, opts, problems, seen_leaves);
      }
      RelSet lo = plan.left()->output_rels();
      RelSet ro = plan.right()->output_rels();
      if (lo.Intersects(ro)) {
        problems->push_back("join operands overlap: " + lo.ToString() +
                            " vs " + ro.ToString());
      }
      if (plan.pred() == nullptr) {
        if (plan.op() != JoinOp::kCross) {
          problems->push_back(std::string("missing predicate on ") +
                              JoinOpName(plan.op()));
        }
        return;
      }
      RelSet visible = lo.Union(ro);
      if (!visible.ContainsAll(plan.pred()->refs())) {
        problems->push_back(
            "predicate " + plan.pred()->DisplayName() + " references " +
            plan.pred()->refs().ToString() + " but only " +
            visible.ToString() + " is visible");
      }
      CheckPredicateColumns(plan.pred().get(), base, problems);
      return;
    }
    case Plan::Kind::kComp: {
      Visit(*plan.child(), base, opts, problems, seen_leaves);
      RelSet out = plan.child()->output_rels();
      const CompOp& c = plan.comp();
      switch (c.kind) {
        case CompOp::Kind::kLambda:
          if (c.pred == nullptr) {
            problems->push_back("lambda without a predicate");
          } else if (!out.ContainsAll(c.pred->refs())) {
            problems->push_back("lambda predicate references " +
                                c.pred->refs().ToString() +
                                " outside the child output " +
                                out.ToString());
          } else {
            CheckPredicateColumns(c.pred.get(), base, problems);
          }
          if (!out.Intersects(c.attrs)) {
            problems->push_back("lambda nullifies no visible attribute (" +
                                c.attrs.ToString() + ")");
          }
          break;
        case CompOp::Kind::kGamma:
          if (!out.Intersects(c.attrs)) {
            problems->push_back("gamma tests no visible attribute (" +
                                c.attrs.ToString() + ")");
          }
          break;
        case CompOp::Kind::kGammaStar:
          if (!out.Intersects(c.attrs)) {
            problems->push_back("gamma* tests no visible attribute (" +
                                c.attrs.ToString() + ")");
          }
          if (out.Minus(c.keep).Empty()) {
            problems->push_back("gamma* nullifies no visible attribute (" +
                                c.keep.ToString() + " covers " +
                                out.ToString() + ")");
          }
          break;
        case CompOp::Kind::kProject:
          if (!out.Intersects(c.attrs)) {
            problems->push_back("projection keeps nothing (" +
                                c.attrs.ToString() + " of " +
                                out.ToString() + ")");
          }
          break;
        case CompOp::Kind::kBeta:
          break;
      }
      return;
    }
  }
}

}  // namespace

std::vector<std::string> ValidatePlan(const Plan& plan,
                                      const std::vector<Schema>& base,
                                      const ValidateOptions& opts) {
  std::vector<std::string> problems;
  RelSet seen;
  Visit(plan, base, opts, &problems, &seen);
  return problems;
}

Status ValidatePlanStatus(const Plan& plan, const std::vector<Schema>& base,
                          const ValidateOptions& opts) {
  std::vector<std::string> problems = ValidatePlan(plan, base, opts);
  if (problems.empty()) return Status::OK();
  return Status::InvalidArgument("invalid plan: " + StrJoin(problems, "; ") +
                                 "\n" + plan.ToString());
}

void CheckPlanValid(const Plan& plan, const std::vector<Schema>& base) {
  std::vector<std::string> problems = ValidatePlan(plan, base);
  if (!problems.empty()) {
    ECA_CHECK_MSG(false, (problems[0] + "\n" + plan.ToString()).c_str());
  }
}

}  // namespace eca
