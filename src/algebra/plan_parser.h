#ifndef ECA_ALGEBRA_PLAN_PARSER_H_
#define ECA_ALGEBRA_PLAN_PARSER_H_

#include <map>
#include <string>

#include "algebra/plan.h"

namespace eca {

// Parses the compact plan notation produced by Plan::ToInlineString():
//
//   plan  := "R<k>"
//          | "(" plan " " op "[" predlabel "]" " " plan ")"
//          | "(" plan " cross " plan ")"
//          | comp "(" plan ")"
//   op    := join | loj | roj | foj | lsj | rsj | laj | raj | cross
//   comp  := "pi{R..}" | "gamma{R..}" | "beta"
//          | "gamma*[{R..} keep {R..}]"
//          | "lambda[" predlabel ",{R..}]"
//
// Predicates appear as labels only, so the caller supplies a dictionary
// from label to PredRef. Round-trips with ToInlineString (see
// plan_parser_test.cc), which makes golden-style plan assertions and
// compact test fixtures possible.
//
// Returns nullptr and fills *error on malformed input or unknown labels.
PlanPtr ParsePlan(const std::string& text,
                  const std::map<std::string, PredRef>& predicates,
                  std::string* error = nullptr);

}  // namespace eca

#endif  // ECA_ALGEBRA_PLAN_PARSER_H_
