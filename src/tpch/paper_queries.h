#ifndef ECA_TPCH_PAPER_QUERIES_H_
#define ECA_TPCH_PAPER_QUERIES_H_

#include <string>

#include "algebra/plan.h"
#include "exec/database.h"
#include "tpch/tpch_gen.h"

namespace eca {

// The three evaluation queries of Section 7, over R1 = Supplier,
// R2 = Partsupp, R3 = sigma_{p_name = c1}(Part), R4 = Lineitem,
// R5 = sigma_{o_totalprice > c2}(Orders):
//
//   Q1 = R1 laj[p12] (R2 laj[p23] R3)
//   Q2 = R1 laj[p12] ((R2 join[p24] R4) laj[p23] R3)
//   Q3 = R1 laj[p12] (((R2 join[p24] R4) join[p45] R5) laj[p23] R3)
//
// with p12 = (s_suppkey = ps_suppkey AND s_acctbal > nu * ps_supplycost),
// p23 = (ps_partkey = p_partkey), p24 = (ps_suppkey = l_suppkey AND
// ps_partkey = l_partkey), p45 = (l_orderkey = o_orderkey). The parameter
// nu controls the antijoin selectivity f12 = |R1 laj R2| / |R1| that the
// paper sweeps on the x-axis of Figure 6.
struct PaperQuery {
  std::string name;
  PlanPtr plan;  // the query exactly as written (P^direct)
  Database db;   // tables indexed by TpchRel ids
};

// The join predicates (shared by query builders and plan checks).
PredRef PredP12(double nu);
PredRef PredP23();
PredRef PredP24();
PredRef PredP45();

PaperQuery BuildQ1(const TpchData& data, double nu,
                   const std::string& part_name = "name0");
PaperQuery BuildQ2(const TpchData& data, double nu,
                   const std::string& part_name = "name0");
PaperQuery BuildQ3(const TpchData& data, double nu,
                   const std::string& part_name = "name0",
                   double price_cutoff = 350000.0);

// Measured antijoin selectivity f12 for the given database and nu.
double MeasureF12(const Database& db, double nu);

}  // namespace eca

#endif  // ECA_TPCH_PAPER_QUERIES_H_
