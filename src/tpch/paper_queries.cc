#include "tpch/paper_queries.h"

#include "exec/executor.h"

namespace eca {

PredRef PredP12(double nu) {
  PredRef p = Predicate::And(
      {Eq(Col(kSupplier, "s_suppkey"), Col(kPartsupp, "ps_suppkey")),
       Gt(Col(kSupplier, "s_acctbal"),
          Scalar::Arith(Scalar::ArithOp::kMul, LitReal(nu),
                        Col(kPartsupp, "ps_supplycost")))});
  return Predicate::WithLabel(std::move(p), "p12");
}

PredRef PredP23() {
  return EquiJoin(kPartsupp, "ps_partkey", kPart, "p_partkey", "p23");
}

PredRef PredP24() {
  PredRef p = Predicate::And(
      {Eq(Col(kPartsupp, "ps_suppkey"), Col(kLineitem, "l_suppkey")),
       Eq(Col(kPartsupp, "ps_partkey"), Col(kLineitem, "l_partkey"))});
  return Predicate::WithLabel(std::move(p), "p24");
}

PredRef PredP45() {
  return EquiJoin(kLineitem, "l_orderkey", kOrders, "o_orderkey", "p45");
}

namespace {

Database MakeDatabase(const TpchData& data, const std::string& part_name,
                      bool with_lineitem, bool with_orders,
                      double price_cutoff) {
  Database db;
  db.Add(data.supplier);
  db.Add(data.partsupp);
  db.Add(FilterPartByName(data.part, part_name));
  if (with_lineitem || with_orders) {
    db.Add(data.lineitem);
  }
  if (with_orders) {
    db.Add(FilterOrdersByTotalPrice(data.orders, price_cutoff));
  }
  return db;
}

}  // namespace

PaperQuery BuildQ1(const TpchData& data, double nu,
                   const std::string& part_name) {
  PaperQuery q;
  q.name = "Q1";
  q.db = MakeDatabase(data, part_name, false, false, 0);
  q.plan = Plan::Join(
      JoinOp::kLeftAnti, PredP12(nu), Plan::Leaf(kSupplier),
      Plan::Join(JoinOp::kLeftAnti, PredP23(), Plan::Leaf(kPartsupp),
                 Plan::Leaf(kPart)));
  return q;
}

PaperQuery BuildQ2(const TpchData& data, double nu,
                   const std::string& part_name) {
  PaperQuery q;
  q.name = "Q2";
  q.db = MakeDatabase(data, part_name, true, false, 0);
  q.plan = Plan::Join(
      JoinOp::kLeftAnti, PredP12(nu), Plan::Leaf(kSupplier),
      Plan::Join(JoinOp::kLeftAnti, PredP23(),
                 Plan::Join(JoinOp::kInner, PredP24(),
                            Plan::Leaf(kPartsupp), Plan::Leaf(kLineitem)),
                 Plan::Leaf(kPart)));
  return q;
}

PaperQuery BuildQ3(const TpchData& data, double nu,
                   const std::string& part_name, double price_cutoff) {
  PaperQuery q;
  q.name = "Q3";
  q.db = MakeDatabase(data, part_name, true, true, price_cutoff);
  q.plan = Plan::Join(
      JoinOp::kLeftAnti, PredP12(nu), Plan::Leaf(kSupplier),
      Plan::Join(
          JoinOp::kLeftAnti, PredP23(),
          Plan::Join(JoinOp::kInner, PredP45(),
                     Plan::Join(JoinOp::kInner, PredP24(),
                                Plan::Leaf(kPartsupp),
                                Plan::Leaf(kLineitem)),
                     Plan::Leaf(kOrders)),
          Plan::Leaf(kPart)));
  return q;
}

double MeasureF12(const Database& db, double nu) {
  PlanPtr anti = Plan::Join(JoinOp::kLeftAnti, PredP12(nu),
                            Plan::Leaf(kSupplier), Plan::Leaf(kPartsupp));
  Executor ex;
  Relation out = ex.Execute(*anti, db);
  int64_t total = db.table(kSupplier).NumRows();
  return total == 0 ? 0.0
                    : static_cast<double>(out.NumRows()) /
                          static_cast<double>(total);
}

}  // namespace eca
