#ifndef ECA_TPCH_TPCH_GEN_H_
#define ECA_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <string>

#include "storage/relation.h"

namespace eca {

// Relation ids used by the paper's queries (Section 7): R1 = Supplier,
// R2 = Partsupp, R3 = sigma(Part), R4 = Lineitem, R5 = sigma(Orders).
// Ids are zero-based here.
enum TpchRel {
  kSupplier = 0,
  kPartsupp = 1,
  kPart = 2,
  kLineitem = 3,
  kOrders = 4,
};

// Table cardinalities for a scale factor, following TPC-H's ratios
// (SF 1 = 10k suppliers, 200k parts, 800k partsupp, 1.5M orders, ~6M
// lineitem). The reproduction runs in-memory, so benches use small SFs; the
// inter-table ratios are what the experiments depend on.
struct TpchScale {
  int64_t suppliers = 0;
  int64_t parts = 0;
  int64_t partsupp_per_part = 4;
  int64_t orders = 0;
  int64_t max_lines_per_order = 7;

  static TpchScale OfSF(double sf);
};

// The generated database (unfiltered base tables).
struct TpchData {
  Relation supplier;   // s_suppkey, s_nationkey, s_acctbal
  Relation partsupp;   // ps_partkey, ps_suppkey, ps_availqty, ps_supplycost
  Relation part;       // p_partkey, p_name, p_size, p_retailprice
  Relation lineitem;   // l_orderkey, l_linenumber, l_partkey, l_suppkey,
                       // l_quantity, l_extendedprice
  Relation orders;     // o_orderkey, o_custkey, o_totalprice
};

// Deterministic TPC-H-style generation with referential integrity:
// partsupp links each part to partsupp_per_part suppliers (TPC-H's suppkey
// formula) and every lineitem's (l_partkey, l_suppkey) is one of that
// part's registered suppliers.
TpchData GenerateTpch(const TpchScale& scale, uint64_t seed);

// Number of distinct p_name values the generator uses at this scale (the
// Section 7 queries filter Part on one name value; selectivity ~= 1/pool).
int64_t PartNamePool(const TpchScale& scale);

// The filtered relations of Section 7: R3 = sigma_{p_name = name}(Part) and
// R5 = sigma_{o_totalprice > cutoff}(Orders).
Relation FilterPartByName(const Relation& part, const std::string& name);
Relation FilterOrdersByTotalPrice(const Relation& orders, double cutoff);

}  // namespace eca

#endif  // ECA_TPCH_TPCH_GEN_H_
