#include "tpch/tpch_gen.h"

#include <algorithm>

#include "common/rng.h"

namespace eca {

TpchScale TpchScale::OfSF(double sf) {
  TpchScale s;
  s.suppliers = std::max<int64_t>(4, static_cast<int64_t>(10000 * sf));
  s.parts = std::max<int64_t>(8, static_cast<int64_t>(200000 * sf));
  s.orders = std::max<int64_t>(8, static_cast<int64_t>(1500000 * sf));
  return s;
}

int64_t PartNamePool(const TpchScale& scale) {
  // Enough names that a single-name filter selects a handful of parts
  // (TPC-H's p_name filter matches ~1 row; we keep a few for robustness).
  return std::max<int64_t>(8, scale.parts / 8);
}

TpchData GenerateTpch(const TpchScale& scale, uint64_t seed) {
  Rng rng(seed);
  TpchData data;

  // --- supplier -----------------------------------------------------------
  data.supplier = Relation(Schema({
      {kSupplier, "s_suppkey", DataType::kInt64},
      {kSupplier, "s_nationkey", DataType::kInt64},
      {kSupplier, "s_acctbal", DataType::kDouble},
  }));
  for (int64_t s = 1; s <= scale.suppliers; ++s) {
    data.supplier.Add({Value::Int(s), Value::Int(rng.Uniform(0, 24)),
                       Value::Real(-999.99 +
                                   rng.NextDouble() * (9999.99 + 999.99))});
  }

  // --- part ---------------------------------------------------------------
  const int64_t name_pool = PartNamePool(scale);
  data.part = Relation(Schema({
      {kPart, "p_partkey", DataType::kInt64},
      {kPart, "p_name", DataType::kString},
      {kPart, "p_size", DataType::kInt64},
      {kPart, "p_retailprice", DataType::kDouble},
  }));
  for (int64_t p = 1; p <= scale.parts; ++p) {
    data.part.Add({Value::Int(p),
                   Value::Str("name" + std::to_string(
                                  rng.Uniform(0, name_pool - 1))),
                   Value::Int(rng.Uniform(1, 50)),
                   Value::Real(900.0 + static_cast<double>(p % 1000))});
  }

  // --- partsupp (TPC-H suppkey formula for referential spread) -----------
  data.partsupp = Relation(Schema({
      {kPartsupp, "ps_partkey", DataType::kInt64},
      {kPartsupp, "ps_suppkey", DataType::kInt64},
      {kPartsupp, "ps_availqty", DataType::kInt64},
      {kPartsupp, "ps_supplycost", DataType::kDouble},
  }));
  auto supp_of = [&](int64_t part, int64_t i) {
    return (part + i * (scale.suppliers / scale.partsupp_per_part + 1)) %
               scale.suppliers +
           1;
  };
  for (int64_t p = 1; p <= scale.parts; ++p) {
    for (int64_t i = 0; i < scale.partsupp_per_part; ++i) {
      data.partsupp.Add({Value::Int(p), Value::Int(supp_of(p, i)),
                         Value::Int(rng.Uniform(1, 9999)),
                         Value::Real(1.0 + rng.NextDouble() * 999.0)});
    }
  }

  // --- orders + lineitem --------------------------------------------------
  data.orders = Relation(Schema({
      {kOrders, "o_orderkey", DataType::kInt64},
      {kOrders, "o_custkey", DataType::kInt64},
      {kOrders, "o_totalprice", DataType::kDouble},
  }));
  data.lineitem = Relation(Schema({
      {kLineitem, "l_orderkey", DataType::kInt64},
      {kLineitem, "l_linenumber", DataType::kInt64},
      {kLineitem, "l_partkey", DataType::kInt64},
      {kLineitem, "l_suppkey", DataType::kInt64},
      {kLineitem, "l_quantity", DataType::kDouble},
      {kLineitem, "l_extendedprice", DataType::kDouble},
  }));
  for (int64_t o = 1; o <= scale.orders; ++o) {
    data.orders.Add({Value::Int(o), Value::Int(rng.Uniform(1, 1000000)),
                     Value::Real(1000.0 + rng.NextDouble() * 499000.0)});
    int64_t lines = rng.Uniform(1, scale.max_lines_per_order);
    for (int64_t l = 1; l <= lines; ++l) {
      int64_t part = rng.Uniform(1, scale.parts);
      int64_t supp = supp_of(part, rng.Uniform(0, scale.partsupp_per_part - 1));
      data.lineitem.Add({Value::Int(o), Value::Int(l), Value::Int(part),
                         Value::Int(supp),
                         Value::Real(1.0 + rng.NextDouble() * 49.0),
                         Value::Real(900.0 + rng.NextDouble() * 104000.0)});
    }
  }
  return data;
}

Relation FilterPartByName(const Relation& part, const std::string& name) {
  int name_col = part.schema().FindColumn(kPart, "p_name");
  ECA_CHECK(name_col >= 0);
  Relation out(part.schema());
  for (const Tuple& t : part.rows()) {
    const Value& v = t[static_cast<size_t>(name_col)];
    if (!v.is_null() && v.AsStr() == name) out.Add(t);
  }
  return out;
}

Relation FilterOrdersByTotalPrice(const Relation& orders, double cutoff) {
  int col = orders.schema().FindColumn(kOrders, "o_totalprice");
  ECA_CHECK(col >= 0);
  Relation out(orders.schema());
  for (const Tuple& t : orders.rows()) {
    const Value& v = t[static_cast<size_t>(col)];
    if (!v.is_null() && v.AsDouble() > cutoff) out.Add(t);
  }
  return out;
}

}  // namespace eca
