#ifndef ECA_STORAGE_CSV_H_
#define ECA_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace eca {

// TPC-H ".tbl"-style serialization: one row per line, '|'-separated values,
// NULL encoded as \N (so empty strings stay distinct). Strings are stored
// verbatim (the format forbids '|' and newlines inside values, which our
// generators never produce).
//
// Used to persist generated databases between runs and to feed external
// tools; round-trip tested in csv_test.cc.
std::string RelationToTbl(const Relation& rel);

// Parses `text` against `schema` (types drive value parsing). Malformed
// rows — wrong arity, truncated lines, unparseable numerics — produce an
// error Status carrying source/line/column context; `source` names the
// input in those messages (a file path, or "<string>").
StatusOr<Relation> RelationFromTbl(const Schema& schema,
                                   const std::string& text,
                                   const std::string& source = "<string>");

// File convenience wrappers.
bool WriteRelationFile(const std::string& path, const Relation& rel);
Status ReadRelationFile(const std::string& path, const Schema& schema,
                        Relation* out);

}  // namespace eca

#endif  // ECA_STORAGE_CSV_H_
