#ifndef ECA_STORAGE_SPILL_FILE_H_
#define ECA_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace eca {

// Spill-to-disk building blocks for the query resource governor
// (docs/robustness.md, "Resource governor"). A SpillWriter serializes
// tagged rows append-only into a temp file; a SpillReader streams them
// back, verifying a per-record checksum so a torn or corrupted spill is a
// clean kDataLoss instead of silent wrong rows. SpillDir owns the temp
// directory and guarantees cleanup on every path, error paths included —
// a governed query never leaves orphan files behind.
//
// Record format (little-endian, per row):
//   u64 tag        caller payload (the executor stores the global row id,
//                  which is what lets spilled joins reassemble output
//                  byte-identical to the in-memory order)
//   u32 nvalues
//   per value: u8 header (type tag | null bit), then the payload
//              (i64 / double bits / u32 len + bytes for strings)
//   u64 checksum   FNV-1a over everything above
//
// All I/O errors — open, write, flush, short read, checksum mismatch —
// surface as Status; FaultPoint::kSpillIo injects them deterministically
// for the governor's fault tests.

struct SpillStats {
  int64_t files_created = 0;
  int64_t rows_written = 0;
  int64_t bytes_written = 0;
  int64_t bytes_read = 0;
};

// --- Crash-safe per-query spill layout ------------------------------------
//
// A governed query with a configured spill directory keeps all of its
// operator SpillDirs inside one per-query subdirectory named
// "eca-q<pid>-<seq>" (QueryContext derives it via QuerySpillSubdir and
// removes it when the query ends). The pid in the name is what makes a
// crash recoverable: a process that dies mid-spill leaves its
// subdirectories behind, and the next `ecad` startup (or `ecatool
// sweep-spill-dir`) calls SweepOrphanQuerySpillDirs to reclaim every
// subdirectory whose owning process is no longer alive. Subdirectories of
// live processes — including our own — are never touched, so concurrent
// servers can safely share one spill root.

// Returns `base`/eca-q<pid>-<seq> for this process with a fresh sequence
// number. The directory is NOT created (SpillDir creates it lazily on
// first spill), so queries that never spill cost no filesystem traffic.
std::string QuerySpillSubdir(const std::string& base);

// Removes every "eca-q<pid>-<seq>" subdirectory of `base` whose pid does
// not name a live process. Returns the number of subdirectories removed;
// a missing or unreadable `base` sweeps nothing. Best-effort: removal
// failures are skipped, not fatal (the next sweep retries).
int64_t SweepOrphanQuerySpillDirs(const std::string& base);

// A directory of spill files for one operator, created lazily under the
// system temp dir (or `base_dir` when given). Removed with everything in
// it on destruction.
class SpillDir {
 public:
  // `label` shows up in the directory name for post-mortem debugging.
  explicit SpillDir(std::string label = "eca-spill",
                    std::string base_dir = "");
  ~SpillDir();

  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  // Creates the directory on first use; returns the path of a fresh file
  // name inside it (files are created by SpillWriter).
  StatusOr<std::string> NextFilePath();

  // Best-effort recursive removal; called by the destructor. Exposed so
  // tests can assert the cleanup happened.
  void RemoveAll();

  const std::string& path() const { return path_; }
  bool created() const { return created_; }

 private:
  std::string label_;
  std::string base_dir_;
  std::string path_;
  bool created_ = false;
  int64_t next_file_ = 0;
};

// Append-only writer. Create, Append N times, Finish (flushes and
// closes). The file is deleted by SpillDir teardown, not by the writer.
class SpillWriter {
 public:
  SpillWriter() = default;
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Open(const std::string& path, SpillStats* stats = nullptr);
  Status Append(uint64_t tag, const Tuple& row);
  // Flushes and closes; the writer is reusable after another Open.
  Status Finish();

  int64_t rows_written() const { return rows_; }
  // Serialized bytes appended since Open; the grace join uses this to
  // decide whether a partition needs recursive re-partitioning.
  int64_t bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<unsigned char> buf_;  // per-record scratch
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
  SpillStats* stats_ = nullptr;
};

// Streaming reader over a spill file written by SpillWriter.
class SpillReader {
 public:
  SpillReader() = default;
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  Status Open(const std::string& path, SpillStats* stats = nullptr);
  // Reads the next record into (*tag, *row). Sets *eof instead of filling
  // the outputs when the stream ends cleanly; a truncated or corrupted
  // record is kDataLoss.
  Status Next(uint64_t* tag, Tuple* row, bool* eof);
  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<unsigned char> buf_;
  SpillStats* stats_ = nullptr;
};

// External merge sort over tagged rows, the spill path for the sort-based
// compensation operators (beta / gamma*) and any governed consumer that
// cannot hold its input: feed rows in, they accumulate in memory until
// `run_bytes` and then spill as a sorted run; Sorted() merges all runs
// (plus the in-memory tail) and streams the rows out in comparator order,
// ties broken by tag (so equal rows keep their input order when tagged
// with the input index — a stable external sort).
class ExternalRowSorter {
 public:
  using Less = std::function<bool(const Tuple&, const Tuple&)>;

  // `less` must be a strict weak order; it is applied to rows only (tags
  // break ties).
  ExternalRowSorter(SpillDir* dir, Less less, int64_t run_bytes,
                    SpillStats* stats = nullptr);
  ~ExternalRowSorter();

  Status Add(uint64_t tag, Tuple row);

  // Finishes ingestion and merges. Calls `emit` for every row in sorted
  // order; an error from `emit` aborts the merge and is returned.
  Status Drain(const std::function<Status(uint64_t, Tuple&)>& emit);

  int64_t runs_spilled() const { return runs_spilled_; }

 private:
  struct TaggedRow {
    uint64_t tag = 0;
    Tuple row;
  };

  Status SpillRun();
  void SortPending();

  SpillDir* dir_;
  Less less_;
  int64_t run_bytes_;
  SpillStats* stats_;
  std::vector<TaggedRow> pending_;
  int64_t pending_bytes_ = 0;
  std::vector<std::string> run_paths_;
  int64_t runs_spilled_ = 0;
};

}  // namespace eca

#endif  // ECA_STORAGE_SPILL_FILE_H_
