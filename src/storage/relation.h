#ifndef ECA_STORAGE_RELATION_H_
#define ECA_STORAGE_RELATION_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "types/value.h"

namespace eca {

// A tuple is a row of values aligned with a Schema.
using Tuple = std::vector<Value>;

// Compares two tuples under the Value total order (NULL first).
// Returns <0, 0, >0.
int CompareTuples(const Tuple& a, const Tuple& b);

uint64_t HashTuple(const Tuple& t);

// An in-memory row-major relation (bag of tuples with a schema).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {
#ifndef NDEBUG
    for (const Tuple& t : rows_) {
      ECA_DCHECK(static_cast<int>(t.size()) == schema_.NumColumns());
    }
#endif
  }

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>& mutable_rows() { return rows_; }
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }

  void Add(Tuple t) {
    ECA_DCHECK(static_cast<int>(t.size()) == schema_.NumColumns());
    rows_.push_back(std::move(t));
  }

  // Sorts rows in place under the tuple total order. Canonical form for
  // multiset comparison.
  void SortRows();

  // A table rendering for debugging and examples.
  std::string ToString(int max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

// True iff the two relations have equal schemas and equal row multisets.
bool SameMultiset(const Relation& a, const Relation& b);

// Human-oriented diff of two relations (first differing rows); empty string
// when SameMultiset holds. Used by test assertions.
std::string ExplainDifference(const Relation& a, const Relation& b,
                              int max_diffs = 5);

// Accounting heuristic for one in-memory tuple: container overhead plus
// per-value footprint (string payloads included). Shared by the executor's
// memory-tracker charge sites and the spill machinery's run thresholds so
// "bytes" mean one thing across the resource governor.
int64_t ApproxTupleBytes(const Tuple& t);

// Sum of ApproxTupleBytes over a row vector (the relation's row storage).
int64_t ApproxRowsBytes(const std::vector<Tuple>& rows);

// A tuple of `n` NULL values typed per the schema columns [begin, begin+n).
Tuple NullsFor(const Schema& schema, int begin, int n);

// Concatenation of two tuples.
Tuple ConcatTuples(const Tuple& a, const Tuple& b);

}  // namespace eca

#endif  // ECA_STORAGE_RELATION_H_
