#include "storage/csv.h"

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"

namespace eca {

std::string RelationToTbl(const Relation& rel) {
  std::string out;
  for (const Tuple& t : rel.rows()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += '|';
      const Value& v = t[i];
      if (v.is_null()) {
        out += "\\N";
        continue;
      }
      switch (v.type()) {
        case DataType::kInt64:
          out += std::to_string(v.AsInt());
          break;
        case DataType::kDouble:
          out += StrFormat("%.17g", v.AsDouble());
          break;
        case DataType::kString:
          ECA_CHECK_MSG(v.AsStr().find('|') == std::string::npos &&
                            v.AsStr().find('\n') == std::string::npos,
                        "string value not representable in .tbl format");
          out += v.AsStr();
          break;
      }
    }
    out += '\n';
  }
  return out;
}

Relation RelationFromTbl(const Schema& schema, const std::string& text) {
  Relation rel(schema);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // An empty line is a legitimate row only for a single string column
    // (the empty string); otherwise it is inter-row noise.
    if (line.empty() &&
        !(schema.NumColumns() == 1 &&
          schema.column(0).type == DataType::kString)) {
      continue;
    }
    Tuple t;
    t.reserve(static_cast<size_t>(schema.NumColumns()));
    size_t field_start = 0;
    for (int c = 0; c < schema.NumColumns(); ++c) {
      size_t sep = c + 1 < schema.NumColumns()
                       ? line.find('|', field_start)
                       : line.size();
      ECA_CHECK_MSG(sep != std::string::npos, "row has too few fields");
      std::string field = line.substr(field_start, sep - field_start);
      field_start = sep + 1;
      DataType type = schema.column(c).type;
      if (field == "\\N" || (field.empty() && type != DataType::kString)) {
        t.push_back(Value::Null(type));
        continue;
      }
      switch (type) {
        case DataType::kInt64:
          t.push_back(Value::Int(std::strtoll(field.c_str(), nullptr, 10)));
          break;
        case DataType::kDouble:
          t.push_back(Value::Real(std::strtod(field.c_str(), nullptr)));
          break;
        case DataType::kString:
          t.push_back(Value::Str(std::move(field)));
          break;
      }
    }
    rel.Add(std::move(t));
  }
  return rel;
}

bool WriteRelationFile(const std::string& path, const Relation& rel) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string data = RelationToTbl(rel);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return written == data.size();
}

bool ReadRelationFile(const std::string& path, const Schema& schema,
                      Relation* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  *out = RelationFromTbl(schema, data);
  return true;
}

}  // namespace eca
