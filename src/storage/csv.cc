#include "storage/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"

namespace eca {

namespace {

// "<source>:<line>: column 'R0.a' (field 3): <what>" — every parse error
// names the exact cell so a bad export can be fixed without a debugger.
Status RowError(const std::string& source, int64_t line_no,
                const Schema& schema, int col, const std::string& what) {
  std::string where = source + ":" + std::to_string(line_no);
  if (col >= 0 && col < schema.NumColumns()) {
    where += ": column '" + schema.column(col).QualifiedName() + "' (field " +
             std::to_string(col + 1) + ")";
  }
  return Status::InvalidArgument(where + ": " + what);
}

}  // namespace

std::string RelationToTbl(const Relation& rel) {
  std::string out;
  for (const Tuple& t : rel.rows()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += '|';
      const Value& v = t[i];
      if (v.is_null()) {
        out += "\\N";
        continue;
      }
      switch (v.type()) {
        case DataType::kInt64:
          out += std::to_string(v.AsInt());
          break;
        case DataType::kDouble:
          out += StrFormat("%.17g", v.AsDouble());
          break;
        case DataType::kString:
          ECA_CHECK_MSG(v.AsStr().find('|') == std::string::npos &&
                            v.AsStr().find('\n') == std::string::npos,
                        "string value not representable in .tbl format");
          out += v.AsStr();
          break;
      }
    }
    out += '\n';
  }
  return out;
}

StatusOr<Relation> RelationFromTbl(const Schema& schema,
                                   const std::string& text,
                                   const std::string& source) {
  Relation rel(schema);
  size_t pos = 0;
  int64_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    bool truncated = eol == std::string::npos;  // last line, no newline
    if (truncated) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    // An empty line is a legitimate row only for a single string column
    // (the empty string); otherwise it is inter-row noise.
    if (line.empty() &&
        !(schema.NumColumns() == 1 &&
          schema.column(0).type == DataType::kString)) {
      continue;
    }
    Tuple t;
    t.reserve(static_cast<size_t>(schema.NumColumns()));
    size_t field_start = 0;
    for (int c = 0; c < schema.NumColumns(); ++c) {
      bool last = c + 1 == schema.NumColumns();
      size_t sep = last ? line.size() : line.find('|', field_start);
      if (sep == std::string::npos) {
        // Fields 0..c are present (c's content runs to end of line), so
        // the first missing column is c + 1.
        return RowError(
            source, line_no, schema, c + 1,
            StrFormat("row has %d field(s), schema expects %d%s", c + 1,
                      schema.NumColumns(),
                      truncated ? " (file truncated mid-row?)" : ""));
      }
      if (last && line.find('|', field_start) != std::string::npos) {
        return RowError(source, line_no, schema, c,
                        StrFormat("row has more fields than the schema's %d",
                                  schema.NumColumns()));
      }
      std::string field = line.substr(field_start, sep - field_start);
      field_start = sep + 1;
      DataType type = schema.column(c).type;
      if (field == "\\N" || (field.empty() && type != DataType::kString)) {
        t.push_back(Value::Null(type));
        continue;
      }
      char* end = nullptr;
      switch (type) {
        case DataType::kInt64: {
          errno = 0;
          long long v = std::strtoll(field.c_str(), &end, 10);
          if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
            return RowError(source, line_no, schema, c,
                            "cannot parse '" + field + "' as int64");
          }
          t.push_back(Value::Int(v));
          break;
        }
        case DataType::kDouble: {
          errno = 0;
          double v = std::strtod(field.c_str(), &end);
          if (end == field.c_str() || *end != '\0') {
            return RowError(source, line_no, schema, c,
                            "cannot parse '" + field + "' as double");
          }
          t.push_back(Value::Real(v));
          break;
        }
        case DataType::kString:
          t.push_back(Value::Str(std::move(field)));
          break;
      }
    }
    rel.Add(std::move(t));
  }
  return rel;
}

bool WriteRelationFile(const std::string& path, const Relation& rel) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string data = RelationToTbl(rel);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return written == data.size();
}

Status ReadRelationFile(const std::string& path, const Schema& schema,
                        Relation* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::DataLoss("read error on '" + path + "'");
  }
  ECA_ASSIGN_OR_RETURN(*out, RelationFromTbl(schema, data, path));
  return Status::OK();
}

}  // namespace eca
