#include "storage/relation.h"

#include <algorithm>

#include "common/str_util.h"

namespace eca {

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

uint64_t HashTuple(const Tuple& t) {
  uint64_t h = 14695981039346656037ULL;
  for (const Value& v : t) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
}

std::string Relation::ToString(int max_rows) const {
  std::string out = schema_.ToString() + "\n";
  int64_t shown = 0;
  for (const Tuple& t : rows_) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%lld rows total)\n",
                       static_cast<long long>(NumRows()));
      break;
    }
    std::vector<std::string> parts;
    parts.reserve(t.size());
    for (const Value& v : t) parts.push_back(v.ToString());
    out += "  [" + StrJoin(parts, ", ") + "]\n";
  }
  if (rows_.empty()) out += "  (empty)\n";
  return out;
}

bool SameMultiset(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) return false;
  if (a.NumRows() != b.NumRows()) return false;
  std::vector<Tuple> ra = a.rows(), rb = b.rows();
  auto less = [](const Tuple& x, const Tuple& y) {
    return CompareTuples(x, y) < 0;
  };
  std::sort(ra.begin(), ra.end(), less);
  std::sort(rb.begin(), rb.end(), less);
  for (size_t i = 0; i < ra.size(); ++i) {
    if (CompareTuples(ra[i], rb[i]) != 0) return false;
  }
  return true;
}

std::string ExplainDifference(const Relation& a, const Relation& b,
                              int max_diffs) {
  if (!(a.schema() == b.schema())) {
    return "schemas differ: " + a.schema().ToString() + " vs " +
           b.schema().ToString();
  }
  std::vector<Tuple> ra = a.rows(), rb = b.rows();
  auto less = [](const Tuple& x, const Tuple& y) {
    return CompareTuples(x, y) < 0;
  };
  std::sort(ra.begin(), ra.end(), less);
  std::sort(rb.begin(), rb.end(), less);
  std::string out;
  int diffs = 0;
  size_t i = 0, j = 0;
  auto render = [](const Tuple& t) {
    std::vector<std::string> parts;
    parts.reserve(t.size());
    for (const Value& v : t) parts.push_back(v.ToString());
    return "[" + StrJoin(parts, ", ") + "]";
  };
  while ((i < ra.size() || j < rb.size()) && diffs < max_diffs) {
    int c;
    if (i >= ra.size()) {
      c = 1;
    } else if (j >= rb.size()) {
      c = -1;
    } else {
      c = CompareTuples(ra[i], rb[j]);
    }
    if (c == 0) {
      ++i;
      ++j;
    } else if (c < 0) {
      out += "only in left:  " + render(ra[i++]) + "\n";
      ++diffs;
    } else {
      out += "only in right: " + render(rb[j++]) + "\n";
      ++diffs;
    }
  }
  if (!out.empty()) {
    out = StrFormat("left has %lld rows, right has %lld rows\n",
                    static_cast<long long>(a.NumRows()),
                    static_cast<long long>(b.NumRows())) +
          out;
  }
  return out;
}

int64_t ApproxTupleBytes(const Tuple& t) {
  int64_t bytes = static_cast<int64_t>(sizeof(Tuple)) +
                  static_cast<int64_t>(t.capacity() * sizeof(Value));
  for (const Value& v : t) {
    if (!v.is_null() && v.type() == DataType::kString) {
      bytes += static_cast<int64_t>(v.AsStr().capacity());
    }
  }
  return bytes;
}

int64_t ApproxRowsBytes(const std::vector<Tuple>& rows) {
  int64_t bytes = 0;
  for (const Tuple& t : rows) bytes += ApproxTupleBytes(t);
  return bytes;
}

Tuple NullsFor(const Schema& schema, int begin, int n) {
  Tuple t;
  t.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    t.push_back(Value::Null(schema.column(begin + i).type));
  }
  return t;
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace eca
