#ifndef ECA_STORAGE_CACHE_STORE_H_
#define ECA_STORAGE_CACHE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "enumerate/shared_memo.h"

namespace eca {

class Database;

// Crash-safe persistence for the cross-query plan cache
// (docs/robustness.md, "Crash safety & persistence"). Proven SharedMemo
// entries are serialized per stats epoch into two files:
//
//   <path>       the snapshot — the whole cache at one point in time,
//                replaced atomically (temp file + fsync + rename + dir
//                fsync), so a crash at any byte leaves either the old or
//                the new snapshot, never a hybrid.
//   <path>.log   the append-only write-behind log — entries published
//                since the last snapshot, fsynced per batch. A crash
//                mid-append leaves a torn tail, which the loader
//                truncates at the first bad checksum.
//
// Record framing reuses the spill-file idiom (docs/robustness.md):
//
//   u32 len | payload | u64 FNV-1a(len bytes + payload)     little-endian
//
// The first record of each file is a header {magic "ECAPCACH", version,
// stats epoch, catalog fingerprint}; every further record is one cache
// entry {map_key, MemoPayload} with the plan tree, predicates and scalars
// in a self-contained binary encoding (no interner or parser dependence).
//
// Recovery contract — the loader NEVER fails the daemon:
//   - missing file(s): cold cache;
//   - wrong magic/version/catalog fingerprint: whole file discarded;
//   - torn or corrupt tail: valid prefix imported, tail truncated
//     (physically, for the log, so later appends stay readable);
//   - per-entry stats-epoch mismatch: entry discarded;
//   - any I/O error: load stops, whatever was imported stays.
// Every outcome is counted in the cache.* metrics and reported in
// LoadResult for the daemon's log line.
//
// FaultPoint::kCacheIo injects open/read/write/fsync/rename failures;
// CrashInjector::MaybeCrash marks the crash-ordering-critical steps for
// tools/chaos_smoke.sh.
class CacheStore {
 public:
  struct LoadResult {
    int64_t loaded = 0;     // entries imported into the memo
    int64_t recovered = 0;  // entries salvaged from a file with a tear
    int64_t discarded = 0;  // entries dropped (stale epoch, duplicate,
                            // corrupt, wrong catalog)
    bool snapshot_present = false;
    bool log_present = false;
    bool degraded = false;  // something was wrong with the files; the
                            // cache is (partially) cold but serviceable
    std::string detail;     // human-readable degradation reason(s)
  };

  explicit CacheStore(std::string path);

  const std::string& path() const { return path_; }
  std::string log_path() const { return path_ + ".log"; }

  // Reads snapshot + log and imports every acceptable entry into `memo`
  // (at generation 0, visible to all future queries). Entries are
  // validated against memo->epoch() and `catalog_fp`. Never fails: every
  // degradation is reported in the result, not thrown at the caller.
  LoadResult Load(SharedMemo* memo, uint64_t catalog_fp);

  // Atomically replaces the snapshot with the memo's full current-epoch
  // content and clears the log. On success the snapshot watermark
  // advances, so subsequent AppendNew calls only write newer entries.
  Status WriteSnapshot(SharedMemo* memo, uint64_t catalog_fp);

  // Appends entries published since the last snapshot/append to the log
  // and fsyncs. No-op when nothing new was published. Exact duplicates
  // across snapshot and log are harmless: Import dedups on load.
  Status AppendNew(SharedMemo* memo, uint64_t catalog_fp);

 private:
  Status WriteLocked(const std::string& path,
                     const std::vector<MemoExportEntry>& entries,
                     uint64_t epoch, uint64_t catalog_fp, bool append);

  std::string path_;
  // Highest generation already persisted; AppendNew exports (gen >
  // watermark). Entries imported from disk live at generation 0 and are
  // never re-exported by an append (only by the next full snapshot).
  uint64_t watermark_gen_ = 0;
};

// Serializes one payload into `out` (appended); the exact byte string the
// entry records carry. Exposed for the corruption fuzz and tests.
void EncodeCacheEntry(uint64_t map_key, const MemoPayload& payload,
                      std::vector<unsigned char>* out);

// Decodes an entry payload produced by EncodeCacheEntry. Every field is
// bounds-checked; malformed input is kDataLoss, never a crash or an
// unbounded allocation.
Status DecodeCacheEntry(const unsigned char* data, size_t size,
                        uint64_t* map_key,
                        std::shared_ptr<const MemoPayload>* payload);

// Fingerprint of the served catalog: schemas, row counts and row
// contents. A cache file written against a different catalog — different
// data directory, different --rows — must not warm this daemon.
uint64_t CatalogFingerprint(const Database& db);

// Reads only the header record of `path` and reports the stats epoch and
// catalog fingerprint it was written under. Returns false when the file
// is missing or its header is unreadable. Lets tools (ecafuzz
// --cache-file, chaos_smoke.sh) fuzz a foreign cache file under its own
// fingerprint instead of having every entry discarded as a catalog
// mismatch.
bool PeekCacheFileHeader(const std::string& path, uint64_t* epoch,
                         uint64_t* catalog_fp);

}  // namespace eca

#endif  // ECA_STORAGE_CACHE_STORE_H_
