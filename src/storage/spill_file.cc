#include "storage/spill_file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

#include "common/str_util.h"
#include "common/trace.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const unsigned char* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void PutU8(std::vector<unsigned char>* b, uint8_t v) { b->push_back(v); }

void PutU32(std::vector<unsigned char>* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<unsigned char>* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b->push_back((v >> (8 * i)) & 0xff);
}

uint8_t TypeTag(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 0;
}

Status InjectedIo(const char* op, const std::string& path) {
  return Status::DataLoss(std::string("spill I/O fault injected during ") +
                          op + " of " + path);
}

// Process-wide counter for unique spill directory names; combined with
// the pid so concurrent processes sharing a temp dir never collide.
std::atomic<int64_t> g_spill_dir_seq{0};

}  // namespace

// --- Crash-safe per-query spill layout ------------------------------------

namespace {

// Sequence for per-query subdirectory names; distinct from the SpillDir
// sequence so the two layers never race on one counter's semantics.
std::atomic<int64_t> g_query_spill_seq{0};

long long CurrentPid() {
#ifdef _WIN32
  return 0;
#else
  return static_cast<long long>(getpid());
#endif
}

// kill(pid, 0) probes existence without signalling: 0 and EPERM both mean
// the process exists; ESRCH means it is gone.
bool ProcessAlive(long long pid) {
#ifdef _WIN32
  return true;  // no cheap probe; never sweep on Windows
#else
  if (pid <= 0) return true;  // malformed name: refuse to sweep
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
#endif
}

// Parses "eca-q<pid>-<seq>"; returns the pid or -1 when the name does not
// match the per-query layout (foreign files are never swept).
long long ParseQuerySpillPid(const std::string& name) {
  const std::string prefix = "eca-q";
  if (name.rfind(prefix, 0) != 0) return -1;
  size_t dash = name.find('-', prefix.size());
  if (dash == std::string::npos || dash == prefix.size()) return -1;
  long long pid = 0;
  for (size_t i = prefix.size(); i < dash; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    pid = pid * 10 + (name[i] - '0');
    if (pid > (1LL << 40)) return -1;
  }
  for (size_t i = dash + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
  }
  if (dash + 1 == name.size()) return -1;
  return pid;
}

}  // namespace

std::string QuerySpillSubdir(const std::string& base) {
  int64_t seq = g_query_spill_seq.fetch_add(1, std::memory_order_relaxed);
  return (fs::path(base) /
          StrFormat("eca-q%lld-%lld", CurrentPid(),
                    static_cast<long long>(seq)))
      .string();
}

int64_t SweepOrphanQuerySpillDirs(const std::string& base) {
  std::error_code ec;
  fs::directory_iterator it(base, ec);
  if (ec) return 0;
  int64_t removed = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    long long pid = ParseQuerySpillPid(entry.path().filename().string());
    if (pid < 0) continue;          // not a per-query spill dir
    if (pid == CurrentPid()) continue;  // our own live queries
    if (ProcessAlive(pid)) continue;    // another live server's queries
    fs::remove_all(entry.path(), ec);
    if (!ec) ++removed;
  }
  return removed;
}

// --- SpillDir -------------------------------------------------------------

SpillDir::SpillDir(std::string label, std::string base_dir)
    : label_(std::move(label)), base_dir_(std::move(base_dir)) {}

SpillDir::~SpillDir() { RemoveAll(); }

StatusOr<std::string> SpillDir::NextFilePath() {
  if (!created_) {
    if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
      return InjectedIo("mkdir", label_);
    }
    std::error_code ec;
    fs::path base = base_dir_.empty()
                        ? fs::temp_directory_path(ec)
                        : fs::path(base_dir_);
    if (ec) {
      return Status::DataLoss("cannot resolve temp directory: " +
                              ec.message());
    }
    int64_t seq = g_spill_dir_seq.fetch_add(1, std::memory_order_relaxed);
#ifdef _WIN32
    long long pid = 0;
#else
    long long pid = static_cast<long long>(getpid());
#endif
    fs::path dir = base / StrFormat("%s-%lld-%lld", label_.c_str(), pid,
                                    static_cast<long long>(seq));
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::DataLoss("cannot create spill directory " +
                              dir.string() + ": " + ec.message());
    }
    path_ = dir.string();
    created_ = true;
  }
  return path_ + "/run-" + std::to_string(next_file_++) + ".spill";
}

void SpillDir::RemoveAll() {
  if (!created_) return;
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; nothing to do on failure
  created_ = false;
  next_file_ = 0;
}

// --- SpillWriter ----------------------------------------------------------

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillWriter::Open(const std::string& path, SpillStats* stats) {
  ECA_CHECK(file_ == nullptr);
  if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
    return InjectedIo("open", path);
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::DataLoss("cannot create spill file " + path);
  }
  path_ = path;
  rows_ = 0;
  bytes_ = 0;
  stats_ = stats;
  if (stats_ != nullptr) ++stats_->files_created;
  return Status::OK();
}

Status SpillWriter::Append(uint64_t tag, const Tuple& row) {
  ECA_CHECK(file_ != nullptr);
  buf_.clear();
  PutU64(&buf_, tag);
  PutU32(&buf_, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    PutU8(&buf_, static_cast<uint8_t>((TypeTag(v.type()) << 1) |
                                      (v.is_null() ? 1 : 0)));
    if (v.is_null()) continue;
    switch (v.type()) {
      case DataType::kInt64:
        PutU64(&buf_, static_cast<uint64_t>(v.AsInt()));
        break;
      case DataType::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(&buf_, bits);
        break;
      }
      case DataType::kString: {
        const std::string& s = v.AsStr();
        PutU32(&buf_, static_cast<uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
        break;
      }
    }
  }
  PutU64(&buf_, FnvMix(kFnvOffset, buf_.data(), buf_.size()));
  if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
    switch (FaultInjector::Variant(FaultPoint::kSpillIo)) {
      case FaultVariant::kShortWrite: {
        // A real partial write() return: a prefix of the record reaches
        // the file before the error, so the tail is physically torn on
        // disk — a later reader must fail the checksum, and the query's
        // unwind must still remove the whole spill directory.
        size_t partial = buf_.size() / 2;
        (void)!std::fwrite(buf_.data(), 1, partial, file_);
        (void)std::fflush(file_);
        return Status::DataLoss(
            "short write to spill file " + path_ + " (fault injected: " +
            std::to_string(partial) + "/" + std::to_string(buf_.size()) +
            " bytes)");
      }
      case FaultVariant::kEnospc:
        return Status::DataLoss("cannot write spill file " + path_ + ": " +
                                std::strerror(ENOSPC) + " (fault injected)");
      case FaultVariant::kDefault:
        return InjectedIo("write", path_);
    }
  }
  if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
    return Status::DataLoss("short write to spill file " + path_);
  }
  ++rows_;
  bytes_ += static_cast<int64_t>(buf_.size());
  if (stats_ != nullptr) {
    ++stats_->rows_written;
    stats_->bytes_written += static_cast<int64_t>(buf_.size());
  }
  return Status::OK();
}

Status SpillWriter::Finish() {
  ECA_CHECK(file_ != nullptr);
  int flush_rc = std::fflush(file_);
  int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
    if (FaultInjector::Variant(FaultPoint::kSpillIo) ==
        FaultVariant::kEnospc) {
      // The buffered tail is refused at flush time — the classic way a
      // full disk surfaces for stdio writers.
      return Status::DataLoss("cannot flush spill file " + path_ + ": " +
                              std::strerror(ENOSPC) + " (fault injected)");
    }
    return InjectedIo("flush", path_);
  }
  if (flush_rc != 0 || close_rc != 0) {
    return Status::DataLoss("cannot flush spill file " + path_ +
                            " (disk full?)");
  }
  return Status::OK();
}

// --- SpillReader ----------------------------------------------------------

SpillReader::~SpillReader() { Close(); }

Status SpillReader::Open(const std::string& path, SpillStats* stats) {
  ECA_CHECK(file_ == nullptr);
  if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
    return InjectedIo("open", path);
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::DataLoss("cannot open spill file " + path);
  }
  path_ = path;
  stats_ = stats;
  return Status::OK();
}

void SpillReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SpillReader::Next(uint64_t* tag, Tuple* row, bool* eof) {
  ECA_CHECK(file_ != nullptr);
  *eof = false;
  auto read_exact = [&](void* dst, size_t n, bool allow_eof) -> Status {
    size_t got = std::fread(dst, 1, n, file_);
    if (got == 0 && allow_eof && std::feof(file_)) {
      *eof = true;
      return Status::OK();
    }
    if (got != n) {
      return Status::DataLoss("truncated spill file " + path_);
    }
    if (stats_ != nullptr) stats_->bytes_read += static_cast<int64_t>(n);
    return Status::OK();
  };
  auto get_u32 = [](const unsigned char* p) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
  };
  auto get_u64 = [](const unsigned char* p) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
  };

  if (FaultInjector::ShouldFail(FaultPoint::kSpillIo)) {
    return InjectedIo("read", path_);
  }
  unsigned char header[12];
  ECA_RETURN_IF_ERROR(read_exact(header, sizeof(header), /*allow_eof=*/true));
  if (*eof) return Status::OK();
  uint64_t checksum = FnvMix(kFnvOffset, header, sizeof(header));
  *tag = get_u64(header);
  uint32_t nvalues = get_u32(header + 8);
  // A corrupted count would make us allocate garbage; bound it so the
  // checksum check below is reached instead of an OOM.
  if (nvalues > (1u << 20)) {
    return Status::DataLoss("corrupt spill record (value count) in " +
                            path_);
  }
  row->clear();
  row->reserve(nvalues);
  for (uint32_t i = 0; i < nvalues; ++i) {
    unsigned char vh;
    ECA_RETURN_IF_ERROR(read_exact(&vh, 1, /*allow_eof=*/false));
    checksum = FnvMix(checksum, &vh, 1);
    bool null = (vh & 1) != 0;
    uint8_t type_tag = vh >> 1;
    DataType type = type_tag == 0   ? DataType::kInt64
                    : type_tag == 1 ? DataType::kDouble
                                    : DataType::kString;
    if (type_tag > 2) {
      return Status::DataLoss("corrupt spill record (type tag) in " + path_);
    }
    if (null) {
      row->push_back(Value::Null(type));
      continue;
    }
    switch (type) {
      case DataType::kInt64: {
        unsigned char p[8];
        ECA_RETURN_IF_ERROR(read_exact(p, 8, /*allow_eof=*/false));
        checksum = FnvMix(checksum, p, 8);
        row->push_back(Value::Int(static_cast<int64_t>(get_u64(p))));
        break;
      }
      case DataType::kDouble: {
        unsigned char p[8];
        ECA_RETURN_IF_ERROR(read_exact(p, 8, /*allow_eof=*/false));
        checksum = FnvMix(checksum, p, 8);
        uint64_t bits = get_u64(p);
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row->push_back(Value::Real(d));
        break;
      }
      case DataType::kString: {
        unsigned char p[4];
        ECA_RETURN_IF_ERROR(read_exact(p, 4, /*allow_eof=*/false));
        checksum = FnvMix(checksum, p, 4);
        uint32_t len = get_u32(p);
        if (len > (1u << 28)) {
          return Status::DataLoss("corrupt spill record (string length) in " +
                                  path_);
        }
        std::string s(len, '\0');
        if (len > 0) {
          ECA_RETURN_IF_ERROR(read_exact(s.data(), len, /*allow_eof=*/false));
          checksum = FnvMix(
              checksum, reinterpret_cast<const unsigned char*>(s.data()),
              len);
        }
        row->push_back(Value::Str(std::move(s)));
        break;
      }
    }
  }
  unsigned char stored[8];
  ECA_RETURN_IF_ERROR(read_exact(stored, 8, /*allow_eof=*/false));
  if (get_u64(stored) != checksum) {
    return Status::DataLoss("spill record checksum mismatch in " + path_ +
                            " (corrupted or torn write)");
  }
  return Status::OK();
}

// --- ExternalRowSorter ----------------------------------------------------

ExternalRowSorter::ExternalRowSorter(SpillDir* dir, Less less,
                                     int64_t run_bytes, SpillStats* stats)
    : dir_(dir), less_(std::move(less)),
      run_bytes_(run_bytes > 0 ? run_bytes : (int64_t{16} << 20)),
      stats_(stats) {}

ExternalRowSorter::~ExternalRowSorter() = default;

void ExternalRowSorter::SortPending() {
  std::sort(pending_.begin(), pending_.end(),
            [this](const TaggedRow& a, const TaggedRow& b) {
              if (less_(a.row, b.row)) return true;
              if (less_(b.row, a.row)) return false;
              return a.tag < b.tag;  // stable under equal rows
            });
}

Status ExternalRowSorter::SpillRun() {
  TraceSpan span("spill/sort-run");
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(pending_.size()));
  }
  SortPending();
  ECA_ASSIGN_OR_RETURN(std::string path, dir_->NextFilePath());
  SpillWriter w;
  ECA_RETURN_IF_ERROR(w.Open(path, stats_));
  for (const TaggedRow& r : pending_) {
    ECA_RETURN_IF_ERROR(w.Append(r.tag, r.row));
  }
  ECA_RETURN_IF_ERROR(w.Finish());
  run_paths_.push_back(std::move(path));
  ++runs_spilled_;
  pending_.clear();
  pending_bytes_ = 0;
  return Status::OK();
}

Status ExternalRowSorter::Add(uint64_t tag, Tuple row) {
  pending_bytes_ += ApproxTupleBytes(row);
  pending_.push_back({tag, std::move(row)});
  if (pending_bytes_ >= run_bytes_) {
    ECA_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalRowSorter::Drain(
    const std::function<Status(uint64_t, Tuple&)>& emit) {
  TraceSpan span("spill/merge");
  if (span.active()) {
    span.AppendArg("runs", static_cast<long long>(run_paths_.size()));
  }
  SortPending();
  if (run_paths_.empty()) {
    // Everything fit: plain in-memory sort.
    for (TaggedRow& r : pending_) {
      ECA_RETURN_IF_ERROR(emit(r.tag, r.row));
    }
    pending_.clear();
    pending_bytes_ = 0;
    return Status::OK();
  }

  // K-way merge of the spilled runs plus the in-memory tail.
  struct Source {
    std::unique_ptr<SpillReader> reader;  // null for the in-memory tail
    std::vector<TaggedRow>* tail = nullptr;
    size_t tail_pos = 0;
    TaggedRow head;
    bool open = false;
  };
  std::vector<Source> sources;
  sources.reserve(run_paths_.size() + 1);
  for (const std::string& p : run_paths_) {
    Source s;
    s.reader = std::make_unique<SpillReader>();
    ECA_RETURN_IF_ERROR(s.reader->Open(p, stats_));
    sources.push_back(std::move(s));
  }
  {
    Source s;
    s.tail = &pending_;
    sources.push_back(std::move(s));
  }
  auto advance = [&](Source& s) -> Status {
    if (s.reader != nullptr) {
      bool eof = false;
      ECA_RETURN_IF_ERROR(s.reader->Next(&s.head.tag, &s.head.row, &eof));
      s.open = !eof;
    } else {
      if (s.tail_pos < s.tail->size()) {
        s.head = std::move((*s.tail)[s.tail_pos++]);
        s.open = true;
      } else {
        s.open = false;
      }
    }
    return Status::OK();
  };
  for (Source& s : sources) ECA_RETURN_IF_ERROR(advance(s));
  auto head_less = [&](const Source& a, const Source& b) {
    if (less_(a.head.row, b.head.row)) return true;
    if (less_(b.head.row, a.head.row)) return false;
    return a.head.tag < b.head.tag;
  };
  for (;;) {
    Source* next = nullptr;
    for (Source& s : sources) {
      if (!s.open) continue;
      if (next == nullptr || head_less(s, *next)) next = &s;
    }
    if (next == nullptr) break;
    ECA_RETURN_IF_ERROR(emit(next->head.tag, next->head.row));
    ECA_RETURN_IF_ERROR(advance(*next));
  }
  pending_.clear();
  pending_bytes_ = 0;
  return Status::OK();
}

}  // namespace eca
