#include "storage/cache_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <system_error>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "algebra/plan.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "exec/database.h"
#include "expr/expr.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

namespace fs = std::filesystem;

// Same FNV-1a as spill_file.cc: one checksum idiom across every on-disk
// byte this system writes.
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const unsigned char* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// File header payload: magic + version + epoch + catalog fingerprint.
constexpr char kMagic[8] = {'E', 'C', 'A', 'P', 'C', 'A', 'C', 'H'};
constexpr uint32_t kVersion = 1;

// Decode bounds. Far above anything the enumerator produces, far below
// anything that could turn corrupt input into an OOM.
constexpr uint32_t kMaxRecordLen = 1u << 26;
constexpr uint32_t kMaxCount = 1u << 20;
constexpr uint32_t kMaxStringLen = 1u << 26;
constexpr int kMaxTreeDepth = 512;

// cache.* metric catalog (docs/service.md). Registered eagerly so the
// first METRICS scrape shows the whole set.
struct CacheCounters {
  Counter* loaded;
  Counter* recovered;
  Counter* discarded;
  Counter* load_degraded;
  Counter* snapshots;
  Counter* snapshot_entries;
  Counter* appends;
  Counter* append_entries;
  Counter* io_errors;
};

const CacheCounters& Counters() {
  static const CacheCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    return CacheCounters{reg.counter("cache.loaded"),
                         reg.counter("cache.recovered"),
                         reg.counter("cache.discarded"),
                         reg.counter("cache.load_degraded"),
                         reg.counter("cache.snapshots"),
                         reg.counter("cache.snapshot_entries"),
                         reg.counter("cache.appends"),
                         reg.counter("cache.append_entries"),
                         reg.counter("cache.io_errors")};
  }();
  return counters;
}

Status InjectedIo(const char* op, const std::string& path) {
  return Status::DataLoss(std::string("cache I/O fault injected during ") +
                          op + " of " + path);
}

// --- byte building ---------------------------------------------------------

void PutU8(std::vector<unsigned char>* b, uint8_t v) { b->push_back(v); }

void PutU32(std::vector<unsigned char>* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<unsigned char>* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b->push_back((v >> (8 * i)) & 0xff);
}

void PutI32(std::vector<unsigned char>* b, int32_t v) {
  PutU32(b, static_cast<uint32_t>(v));
}

void PutF64(std::vector<unsigned char>* b, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(b, bits);
}

void PutString(std::vector<unsigned char>* b, const std::string& s) {
  PutU32(b, static_cast<uint32_t>(s.size()));
  b->insert(b->end(), s.begin(), s.end());
}

// --- bounds-checked reading ------------------------------------------------

// Every Get* returns a harmless zero value once `ok` has dropped; callers
// check ok at the decode boundaries, not after every field.
struct ByteReader {
  const unsigned char* data = nullptr;
  size_t size = 0;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || size - pos < n || pos > size) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return data[pos++];
  }
  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos++]) << (8 * i);
    return v;
  }
  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos++]) << (8 * i);
    return v;
  }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  double GetF64() {
    uint64_t bits = GetU64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  std::string GetString() {
    uint32_t len = GetU32();
    if (len > kMaxStringLen || !Need(len)) {
      ok = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

// --- scalar / predicate / plan codec ---------------------------------------
//
// A structural binary encoding, NOT the text notation: the parser grammar
// only covers compare/AND predicates, while rewrites put Or/Not/IsNull/
// AllNullBlock into cached subtrees. Every enum is range-checked on
// decode; tree depth is bounded so corrupt input cannot blow the stack.

void EncodeValue(std::vector<unsigned char>* b, const Value& v) {
  uint8_t tag = 0;
  switch (v.type()) {
    case DataType::kInt64:
      tag = 0;
      break;
    case DataType::kDouble:
      tag = 1;
      break;
    case DataType::kString:
      tag = 2;
      break;
  }
  PutU8(b, static_cast<uint8_t>((tag << 1) | (v.is_null() ? 1 : 0)));
  if (v.is_null()) return;
  switch (v.type()) {
    case DataType::kInt64:
      PutU64(b, static_cast<uint64_t>(v.AsInt()));
      break;
    case DataType::kDouble:
      PutF64(b, v.AsDouble());
      break;
    case DataType::kString:
      PutString(b, v.AsStr());
      break;
  }
}

Value DecodeValue(ByteReader* r) {
  uint8_t h = r->GetU8();
  bool null = (h & 1) != 0;
  uint8_t tag = h >> 1;
  if (tag > 2) {
    r->ok = false;
    return Value();
  }
  DataType type = tag == 0   ? DataType::kInt64
                  : tag == 1 ? DataType::kDouble
                             : DataType::kString;
  if (null) return Value::Null(type);
  switch (type) {
    case DataType::kInt64:
      return Value::Int(static_cast<int64_t>(r->GetU64()));
    case DataType::kDouble:
      return Value::Real(r->GetF64());
    case DataType::kString:
      return Value::Str(r->GetString());
  }
  r->ok = false;
  return Value();
}

void EncodeScalar(std::vector<unsigned char>* b, const Scalar& s) {
  PutU8(b, static_cast<uint8_t>(s.kind()));
  switch (s.kind()) {
    case Scalar::Kind::kColumn:
      PutI32(b, s.rel_id());
      PutString(b, s.column_name());
      break;
    case Scalar::Kind::kConst:
      EncodeValue(b, s.const_value());
      break;
    case Scalar::Kind::kArith:
      PutU8(b, static_cast<uint8_t>(s.arith_op()));
      EncodeScalar(b, *s.left());
      EncodeScalar(b, *s.right());
      break;
  }
}

ScalarRef DecodeScalar(ByteReader* r, int depth) {
  if (depth > kMaxTreeDepth) {
    r->ok = false;
    return nullptr;
  }
  uint8_t kind = r->GetU8();
  if (!r->ok) return nullptr;
  switch (kind) {
    case static_cast<uint8_t>(Scalar::Kind::kColumn): {
      int32_t rel_id = r->GetI32();
      std::string name = r->GetString();
      if (!r->ok || rel_id < 0 || rel_id >= 64) {
        r->ok = false;
        return nullptr;
      }
      return Scalar::Column(rel_id, std::move(name));
    }
    case static_cast<uint8_t>(Scalar::Kind::kConst): {
      Value v = DecodeValue(r);
      if (!r->ok) return nullptr;
      return Scalar::Const(std::move(v));
    }
    case static_cast<uint8_t>(Scalar::Kind::kArith): {
      uint8_t op = r->GetU8();
      if (op > static_cast<uint8_t>(Scalar::ArithOp::kDiv)) {
        r->ok = false;
        return nullptr;
      }
      ScalarRef l = DecodeScalar(r, depth + 1);
      ScalarRef r2 = DecodeScalar(r, depth + 1);
      if (!r->ok || l == nullptr || r2 == nullptr) return nullptr;
      return Scalar::Arith(static_cast<Scalar::ArithOp>(op), std::move(l),
                           std::move(r2));
    }
    default:
      r->ok = false;
      return nullptr;
  }
}

void EncodePredicate(std::vector<unsigned char>* b, const Predicate& p) {
  PutU8(b, static_cast<uint8_t>(p.kind()));
  PutString(b, p.label());
  switch (p.kind()) {
    case Predicate::Kind::kCompare:
      PutU8(b, static_cast<uint8_t>(p.cmp_op()));
      EncodeScalar(b, *p.scalar_left());
      EncodeScalar(b, *p.scalar_right());
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      PutU32(b, static_cast<uint32_t>(p.children().size()));
      for (const PredRef& c : p.children()) EncodePredicate(b, *c);
      break;
    case Predicate::Kind::kNot:
      EncodePredicate(b, *p.children()[0]);
      break;
    case Predicate::Kind::kConstBool:
      PutU8(b, p.const_bool() ? 1 : 0);
      break;
    case Predicate::Kind::kIsNull:
      EncodeScalar(b, *p.scalar_left());
      break;
    case Predicate::Kind::kAllNullBlock:
      PutU64(b, p.all_null_rels().bits());
      break;
  }
}

PredRef DecodePredicate(ByteReader* r, int depth) {
  if (depth > kMaxTreeDepth) {
    r->ok = false;
    return nullptr;
  }
  uint8_t kind = r->GetU8();
  std::string label = r->GetString();
  if (!r->ok) return nullptr;
  PredRef decoded;
  switch (kind) {
    case static_cast<uint8_t>(Predicate::Kind::kCompare): {
      uint8_t op = r->GetU8();
      if (op > static_cast<uint8_t>(Predicate::CmpOp::kGe)) {
        r->ok = false;
        return nullptr;
      }
      ScalarRef l = DecodeScalar(r, depth + 1);
      ScalarRef r2 = DecodeScalar(r, depth + 1);
      if (!r->ok || l == nullptr || r2 == nullptr) return nullptr;
      decoded = Predicate::Compare(static_cast<Predicate::CmpOp>(op),
                                   std::move(l), std::move(r2));
      break;
    }
    case static_cast<uint8_t>(Predicate::Kind::kAnd):
    case static_cast<uint8_t>(Predicate::Kind::kOr): {
      uint32_t count = r->GetU32();
      // And/Or require at least one child (expr.cc asserts it).
      if (count == 0 || count > kMaxCount) {
        r->ok = false;
        return nullptr;
      }
      std::vector<PredRef> children;
      children.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        PredRef c = DecodePredicate(r, depth + 1);
        if (!r->ok || c == nullptr) return nullptr;
        children.push_back(std::move(c));
      }
      decoded = kind == static_cast<uint8_t>(Predicate::Kind::kAnd)
                    ? Predicate::And(std::move(children))
                    : Predicate::Or(std::move(children));
      break;
    }
    case static_cast<uint8_t>(Predicate::Kind::kNot): {
      PredRef c = DecodePredicate(r, depth + 1);
      if (!r->ok || c == nullptr) return nullptr;
      decoded = Predicate::Not(std::move(c));
      break;
    }
    case static_cast<uint8_t>(Predicate::Kind::kConstBool):
      decoded = Predicate::ConstBool(r->GetU8() != 0);
      break;
    case static_cast<uint8_t>(Predicate::Kind::kIsNull): {
      ScalarRef s = DecodeScalar(r, depth + 1);
      if (!r->ok || s == nullptr) return nullptr;
      decoded = Predicate::IsNull(std::move(s));
      break;
    }
    case static_cast<uint8_t>(Predicate::Kind::kAllNullBlock): {
      RelSet rels(r->GetU64());
      // AllNull over the empty set is unconstructible (expr.cc asserts).
      if (!r->ok || rels.Empty()) {
        r->ok = false;
        return nullptr;
      }
      decoded = Predicate::AllNull(rels);
      break;
    }
    default:
      r->ok = false;
      return nullptr;
  }
  if (!r->ok || decoded == nullptr) return nullptr;
  if (!label.empty()) decoded = Predicate::WithLabel(decoded, std::move(label));
  return decoded;
}

void EncodePlan(std::vector<unsigned char>* b, const Plan& p) {
  PutU8(b, static_cast<uint8_t>(p.kind()));
  switch (p.kind()) {
    case Plan::Kind::kLeaf:
      PutI32(b, p.rel_id());
      break;
    case Plan::Kind::kJoin:
      PutU8(b, static_cast<uint8_t>(p.op()));
      PutU8(b, p.pred() != nullptr ? 1 : 0);
      if (p.pred() != nullptr) EncodePredicate(b, *p.pred());
      EncodePlan(b, *p.left());
      EncodePlan(b, *p.right());
      break;
    case Plan::Kind::kComp: {
      const CompOp& c = p.comp();
      PutU8(b, static_cast<uint8_t>(c.kind));
      PutU8(b, c.pred != nullptr ? 1 : 0);
      if (c.pred != nullptr) EncodePredicate(b, *c.pred);
      PutU64(b, c.attrs.bits());
      PutU64(b, c.keep.bits());
      PutI32(b, c.vnode);
      EncodePlan(b, *p.child());
      break;
    }
  }
}

PlanPtr DecodePlan(ByteReader* r, int depth) {
  if (depth > kMaxTreeDepth) {
    r->ok = false;
    return nullptr;
  }
  uint8_t kind = r->GetU8();
  if (!r->ok) return nullptr;
  switch (kind) {
    case static_cast<uint8_t>(Plan::Kind::kLeaf): {
      int32_t rel_id = r->GetI32();
      if (!r->ok || rel_id < 0 || rel_id >= 64) {
        r->ok = false;
        return nullptr;
      }
      return Plan::Leaf(rel_id);
    }
    case static_cast<uint8_t>(Plan::Kind::kJoin): {
      uint8_t op = r->GetU8();
      if (op > static_cast<uint8_t>(JoinOp::kRightAnti)) {
        r->ok = false;
        return nullptr;
      }
      PredRef pred;
      if (r->GetU8() != 0) {
        pred = DecodePredicate(r, depth + 1);
        if (!r->ok || pred == nullptr) return nullptr;
      } else if (static_cast<JoinOp>(op) != JoinOp::kCross) {
        // Only a cross join may go predicate-less (plan.cc asserts).
        r->ok = false;
        return nullptr;
      }
      PlanPtr left = DecodePlan(r, depth + 1);
      PlanPtr right = DecodePlan(r, depth + 1);
      if (!r->ok || left == nullptr || right == nullptr) return nullptr;
      return Plan::Join(static_cast<JoinOp>(op), std::move(pred),
                        std::move(left), std::move(right));
    }
    case static_cast<uint8_t>(Plan::Kind::kComp): {
      uint8_t comp_kind = r->GetU8();
      if (comp_kind > static_cast<uint8_t>(CompOp::Kind::kProject)) {
        r->ok = false;
        return nullptr;
      }
      CompOp c;
      c.kind = static_cast<CompOp::Kind>(comp_kind);
      if (r->GetU8() != 0) {
        c.pred = DecodePredicate(r, depth + 1);
        if (!r->ok || c.pred == nullptr) return nullptr;
      }
      c.attrs = RelSet(r->GetU64());
      c.keep = RelSet(r->GetU64());
      c.vnode = r->GetI32();
      PlanPtr child = DecodePlan(r, depth + 1);
      if (!r->ok || child == nullptr) return nullptr;
      return Plan::Comp(std::move(c), std::move(child));
    }
    default:
      r->ok = false;
      return nullptr;
  }
}

// --- record framing --------------------------------------------------------

void AppendRecord(std::vector<unsigned char>* file,
                  const std::vector<unsigned char>& payload) {
  std::vector<unsigned char> frame;
  frame.reserve(payload.size() + 12);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU64(&frame, FnvMix(kFnvOffset, frame.data(), frame.size()));
  file->insert(file->end(), frame.begin(), frame.end());
}

void EncodeHeader(std::vector<unsigned char>* payload, uint64_t epoch,
                  uint64_t catalog_fp) {
  payload->insert(payload->end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(payload, kVersion);
  PutU64(payload, epoch);
  PutU64(payload, catalog_fp);
}

// One parsed record: a view into the file buffer.
struct RecordView {
  const unsigned char* payload;
  size_t size;
};

// Parses the next framed record at `*pos`. Returns false (without
// advancing) on a clean end or any tear — the caller treats both as
// "stop here"; `*clean_end` distinguishes them.
bool NextRecord(const std::vector<unsigned char>& file, size_t* pos,
                RecordView* out, bool* clean_end) {
  *clean_end = *pos == file.size();
  if (*clean_end) return false;
  if (file.size() - *pos < 12) return false;  // torn: partial frame
  ByteReader r{file.data(), file.size(), *pos, true};
  uint32_t len = r.GetU32();
  if (len > kMaxRecordLen || file.size() - r.pos < len + 8u) return false;
  const unsigned char* payload = file.data() + r.pos;
  uint64_t want = FnvMix(kFnvOffset, file.data() + *pos, 4 + len);
  r.pos += len;
  uint64_t got = r.GetU64();
  if (!r.ok || got != want) return false;
  out->payload = payload;
  out->size = len;
  *pos = r.pos;
  return true;
}

// --- POSIX file helpers ----------------------------------------------------

#ifndef _WIN32

Status SyncFd(int fd, const std::string& path) {
  if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
    return InjectedIo("fsync", path);
  }
  if (::fsync(fd) != 0) {
    return Status::DataLoss("cannot fsync " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

// fsync on the containing directory makes the rename itself durable.
void SyncParentDir(const std::string& path) {
  fs::path parent = fs::path(path).parent_path();
  std::string dir = parent.empty() ? "." : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort; data records are already synced
  ::fsync(fd);
  ::close(fd);
}

#endif  // !_WIN32

Status ReadWholeFile(const std::string& path, std::vector<unsigned char>* out,
                     bool* present) {
  *present = false;
  out->clear();
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return Status::OK();
  if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
    return InjectedIo("open", path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::DataLoss("cannot open cache file " + path + ": " +
                            std::strerror(errno));
  }
  *present = true;
  unsigned char buf[1 << 16];
  for (;;) {
    if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
      std::fclose(f);
      return InjectedIo("read", path);
    }
    size_t got = std::fread(buf, 1, sizeof(buf), f);
    out->insert(out->end(), buf, buf + got);
    if (got < sizeof(buf)) break;
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Status::DataLoss("cannot read cache file " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

// --- entry codec -----------------------------------------------------------

void EncodeCacheEntry(uint64_t map_key, const MemoPayload& payload,
                      std::vector<unsigned char>* out) {
  PutU64(out, map_key);
  PutU64(out, payload.query_fp);
  PutU64(out, payload.s.bits());
  PutI32(out, payload.policy);
  PutU64(out, payload.epoch);
  PutF64(out, payload.cost);
  PutI32(out, payload.next_vnode);
  PutU64(out, static_cast<uint64_t>(payload.bytes));
  PutU32(out, static_cast<uint32_t>(payload.ext_keys.size()));
  for (const MemoExtKey& k : payload.ext_keys) {
    PutU64(out, k.src_hash);
    PutU64(out, k.a_hash);
    PutU64(out, k.b_hash);
    PutString(out, k.src);
    PutString(out, k.a);
    PutString(out, k.b);
  }
  PutU32(out, static_cast<uint32_t>(payload.dedges.size()));
  for (const MemoDEdge& d : payload.dedges) {
    PutString(out, d.src_pred);
    PutString(out, d.label_a);
    PutString(out, d.label_b);
    PutI32(out, d.vnode);
  }
  ECA_CHECK(payload.subtree != nullptr);
  EncodePlan(out, *payload.subtree);
}

Status DecodeCacheEntry(const unsigned char* data, size_t size,
                        uint64_t* map_key,
                        std::shared_ptr<const MemoPayload>* payload) {
  ByteReader r{data, size, 0, true};
  auto p = std::make_shared<MemoPayload>();
  *map_key = r.GetU64();
  p->query_fp = r.GetU64();
  p->s = RelSet(r.GetU64());
  p->policy = r.GetI32();
  p->epoch = r.GetU64();
  p->cost = r.GetF64();
  p->next_vnode = r.GetI32();
  p->bytes = static_cast<int64_t>(r.GetU64());
  uint32_t ext_count = r.GetU32();
  if (!r.ok || ext_count > kMaxCount) {
    return Status::DataLoss("corrupt cache entry (ext-key count)");
  }
  p->ext_keys.reserve(ext_count);
  for (uint32_t i = 0; i < ext_count; ++i) {
    MemoExtKey k;
    k.src_hash = r.GetU64();
    k.a_hash = r.GetU64();
    k.b_hash = r.GetU64();
    k.src = r.GetString();
    k.a = r.GetString();
    k.b = r.GetString();
    if (!r.ok) return Status::DataLoss("corrupt cache entry (ext key)");
    p->ext_keys.push_back(std::move(k));
  }
  uint32_t dedge_count = r.GetU32();
  if (!r.ok || dedge_count > kMaxCount) {
    return Status::DataLoss("corrupt cache entry (d-edge count)");
  }
  p->dedges.reserve(dedge_count);
  for (uint32_t i = 0; i < dedge_count; ++i) {
    MemoDEdge d;
    d.src_pred = r.GetString();
    d.label_a = r.GetString();
    d.label_b = r.GetString();
    d.vnode = r.GetI32();
    if (!r.ok) return Status::DataLoss("corrupt cache entry (d-edge)");
    p->dedges.push_back(std::move(d));
  }
  PlanPtr subtree = DecodePlan(&r, 0);
  if (!r.ok || subtree == nullptr) {
    return Status::DataLoss("corrupt cache entry (plan tree)");
  }
  if (r.pos != r.size) {
    return Status::DataLoss("corrupt cache entry (trailing bytes)");
  }
  // Sanity beyond parseability: negative charges or a plan that does not
  // cover the claimed relation set would poison the memo accounting.
  if (p->bytes < 0 || p->bytes > static_cast<int64_t>(kMaxRecordLen) * 64) {
    return Status::DataLoss("corrupt cache entry (byte charge)");
  }
  if (!(subtree->leaves() == p->s)) {
    return Status::DataLoss("corrupt cache entry (leaf set mismatch)");
  }
  p->subtree = std::move(subtree);
  *payload = std::move(p);
  return Status::OK();
}

// --- CacheStore ------------------------------------------------------------

CacheStore::CacheStore(std::string path) : path_(std::move(path)) {
  Counters();
}

CacheStore::LoadResult CacheStore::Load(SharedMemo* memo,
                                        uint64_t catalog_fp) {
#ifdef _WIN32
  (void)memo;
  (void)catalog_fp;
  return LoadResult{};
#else
  const CacheCounters& c = Counters();
  LoadResult result;
  auto degrade = [&](const std::string& why) {
    result.degraded = true;
    if (!result.detail.empty()) result.detail += "; ";
    result.detail += why;
  };

  // One pass per file: snapshot first (oldest entries, winning probe
  // ties), then the log.
  struct FileSpec {
    std::string path;
    bool is_log;
  };
  const FileSpec files[] = {{path_, false}, {log_path(), true}};
  for (const FileSpec& spec : files) {
    std::vector<unsigned char> bytes;
    bool present = false;
    Status read = ReadWholeFile(spec.path, &bytes, &present);
    if (spec.is_log) {
      result.log_present = present;
    } else {
      result.snapshot_present = present;
    }
    if (!read.ok()) {
      c.io_errors->Increment();
      degrade(read.message());
      continue;
    }
    if (!present) continue;

    size_t pos = 0;
    bool clean_end = false;
    RecordView rec;
    bool file_torn = false;
    int64_t file_loaded = 0;

    // Record 0: the header.
    if (!NextRecord(bytes, &pos, &rec, &clean_end)) {
      if (!clean_end) degrade(spec.path + ": unreadable header");
      // An empty file (e.g. a log truncated to zero) is a valid cold
      // state, not a degradation.
      continue;
    }
    {
      ByteReader hr{rec.payload, rec.size, 0, true};
      char magic[sizeof(kMagic)] = {};
      if (hr.Need(sizeof(kMagic))) {
        std::memcpy(magic, hr.data + hr.pos, sizeof(kMagic));
        hr.pos += sizeof(kMagic);
      }
      uint32_t version = hr.GetU32();
      uint64_t file_epoch = hr.GetU64();
      (void)file_epoch;  // entries carry their own epoch
      uint64_t file_catalog = hr.GetU64();
      if (!hr.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
          version != kVersion) {
        degrade(spec.path + ": not a plan-cache file (bad magic/version)");
        continue;
      }
      if (file_catalog != catalog_fp) {
        degrade(spec.path + ": written for a different catalog; discarded");
        // Count what we skip so the metric reflects the loss.
        while (NextRecord(bytes, &pos, &rec, &clean_end)) {
          result.discarded++;
        }
        c.discarded->Add(result.discarded);
        continue;
      }
    }

    while (NextRecord(bytes, &pos, &rec, &clean_end)) {
      uint64_t map_key = 0;
      std::shared_ptr<const MemoPayload> payload;
      Status decoded = DecodeCacheEntry(rec.payload, rec.size, &map_key,
                                        &payload);
      if (!decoded.ok()) {
        // Framing was intact but the content is garbage (bit flip inside
        // a record that collided the checksum is ~impossible; this is a
        // version or builder bug): drop the entry, keep going.
        result.discarded++;
        c.discarded->Increment();
        continue;
      }
      if (payload->epoch != memo->epoch()) {
        result.discarded++;
        c.discarded->Increment();
        continue;
      }
      MemoPublishResult pr = memo->Import(map_key, std::move(payload));
      if (pr == MemoPublishResult::kStoredNew ||
          pr == MemoPublishResult::kStoredImproved) {
        result.loaded++;
        file_loaded++;
        c.loaded->Increment();
      } else {
        result.discarded++;
        c.discarded->Increment();
      }
    }
    if (!clean_end) {
      file_torn = true;
      degrade(spec.path + ": torn tail truncated at byte " +
              std::to_string(pos));
      if (spec.is_log) {
        // Physically truncate so future appends land after valid records
        // instead of hiding behind garbage.
        std::error_code ec;
        fs::resize_file(spec.path, pos, ec);
        if (ec) {
          // Cannot repair in place: drop the log; the snapshot still has
          // everything up to the last flush.
          fs::remove(spec.path, ec);
        }
      }
    }
    if (file_torn) {
      result.recovered += file_loaded;
      c.recovered->Add(file_loaded);
    }
  }
  if (result.degraded) c.load_degraded->Increment();
  // Appends must not replay what the snapshot/log already holds: the
  // watermark starts at the generation horizon of this process.
  watermark_gen_ = memo->generation();
  return result;
#endif
}

Status CacheStore::WriteLocked(const std::string& path,
                               const std::vector<MemoExportEntry>& entries,
                               uint64_t epoch, uint64_t catalog_fp,
                               bool append) {
#ifdef _WIN32
  (void)path;
  (void)entries;
  (void)epoch;
  (void)catalog_fp;
  (void)append;
  return Status::OK();
#else
  std::vector<unsigned char> bytes;
  std::error_code ec;
  bool need_header = !append || !fs::exists(path, ec) ||
                     fs::file_size(path, ec) == 0 || ec;
  if (need_header) {
    std::vector<unsigned char> header;
    EncodeHeader(&header, epoch, catalog_fp);
    AppendRecord(&bytes, header);
  }
  std::vector<unsigned char> payload;
  for (const MemoExportEntry& e : entries) {
    payload.clear();
    EncodeCacheEntry(e.map_key, *e.payload, &payload);
    AppendRecord(&bytes, payload);
  }

  if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
    Counters().io_errors->Increment();
    return InjectedIo("open", path);
  }
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    Counters().io_errors->Increment();
    return Status::DataLoss("cannot open cache file " + path + ": " +
                            std::strerror(errno));
  }
  Status failed;
  if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
    failed = InjectedIo("write", path);
  } else if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size() ||
             std::fflush(f) != 0) {
    failed = Status::DataLoss("short write to cache file " + path + ": " +
                              std::strerror(errno));
  }
  if (failed.ok()) {
    CrashInjector::MaybeCrash(append ? "cache-append-pre-sync"
                                     : "cache-snapshot-pre-sync");
    failed = SyncFd(::fileno(f), path);
  }
  std::fclose(f);
  if (!failed.ok()) {
    Counters().io_errors->Increment();
    return failed;
  }
  return Status::OK();
#endif
}

Status CacheStore::WriteSnapshot(SharedMemo* memo, uint64_t catalog_fp) {
#ifdef _WIN32
  (void)memo;
  (void)catalog_fp;
  return Status::OK();
#else
  std::vector<MemoExportEntry> entries = memo->ExportEntries(/*min_gen=*/0);
  uint64_t top_gen = 0;
  for (const MemoExportEntry& e : entries) {
    if (e.gen > top_gen) top_gen = e.gen;
  }
  // Temp name carries the pid: concurrent daemons sharing a cache path
  // (misconfiguration) tear each other's temp files, never the snapshot.
  std::string tmp =
      path_ + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  Status written =
      WriteLocked(tmp, entries, memo->epoch(), catalog_fp, /*append=*/false);
  if (!written.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return written;
  }
  CrashInjector::MaybeCrash("cache-snapshot-pre-rename");
  if (FaultInjector::ShouldFail(FaultPoint::kCacheIo)) {
    Counters().io_errors->Increment();
    std::error_code ec;
    fs::remove(tmp, ec);
    return InjectedIo("rename", path_);
  }
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) {
    Counters().io_errors->Increment();
    fs::remove(tmp, ec);
    return Status::DataLoss("cannot rename " + tmp + " over " + path_ + ": " +
                            ec.message());
  }
  SyncParentDir(path_);
  CrashInjector::MaybeCrash("cache-snapshot-post-rename");
  // The log's entries are now in the snapshot. A crash before this remove
  // is safe: reloading them from the stale log only produces duplicate
  // imports, which dedup.
  fs::remove(log_path(), ec);
  watermark_gen_ = std::max(watermark_gen_, top_gen);
  Counters().snapshots->Increment();
  Counters().snapshot_entries->Add(static_cast<int64_t>(entries.size()));
  return Status::OK();
#endif
}

Status CacheStore::AppendNew(SharedMemo* memo, uint64_t catalog_fp) {
#ifdef _WIN32
  (void)memo;
  (void)catalog_fp;
  return Status::OK();
#else
  std::vector<MemoExportEntry> entries =
      memo->ExportEntries(/*min_gen=*/watermark_gen_ + 1);
  if (entries.empty()) return Status::OK();
  uint64_t top_gen = watermark_gen_;
  for (const MemoExportEntry& e : entries) {
    if (e.gen > top_gen) top_gen = e.gen;
  }
  ECA_RETURN_IF_ERROR(WriteLocked(log_path(), entries, memo->epoch(),
                                  catalog_fp, /*append=*/true));
  watermark_gen_ = top_gen;
  Counters().appends->Increment();
  Counters().append_entries->Add(static_cast<int64_t>(entries.size()));
  return Status::OK();
#endif
}

// --- catalog fingerprint ---------------------------------------------------

uint64_t CatalogFingerprint(const Database& db) {
  uint64_t h = kFnvOffset;
  auto mix_u64 = [&h](uint64_t v) {
    unsigned char p[8];
    for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
    h = FnvMix(h, p, sizeof(p));
  };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    h = FnvMix(h, reinterpret_cast<const unsigned char*>(s.data()), s.size());
  };
  mix_u64(static_cast<uint64_t>(db.NumTables()));
  for (int t = 0; t < db.NumTables(); ++t) {
    const Relation& rel = db.table(t);
    const Schema& schema = rel.schema();
    mix_u64(static_cast<uint64_t>(schema.NumColumns()));
    for (const Column& col : schema.columns()) {
      mix_u64(static_cast<uint64_t>(col.rel_id));
      mix_str(col.name);
      mix_u64(static_cast<uint64_t>(col.type));
    }
    mix_u64(static_cast<uint64_t>(rel.NumRows()));
    for (const Tuple& row : rel.rows()) {
      mix_u64(HashTuple(row));
    }
  }
  return h;
}

// --- header peek -----------------------------------------------------------

bool PeekCacheFileHeader(const std::string& path, uint64_t* epoch,
                         uint64_t* catalog_fp) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  // The header is the first framed record: u32 len | 28-byte payload |
  // u64 FNV = 40 bytes. Read generously so a longer future header still
  // fits one frame.
  std::vector<unsigned char> head(256);
  size_t got = std::fread(head.data(), 1, head.size(), f);
  std::fclose(f);
  head.resize(got);
  size_t pos = 0;
  bool clean_end = false;
  RecordView rec;
  if (!NextRecord(head, &pos, &rec, &clean_end)) return false;
  ByteReader r{rec.payload, rec.size, 0, true};
  if (!r.Need(sizeof(kMagic)) ||
      std::memcmp(r.data + r.pos, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  r.pos += sizeof(kMagic);
  if (r.GetU32() != kVersion) return false;
  uint64_t file_epoch = r.GetU64();
  uint64_t file_catalog = r.GetU64();
  if (!r.ok) return false;
  if (epoch != nullptr) *epoch = file_epoch;
  if (catalog_fp != nullptr) *catalog_fp = file_catalog;
  return true;
}

}  // namespace eca
