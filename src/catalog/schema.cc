#include "catalog/schema.h"

#include "common/str_util.h"

namespace eca {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (const Column& c : columns_) {
    ECA_CHECK(c.rel_id >= 0 && c.rel_id < 64);
    rels_ = rels_.With(c.rel_id);
  }
}

StatusOr<Schema> Schema::Make(std::vector<Column> columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    const Column& c = columns[i];
    if (c.rel_id < 0 || c.rel_id >= 64) {
      return Status::OutOfRange(
          StrFormat("column %zu ('%s'): rel_id %d outside [0, 64)", i,
                    c.name.c_str(), c.rel_id));
    }
    for (size_t j = 0; j < i; ++j) {
      if (columns[j].rel_id == c.rel_id && columns[j].name == c.name) {
        return Status::InvalidArgument("duplicate column " +
                                       c.QualifiedName());
      }
    }
  }
  return Schema(std::move(columns));
}

int Schema::FindColumn(int rel_id, const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].rel_id == rel_id && columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

StatusOr<int> Schema::ResolveColumn(int rel_id,
                                    const std::string& name) const {
  int idx = FindColumn(rel_id, name);
  if (idx >= 0) return idx;
  return Status::NotFound("no column R" + std::to_string(rel_id) + "." +
                          name + " in schema " + ToString());
}

std::vector<int> Schema::ColumnsOf(RelSet set) const {
  std::vector<int> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (set.Contains(columns_[i].rel_id)) out.push_back(static_cast<int>(i));
  }
  return out;
}

Schema Schema::Project(RelSet set) const {
  std::vector<Column> cols;
  for (const Column& c : columns_) {
    if (set.Contains(c.rel_id)) cols.push_back(c);
  }
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& other) const {
  ECA_CHECK_MSG(!rels_.Intersects(other.rels_),
                "schemas to concatenate must cover disjoint relations");
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.QualifiedName() + ":" + DataTypeName(c.type));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    const Column& x = a.columns_[i];
    const Column& y = b.columns_[i];
    if (x.rel_id != y.rel_id || x.name != y.name || x.type != y.type) {
      return false;
    }
  }
  return true;
}

}  // namespace eca
