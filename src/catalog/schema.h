#ifndef ECA_CATALOG_SCHEMA_H_
#define ECA_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/rel_set.h"
#include "common/status.h"
#include "types/value.h"

namespace eca {

// A column of an intermediate or base relation. Columns are owned by a
// query relation (rel_id), which is how the rewrite layer's relation-level
// attribute sets (RelSet) map onto physical columns.
struct Column {
  int rel_id = -1;        // id of the query relation this column belongs to
  std::string name;       // column name, unique within its relation
  DataType type = DataType::kInt64;

  std::string QualifiedName() const {
    return "R" + std::to_string(rel_id) + "." + name;
  }
};

// An ordered list of columns describing the tuples of a relation.
class Schema {
 public:
  Schema() = default;
  // Aborts on out-of-range rel_ids: for schemas built by trusted code. For
  // schemas assembled from user input, use Make().
  explicit Schema(std::vector<Column> columns);

  // Validating factory for externally-supplied column lists: rejects
  // rel_ids outside [0, 64) and duplicate (rel_id, name) pairs with an
  // actionable error instead of aborting.
  static StatusOr<Schema> Make(std::vector<Column> columns);

  int NumColumns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  // The set of query relations whose columns appear in this schema.
  RelSet rels() const { return rels_; }

  // Index of the column (rel_id, name); -1 if absent.
  int FindColumn(int rel_id, const std::string& name) const;

  // FindColumn with an error channel: NOT_FOUND lists the columns the
  // schema does have, so a typo'd predicate is diagnosable from the
  // message alone.
  StatusOr<int> ResolveColumn(int rel_id, const std::string& name) const;

  // Indexes of all columns owned by relations in `set`, in schema order.
  std::vector<int> ColumnsOf(RelSet set) const;

  // Schema obtained by keeping only columns of relations in `set`
  // (relation-level projection, the paper's pi_R).
  Schema Project(RelSet set) const;

  // Concatenation: this schema's columns followed by `other`'s. The two
  // must cover disjoint relation sets.
  Schema Concat(const Schema& other) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
  RelSet rels_;
};

}  // namespace eca

#endif  // ECA_CATALOG_SCHEMA_H_
