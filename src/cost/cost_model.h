#ifndef ECA_COST_COST_MODEL_H_
#define ECA_COST_COST_MODEL_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "cost/histogram.h"
#include "exec/database.h"

namespace eca {

// Per-table statistics used by the cardinality estimator.
struct TableStats {
  int64_t rows = 0;
  // Distinct-value estimates per column name.
  std::unordered_map<std::string, int64_t> distinct;
  // Equi-depth histograms per numeric column (column-vs-constant
  // selectivity for range predicates).
  std::unordered_map<std::string, EquiDepthHistogram> histograms;

  static TableStats FromRelation(const Relation& rel);
};

// Cardinality estimation and plan costing (Section 6.2).
//
// Join cardinalities use textbook selectivity estimation: 1/max(d1,d2) for
// equi-conjuncts, equi-depth histograms for column-vs-constant ranges, and
// cross-sample evaluation for everything else (each base table keeps a
// small row sample; a predicate like s_acctbal > nu * ps_supplycost is
// estimated by evaluating it over the cross product of the referenced
// tables' samples — this is what lets the optimizer track the paper's f12
// sweep). Costs follow a C_out-style
// model: the sum of intermediate result sizes, plus per-operator terms —
// hash joins pay |L|+|R|, nested-loop joins pay |L|*|R|, and the sort-based
// compensation operators beta and gamma* pay n log n while lambda and gamma
// pay a scan (exactly the costs Section 6.2 assigns).
class CostModel {
 public:
  explicit CostModel(std::vector<TableStats> base_stats);

  // Movable (FromDatabase returns by value); the cache mutex is not moved —
  // the source must not be mid-Cost() on another thread, which trivially
  // holds for the construction sites.
  CostModel(CostModel&& other) noexcept
      : base_(std::move(other.base_)),
        samples_(std::move(other.samples_)),
        sample_cache_(std::move(other.sample_cache_)) {}

  // Convenience: compute stats from actual tables.
  static CostModel FromDatabase(const Database& db);

  // Estimated output rows of `plan`.
  double Cardinality(const Plan& plan) const;

  // Estimated total evaluation cost of `plan`.
  double Cost(const Plan& plan) const;

  // Selectivity of `pred` applied to a (conceptual) cross product of the
  // relations it references.
  double Selectivity(const Predicate& pred) const;

  // Attaches per-table row samples (enables cross-sample estimation for
  // complex predicates). FromDatabase() does this automatically.
  void SetSamples(std::vector<Relation> samples);

 private:
  struct NodeEstimate {
    double rows = 0;
    double cost = 0;
  };
  NodeEstimate Estimate(const Plan& plan) const;
  double DistinctOf(int rel_id, const std::string& column) const;
  const EquiDepthHistogram* HistogramOf(int rel_id,
                                        const std::string& column) const;
  // Cross-sample estimate; negative when samples are unavailable.
  double SampleSelectivity(const Predicate& pred) const;

  std::vector<TableStats> base_;
  std::vector<Relation> samples_;  // per rel_id; may be empty
  // Memoized per-predicate selectivities (sampling is not free), keyed by
  // StructuralFingerprint so entries stay valid across queries whose
  // predicate objects are freed and their addresses reused. Guarded by a
  // mutex: one CostModel is shared by every task of a parallel enumeration
  // (Cost() stays logically const, and a selectivity for a given
  // fingerprint is the same no matter which thread computes it).
  mutable std::mutex sample_cache_mu_;
  mutable std::unordered_map<uint64_t, double> sample_cache_;
};

}  // namespace eca

#endif  // ECA_COST_COST_MODEL_H_
