#ifndef ECA_COST_HISTOGRAM_H_
#define ECA_COST_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "storage/relation.h"

namespace eca {

// Equi-depth histogram over a numeric column, used by the cost model for
// column-vs-constant selectivity (e.g. the sigma filters of the Section 7
// queries and the s_acctbal comparison of p12).
class EquiDepthHistogram {
 public:
  // Builds from column `col` of `rel` (non-NULL numeric values only).
  // `buckets` is an upper bound; fewer are used for small inputs.
  static EquiDepthHistogram Build(const Relation& rel, int col,
                                  int buckets = 32);

  bool empty() const { return total_values_ == 0; }
  int64_t total_values() const { return total_values_; }
  double null_fraction() const { return null_fraction_; }
  int64_t distinct() const { return distinct_; }
  double min() const { return min_; }
  double max() const { return max_; }

  // Fraction of non-NULL values strictly less than v (interpolated within
  // the containing bucket).
  double FractionBelow(double v) const;
  // Fraction equal to v (uniform-within-distinct assumption).
  double FractionEquals(double v) const;

 private:
  std::vector<double> bounds_;  // bucket upper bounds, ascending
  int64_t total_values_ = 0;
  double null_fraction_ = 0;
  int64_t distinct_ = 1;
  double min_ = 0, max_ = 0;
};

}  // namespace eca

#endif  // ECA_COST_HISTOGRAM_H_
