#include "cost/histogram.h"

#include <algorithm>
#include <unordered_set>

namespace eca {

EquiDepthHistogram EquiDepthHistogram::Build(const Relation& rel, int col,
                                             int buckets) {
  EquiDepthHistogram h;
  std::vector<double> values;
  int64_t nulls = 0;
  std::unordered_set<uint64_t> distinct;
  for (const Tuple& t : rel.rows()) {
    const Value& v = t[static_cast<size_t>(col)];
    if (v.is_null()) {
      ++nulls;
      continue;
    }
    if (v.type() == DataType::kString) continue;  // numeric columns only
    values.push_back(v.NumericValue());
    distinct.insert(v.Hash());
  }
  h.total_values_ = static_cast<int64_t>(values.size());
  int64_t total_rows = rel.NumRows();
  h.null_fraction_ =
      total_rows > 0 ? static_cast<double>(nulls) /
                           static_cast<double>(total_rows)
                     : 0.0;
  h.distinct_ = std::max<int64_t>(1, static_cast<int64_t>(distinct.size()));
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  h.min_ = values.front();
  h.max_ = values.back();
  int n = std::min<int>(buckets, static_cast<int>(values.size()));
  h.bounds_.reserve(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    size_t idx = static_cast<size_t>(
        (static_cast<int64_t>(values.size()) * i) / n - 1);
    h.bounds_.push_back(values[idx]);
  }
  return h;
}

double EquiDepthHistogram::FractionBelow(double v) const {
  if (empty()) return 0.5;
  if (v <= min_) return 0.0;
  if (v > max_) return 1.0;
  // Each bucket holds 1/n of the values; interpolate within the bucket.
  size_t n = bounds_.size();
  double prev_bound = min_;
  for (size_t i = 0; i < n; ++i) {
    if (v <= bounds_[i]) {
      double span = bounds_[i] - prev_bound;
      double within = span > 0 ? (v - prev_bound) / span : 0.5;
      return (static_cast<double>(i) + within) / static_cast<double>(n);
    }
    prev_bound = bounds_[i];
  }
  return 1.0;
}

double EquiDepthHistogram::FractionEquals(double v) const {
  if (empty() || v < min_ || v > max_) return 0.0;
  return 1.0 / static_cast<double>(distinct_);
}

}  // namespace eca
