#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/relation.h"

namespace eca {

namespace {

constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kDefaultSelectivity = 1.0 / 3.0;
constexpr double kGammaSelectivity = 0.3;   // fraction of all-NULL groups
constexpr double kBetaSurvival = 0.9;       // fraction surviving best-match

double Log2Safe(double x) { return x > 2 ? std::log2(x) : 1.0; }

// True if `pred` contains a top-level equi-conjunct usable as a hash key
// across (left, right).
bool HasEquiConjunct(const Predicate& pred, RelSet left, RelSet right) {
  switch (pred.kind()) {
    case Predicate::Kind::kAnd: {
      for (const PredRef& c : pred.children()) {
        if (HasEquiConjunct(*c, left, right)) return true;
      }
      return false;
    }
    case Predicate::Kind::kCompare: {
      if (pred.cmp_op() != Predicate::CmpOp::kEq) return false;
      RelSet lr = pred.scalar_left()->refs();
      RelSet rr = pred.scalar_right()->refs();
      if (lr.Empty() || rr.Empty()) return false;
      return (left.ContainsAll(lr) && right.ContainsAll(rr)) ||
             (right.ContainsAll(lr) && left.ContainsAll(rr));
    }
    default:
      return false;
  }
}

}  // namespace

TableStats TableStats::FromRelation(const Relation& rel) {
  TableStats stats;
  stats.rows = rel.NumRows();
  for (int c = 0; c < rel.schema().NumColumns(); ++c) {
    // Exact distinct count (small in-memory tables); NULLs excluded.
    std::unordered_map<uint64_t, int> seen;
    for (const Tuple& t : rel.rows()) {
      const Value& v = t[static_cast<size_t>(c)];
      if (!v.is_null()) seen[v.Hash()] = 1;
    }
    stats.distinct[rel.schema().column(c).name] =
        std::max<int64_t>(1, static_cast<int64_t>(seen.size()));
    if (rel.schema().column(c).type != DataType::kString) {
      stats.histograms[rel.schema().column(c).name] =
          EquiDepthHistogram::Build(rel, c);
    }
  }
  return stats;
}

CostModel::CostModel(std::vector<TableStats> base_stats)
    : base_(std::move(base_stats)) {}

CostModel CostModel::FromDatabase(const Database& db) {
  std::vector<TableStats> stats;
  stats.reserve(static_cast<size_t>(db.NumTables()));
  std::vector<Relation> samples;
  constexpr int64_t kSampleRows = 64;
  for (int i = 0; i < db.NumTables(); ++i) {
    const Relation& table = db.table(i);
    stats.push_back(TableStats::FromRelation(table));
    // Deterministic systematic sample.
    Relation sample(table.schema());
    int64_t n = table.NumRows();
    int64_t step = std::max<int64_t>(1, n / kSampleRows);
    for (int64_t r = 0; r < n && sample.NumRows() < kSampleRows; r += step) {
      sample.Add(table.rows()[static_cast<size_t>(r)]);
    }
    samples.push_back(std::move(sample));
  }
  CostModel model(std::move(stats));
  model.SetSamples(std::move(samples));
  return model;
}

void CostModel::SetSamples(std::vector<Relation> samples) {
  samples_ = std::move(samples);
  sample_cache_.clear();
}

double CostModel::SampleSelectivity(const Predicate& pred) const {
  // Keyed by structural fingerprint, NOT by address: a CostModel outlives
  // individual queries, and a freed Predicate's address is routinely
  // reused by the allocator for the next query's (different) predicate —
  // an address-keyed cache would serve it a stale selectivity.
  const uint64_t key = StructuralFingerprint(pred);
  {
    std::lock_guard<std::mutex> lock(sample_cache_mu_);
    auto cached = sample_cache_.find(key);
    if (cached != sample_cache_.end()) return cached->second;
  }
  RelSet refs = pred.refs();
  if (refs.Empty() || refs.Count() > 2) return -1;
  Schema combined;
  std::vector<const Relation*> rels;
  for (int id : refs) {
    if (id >= static_cast<int>(samples_.size()) ||
        samples_[static_cast<size_t>(id)].NumRows() == 0) {
      return -1;
    }
    const Relation& s = samples_[static_cast<size_t>(id)];
    combined = combined.NumColumns() == 0 ? s.schema()
                                          : combined.Concat(s.schema());
    rels.push_back(&s);
  }
  CompiledPredicate compiled(
      PredRef(&pred, [](const Predicate*) {}), combined);
  int64_t trues = 0, total = 0;
  if (rels.size() == 1) {
    for (const Tuple& t : rels[0]->rows()) {
      ++total;
      if (compiled.EvalTrue(t)) ++trues;
    }
  } else {
    for (const Tuple& a : rels[0]->rows()) {
      for (const Tuple& b : rels[1]->rows()) {
        ++total;
        if (compiled.EvalTrue(ConcatTuples(a, b))) ++trues;
      }
    }
  }
  double sel = total == 0
                   ? -1
                   : static_cast<double>(trues) / static_cast<double>(total);
  {
    std::lock_guard<std::mutex> lock(sample_cache_mu_);
    sample_cache_[key] = sel;
  }
  return sel;
}

double CostModel::DistinctOf(int rel_id, const std::string& column) const {
  if (rel_id < 0 || rel_id >= static_cast<int>(base_.size())) return 10;
  const auto& d = base_[static_cast<size_t>(rel_id)].distinct;
  auto it = d.find(column);
  return it == d.end() ? 10.0 : static_cast<double>(it->second);
}

const EquiDepthHistogram* CostModel::HistogramOf(
    int rel_id, const std::string& column) const {
  if (rel_id < 0 || rel_id >= static_cast<int>(base_.size())) return nullptr;
  const auto& h = base_[static_cast<size_t>(rel_id)].histograms;
  auto it = h.find(column);
  return it == h.end() || it->second.empty() ? nullptr : &it->second;
}

double CostModel::Selectivity(const Predicate& pred) const {
  switch (pred.kind()) {
    case Predicate::Kind::kAnd: {
      double s = 1.0;
      for (const PredRef& c : pred.children()) s *= Selectivity(*c);
      return s;
    }
    case Predicate::Kind::kOr: {
      double keep = 1.0;
      for (const PredRef& c : pred.children()) keep *= 1.0 - Selectivity(*c);
      return 1.0 - keep;
    }
    case Predicate::Kind::kNot:
      return 1.0 - Selectivity(*pred.children()[0]);
    case Predicate::Kind::kConstBool:
      return pred.const_bool() ? 1.0 : 0.0;
    case Predicate::Kind::kIsNull:
      return 0.1;
    case Predicate::Kind::kCompare: {
      const Scalar* l = pred.scalar_left().get();
      const Scalar* r = pred.scalar_right().get();
      if (pred.cmp_op() == Predicate::CmpOp::kEq) {
        // Distinct counts are clamped to >= 1 at every division: an
        // all-NULL column (or user-supplied TableStats) can report 0
        // distinct values, and 1/0 here would poison every cardinality
        // above this predicate with inf.
        double dl = l->kind() == Scalar::Kind::kColumn
                        ? DistinctOf(l->rel_id(), l->column_name())
                        : 10.0;
        double dr = r->kind() == Scalar::Kind::kColumn
                        ? DistinctOf(r->rel_id(), r->column_name())
                        : 10.0;
        if (l->kind() == Scalar::Kind::kConst) return 1.0 / std::max(1.0, dr);
        if (r->kind() == Scalar::Kind::kConst) return 1.0 / std::max(1.0, dl);
        return 1.0 / std::max(1.0, std::max(dl, dr));
      }
      if (pred.cmp_op() == Predicate::CmpOp::kNe) return 0.9;
      // Complex comparison (e.g. col > const * other_col): cross-sample.
      if (pred.scalar_left()->kind() == Scalar::Kind::kArith ||
          pred.scalar_right()->kind() == Scalar::Kind::kArith) {
        double sel = SampleSelectivity(pred);
        if (sel >= 0) return sel;
      }
      // Column-vs-constant range comparison: use the histogram.
      const Scalar* col = nullptr;
      const Scalar* konst = nullptr;
      bool col_on_left = true;
      if (l->kind() == Scalar::Kind::kColumn &&
          r->kind() == Scalar::Kind::kConst) {
        col = l;
        konst = r;
      } else if (r->kind() == Scalar::Kind::kColumn &&
                 l->kind() == Scalar::Kind::kConst) {
        col = r;
        konst = l;
        col_on_left = false;
      }
      if (col != nullptr && !konst->const_value().is_null() &&
          konst->const_value().type() != DataType::kString) {
        const EquiDepthHistogram* h =
            HistogramOf(col->rel_id(), col->column_name());
        if (h != nullptr) {
          double v = konst->const_value().NumericValue();
          double below = h->FractionBelow(v);
          double eq = h->FractionEquals(v);
          double non_null = 1.0 - h->null_fraction();
          bool less =  // is the predicate "col < const"-shaped?
              (pred.cmp_op() == Predicate::CmpOp::kLt ||
               pred.cmp_op() == Predicate::CmpOp::kLe) == col_on_left;
          double frac = less ? below : 1.0 - below - eq;
          if (pred.cmp_op() == Predicate::CmpOp::kLe ||
              pred.cmp_op() == Predicate::CmpOp::kGe) {
            frac += eq;
          }
          return std::clamp(frac, 0.0, 1.0) * non_null;
        }
      }
      return kDefaultRangeSelectivity;
    }
    case Predicate::Kind::kAllNullBlock:
      // The gamma-test as a predicate: the fraction of tuples whose block
      // is all-NULL is exactly what kGammaSelectivity models.
      return kGammaSelectivity;
  }
  return kDefaultSelectivity;
}

CostModel::NodeEstimate CostModel::Estimate(const Plan& plan) const {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      NodeEstimate e;
      int id = plan.rel_id();
      e.rows = id >= 0 && id < static_cast<int>(base_.size())
                   ? static_cast<double>(base_[static_cast<size_t>(id)].rows)
                   : 100.0;
      e.cost = e.rows;  // scan
      return e;
    }
    case Plan::Kind::kJoin: {
      NodeEstimate l = Estimate(*plan.left());
      NodeEstimate r = Estimate(*plan.right());
      double sel =
          plan.pred() != nullptr ? Selectivity(*plan.pred()) : 1.0;
      double inner = l.rows * r.rows * sel;
      // Probability that a given left (right) tuple finds a match.
      double match_l = r.rows > 0 ? std::min(1.0, sel * r.rows) : 0.0;
      double match_r = l.rows > 0 ? std::min(1.0, sel * l.rows) : 0.0;
      NodeEstimate e;
      switch (plan.op()) {
        case JoinOp::kCross:
          e.rows = l.rows * r.rows;
          break;
        case JoinOp::kInner:
          e.rows = inner;
          break;
        case JoinOp::kLeftOuter:
          e.rows = inner + l.rows * (1.0 - match_l);
          break;
        case JoinOp::kRightOuter:
          e.rows = inner + r.rows * (1.0 - match_r);
          break;
        case JoinOp::kFullOuter:
          e.rows = inner + l.rows * (1.0 - match_l) +
                   r.rows * (1.0 - match_r);
          break;
        case JoinOp::kLeftSemi:
          e.rows = l.rows * match_l;
          break;
        case JoinOp::kRightSemi:
          e.rows = r.rows * match_r;
          break;
        case JoinOp::kLeftAnti:
          e.rows = l.rows * (1.0 - match_l);
          break;
        case JoinOp::kRightAnti:
          e.rows = r.rows * (1.0 - match_r);
          break;
      }
      bool hashable =
          plan.pred() != nullptr &&
          HasEquiConjunct(*plan.pred(), plan.left()->output_rels(),
                          plan.right()->output_rels());
      double join_work =
          hashable ? l.rows + r.rows : std::max(1.0, l.rows * r.rows);
      e.cost = l.cost + r.cost + join_work + e.rows;
      return e;
    }
    case Plan::Kind::kComp: {
      NodeEstimate c = Estimate(*plan.child());
      NodeEstimate e;
      switch (plan.comp().kind) {
        case CompOp::Kind::kLambda:  // scan (Section 6.2)
          e.rows = c.rows;
          e.cost = c.cost + c.rows;
          break;
        case CompOp::Kind::kBeta:  // sort-based: n log n
          e.rows = c.rows * kBetaSurvival;
          e.cost = c.cost + c.rows * Log2Safe(c.rows);
          break;
        case CompOp::Kind::kGamma:  // scan + selection
          e.rows = c.rows * kGammaSelectivity;
          e.cost = c.cost + c.rows;
          break;
        case CompOp::Kind::kGammaStar:  // lambda + beta: n log n
          e.rows = c.rows * kBetaSurvival;
          e.cost = c.cost + c.rows * Log2Safe(c.rows);
          break;
        case CompOp::Kind::kProject:  // scan
          e.rows = c.rows;
          e.cost = c.cost + c.rows;
          break;
      }
      return e;
    }
  }
  return NodeEstimate();
}

double CostModel::Cardinality(const Plan& plan) const {
  return Estimate(plan).rows;
}

double CostModel::Cost(const Plan& plan) const {
  return Estimate(plan).cost;
}

}  // namespace eca
