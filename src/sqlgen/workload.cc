#include "sqlgen/workload.h"

#include <cctype>
#include <vector>

#include "algebra/join_op.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace eca {

StatusOr<Topology> ParseTopology(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "chain") return Topology::kChain;
  if (lower == "star") return Topology::kStar;
  if (lower == "clique") return Topology::kClique;
  return Status::InvalidArgument("unknown topology '" + name +
                                 "' (expected chain, star or clique)");
}

const char* TopologyName(Topology topology) {
  switch (topology) {
    case Topology::kChain:
      return "chain";
    case Topology::kStar:
      return "star";
    case Topology::kClique:
      return "clique";
  }
  return "unknown";
}

Workload GenerateWorkload(const WorkloadOptions& opts) {
  Rng rng(opts.seed);
  Workload out;
  out.db = RandomDatabase(rng, opts.num_rels, opts.data);

  auto pred = [&](int a, int b) {
    return RandomJoinPredicate(rng, RelSet::Single(a), RelSet::Single(b),
                               opts.data, StrFormat("p%d_%d", a, b));
  };

  PlanPtr tree = Plan::Leaf(0);
  for (int i = 1; i < opts.num_rels; ++i) {
    PredRef join_pred;
    switch (opts.topology) {
      case Topology::kChain:
        join_pred = pred(i - 1, i);
        break;
      case Topology::kStar:
        join_pred = pred(0, i);
        break;
      case Topology::kClique: {
        std::vector<PredRef> conjuncts;
        conjuncts.reserve(static_cast<size_t>(i));
        for (int j = 0; j < i; ++j) conjuncts.push_back(pred(j, i));
        join_pred = conjuncts.size() == 1 ? conjuncts[0]
                                          : Predicate::And(conjuncts);
        break;
      }
    }
    tree = Plan::Join(JoinOp::kInner, join_pred, std::move(tree),
                      Plan::Leaf(i));
  }
  out.query = std::move(tree);
  return out;
}

}  // namespace eca
