#ifndef ECA_SQLGEN_WORKLOAD_H_
#define ECA_SQLGEN_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "algebra/plan.h"
#include "common/status.h"
#include "exec/database.h"
#include "testing/random_data.h"

namespace eca {

// JOB-style workload generation for the plan-policy harness
// (docs/planner-policies.md): seeded, deterministic (database, query)
// pairs over 8-20+ relations in the three topologies that exercise the
// policies differently — chains and stars are GYO-acyclic (the semijoin
// policy applies), cliques are cyclic (it must fall back to dp), and all
// of them grow large enough to trip the DP budget that sizes-only and
// greedy shrug off. Used by `ecafuzz --policy` for the cross-policy
// differential and by bench_policy for the planning-time comparison.

// Join-graph shape of a generated query.
enum class Topology {
  kChain = 0,  // R0 - R1 - ... - Rn-1 (acyclic)
  kStar,       // R0 is the hub; every other relation joins it (acyclic)
  kClique,     // every pair is connected (cyclic for n >= 3)
};

// "chain" / "star" / "clique" (case-insensitive) -> Topology; the error
// lists the valid names.
StatusOr<Topology> ParseTopology(const std::string& name);
const char* TopologyName(Topology topology);

struct WorkloadOptions {
  Topology topology = Topology::kChain;
  int num_rels = 10;
  uint64_t seed = 1;
  // Base-relation shape (rows, data columns, value domain, NULL rate).
  RandomDataOptions data;
};

struct Workload {
  Database db;
  // All-inner left-deep query joining relations 0..num_rels-1 in id
  // order. Chain/star joins carry one predicate; the clique join
  // attaching R_i carries the AND of one predicate per already-joined
  // relation, so the pairwise conjuncts (and the cycles they form) stay
  // visible to conjunct-level analyses like GYO.
  PlanPtr query;
};

// Deterministic for a given options value: same seed, same workload.
Workload GenerateWorkload(const WorkloadOptions& opts);

}  // namespace eca

#endif  // ECA_SQLGEN_WORKLOAD_H_
