#ifndef ECA_SQLGEN_SQLGEN_H_
#define ECA_SQLGEN_SQLGEN_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/schema.h"

namespace eca {

// SQL-level implementation of plans with compensation operators
// (Section 6.1). Each operator renders as a subquery:
//   joins        ANSI JOIN syntax; semi/antijoins via [NOT] EXISTS
//   lambda       CASE WHEN <pred> THEN col END per nullified column
//   gamma        WHERE col IS NULL for every tested column
//   gamma*       CASE-nullification of the non-preserved columns guarded by
//                the gamma test, followed by a best-match block
//   beta         the paper's window-function spurious-tuple elimination
//                (Figure 7(b)): sort, compare each row with its
//                predecessor, keep the non-dominated ones
//
// The generated SQL enforces the plan's join order through nesting, which
// is exactly how the paper deploys ECA on PostgreSQL without engine
// changes.
struct SqlOptions {
  // Table name per rel_id (e.g. {"supplier", "partsupp", "part"}).
  std::vector<std::string> table_names;
  // Pretty-print with indentation.
  bool pretty = true;
};

std::string PlanToSql(const Plan& plan,
                      const std::vector<Schema>& base_schemas,
                      const SqlOptions& options);

}  // namespace eca

#endif  // ECA_SQLGEN_SQLGEN_H_
