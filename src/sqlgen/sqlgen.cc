#include "sqlgen/sqlgen.h"

#include "common/str_util.h"

namespace eca {

namespace {

// Alias for a column in generated SQL: r<rel>_<name>.
std::string ColAlias(int rel_id, const std::string& name) {
  return "r" + std::to_string(rel_id) + "_" + name;
}

std::string Indent(const std::string& s, int n) {
  std::string pad(static_cast<size_t>(n), ' ');
  std::string out = pad;
  for (char c : s) {
    out += c;
    if (c == '\n') out += pad;
  }
  return out;
}

class SqlGenerator {
 public:
  SqlGenerator(const std::vector<Schema>& base, const SqlOptions& options)
      : base_(base), options_(options) {}

  std::string Render(const Plan& plan) { return RenderNode(plan, 0).sql; }

 private:
  struct Rendered {
    std::string sql;      // a complete SELECT statement
    Schema schema;        // output columns (rel_id + name per column)
  };

  std::string TableName(int rel_id) const {
    if (rel_id >= 0 &&
        rel_id < static_cast<int>(options_.table_names.size())) {
      return options_.table_names[static_cast<size_t>(rel_id)];
    }
    return "t" + std::to_string(rel_id);
  }

  static std::string SelectList(const Schema& schema) {
    std::vector<std::string> cols;
    for (const Column& c : schema.columns()) {
      cols.push_back(ColAlias(c.rel_id, c.name));
    }
    return StrJoin(cols, ", ");
  }

  std::string RenderScalar(const Scalar& s) const {
    switch (s.kind()) {
      case Scalar::Kind::kColumn:
        return ColAlias(s.rel_id(), s.column_name());
      case Scalar::Kind::kConst:
        return s.const_value().ToString();
      case Scalar::Kind::kArith: {
        const char* op = "+";
        switch (s.arith_op()) {
          case Scalar::ArithOp::kAdd:
            op = "+";
            break;
          case Scalar::ArithOp::kSub:
            op = "-";
            break;
          case Scalar::ArithOp::kMul:
            op = "*";
            break;
          case Scalar::ArithOp::kDiv:
            op = "/";
            break;
        }
        return "(" + RenderScalar(*s.left()) + " " + op + " " +
               RenderScalar(*s.right()) + ")";
      }
    }
    return "NULL";
  }

  std::string RenderPred(const Predicate& p, const Schema& schema) const {
    switch (p.kind()) {
      case Predicate::Kind::kCompare: {
        const char* op = "=";
        switch (p.cmp_op()) {
          case Predicate::CmpOp::kEq:
            op = "=";
            break;
          case Predicate::CmpOp::kNe:
            op = "<>";
            break;
          case Predicate::CmpOp::kLt:
            op = "<";
            break;
          case Predicate::CmpOp::kLe:
            op = "<=";
            break;
          case Predicate::CmpOp::kGt:
            op = ">";
            break;
          case Predicate::CmpOp::kGe:
            op = ">=";
            break;
        }
        return RenderScalar(*p.scalar_left()) + " " + op + " " +
               RenderScalar(*p.scalar_right());
      }
      case Predicate::Kind::kAnd: {
        std::vector<std::string> parts;
        for (const PredRef& c : p.children()) {
          parts.push_back(RenderPred(*c, schema));
        }
        return "(" + StrJoin(parts, " AND ") + ")";
      }
      case Predicate::Kind::kOr: {
        std::vector<std::string> parts;
        for (const PredRef& c : p.children()) {
          parts.push_back(RenderPred(*c, schema));
        }
        return "(" + StrJoin(parts, " OR ") + ")";
      }
      case Predicate::Kind::kNot:
        return "NOT (" + RenderPred(*p.children()[0], schema) + ")";
      case Predicate::Kind::kConstBool:
        return p.const_bool() ? "TRUE" : "FALSE";
      case Predicate::Kind::kIsNull:
        return RenderScalar(*p.scalar_left()) + " IS NULL";
      case Predicate::Kind::kAllNullBlock: {
        std::vector<std::string> parts;
        for (int c : schema.ColumnsOf(p.all_null_rels())) {
          const Column& col = schema.column(c);
          parts.push_back(ColAlias(col.rel_id, col.name) + " IS NULL");
        }
        return parts.empty() ? "TRUE" : "(" + StrJoin(parts, " AND ") + ")";
      }
    }
    return "TRUE";
  }

  Rendered RenderLeaf(const Plan& plan) const {
    const Schema& schema = base_[static_cast<size_t>(plan.rel_id())];
    std::vector<std::string> cols;
    for (const Column& c : schema.columns()) {
      cols.push_back(c.name + " AS " + ColAlias(c.rel_id, c.name));
    }
    return {"SELECT " + StrJoin(cols, ", ") + " FROM " +
                TableName(plan.rel_id()),
            schema};
  }

  Rendered RenderJoin(const Plan& plan, int depth) {
    Rendered left = RenderNode(*plan.left(), depth + 1);
    Rendered right = RenderNode(*plan.right(), depth + 1);
    Schema joint = left.schema.Concat(right.schema);
    std::string on =
        plan.pred() ? RenderPred(*plan.pred(), joint) : "TRUE";
    auto wrap = [&](const std::string& s) {
      return "(\n" + Indent(s, 2) + "\n)";
    };
    switch (plan.op()) {
      case JoinOp::kCross:
      case JoinOp::kInner:
      case JoinOp::kLeftOuter:
      case JoinOp::kRightOuter:
      case JoinOp::kFullOuter: {
        const char* kw = "JOIN";
        if (plan.op() == JoinOp::kCross) kw = "CROSS JOIN";
        if (plan.op() == JoinOp::kLeftOuter) kw = "LEFT JOIN";
        if (plan.op() == JoinOp::kRightOuter) kw = "RIGHT JOIN";
        if (plan.op() == JoinOp::kFullOuter) kw = "FULL JOIN";
        std::string sql = "SELECT " + SelectList(joint) + "\nFROM " +
                          wrap(left.sql) + " AS lhs\n" + kw + " " +
                          wrap(right.sql) + " AS rhs";
        if (plan.op() != JoinOp::kCross) sql += "\nON " + on;
        return {std::move(sql), std::move(joint)};
      }
      case JoinOp::kLeftSemi:
      case JoinOp::kLeftAnti: {
        const char* kw =
            plan.op() == JoinOp::kLeftSemi ? "EXISTS" : "NOT EXISTS";
        std::string sql = "SELECT " + SelectList(left.schema) + "\nFROM " +
                          wrap(left.sql) + " AS lhs\nWHERE " + kw +
                          " (\n  SELECT 1 FROM " + wrap(Indent(right.sql, 2)) +
                          " AS rhs\n  WHERE " + on + "\n)";
        return {std::move(sql), std::move(left.schema)};
      }
      case JoinOp::kRightSemi:
      case JoinOp::kRightAnti: {
        const char* kw =
            plan.op() == JoinOp::kRightSemi ? "EXISTS" : "NOT EXISTS";
        std::string sql = "SELECT " + SelectList(right.schema) + "\nFROM " +
                          wrap(right.sql) + " AS rhs\nWHERE " + kw +
                          " (\n  SELECT 1 FROM " + wrap(Indent(left.sql, 2)) +
                          " AS lhs\n  WHERE " + on + "\n)";
        return {std::move(sql), std::move(right.schema)};
      }
    }
    return {};
  }

  // The paper's window-function best-match (Figure 7(b)): sort so that a
  // dominating tuple immediately precedes the tuples it dominates, carry
  // the predecessor's values with LAG, and keep a row iff it differs from
  // its predecessor on some non-null attribute.
  Rendered RenderBeta(Rendered child) const {
    std::string order;
    {
      std::vector<std::string> keys;
      for (const Column& c : child.schema.columns()) {
        keys.push_back(ColAlias(c.rel_id, c.name) + " NULLS LAST");
      }
      order = StrJoin(keys, ", ");
    }
    std::vector<std::string> inner_cols, keep_conds;
    for (const Column& c : child.schema.columns()) {
      std::string a = ColAlias(c.rel_id, c.name);
      inner_cols.push_back("LAG(" + a + ") OVER (ORDER BY " + order +
                           ") AS prev_" + a);
      keep_conds.push_back("(" + a + " IS NOT NULL AND (prev_" + a +
                           " IS NULL OR " + a + " <> prev_" + a + "))");
    }
    std::string sql =
        "SELECT " + SelectList(child.schema) + "\nFROM (\n" +
        Indent("SELECT " + SelectList(child.schema) + ", " +
                   StrJoin(inner_cols, ", ") +
                   ",\n       ROW_NUMBER() OVER (ORDER BY " + order +
                   ") AS rn\nFROM (\n" + Indent(child.sql, 2) + "\n) AS b",
               2) +
        "\n) AS w\nWHERE rn = 1 OR " + StrJoin(keep_conds, " OR ");
    return {std::move(sql), std::move(child.schema)};
  }

  Rendered RenderComp(const Plan& plan, int depth) {
    Rendered child = RenderNode(*plan.child(), depth + 1);
    const CompOp& comp = plan.comp();
    switch (comp.kind) {
      case CompOp::Kind::kProject: {
        Schema projected = child.schema.Project(comp.attrs);
        std::string sql = "SELECT " + SelectList(projected) + "\nFROM (\n" +
                          Indent(child.sql, 2) + "\n) AS p";
        return {std::move(sql), std::move(projected)};
      }
      case CompOp::Kind::kGamma: {
        std::vector<std::string> conds;
        for (int c : child.schema.ColumnsOf(comp.attrs)) {
          const Column& col = child.schema.column(c);
          conds.push_back(ColAlias(col.rel_id, col.name) + " IS NULL");
        }
        std::string sql = "SELECT " + SelectList(child.schema) +
                          "\nFROM (\n" + Indent(child.sql, 2) +
                          "\n) AS g\nWHERE " + StrJoin(conds, " AND ");
        return {std::move(sql), std::move(child.schema)};
      }
      case CompOp::Kind::kLambda: {
        std::string pred = RenderPred(*comp.pred, child.schema);
        std::vector<std::string> cols;
        for (const Column& c : child.schema.columns()) {
          std::string a = ColAlias(c.rel_id, c.name);
          if (comp.attrs.Contains(c.rel_id)) {
            cols.push_back("CASE WHEN " + pred + " THEN " + a + " END AS " +
                           a);
          } else {
            cols.push_back(a);
          }
        }
        std::string sql = "SELECT " + StrJoin(cols, ", ") + "\nFROM (\n" +
                          Indent(child.sql, 2) + "\n) AS l";
        return {std::move(sql), std::move(child.schema)};
      }
      case CompOp::Kind::kGammaStar: {
        // Nullify everything outside `keep` unless the gamma test holds,
        // then best-match.
        std::vector<std::string> test;
        for (int c : child.schema.ColumnsOf(comp.attrs)) {
          const Column& col = child.schema.column(c);
          test.push_back(ColAlias(col.rel_id, col.name) + " IS NULL");
        }
        std::string gamma_test = "(" + StrJoin(test, " AND ") + ")";
        std::vector<std::string> cols;
        for (const Column& c : child.schema.columns()) {
          std::string a = ColAlias(c.rel_id, c.name);
          if (!comp.keep.Contains(c.rel_id)) {
            cols.push_back("CASE WHEN " + gamma_test + " THEN " + a +
                           " END AS " + a);
          } else {
            cols.push_back(a);
          }
        }
        Rendered modified{"SELECT " + StrJoin(cols, ", ") + "\nFROM (\n" +
                              Indent(child.sql, 2) + "\n) AS gs",
                          child.schema};
        return RenderBeta(std::move(modified));
      }
      case CompOp::Kind::kBeta:
        return RenderBeta(std::move(child));
    }
    return {};
  }

  Rendered RenderNode(const Plan& plan, int depth) {
    switch (plan.kind()) {
      case Plan::Kind::kLeaf:
        return RenderLeaf(plan);
      case Plan::Kind::kJoin:
        return RenderJoin(plan, depth);
      case Plan::Kind::kComp:
        return RenderComp(plan, depth);
    }
    return {};
  }

  const std::vector<Schema>& base_;
  const SqlOptions& options_;
};

}  // namespace

std::string PlanToSql(const Plan& plan,
                      const std::vector<Schema>& base_schemas,
                      const SqlOptions& options) {
  SqlGenerator gen(base_schemas, options);
  return gen.Render(plan) + ";";
}

}  // namespace eca
