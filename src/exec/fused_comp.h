#ifndef ECA_EXEC_FUSED_COMP_H_
#define ECA_EXEC_FUSED_COMP_H_

#include <vector>

#include "algebra/comp_op.h"
#include "catalog/schema.h"
#include "expr/expr.h"
#include "storage/relation.h"

namespace eca {

class ThreadPool;
class QueryContext;
struct ExecTuning;

// A compiled chain of row-local compensation steps fused into one
// per-chunk loop (docs/performance.md, "Vectorized executor"):
//
//   lambda_{p,A}   1:1 transform  (NULL out A's columns when p is false)
//   gamma_A        filter         (keep rows whose A columns are all NULL)
//   gamma*-modify  1:1 transform  (the scan half of Equation 8; the
//                                  best-match half, beta, is a pipeline
//                                  breaker and never fuses)
//
// All three are schema-preserving and row-local, so a stack of them
// applies in one pass over each morsel — or directly inside a hash-join
// probe loop as rows are emitted — without materializing any
// intermediate relation. Steps apply in pipeline order (deepest plan
// node first); a row dropped by a gamma filter skips the rest of the
// chain. Because every step is row-local and order-preserving, the fused
// result is byte-identical to running the operators as separate
// materializing passes, at any thread count.
class FusedCompChain {
 public:
  // Appends one step; called deepest-first by the executor's plan walk.
  void AddLambda(const PredRef& pred, RelSet attrs, const Schema& schema);
  void AddGamma(RelSet attrs, const Schema& schema);
  void AddGammaStarModify(RelSet attrs, RelSet keep, const Schema& schema);

  bool empty() const { return steps_.empty(); }
  int num_steps() const { return static_cast<int>(steps_.size()); }

  // Applies the chain to `t` in place; false when a gamma filter drops
  // the row. Thread-safe (const; all per-row state lives in `t`).
  bool Apply(Tuple* t) const;

 private:
  struct Step {
    enum class Kind { kLambdaMask, kGammaFilter, kGammaStarModify };
    Kind kind;
    CompiledPredicate pred;          // kLambdaMask
    std::vector<int> null_cols;      // columns to NULL (lambda / gamma*)
    std::vector<DataType> null_types;
    std::vector<int> check_cols;     // all-NULL test columns (gamma/gamma*)
  };
  std::vector<Step> steps_;
};

// Applies `chain` to every row of `in`, morsel-parallel when a pool is
// given; output rows keep input order (dropped rows removed). Observes
// `ctx` cancellation/deadline at morsel boundaries.
Relation ApplyFusedChain(const FusedCompChain& chain, const Relation& in,
                         ThreadPool* pool, QueryContext* ctx,
                         const ExecTuning* tuning);

}  // namespace eca

#endif  // ECA_EXEC_FUSED_COMP_H_
