#ifndef ECA_EXEC_EXECUTOR_H_
#define ECA_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "algebra/plan.h"
#include "common/status.h"
#include "exec/chunk.h"
#include "exec/database.h"
#include "storage/relation.h"

namespace eca {

class ThreadPool;
class QueryContext;
class FusedCompChain;

// Execution statistics accumulated over one Execute() call.
struct ExecStats {
  int64_t rows_produced = 0;   // total rows materialized across operators
  int64_t probe_comparisons = 0;
  int64_t join_nodes = 0;
  int64_t comp_nodes = 0;
  int64_t hash_build_rows = 0;  // rows inserted into hash-join tables

  // Per-operator-class wall clock (milliseconds), parallel sections
  // included at their real elapsed time.
  double join_ms = 0;
  double comp_ms = 0;

  // Partition shape of the hash joins executed, measured at a fixed stat
  // fanout (16 hash partitions) independent of the thread count: total
  // stat partitions, the largest/smallest partition, and the worst
  // observed skew (largest partition over the mean partition size; 1.0 =
  // perfectly balanced, higher = one key-hash range dominates). The same
  // query reports the same shape at every --threads value.
  int64_t partitions_built = 0;
  int64_t max_partition_rows = 0;
  int64_t min_partition_rows = 0;
  double partition_skew = 0;
  // True once any hash join seeded the min/max/skew fields above; the
  // min-tracking needs it to distinguish "first build" from "smallest so
  // far" (an explicit flag — the old partitions_built-based heuristic
  // misfired across joins).
  bool partition_stats_seeded = false;

  // Resource-governor counters (ExecuteWithContext only; all zero for
  // ungoverned runs). peak_bytes is the query tracker's high-water mark;
  // the spill counters cover grace hash joins and external-sort
  // compensation operators (docs/robustness.md, "Resource governor").
  int64_t peak_bytes = 0;
  int64_t spilled_partitions = 0;  // grace-join leaf partitions probed
  int64_t spill_bytes = 0;         // serialized bytes written to temp files
  int64_t spill_read_bytes = 0;    // serialized bytes read back
  int64_t spilled_sort_runs = 0;   // external-sort runs spilled (beta/gamma*)

  void Reset() { *this = ExecStats(); }
};

// Evaluates logical plans (including compensation operators) against an
// in-memory Database, materializing every operator output.
//
// Two engine profiles reproduce the paper's two systems: the PostgreSQL-like
// profile prefers hash joins for equi-predicates; the "commercial" profile
// (Appendix F substitute) prefers sort-merge joins, whose different cost
// profile yields the same plan winners with larger factors.
class Executor {
 public:
  enum class JoinPreference {
    kHash,       // hash join for equi-joins, nested loop otherwise
    kSortMerge,  // sort-merge join for equi-joins, nested loop otherwise
  };

  struct Options {
    JoinPreference join_preference = JoinPreference::kHash;
    // Number of threads for morsel-driven join/compensation evaluation.
    // 1 (the default) runs the same morsel loops inline with zero
    // synchronization; results are byte-identical for every value.
    int num_threads = 1;
    // Morsel/chunk granularity (exec/chunk.h). Results are byte-identical
    // for every legal value; the knobs only move work-claim and scratch
    // sizes (and are fuzzed via ecafuzz --morsel-rows/--chunk-rows).
    ExecTuning tuning;
  };

  Executor() : Executor(Options()) {}
  explicit Executor(Options options);
  ~Executor();

  // Evaluates `plan` bottom-up. Aborts on malformed plans (unresolved
  // columns, schema mismatches) — plans coming out of the rewrite layer are
  // well-formed by construction.
  Relation Execute(const Plan& plan, const Database& db);

  // Governed execution under `ctx`'s memory/deadline/cancellation contract
  // (docs/robustness.md). Same plans, same results, three extra outcomes:
  //
  //  - memory pressure past the soft threshold escalates hash joins to the
  //    spilling grace join and beta/gamma* to external merge sort — the
  //    result stays byte-identical to the in-memory engine;
  //  - the hard limit, the deadline, or a Cancel() unwind cleanly with
  //    kResourceExhausted / kDeadlineExceeded / kCancelled;
  //  - stats() gains peak_bytes and the spill counters.
  //
  // `ctx` must already be Arm()ed if a timeout is configured; it is
  // borrowed for the duration of the call only.
  StatusOr<Relation> ExecuteWithContext(const Plan& plan, const Database& db,
                                        QueryContext* ctx);

  const ExecStats& stats() const { return stats_; }

 private:
  // Recursive evaluation body; the public entry points wrap it in an
  // "execute" trace span and publish this call's ExecStats delta as
  // exec.* metrics (docs/observability.md) once the tree is done.
  Relation ExecNode(const Plan& plan, const Database& db);
  // Publishes stats_ minus `before` into MetricsRegistry::Global(), so a
  // registry diff around one Execute call matches stats() exactly.
  void PublishStatsDelta(const ExecStats& before) const;
  // `fused` (optional) is a chain of row-local compensation steps stacked
  // directly above the join in the plan; the join applies it per emitted
  // row inside its probe pipeline.
  Relation ExecJoin(const Plan& plan, const Database& db,
                    const FusedCompChain* fused = nullptr);
  // Fusion dispatch: collects the maximal lambda/gamma/gamma*-modify
  // stack rooted at `plan` into a FusedCompChain and runs it inside the
  // base join's probe loop (or as one morsel pass over the materialized
  // base); beta and project are pipeline breakers and run standalone.
  Relation ExecComp(const Plan& plan, const Database& db);
  // Charges `rel`'s rows to the query tracker as the durable output of a
  // plan node; records the error on failure. No-op when ungoverned.
  void ChargeNodeOutput(const Relation& rel);
  void ReleaseNodeOutput(const Relation& rel);

  Options options_;
  ExecStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  QueryContext* ctx_ = nullptr;  // non-null only inside ExecuteWithContext
};

// --- Operator building blocks (exposed for unit tests and benches) --------

// Generic join evaluation: uses hash (or sort-merge) join when the predicate
// contains equi-conjuncts across the two inputs, nested loop otherwise.
// The hash path builds one shared open-addressing table over typed
// columnar keys (the smaller input hosts it for inner/semi/anti joins)
// and probes in fixed-size morsels claimed from a shared cursor; passing
// a ThreadPool runs build and probe morsel-parallel with output assembled
// in morsel-index order, so the result is byte-identical for every thread
// count (and every `tuning` value). A governed call (non-null ctx)
// additionally observes cancellation and deadline at morsel granularity,
// charges the build index to the memory tracker, and escalates to the
// spilling grace hash join when the build would cross the soft threshold
// — with output still byte-identical. A non-null `fused` chain
// (compensation operators stacked directly above the join) is applied
// per emitted row inside the probe pipeline instead of as separate
// materializing passes.
Relation EvalJoin(JoinOp op, const PredRef& pred, const Relation& left,
                  const Relation& right,
                  Executor::JoinPreference pref = Executor::JoinPreference::kHash,
                  ExecStats* stats = nullptr, ThreadPool* pool = nullptr,
                  QueryContext* ctx = nullptr,
                  const ExecTuning* tuning = nullptr,
                  const FusedCompChain* fused = nullptr);

// Reference nested-loop implementation of every join operator; used to
// validate the hash/sort-merge paths.
Relation EvalJoinNaive(JoinOp op, const PredRef& pred, const Relation& left,
                       const Relation& right);

// Output schema of `op` over the two input schemas (semi/anti joins keep
// one side, everything else concatenates).
Schema JoinOutputSchema(JoinOp op, const Schema& left, const Schema& right);

// lambda_{p,A}: NULLs the columns of relations in `attrs` for every tuple
// on which `pred` does not evaluate to true. Morsel-parallel when a pool
// is given (morsel-ordered assembly keeps the output order identical).
Relation EvalLambda(const PredRef& pred, RelSet attrs, const Relation& in,
                    ThreadPool* pool = nullptr, QueryContext* ctx = nullptr,
                    const ExecTuning* tuning = nullptr);

// beta: removes spurious (dominated or duplicated) tuples. Exact
// per-attribute semantics via null-pattern grouping; near-linear when the
// number of distinct null patterns is small (always the case for plan
// intermediates, whose NULLs are relation-block structured).
//
// Convention: a tuple whose every attribute is NULL is spurious (it is the
// identity of the domination order). This is Galindo-Legaria's minimum-union
// semantics; it is required for the compensation identities to hold on
// empty/no-match inputs (e.g. CBA's R1 join R2 = beta(lambda(R1 x R2)) with
// an empty R2, and gamma* above a full outerjoin).
//
// Under a governed ctx whose tracker is past (or would be pushed past) the
// soft threshold, evaluation switches to the external-merge-sort variant of
// EvalBetaSorted: one bounded-memory sort per null pattern, runs spilled
// through the ctx spill dir. Output rows and order are identical.
Relation EvalBeta(const Relation& in, QueryContext* ctx = nullptr,
                  ExecStats* stats = nullptr);

// Reference O(n^2) beta, straight from the Section 2.2 definition (plus the
// all-NULL convention above).
Relation EvalBetaNaive(const Relation& in);

// The paper's sort-based best-match (Section 6.1, the strategy behind
// CBA's SQL implementation): sort so that every spurious tuple is
// immediately preceded by a tuple that dominates or duplicates it, then
// eliminate in a single scan. One sort per distinct null pattern (ordering
// that pattern's non-NULL columns first, NULLS LAST within) makes the
// elimination exact; the paper's remark that "more than one sorting" may
// be needed corresponds to inputs with several patterns. Agrees with
// EvalBeta on all inputs (tested); exposed separately so the two
// implementations can be compared (bench_compensation_ops).
Relation EvalBetaSorted(const Relation& in);

// gamma_A: keeps tuples whose attributes of relations in `attrs` are all
// NULL (Equation 7). Morsel-parallel when a pool is given.
Relation EvalGamma(RelSet attrs, const Relation& in,
                   ThreadPool* pool = nullptr, QueryContext* ctx = nullptr,
                   const ExecTuning* tuning = nullptr);

// gamma*_{A(B)}: Equation 8 — tuples with all-NULL A pass unchanged; other
// tuples get every attribute outside `keep` NULLed; beta removes spurious
// tuples. The modification scan is row-parallel when a pool is given; the
// best-match stage is inherently sequential.
Relation EvalGammaStar(RelSet attrs, RelSet keep, const Relation& in,
                       ThreadPool* pool = nullptr, QueryContext* ctx = nullptr,
                       ExecStats* stats = nullptr,
                       const ExecTuning* tuning = nullptr);

// pi_A at relation granularity.
Relation EvalProject(RelSet attrs, const Relation& in);

// The outer union of CBA's algebra (the paper's notation list): pads each
// input to the union schema with NULLs and concatenates. The inputs'
// relation sets may overlap (shared columns align) or differ (missing
// relations pad).
Relation EvalOuterUnion(const Relation& a, const Relation& b);

// Galindo-Legaria's minimum union: beta(outer union) — the combination
// gamma* builds on (Equation 8 unions the selected and modified tuples and
// best-matches the result).
Relation EvalMinUnion(const Relation& a, const Relation& b);

// Reorders columns into the canonical (rel_id, name) order; rewritten plans
// may emit columns in different orders, so result comparison canonicalizes
// first.
Relation CanonicalizeColumnOrder(const Relation& in);

// Executes both plans and compares canonicalized result multisets.
bool PlansEquivalentOn(const Plan& a, const Plan& b, const Database& db);

}  // namespace eca

#endif  // ECA_EXEC_EXECUTOR_H_
