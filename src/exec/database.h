#ifndef ECA_EXEC_DATABASE_H_
#define ECA_EXEC_DATABASE_H_

#include <vector>

#include "storage/relation.h"

namespace eca {

// The base relations of a query, indexed by query-relation id. Leaf plan
// nodes reference tables by rel_id.
class Database {
 public:
  Database() = default;
  explicit Database(std::vector<Relation> tables)
      : tables_(std::move(tables)) {}

  int NumTables() const { return static_cast<int>(tables_.size()); }
  const Relation& table(int rel_id) const {
    ECA_CHECK(rel_id >= 0 && rel_id < NumTables());
    return tables_[static_cast<size_t>(rel_id)];
  }
  void Add(Relation r) { tables_.push_back(std::move(r)); }

  // Base schemas indexed by rel_id (for PlanOutputSchema).
  std::vector<Schema> BaseSchemas() const {
    std::vector<Schema> out;
    out.reserve(tables_.size());
    for (const Relation& r : tables_) out.push_back(r.schema());
    return out;
  }

 private:
  std::vector<Relation> tables_;
};

}  // namespace eca

#endif  // ECA_EXEC_DATABASE_H_
