#ifndef ECA_EXEC_CHUNK_H_
#define ECA_EXEC_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "expr/expr.h"
#include "storage/relation.h"
#include "types/value.h"

namespace eca {

// Columnar building blocks of the vectorized executor
// (docs/performance.md, "Vectorized executor").
//
// Operator boundaries stay row-major (`Relation` is the materialized
// format the spill files, result comparison and the algebra tests all
// speak), but the hot loops inside an operator run over columnar data:
// join keys live in typed flat arrays (`KeyColumn`), null masks live in a
// packed bit matrix (`NullMaskMatrix`), and work is claimed in fixed-size
// morsels (`MorselCursor` in common/thread_pool.h) whose boundaries are
// independent of the thread count.

// Rows per scheduling unit: one shared-cursor claim's worth of work.
// Large enough to amortize the claim, small enough that cancellation and
// deadline checks (observed at morsel boundaries) stay responsive.
inline constexpr int64_t kDefaultMorselRows = 4096;

// Rows per columnar scratch batch inside a morsel (key chunks, null-mask
// strips). Sized for L1/L2 residency of a handful of key columns.
inline constexpr int64_t kDefaultChunkRows = 1024;

// Executor tuning knobs, exposed through `ecatool --morsel-rows /
// --chunk-rows` and fuzzed by `ecafuzz` (repro lines carry them).
// Results are byte-identical for every legal value of both knobs; they
// only move the work-claim and scratch granularity.
struct ExecTuning {
  int64_t morsel_rows = kDefaultMorselRows;
  int64_t chunk_rows = kDefaultChunkRows;

  // Clamped copy (>= 1 each); the executor applies this once on entry so
  // operator code can assume sane values.
  ExecTuning Clamped() const {
    ExecTuning t = *this;
    if (t.morsel_rows < 1) t.morsel_rows = 1;
    if (t.chunk_rows < 1) t.chunk_rows = 1;
    return t;
  }
};

// One join-key expression evaluated over a whole relation into a typed
// flat column. The tag is chosen from the *pair* of build/probe
// expressions (both sides of one equi-key share a tag), so per-row
// hashing and equality dispatch once per join instead of once per value:
//
//  - kInt64 / kDouble / kString: both sides are bare column refs of that
//    type; storage is a flat typed array (strings are borrowed pointers
//    into the input rows, which are immutable for the join's duration).
//  - kNumeric: bare numeric columns of mixed int/double type; stored
//    promoted to double, hashed with the int-valued-double rule so
//    Int(3) and Real(3.0) still meet in one bucket (types/value.h).
//  - kGeneric: computed expressions or mixed string/numeric pairs; falls
//    back to per-row Value storage with Value::Hash / Value::SameAs —
//    exactly the row engine's semantics.
//
// A NULL key value invalidates its row (null-intolerant equality): the
// row is never inserted into or probed against the hash table.
class KeyColumn {
 public:
  enum class Tag { kInt64, kDouble, kNumeric, kString, kGeneric };

  // Chooses the shared tag for one equi-key pair.
  static Tag TagFor(const ScalarRef& build_expr, const Schema& build_schema,
                    const ScalarRef& probe_expr, const Schema& probe_schema);

  // Prepares storage for `n` rows of `tag` data; values are written by
  // SetFromRow, one writer per row (morsel-parallel safe).
  void Reset(Tag tag, int64_t n);

  // Extracts row `r`'s key value from `row`. `col` is the bound column
  // index for bare column refs, -1 for computed expressions (which are
  // evaluated through `expr` against `schema`). Returns false when the
  // key value is NULL.
  bool SetFromRow(int64_t r, const Tuple& row, int col, const ScalarRef& expr,
                  const Schema& schema);

  // Hash of row `r`'s key value; only meaningful for rows whose
  // SetFromRow returned true. Promotion-consistent across kNumeric.
  uint64_t HashAt(int64_t r) const;

  // Key equality between row `ra` of `a` and row `rb` of `b`; both
  // columns carry the same tag by construction.
  static bool Equal(const KeyColumn& a, int64_t ra, const KeyColumn& b,
                    int64_t rb);

  Tag tag() const { return tag_; }

 private:
  Tag tag_ = Tag::kGeneric;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<const std::string*> strs_;
  std::vector<Value> vals_;
};

// The columnar key set for one side of a hash join: every key column plus
// a packed validity bitmap and the combined per-row hash. Filled
// morsel-parallel (each row slot has exactly one writer).
struct KeyChunkSet {
  std::vector<KeyColumn> cols;
  std::vector<uint64_t> hashes;  // valid only where valid[r] != 0
  std::vector<uint8_t> valid;    // 1 = all keys non-NULL (one writer/row)

  void Reset(const std::vector<KeyColumn::Tag>& tags, int64_t n);

  bool ValidAt(int64_t r) const { return valid[static_cast<size_t>(r)] != 0; }

  // Extracts all key values of row `r` (bound via `cols`/`exprs` against
  // `schema`), records validity and the combined hash. One writer per row.
  void ExtractRow(int64_t r, const Tuple& row, const std::vector<int>& col_idx,
                  const std::vector<ScalarRef>& exprs, const Schema& schema);

  bool RowEqual(int64_t ra, const KeyChunkSet& b, int64_t rb) const {
    for (size_t k = 0; k < cols.size(); ++k) {
      if (!KeyColumn::Equal(cols[k], ra, b.cols[k], rb)) return false;
    }
    return true;
  }
};

// Packed per-row null masks for a relation: `words_per_row` consecutive
// uint64_t per row in one flat allocation (bit c set = column c NULL).
// Replaces the per-row heap-allocated mask vectors on the beta hot path;
// rows are filled morsel-parallel.
class NullMaskMatrix {
 public:
  void Build(const Relation& in);

  const uint64_t* row(int64_t r) const {
    return words_.data() + static_cast<size_t>(r) * words_per_row_;
  }
  size_t words_per_row() const { return words_per_row_; }
  int64_t num_rows() const { return num_rows_; }

  // Popcount of one row's mask.
  int NullCount(int64_t r) const {
    const uint64_t* w = row(r);
    int c = 0;
    for (size_t i = 0; i < words_per_row_; ++i) {
      c += __builtin_popcountll(w[i]);
    }
    return c;
  }

 private:
  std::vector<uint64_t> words_;
  size_t words_per_row_ = 1;
  int64_t num_rows_ = 0;
};

}  // namespace eca

#endif  // ECA_EXEC_CHUNK_H_
