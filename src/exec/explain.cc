#include "exec/explain.h"

#include <chrono>

#include "common/str_util.h"

namespace eca {

namespace {

using Clock = std::chrono::steady_clock;

std::string NodeLabel(const Plan& plan) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return "scan R" + std::to_string(plan.rel_id());
    case Plan::Kind::kJoin:
      return std::string(JoinOpName(plan.op())) +
             (plan.pred() ? "[" + plan.pred()->DisplayName() + "]" : "");
    case Plan::Kind::kComp:
      return plan.comp().ToString();
  }
  return "?";
}

// Recursive profiled execution. Children run first; the parent's own time
// excludes them.
Relation Run(const Plan& plan, const Database& db,
             Executor::JoinPreference pref, int depth,
             std::vector<NodeProfile>* out) {
  size_t my_index = out->size();
  out->push_back({depth, NodeLabel(plan), 0, 0});

  Relation result;
  double own_ms = 0;
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      auto t0 = Clock::now();
      result = db.table(plan.rel_id());
      own_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count();
      break;
    }
    case Plan::Kind::kJoin: {
      Relation left = Run(*plan.left(), db, pref, depth + 1, out);
      Relation right = Run(*plan.right(), db, pref, depth + 1, out);
      auto t0 = Clock::now();
      result = EvalJoin(plan.op(), plan.pred(), left, right, pref);
      own_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count();
      break;
    }
    case Plan::Kind::kComp: {
      Relation child = Run(*plan.child(), db, pref, depth + 1, out);
      auto t0 = Clock::now();
      const CompOp& c = plan.comp();
      switch (c.kind) {
        case CompOp::Kind::kLambda:
          result = EvalLambda(c.pred, c.attrs, child);
          break;
        case CompOp::Kind::kBeta:
          result = EvalBeta(child);
          break;
        case CompOp::Kind::kGamma:
          result = EvalGamma(c.attrs, child);
          break;
        case CompOp::Kind::kGammaStar:
          result = EvalGammaStar(c.attrs, c.keep, child);
          break;
        case CompOp::Kind::kProject:
          result = EvalProject(c.attrs, child);
          break;
      }
      own_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count();
      break;
    }
  }
  (*out)[my_index].rows = result.NumRows();
  (*out)[my_index].millis = own_ms;
  return result;
}

}  // namespace

std::vector<NodeProfile> ProfilePlan(const Plan& plan, const Database& db,
                                     Executor::JoinPreference pref) {
  std::vector<NodeProfile> profiles;
  Run(plan, db, pref, 0, &profiles);
  return profiles;
}

std::string ExplainAnalyze(const Plan& plan, const Database& db,
                           Executor::JoinPreference pref) {
  std::vector<NodeProfile> profiles = ProfilePlan(plan, db, pref);
  std::string out;
  for (const NodeProfile& p : profiles) {
    out += StrFormat("%s%-40s rows=%-8lld %8.3f ms\n",
                     std::string(static_cast<size_t>(p.depth) * 2, ' ')
                         .c_str(),
                     p.label.c_str(), static_cast<long long>(p.rows),
                     p.millis);
  }
  return out;
}

}  // namespace eca
