#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/chunk.h"
#include "exec/executor.h"
#include "exec/fused_comp.h"
#include "exec/query_context.h"
#include "storage/spill_file.h"
#include "types/tri_bool.h"

namespace eca {

namespace {

// Runs fn(row) for every input row, morsel-parallel when a pool is given:
// workers (the caller included) claim fixed-size morsels from a shared
// cursor until the input is dry. fn must only touch state owned by its
// row (the transforms below write into a pre-sized output slot per row),
// so the result is identical for every thread count. A governed ctx is
// observed at every morsel boundary — sequential runs included — so
// deadline/cancellation latency is bounded by one morsel of work
// regardless of how operators are fused.
template <typename RowFn>
void ForEachRow(const Relation& in, ThreadPool* pool, QueryContext* ctx,
                const ExecTuning* tuning, const RowFn& fn) {
  const ExecTuning t = tuning != nullptr ? tuning->Clamped() : ExecTuning();
  MorselCursor cursor(in.NumRows(), t.morsel_rows);
  auto worker = [&](int) {
    int64_t begin, end, morsel;
    while (cursor.Next(&begin, &end, &morsel)) {
      if (ctx != nullptr && ctx->ShouldStop()) return;
      for (int64_t i = begin; i < end; ++i) fn(i);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->RunOnWorkers(worker);
  } else {
    worker(0);
  }
}

// Null mask of a tuple packed into words (bit i set = column i is NULL).
// Distinct patterns (map keys) keep this owning form; per-row masks live
// in a NullMaskMatrix (one flat allocation, no per-row heap traffic) and
// are compared against patterns word-by-word.
using NullMask = std::vector<uint64_t>;

int Popcount(const NullMask& m) {
  int c = 0;
  for (uint64_t w : m) c += __builtin_popcountll(w);
  return c;
}

// Copies row `r`'s mask words into `out` (reusing its storage).
void MaskFromMatrix(const NullMaskMatrix& m, int64_t r, NullMask* out) {
  const uint64_t* w = m.row(r);
  out->assign(w, w + m.words_per_row());
}

bool RowMaskEquals(const NullMaskMatrix& m, int64_t r, const NullMask& p) {
  const uint64_t* w = m.row(r);
  for (size_t i = 0; i < m.words_per_row(); ++i) {
    if (w[i] != p[i]) return false;
  }
  return true;
}

bool RowMasksEqual(const NullMaskMatrix& m, int64_t a, int64_t b) {
  const uint64_t* wa = m.row(a);
  const uint64_t* wb = m.row(b);
  for (size_t i = 0; i < m.words_per_row(); ++i) {
    if (wa[i] != wb[i]) return false;
  }
  return true;
}

// True if every null position of `a` is also null in `b` (a's null set is a
// subset of b's).
bool MaskSubset(const NullMask& a, const NullMask& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

struct MaskHash {
  size_t operator()(const NullMask& m) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t w : m) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Projection of `t` onto the non-null positions of mask `p`.
Tuple ProjectNonNull(const Tuple& t, const NullMask& p) {
  Tuple out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (((p[i / 64] >> (i % 64)) & 1) == 0) out.push_back(t[i]);
  }
  return out;
}

// Hash-keyed multiset of tuples with exact-equality verification.
class TupleSet {
 public:
  // Returns true if an equal tuple was already present; inserts otherwise.
  bool InsertCheck(const Tuple& t) {
    auto& bucket = map_[HashTuple(t)];
    for (const Tuple& u : bucket) {
      if (CompareTuples(t, u) == 0) return true;
    }
    bucket.push_back(t);
    return false;
  }

  bool Contains(const Tuple& t) const {
    auto it = map_.find(HashTuple(t));
    if (it == map_.end()) return false;
    for (const Tuple& u : it->second) {
      if (CompareTuples(t, u) == 0) return true;
    }
    return false;
  }

  void Insert(const Tuple& t) {
    auto& bucket = map_[HashTuple(t)];
    bucket.push_back(t);
  }

 private:
  std::unordered_map<uint64_t, std::vector<Tuple>> map_;
};

// Defined after EvalBetaSorted, whose per-pattern sort it externalizes.
Relation EvalBetaExternal(const Relation& in, QueryContext* ctx,
                          ExecStats* stats);

}  // namespace

Relation EvalLambda(const PredRef& pred, RelSet attrs, const Relation& in,
                    ThreadPool* pool, QueryContext* ctx,
                    const ExecTuning* tuning) {
  ECA_CHECK(pred != nullptr);
  CompiledPredicate compiled(pred, in.schema());
  std::vector<int> cols = in.schema().ColumnsOf(attrs);
  Relation out(in.schema());
  // One output row per input row: pre-size and fill slots in parallel.
  out.mutable_rows().resize(static_cast<size_t>(in.NumRows()));
  ForEachRow(in, pool, ctx, tuning, [&](int64_t i) {
    const Tuple& t = in.rows()[static_cast<size_t>(i)];
    if (compiled.EvalTrue(t)) {
      out.mutable_rows()[static_cast<size_t>(i)] = t;
    } else {
      Tuple u = t;
      for (int c : cols) {
        u[static_cast<size_t>(c)] =
            Value::Null(in.schema().column(c).type);
      }
      out.mutable_rows()[static_cast<size_t>(i)] = std::move(u);
    }
  });
  return out;
}

Relation EvalGamma(RelSet attrs, const Relation& in, ThreadPool* pool,
                   QueryContext* ctx, const ExecTuning* tuning) {
  std::vector<int> cols = in.schema().ColumnsOf(attrs);
  ECA_CHECK_MSG(!cols.empty(), "gamma over attributes absent from input");
  // Filter: mark selected rows in parallel, emit sequentially in row
  // order (so the output is identical for every thread count).
  std::vector<uint8_t> selected(static_cast<size_t>(in.NumRows()), 0);
  ForEachRow(in, pool, ctx, tuning, [&](int64_t i) {
    const Tuple& t = in.rows()[static_cast<size_t>(i)];
    bool all_null = true;
    for (int c : cols) {
      if (!t[static_cast<size_t>(c)].is_null()) {
        all_null = false;
        break;
      }
    }
    selected[static_cast<size_t>(i)] = all_null ? 1 : 0;
  });
  Relation out(in.schema());
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (selected[static_cast<size_t>(i)]) {
      out.Add(in.rows()[static_cast<size_t>(i)]);
    }
  }
  return out;
}

Relation EvalBeta(const Relation& in, QueryContext* ctx, ExecStats* stats) {
  // Governed escalation: past the soft threshold the pattern-group
  // structures below (per-group tuple sets and projections, roughly
  // input-sized) are not affordable; switch to the external-merge-sort
  // variant whose resident set is one sort run. Same rows, same order.
  if (ctx != nullptr &&
      ctx->tracker()->WouldExceedSoft(ApproxRowsBytes(in.rows()))) {
    static Counter* const escalations =
        MetricsRegistry::Global().counter("governor.spill_escalate");
    escalations->Increment();
    Tracer::Instant("governor/spill-escalate", "beta");
    return EvalBetaExternal(in, ctx, stats);
  }
  // Group rows by null pattern; a tuple with null set P is spurious iff it
  // duplicates another tuple, or a tuple with null set Q (a strict subset
  // of P) agrees with it on P's non-null positions. Plan intermediates have
  // relation-block-structured nulls, so the number of distinct patterns is
  // small and this runs in near-linear time while implementing the exact
  // per-attribute definition of Section 2.2. Row masks live in one flat
  // matrix; only the (few) distinct patterns are heap-allocated map keys.
  NullMaskMatrix masks;
  masks.Build(in);
  std::unordered_map<NullMask, std::vector<int64_t>, MaskHash> groups;
  const int num_cols = in.schema().NumColumns();
  NullMask scratch;
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (masks.NullCount(i) == num_cols) continue;  // all-NULL is spurious
    MaskFromMatrix(masks, i, &scratch);
    groups[scratch].push_back(i);
  }

  std::vector<std::pair<NullMask, std::vector<int64_t>>> ordered(
      groups.begin(), groups.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              int pa = Popcount(a.first), pb = Popcount(b.first);
              if (pa != pb) return pa < pb;
              return a.first < b.first;  // deterministic tie-break
            });

  // Survivor rows per processed group, used to test domination of later
  // (more-null) groups.
  std::vector<std::pair<NullMask, std::vector<int64_t>>> processed;
  std::vector<bool> keep(static_cast<size_t>(in.NumRows()), false);

  for (auto& [mask, rows] : ordered) {
    // Per-dominator-group projection sets, built lazily for this target
    // pattern.
    std::vector<TupleSet> dominator_sets;
    std::vector<const std::vector<int64_t>*> dominator_rows;
    for (const auto& [pmask, prows] : processed) {
      if (MaskSubset(pmask, mask) && pmask != mask) {
        TupleSet s;
        for (int64_t r : prows) {
          s.Insert(ProjectNonNull(in.rows()[static_cast<size_t>(r)], mask));
        }
        dominator_sets.push_back(std::move(s));
        dominator_rows.push_back(&prows);
      }
    }
    TupleSet dedup;
    std::vector<int64_t> survivors;
    for (int64_t r : rows) {
      const Tuple& t = in.rows()[static_cast<size_t>(r)];
      if (dedup.InsertCheck(t)) continue;  // duplicate
      bool dominated = false;
      if (!dominator_sets.empty()) {
        Tuple proj = ProjectNonNull(t, mask);
        for (const TupleSet& s : dominator_sets) {
          if (s.Contains(proj)) {
            dominated = true;
            break;
          }
        }
      }
      if (!dominated) {
        keep[static_cast<size_t>(r)] = true;
        survivors.push_back(r);
      }
    }
    processed.emplace_back(mask, std::move(survivors));
  }

  Relation out(in.schema());
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.Add(in.rows()[static_cast<size_t>(i)]);
    }
  }
  return out;
}

Relation EvalBetaNaive(const Relation& in) {
  const auto& rows = in.rows();
  std::vector<bool> spurious(rows.size(), false);
  auto null_count = [](const Tuple& t) {
    int c = 0;
    for (const Value& v : t) c += v.is_null() ? 1 : 0;
    return c;
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    if (null_count(rows[i]) == static_cast<int>(rows[i].size()) &&
        !rows[i].empty()) {
      spurious[i] = true;  // all-NULL tuples are spurious by convention
      continue;
    }
    for (size_t j = 0; j < rows.size(); ++j) {
      if (i == j || spurious[i]) continue;
      // Is rows[i] dominated by rows[j], or a duplicate of an earlier equal
      // tuple?
      bool agree = true;
      for (size_t c = 0; c < rows[i].size(); ++c) {
        if (rows[i][c].is_null()) continue;
        if (rows[j][c].is_null() ||
            !rows[i][c].SameAs(rows[j][c])) {
          agree = false;
          break;
        }
      }
      if (!agree) continue;
      int ni = null_count(rows[i]), nj = null_count(rows[j]);
      if (ni > nj) {
        spurious[i] = true;  // dominated
      } else if (ni == nj && j < i && CompareTuples(rows[i], rows[j]) == 0) {
        spurious[i] = true;  // duplicate of an earlier tuple
      }
    }
  }
  Relation out(in.schema());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!spurious[i]) out.Add(rows[i]);
  }
  return out;
}

Relation EvalBetaSorted(const Relation& in) {
  const int num_cols = in.schema().NumColumns();
  // Distinct null patterns present in the input; per-row masks stay in
  // the flat matrix.
  NullMaskMatrix masks;
  masks.Build(in);
  std::unordered_map<NullMask, int, MaskHash> patterns;
  std::vector<bool> keep(static_cast<size_t>(in.NumRows()), true);
  NullMask scratch;
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (masks.NullCount(i) == num_cols && num_cols > 0) {
      keep[static_cast<size_t>(i)] = false;  // all-NULL convention
      continue;
    }
    MaskFromMatrix(masks, i, &scratch);
    patterns.emplace(scratch, 1);
  }

  // One sorting pass per pattern P: order by P's non-NULL columns first
  // (then the rest), NULLS LAST per column. Any tuple of pattern P then
  // immediately follows a tuple that agrees on its non-NULL columns — a
  // dominator or duplicate — if one exists.
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(in.NumRows()));
  for (const auto& [pattern, unused] : patterns) {
    (void)unused;
    std::vector<int> key_cols;
    key_cols.reserve(static_cast<size_t>(num_cols));
    for (int c = 0; c < num_cols; ++c) {  // non-NULL-in-P columns first
      if (((pattern[static_cast<size_t>(c) / 64] >> (c % 64)) & 1) == 0) {
        key_cols.push_back(c);
      }
    }
    size_t agree_prefix = key_cols.size();  // columns a dominator must match
    for (int c = 0; c < num_cols; ++c) {
      if (((pattern[static_cast<size_t>(c) / 64] >> (c % 64)) & 1) == 1) {
        key_cols.push_back(c);
      }
    }
    order.clear();
    for (int64_t i = 0; i < in.NumRows(); ++i) {
      if (keep[static_cast<size_t>(i)]) order.push_back(i);
    }
    auto value_less = [&](int64_t a, int64_t b) {
      const Tuple& ta = in.rows()[static_cast<size_t>(a)];
      const Tuple& tb = in.rows()[static_cast<size_t>(b)];
      for (int c : key_cols) {
        const Value& va = ta[static_cast<size_t>(c)];
        const Value& vb = tb[static_cast<size_t>(c)];
        // NULLS LAST within each key column.
        if (va.is_null() != vb.is_null()) return vb.is_null();
        int cmp = va.Compare(vb);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    };
    std::sort(order.begin(), order.end(), value_less);
    // Scan: a pattern-P tuple is spurious if its surviving predecessor
    // agrees on the prefix columns and has fewer-or-equal NULLs.
    int64_t prev = -1;
    for (int64_t idx : order) {
      if (prev >= 0 && RowMaskEquals(masks, idx, pattern)) {
        const Tuple& t = in.rows()[static_cast<size_t>(idx)];
        const Tuple& p = in.rows()[static_cast<size_t>(prev)];
        bool agree = true;
        for (size_t k = 0; k < agree_prefix; ++k) {
          int c = key_cols[k];
          const Value& vp = p[static_cast<size_t>(c)];
          if (vp.is_null() ||
              !vp.SameAs(t[static_cast<size_t>(c)])) {
            agree = false;
            break;
          }
        }
        if (agree && masks.NullCount(prev) <= masks.NullCount(idx)) {
          // Dominated (strictly fewer NULLs) or duplicate (equal pattern
          // and full agreement — prefix agreement plus both all-NULL
          // elsewhere).
          bool duplicate = RowMasksEqual(masks, prev, idx);
          bool dominated = masks.NullCount(prev) < masks.NullCount(idx);
          if (duplicate || dominated) {
            keep[static_cast<size_t>(idx)] = false;
            continue;  // prev stays the reference survivor
          }
        }
      }
      prev = idx;
    }
  }

  Relation out(in.schema());
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (keep[static_cast<size_t>(i)]) out.Add(in.rows()[static_cast<size_t>(i)]);
  }
  return out;
}

namespace {

// The governed spill path for beta: EvalBetaSorted's per-pattern sort
// routed through ExternalRowSorter, so resident memory is bounded by one
// sort run no matter the input size. The sorter breaks ties by tag
// (ascending input row index), a legal ordering for EvalBetaSorted's
// unstable std::sort, and the elimination scan reads rows back via their
// index — the keep[] decisions, the output rows, and their order are the
// ones EvalBeta produces.
Relation EvalBetaExternal(const Relation& in, QueryContext* ctx,
                          ExecStats* stats) {
  TraceSpan span("comp/beta-external");
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(in.NumRows()));
  }
  const int num_cols = in.schema().NumColumns();
  NullMaskMatrix masks;
  masks.Build(in);
  std::unordered_map<NullMask, int, MaskHash> patterns;
  std::vector<bool> keep(static_cast<size_t>(in.NumRows()), true);
  NullMask mscratch;
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (masks.NullCount(i) == num_cols && num_cols > 0) {
      keep[static_cast<size_t>(i)] = false;  // all-NULL convention
      continue;
    }
    MaskFromMatrix(masks, i, &mscratch);
    patterns.emplace(mscratch, 1);
  }

  SpillDir dir("eca-beta", ctx->spill_dir());
  SpillStats sstats;
  const int64_t soft = ctx->tracker()->soft_bytes();
  const int64_t run_bytes =
      soft > 0 ? std::max<int64_t>(soft / 8, int64_t{64} << 10)
               : int64_t{16} << 20;
  ExecCharge run_charge(ctx);
  Status status = run_charge.Add(run_bytes, "beta external-sort run");

  for (const auto& [pattern, unused] : patterns) {
    if (!status.ok()) break;
    (void)unused;
    std::vector<int> key_cols;
    key_cols.reserve(static_cast<size_t>(num_cols));
    for (int c = 0; c < num_cols; ++c) {  // non-NULL-in-P columns first
      if (((pattern[static_cast<size_t>(c) / 64] >> (c % 64)) & 1) == 0) {
        key_cols.push_back(c);
      }
    }
    size_t agree_prefix = key_cols.size();
    for (int c = 0; c < num_cols; ++c) {
      if (((pattern[static_cast<size_t>(c) / 64] >> (c % 64)) & 1) == 1) {
        key_cols.push_back(c);
      }
    }
    auto value_less = [&key_cols](const Tuple& ta, const Tuple& tb) {
      for (int c : key_cols) {
        const Value& va = ta[static_cast<size_t>(c)];
        const Value& vb = tb[static_cast<size_t>(c)];
        if (va.is_null() != vb.is_null()) return vb.is_null();
        if (va.is_null()) continue;
        int cmp = va.Compare(vb);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    };
    ExternalRowSorter sorter(&dir, value_less, run_bytes, &sstats);
    for (int64_t i = 0; i < in.NumRows() && status.ok(); ++i) {
      if (keep[static_cast<size_t>(i)]) {
        status = sorter.Add(static_cast<uint64_t>(i),
                            in.rows()[static_cast<size_t>(i)]);
      }
    }
    if (!status.ok()) break;
    int64_t prev = -1;
    int64_t seen = 0;
    status = sorter.Drain([&](uint64_t tag, Tuple&) -> Status {
      if ((++seen & 1023) == 0 && ctx->ShouldStop()) {
        return ctx->StopStatus();
      }
      int64_t idx = static_cast<int64_t>(tag);
      if (prev >= 0 && RowMaskEquals(masks, idx, pattern)) {
        const Tuple& t = in.rows()[static_cast<size_t>(idx)];
        const Tuple& p = in.rows()[static_cast<size_t>(prev)];
        bool agree = true;
        for (size_t k = 0; k < agree_prefix; ++k) {
          int c = key_cols[k];
          const Value& vp = p[static_cast<size_t>(c)];
          if (vp.is_null() || !vp.SameAs(t[static_cast<size_t>(c)])) {
            agree = false;
            break;
          }
        }
        if (agree && masks.NullCount(prev) <= masks.NullCount(idx)) {
          bool duplicate = RowMasksEqual(masks, prev, idx);
          bool dominated = masks.NullCount(prev) < masks.NullCount(idx);
          if (duplicate || dominated) {
            keep[static_cast<size_t>(idx)] = false;
            return Status::OK();  // prev stays the reference survivor
          }
        }
      }
      prev = idx;
      return Status::OK();
    });
    if (stats != nullptr) stats->spilled_sort_runs += sorter.runs_spilled();
  }

  if (stats != nullptr) {
    stats->spill_bytes += sstats.bytes_written;
    stats->spill_read_bytes += sstats.bytes_read;
  }
  if (!status.ok()) {
    ctx->RecordError(std::move(status));
    return Relation(in.schema());
  }
  Relation out(in.schema());
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.Add(in.rows()[static_cast<size_t>(i)]);
    }
  }
  return out;
}

}  // namespace

Relation EvalGammaStar(RelSet attrs, RelSet keep, const Relation& in,
                       ThreadPool* pool, QueryContext* ctx,
                       ExecStats* stats, const ExecTuning* tuning) {
  std::vector<int> acols = in.schema().ColumnsOf(attrs);
  ECA_CHECK_MSG(!acols.empty(), "gamma* over attributes absent from input");
  std::vector<int> nulled_cols;
  for (int c = 0; c < in.schema().NumColumns(); ++c) {
    if (!keep.Contains(in.schema().column(c).rel_id)) nulled_cols.push_back(c);
  }
  // The modification scan is 1:1 and row-parallel; the best-match stage
  // below is inherently sequential (cross-row domination).
  Relation modified(in.schema());
  modified.mutable_rows().resize(static_cast<size_t>(in.NumRows()));
  ForEachRow(in, pool, ctx, tuning, [&](int64_t i) {
    const Tuple& t = in.rows()[static_cast<size_t>(i)];
    bool all_null = true;
    for (int c : acols) {
      if (!t[static_cast<size_t>(c)].is_null()) {
        all_null = false;
        break;
      }
    }
    if (all_null) {
      modified.mutable_rows()[static_cast<size_t>(i)] = t;  // gamma_A branch
    } else {
      Tuple u = t;  // R' branch: null everything outside `keep`
      for (int c : nulled_cols) {
        u[static_cast<size_t>(c)] =
            Value::Null(in.schema().column(c).type);
      }
      modified.mutable_rows()[static_cast<size_t>(i)] = std::move(u);
    }
  });
  return EvalBeta(modified, ctx, stats);
}

Relation EvalProject(RelSet attrs, const Relation& in) {
  std::vector<int> cols = in.schema().ColumnsOf(attrs);
  Relation out(in.schema().Project(attrs));
  for (const Tuple& t : in.rows()) {
    Tuple u;
    u.reserve(cols.size());
    for (int c : cols) u.push_back(t[static_cast<size_t>(c)]);
    out.Add(std::move(u));
  }
  return out;
}

Relation EvalOuterUnion(const Relation& a, const Relation& b) {
  // Union schema: a's columns, then b's columns not already present.
  std::vector<Column> cols = a.schema().columns();
  std::vector<int> b_to_union(static_cast<size_t>(b.schema().NumColumns()));
  for (int c = 0; c < b.schema().NumColumns(); ++c) {
    const Column& col = b.schema().column(c);
    int existing = a.schema().FindColumn(col.rel_id, col.name);
    if (existing >= 0) {
      b_to_union[static_cast<size_t>(c)] = existing;
    } else {
      b_to_union[static_cast<size_t>(c)] = static_cast<int>(cols.size());
      cols.push_back(col);
    }
  }
  Schema schema(std::move(cols));
  Relation out(schema);
  const int width = schema.NumColumns();
  for (const Tuple& t : a.rows()) {
    Tuple u = t;
    for (int c = static_cast<int>(t.size()); c < width; ++c) {
      u.push_back(Value::Null(schema.column(c).type));
    }
    out.Add(std::move(u));
  }
  for (const Tuple& t : b.rows()) {
    Tuple u;
    u.reserve(static_cast<size_t>(width));
    for (int c = 0; c < width; ++c) {
      u.push_back(Value::Null(schema.column(c).type));
    }
    for (int c = 0; c < b.schema().NumColumns(); ++c) {
      u[static_cast<size_t>(b_to_union[static_cast<size_t>(c)])] =
          t[static_cast<size_t>(c)];
    }
    out.Add(std::move(u));
  }
  return out;
}

Relation EvalMinUnion(const Relation& a, const Relation& b) {
  return EvalBeta(EvalOuterUnion(a, b));
}

void FusedCompChain::AddLambda(const PredRef& pred, RelSet attrs,
                               const Schema& schema) {
  ECA_CHECK(pred != nullptr);
  Step s;
  s.kind = Step::Kind::kLambdaMask;
  s.pred = CompiledPredicate(pred, schema);
  for (int c : schema.ColumnsOf(attrs)) {
    s.null_cols.push_back(c);
    s.null_types.push_back(schema.column(c).type);
  }
  steps_.push_back(std::move(s));
}

void FusedCompChain::AddGamma(RelSet attrs, const Schema& schema) {
  std::vector<int> cols = schema.ColumnsOf(attrs);
  ECA_CHECK_MSG(!cols.empty(), "gamma over attributes absent from input");
  Step s;
  s.kind = Step::Kind::kGammaFilter;
  s.check_cols = std::move(cols);
  steps_.push_back(std::move(s));
}

void FusedCompChain::AddGammaStarModify(RelSet attrs, RelSet keep,
                                        const Schema& schema) {
  std::vector<int> acols = schema.ColumnsOf(attrs);
  ECA_CHECK_MSG(!acols.empty(), "gamma* over attributes absent from input");
  Step s;
  s.kind = Step::Kind::kGammaStarModify;
  s.check_cols = std::move(acols);
  for (int c = 0; c < schema.NumColumns(); ++c) {
    if (!keep.Contains(schema.column(c).rel_id)) {
      s.null_cols.push_back(c);
      s.null_types.push_back(schema.column(c).type);
    }
  }
  steps_.push_back(std::move(s));
}

bool FusedCompChain::Apply(Tuple* t) const {
  for (const Step& s : steps_) {
    switch (s.kind) {
      case Step::Kind::kLambdaMask:
        if (!s.pred.EvalTrue(*t)) {
          for (size_t k = 0; k < s.null_cols.size(); ++k) {
            (*t)[static_cast<size_t>(s.null_cols[k])] =
                Value::Null(s.null_types[k]);
          }
        }
        break;
      case Step::Kind::kGammaFilter:
        for (int c : s.check_cols) {
          if (!(*t)[static_cast<size_t>(c)].is_null()) return false;
        }
        break;
      case Step::Kind::kGammaStarModify: {
        bool all_null = true;
        for (int c : s.check_cols) {
          if (!(*t)[static_cast<size_t>(c)].is_null()) {
            all_null = false;
            break;
          }
        }
        if (!all_null) {
          for (size_t k = 0; k < s.null_cols.size(); ++k) {
            (*t)[static_cast<size_t>(s.null_cols[k])] =
                Value::Null(s.null_types[k]);
          }
        }
        break;
      }
    }
  }
  return true;
}

Relation ApplyFusedChain(const FusedCompChain& chain, const Relation& in,
                         ThreadPool* pool, QueryContext* ctx,
                         const ExecTuning* tuning) {
  const ExecTuning t = tuning != nullptr ? tuning->Clamped() : ExecTuning();
  MorselCursor cursor(in.NumRows(), t.morsel_rows);
  std::vector<std::vector<Tuple>> morsel_out(
      static_cast<size_t>(cursor.num_morsels()));
  auto worker = [&](int) {
    int64_t begin, end, morsel;
    while (cursor.Next(&begin, &end, &morsel)) {
      if (ctx != nullptr && ctx->ShouldStop()) return;
      std::vector<Tuple>& buf = morsel_out[static_cast<size_t>(morsel)];
      for (int64_t i = begin; i < end; ++i) {
        Tuple u = in.rows()[static_cast<size_t>(i)];
        if (chain.Apply(&u)) buf.push_back(std::move(u));
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->RunOnWorkers(worker);
  } else {
    worker(0);
  }
  // Morsel-ordered concatenation: dropped rows compact away, survivors
  // keep input order for every thread count.
  Relation out(in.schema());
  size_t total = 0;
  for (const auto& buf : morsel_out) total += buf.size();
  out.mutable_rows().reserve(total);
  for (auto& buf : morsel_out) {
    for (Tuple& u : buf) out.Add(std::move(u));
  }
  return out;
}

Relation CanonicalizeColumnOrder(const Relation& in) {
  std::vector<int> order(static_cast<size_t>(in.schema().NumColumns()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Column& ca = in.schema().column(a);
    const Column& cb = in.schema().column(b);
    if (ca.rel_id != cb.rel_id) return ca.rel_id < cb.rel_id;
    return ca.name < cb.name;
  });
  std::vector<Column> cols;
  cols.reserve(order.size());
  for (int i : order) cols.push_back(in.schema().column(i));
  Relation out(Schema(std::move(cols)));
  for (const Tuple& t : in.rows()) {
    Tuple u;
    u.reserve(order.size());
    for (int i : order) u.push_back(t[static_cast<size_t>(i)]);
    out.Add(std::move(u));
  }
  return out;
}

}  // namespace eca
