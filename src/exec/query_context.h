#ifndef ECA_EXEC_QUERY_CONTEXT_H_
#define ECA_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace eca {

// Cooperative cancellation: anything holding the token can Cancel(); the
// executor checks it at chunk granularity and unwinds with kCancelled.
// Thread-safe, reusable across queries via Reset().
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

// The per-query resource governor (docs/robustness.md, "Resource
// governor"): one QueryContext travels from the tool entry point through
// optimizer and executor so that `--timeout-ms N --mem-limit-mb M` is a
// single end-to-end contract. It bundles
//
//  - a query-level MemoryTracker (soft spill threshold + hard limit),
//  - a CancelToken plus an absolute wall-clock deadline,
//  - the spill directory override for this query's temp files,
//  - a first-error-wins Status slot that parallel operator chunks report
//    into (worker lambdas cannot return Status through ParallelFor).
//
// Operators call ShouldStop() once per chunk of work; when it flips they
// stop producing and the executor returns StopStatus() — kCancelled,
// kDeadlineExceeded, or whatever error a sibling chunk recorded (e.g.
// kResourceExhausted from the tracker). FaultPoint::kCancelRace forces
// the check to fire at an exact call count for race testing.
class QueryContext {
 public:
  struct Limits {
    // Hard memory limit for the query; <= 0 = unlimited.
    int64_t mem_limit_bytes = 0;
    // Spill threshold; <= 0 defaults to half the hard limit (when set).
    int64_t mem_soft_bytes = 0;
    // Wall-clock budget from Arm() (not construction); <= 0 = none.
    int64_t timeout_ms = 0;
    // Temp-file location override; "" = system temp dir. When set, this
    // query's spill files live in a per-query "eca-q<pid>-<seq>"
    // subdirectory (storage/spill_file.h) that is removed when the
    // context is destroyed — and reclaimed by the startup sweep if the
    // process crashes first.
    std::string spill_dir;
    // Optional shared root for multi-query accounting: the query tracker
    // charges this parent on every reservation, so one global
    // MemoryTracker bounds the sum of all concurrent governed queries
    // (the ecad admission model). Must outlive the context; nullptr for
    // standalone queries.
    MemoryTracker* parent_tracker = nullptr;
  };

  QueryContext() : QueryContext(Limits{}) {}
  explicit QueryContext(Limits limits);
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Starts the wall clock: the deadline is now + timeout_ms. Called by
  // the facade on entry; harmless to call with no timeout configured.
  void Arm();

  MemoryTracker* tracker() { return &tracker_; }
  CancelToken* cancel_token() { return &cancel_; }
  // The per-query spill subdirectory (not the configured base); empty when
  // no spill directory was configured.
  const std::string& spill_dir() const { return spill_dir_; }
  int64_t deadline_ms() const { return deadline_ms_; }

  // Remaining wall-clock milliseconds, or <= 0 when the deadline passed;
  // int64 max when no deadline is armed. The enumerator budget takes this
  // so optimizer and executor share one deadline.
  int64_t RemainingMs() const;

  // The chunk-granularity governor probe. Cheap when nothing is armed:
  // two relaxed atomic loads plus the fault-injection branch.
  bool ShouldStop();

  // Why ShouldStop() flipped: the recorded error if any, else kCancelled /
  // kDeadlineExceeded. OK when nothing stopped.
  Status StopStatus() const;

  // First error wins; later reports are dropped. Flips ShouldStop() so
  // sibling chunks stop working. Safe from any thread.
  void RecordError(Status status);

  bool HasError() const {
    return error_set_.load(std::memory_order_acquire);
  }

 private:
  Limits limits_;
  std::string spill_dir_;  // per-query subdir of limits_.spill_dir
  MemoryTracker tracker_;
  CancelToken cancel_;
  int64_t deadline_ms_ = 0;  // absolute governed-clock ms; 0 = none
  std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> error_set_{false};
  mutable std::mutex error_mu_;
  Status error_;
};

// RAII charge against the query tracker with the governor's fault hook:
// every Add() first consults FaultPoint::kExecAllocation (so tests can
// fail any materializing allocation deterministically), then reserves
// against the query's MemoryTracker. All accumulated bytes are released
// on destruction. A null ctx makes every operation a no-op, which is what
// lets ungoverned callers share the governed code paths.
class ExecCharge {
 public:
  explicit ExecCharge(QueryContext* ctx)
      : ctx_(ctx), res_(ctx != nullptr ? ctx->tracker() : nullptr) {}

  ExecCharge(const ExecCharge&) = delete;
  ExecCharge& operator=(const ExecCharge&) = delete;

  // Charges `bytes` more; kResourceExhausted past the hard limit (or at
  // the injected fault), in which case nothing is charged.
  Status Add(int64_t bytes, const char* what);

  // Releases everything charged so far.
  void Reset() { res_.Reset(); }

  // Hands the accumulated charge to the caller (not released on
  // destruction); the executor uses this for durable node outputs.
  int64_t Detach() { return res_.Detach(); }

  int64_t bytes() const { return res_.bytes(); }

 private:
  QueryContext* ctx_;
  ScopedReservation res_;
};

}  // namespace eca

#endif  // ECA_EXEC_QUERY_CONTEXT_H_
