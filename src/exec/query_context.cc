#include "exec/query_context.h"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "storage/spill_file.h"
#include "testing/fault_injection.h"

namespace eca {

namespace {

int64_t GovernedNowMs() {
  int64_t real = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  return FaultClock::NowMs(real);
}

}  // namespace

QueryContext::QueryContext(Limits limits)
    : limits_(std::move(limits)),
      spill_dir_(limits_.spill_dir.empty()
                     ? std::string()
                     : QuerySpillSubdir(limits_.spill_dir)),
      tracker_(limits_.mem_soft_bytes > 0
                   ? limits_.mem_soft_bytes
                   : (limits_.mem_limit_bytes > 0
                          ? limits_.mem_limit_bytes / 2
                          : 0),
               limits_.mem_limit_bytes, limits_.parent_tracker) {}

QueryContext::~QueryContext() {
  // The per-query spill subdirectory should already be empty (operator
  // SpillDirs are RAII-removed), but remove it recursively anyway so a
  // unwind path that leaked a file cannot leave an orphan. A process that
  // dies before reaching this is what SweepOrphanQuerySpillDirs exists
  // for.
  if (!spill_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);  // best effort
  }
}

void QueryContext::Arm() {
  if (limits_.timeout_ms > 0) {
    deadline_ms_ = GovernedNowMs() + limits_.timeout_ms;
  }
  deadline_hit_.store(false, std::memory_order_relaxed);
}

int64_t QueryContext::RemainingMs() const {
  if (deadline_ms_ <= 0) return INT64_MAX;
  return deadline_ms_ - GovernedNowMs();
}

bool QueryContext::ShouldStop() {
  if (error_set_.load(std::memory_order_acquire)) return true;
  if (cancel_.cancelled()) return true;
  if (FaultInjector::ShouldFail(FaultPoint::kCancelRace)) {
    cancel_.Cancel();
    return true;
  }
  if (deadline_ms_ > 0) {
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (GovernedNowMs() >= deadline_ms_) {
      // exchange: exactly one caller observes the flip and counts the trip.
      if (!deadline_hit_.exchange(true, std::memory_order_relaxed)) {
        static Counter* const trips =
            MetricsRegistry::Global().counter("governor.deadline_trip");
        trips->Increment();
        Tracer::Instant("governor/deadline-trip");
      }
      return true;
    }
  }
  return false;
}

Status QueryContext::StopStatus() const {
  if (error_set_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(error_mu_);
    return error_;
  }
  if (cancel_.cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline_hit_.load(std::memory_order_relaxed) ||
      (deadline_ms_ > 0 && GovernedNowMs() >= deadline_ms_)) {
    return Status::DeadlineExceeded(
        "query deadline exceeded during execution");
  }
  return Status::OK();
}

Status ExecCharge::Add(int64_t bytes, const char* what) {
  if (ctx_ == nullptr || bytes <= 0) return Status::OK();
  if (FaultInjector::ShouldFail(FaultPoint::kExecAllocation)) {
    return Status::ResourceExhausted(
        std::string("allocation fault injected at ") + what);
  }
  return res_.Add(bytes, what);
}

void QueryContext::RecordError(Status status) {
  ECA_DCHECK(!status.ok());
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_set_.load(std::memory_order_relaxed)) {
    error_ = std::move(status);
    error_set_.store(true, std::memory_order_release);
  }
}

}  // namespace eca
