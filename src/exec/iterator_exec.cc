#include "exec/iterator_exec.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/query_context.h"

namespace eca {

namespace {

// --------------------------------------------------------------------------
// Leaf scan
// --------------------------------------------------------------------------

class ScanIterator : public RowIterator {
 public:
  explicit ScanIterator(const Relation* rel) : rel_(rel) {}

  bool Next(Tuple* out) override {
    if (pos_ >= rel_->NumRows()) return false;
    *out = rel_->rows()[static_cast<size_t>(pos_++)];
    return true;
  }
  const Schema& schema() const override { return rel_->schema(); }

 private:
  const Relation* rel_;
  int64_t pos_ = 0;
};

// A materialized relation exposed as an iterator (used below every
// pipeline breaker).
class MaterializedIterator : public RowIterator {
 public:
  explicit MaterializedIterator(Relation rel) : rel_(std::move(rel)) {}

  bool Next(Tuple* out) override {
    if (pos_ >= rel_.NumRows()) return false;
    *out = rel_.rows()[static_cast<size_t>(pos_++)];
    return true;
  }
  const Schema& schema() const override { return rel_.schema(); }

 private:
  Relation rel_;
  int64_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Streaming unary operators
// --------------------------------------------------------------------------

class LambdaIterator : public RowIterator {
 public:
  LambdaIterator(std::unique_ptr<RowIterator> child, const PredRef& pred,
                 RelSet attrs)
      : child_(std::move(child)),
        compiled_(pred, child_->schema()),
        cols_(child_->schema().ColumnsOf(attrs)) {}

  bool Next(Tuple* out) override {
    if (!child_->Next(out)) return false;
    if (!compiled_.EvalTrue(*out)) {
      for (int c : cols_) {
        (*out)[static_cast<size_t>(c)] =
            Value::Null(child_->schema().column(c).type);
      }
    }
    return true;
  }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<RowIterator> child_;
  CompiledPredicate compiled_;
  std::vector<int> cols_;
};

class GammaIterator : public RowIterator {
 public:
  GammaIterator(std::unique_ptr<RowIterator> child, RelSet attrs)
      : child_(std::move(child)), cols_(child_->schema().ColumnsOf(attrs)) {}

  bool Next(Tuple* out) override {
    while (child_->Next(out)) {
      bool all_null = true;
      for (int c : cols_) {
        if (!(*out)[static_cast<size_t>(c)].is_null()) {
          all_null = false;
          break;
        }
      }
      if (all_null) return true;
    }
    return false;
  }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<RowIterator> child_;
  std::vector<int> cols_;
};

class ProjectIterator : public RowIterator {
 public:
  ProjectIterator(std::unique_ptr<RowIterator> child, RelSet attrs)
      : child_(std::move(child)),
        cols_(child_->schema().ColumnsOf(attrs)),
        schema_(child_->schema().Project(attrs)) {}

  bool Next(Tuple* out) override {
    Tuple t;
    if (!child_->Next(&t)) return false;
    out->clear();
    out->reserve(cols_.size());
    for (int c : cols_) out->push_back(std::move(t[static_cast<size_t>(c)]));
    return true;
  }
  const Schema& schema() const override { return schema_; }

 private:
  std::unique_ptr<RowIterator> child_;
  std::vector<int> cols_;
  Schema schema_;
};

// --------------------------------------------------------------------------
// Streaming hash join (build right, probe left). Inner / left-outer /
// left-semi / left-anti stream the probe side; the remaining variants and
// non-equi predicates fall back to a materialized evaluation.
// --------------------------------------------------------------------------

struct EquiKeyPair {
  ScalarRef left_expr, right_expr;
};

void SplitKeys(const PredRef& pred, RelSet left, RelSet right,
               std::vector<EquiKeyPair>* keys, PredRef* residual) {
  std::vector<PredRef> conjuncts = {pred};
  std::vector<PredRef> residuals;
  while (!conjuncts.empty()) {
    PredRef p = conjuncts.back();
    conjuncts.pop_back();
    if (p->kind() == Predicate::Kind::kAnd) {
      for (const PredRef& c : p->children()) conjuncts.push_back(c);
      continue;
    }
    bool is_key = false;
    if (p->kind() == Predicate::Kind::kCompare &&
        p->cmp_op() == Predicate::CmpOp::kEq) {
      RelSet lr = p->scalar_left()->refs();
      RelSet rr = p->scalar_right()->refs();
      if (!lr.Empty() && !rr.Empty()) {
        if (left.ContainsAll(lr) && right.ContainsAll(rr)) {
          keys->push_back({p->scalar_left(), p->scalar_right()});
          is_key = true;
        } else if (right.ContainsAll(lr) && left.ContainsAll(rr)) {
          keys->push_back({p->scalar_right(), p->scalar_left()});
          is_key = true;
        }
      }
    }
    if (!is_key) residuals.push_back(p);
  }
  *residual = residuals.empty() ? nullptr : Predicate::And(residuals);
}

class StreamingHashJoinIterator : public RowIterator {
 public:
  StreamingHashJoinIterator(std::unique_ptr<RowIterator> left,
                            Relation right, JoinOp op, const PredRef& pred,
                            std::vector<EquiKeyPair> keys, PredRef residual)
      : left_(std::move(left)),
        right_(std::move(right)),
        op_(op),
        schema_(OutputsOneSide(op) ? left_->schema()
                                   : left_->schema().Concat(right_.schema())),
        concat_(left_->schema().Concat(right_.schema())) {
    (void)pred;
    for (const EquiKeyPair& k : keys) {
      lkeys_.push_back(k.left_expr);
      rkeys_.push_back(k.right_expr);
    }
    if (residual != nullptr) {
      residual_ = CompiledPredicate(residual, concat_);
      have_residual_ = true;
    }
    // Build phase (pipeline breaker on the right input only).
    std::vector<Value> kv;
    for (int64_t i = 0; i < right_.NumRows(); ++i) {
      if (!EvalKeys(rkeys_, right_.schema(), right_.rows()[(size_t)i], &kv))
        continue;
      table_[HashTuple(kv)].push_back(i);
    }
    pad_right_ = NullsFor(concat_, left_->schema().NumColumns(),
                          right_.schema().NumColumns());
  }

  bool Next(Tuple* out) override {
    while (true) {
      // Drain pending matches for the current probe row.
      while (match_pos_ < matches_.size()) {
        int64_t ri = matches_[match_pos_++];
        if (op_ == JoinOp::kLeftSemi) {
          *out = current_;
          matches_.clear();
          match_pos_ = 0;
          return true;
        }
        *out = ConcatTuples(current_,
                            right_.rows()[static_cast<size_t>(ri)]);
        return true;
      }
      if (pending_pad_) {
        pending_pad_ = false;
        if (op_ == JoinOp::kLeftAnti) {
          *out = current_;
        } else {
          *out = ConcatTuples(current_, pad_right_);
        }
        return true;
      }
      // Advance the probe side.
      if (!left_->Next(&current_)) return false;
      matches_.clear();
      match_pos_ = 0;
      std::vector<Value> kv;
      if (EvalKeys(lkeys_, left_->schema(), current_, &kv)) {
        auto it = table_.find(HashTuple(kv));
        if (it != table_.end()) {
          for (int64_t ri : it->second) {
            if (!KeysEqual(kv, right_.rows()[static_cast<size_t>(ri)]))
              continue;
            if (have_residual_) {
              Tuple joint = ConcatTuples(
                  current_, right_.rows()[static_cast<size_t>(ri)]);
              if (!residual_.EvalTrue(joint)) continue;
            }
            matches_.push_back(ri);
            if (op_ == JoinOp::kLeftSemi || op_ == JoinOp::kLeftAnti) break;
          }
        }
      }
      bool matched = !matches_.empty();
      if (op_ == JoinOp::kLeftAnti) {
        matches_.clear();
        pending_pad_ = !matched;
      } else if (op_ == JoinOp::kLeftOuter) {
        pending_pad_ = !matched;
      } else {
        pending_pad_ = false;  // inner / semi emit matches only
      }
    }
  }

  const Schema& schema() const override { return schema_; }

 private:
  static bool EvalKeys(const std::vector<ScalarRef>& exprs, const Schema& s,
                       const Tuple& row, std::vector<Value>* out) {
    out->clear();
    for (const ScalarRef& e : exprs) {
      Value v = e->Eval(s, row);
      if (v.is_null()) return false;
      out->push_back(std::move(v));
    }
    return true;
  }
  bool KeysEqual(const std::vector<Value>& kv, const Tuple& rrow) const {
    for (size_t i = 0; i < rkeys_.size(); ++i) {
      Value rv = rkeys_[i]->Eval(right_.schema(), rrow);
      if (rv.is_null() || !rv.SameAs(kv[i])) return false;
    }
    return true;
  }

  std::unique_ptr<RowIterator> left_;
  Relation right_;
  JoinOp op_;
  Schema schema_;
  Schema concat_;
  std::vector<ScalarRef> lkeys_, rkeys_;
  CompiledPredicate residual_;
  bool have_residual_ = false;
  std::unordered_map<uint64_t, std::vector<int64_t>> table_;
  Tuple current_;
  Tuple pad_right_;
  std::vector<int64_t> matches_;
  size_t match_pos_ = 0;
  bool pending_pad_ = false;
};

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

bool StreamableJoin(JoinOp op) {
  return op == JoinOp::kInner || op == JoinOp::kLeftOuter ||
         op == JoinOp::kLeftSemi || op == JoinOp::kLeftAnti;
}

std::unique_ptr<RowIterator> Open(const Plan& plan, const Database& db,
                                  Executor::JoinPreference pref);

// Materializing fallback for operators with no streaming form.
std::unique_ptr<RowIterator> OpenMaterialized(const Plan& plan,
                                              const Database& db,
                                              Executor::JoinPreference pref) {
  Executor::Options opts;
  opts.join_preference = pref;
  Executor ex(opts);
  return std::make_unique<MaterializedIterator>(ex.Execute(plan, db));
}

std::unique_ptr<RowIterator> Open(const Plan& plan, const Database& db,
                                  Executor::JoinPreference pref) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return std::make_unique<ScanIterator>(&db.table(plan.rel_id()));
    case Plan::Kind::kJoin: {
      if (!StreamableJoin(plan.op()) || plan.pred() == nullptr) {
        return OpenMaterialized(plan, db, pref);
      }
      // Try an equi-key split; non-equi predicates fall back.
      std::vector<EquiKeyPair> keys;
      PredRef residual;
      SplitKeys(plan.pred(), plan.left()->output_rels(),
                plan.right()->output_rels(), &keys, &residual);
      if (keys.empty()) return OpenMaterialized(plan, db, pref);
      std::unique_ptr<RowIterator> left = Open(*plan.left(), db, pref);
      Executor::Options ex_opts;
      ex_opts.join_preference = pref;
      Executor ex(ex_opts);
      Relation right = ex.Execute(*plan.right(), db);
      return std::make_unique<StreamingHashJoinIterator>(
          std::move(left), std::move(right), plan.op(), plan.pred(),
          std::move(keys), residual);
    }
    case Plan::Kind::kComp: {
      const CompOp& c = plan.comp();
      switch (c.kind) {
        case CompOp::Kind::kLambda:
          return std::make_unique<LambdaIterator>(
              Open(*plan.child(), db, pref), c.pred, c.attrs);
        case CompOp::Kind::kGamma:
          return std::make_unique<GammaIterator>(
              Open(*plan.child(), db, pref), c.attrs);
        case CompOp::Kind::kProject:
          return std::make_unique<ProjectIterator>(
              Open(*plan.child(), db, pref), c.attrs);
        case CompOp::Kind::kBeta:
        case CompOp::Kind::kGammaStar: {
          // Pipeline breakers: drain the child pipeline, apply, replay.
          std::unique_ptr<RowIterator> child =
              Open(*plan.child(), db, pref);
          Relation input = DrainIterator(*child);
          Relation out = c.kind == CompOp::Kind::kBeta
                             ? EvalBeta(input)
                             : EvalGammaStar(c.attrs, c.keep, input);
          return std::make_unique<MaterializedIterator>(std::move(out));
        }
      }
      break;
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<RowIterator> OpenPlanIterator(const Plan& plan,
                                              const Database& db,
                                              Executor::JoinPreference pref) {
  return Open(plan, db, pref);
}

Relation DrainIterator(RowIterator& it) {
  Relation out(it.schema());
  Tuple t;
  while (it.Next(&t)) out.Add(t);
  return out;
}

StatusOr<Relation> DrainIteratorGoverned(RowIterator& it, QueryContext* ctx) {
  ECA_CHECK(ctx != nullptr);
  Relation out(it.schema());
  ExecCharge charge(ctx);
  int64_t pending = 0;
  int64_t n = 0;
  Tuple t;
  while (it.Next(&t)) {
    if ((++n & 1023) == 0 && ctx->ShouldStop()) return ctx->StopStatus();
    pending += ApproxTupleBytes(t);
    out.Add(std::move(t));
    t = Tuple();
    if (pending >= (64 << 10)) {
      ECA_RETURN_IF_ERROR(charge.Add(pending, "pull-drain output"));
      pending = 0;
    }
  }
  ECA_RETURN_IF_ERROR(charge.Add(pending, "pull-drain output"));
  if (ctx->ShouldStop()) {
    Status s = ctx->StopStatus();
    if (!s.ok()) return s;
  }
  return out;
}

StatusOr<Relation> ExecutePullGoverned(const Plan& plan, const Database& db,
                                       QueryContext* ctx,
                                       Executor::JoinPreference pref) {
  std::unique_ptr<RowIterator> it = OpenPlanIterator(plan, db, pref);
  ECA_CHECK(it != nullptr);
  return DrainIteratorGoverned(*it, ctx);
}

Relation ExecutePull(const Plan& plan, const Database& db,
                     Executor::JoinPreference pref) {
  std::unique_ptr<RowIterator> it = OpenPlanIterator(plan, db, pref);
  ECA_CHECK(it != nullptr);
  return DrainIterator(*it);
}

Relation ExecutePullLimit(const Plan& plan, const Database& db,
                          int64_t limit) {
  std::unique_ptr<RowIterator> it = OpenPlanIterator(plan, db);
  ECA_CHECK(it != nullptr);
  Relation out(it->schema());
  Tuple t;
  while (out.NumRows() < limit && it->Next(&t)) out.Add(t);
  return out;
}

}  // namespace eca
