#include "exec/executor.h"

#include <chrono>

#include "common/thread_pool.h"

namespace eca {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

Executor::Executor(Options options) : options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Executor::~Executor() = default;

Relation Executor::Execute(const Plan& plan, const Database& db) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      // Leaf scans materialize a copy of the base table; chunk-parallel
      // row copy when a pool is available (output order is by row index
      // either way).
      const Relation& table = db.table(plan.rel_id());
      if (pool_ == nullptr) return table;
      Relation out(table.schema());
      out.mutable_rows().resize(table.rows().size());
      pool_->ParallelFor(
          pool_->ShardsFor(table.NumRows()), [&](int64_t c) {
            int64_t chunks = pool_->ShardsFor(table.NumRows());
            int64_t begin = c * table.NumRows() / chunks;
            int64_t end = (c + 1) * table.NumRows() / chunks;
            for (int64_t i = begin; i < end; ++i) {
              out.mutable_rows()[static_cast<size_t>(i)] =
                  table.rows()[static_cast<size_t>(i)];
            }
          });
      return out;
    }
    case Plan::Kind::kJoin:
      return ExecJoin(plan, db);
    case Plan::Kind::kComp:
      return ExecComp(plan, db);
  }
  return Relation();
}

Relation Executor::ExecJoin(const Plan& plan, const Database& db) {
  Relation left = Execute(*plan.left(), db);
  Relation right = Execute(*plan.right(), db);
  ++stats_.join_nodes;
  auto t0 = Clock::now();
  Relation out = EvalJoin(plan.op(), plan.pred(), left, right,
                          options_.join_preference, &stats_, pool_.get());
  stats_.join_ms += MsSince(t0);
  stats_.rows_produced += out.NumRows();
  return out;
}

Relation Executor::ExecComp(const Plan& plan, const Database& db) {
  Relation child = Execute(*plan.child(), db);
  ++stats_.comp_nodes;
  const CompOp& c = plan.comp();
  auto t0 = Clock::now();
  Relation out;
  switch (c.kind) {
    case CompOp::Kind::kLambda:
      out = EvalLambda(c.pred, c.attrs, child, pool_.get());
      break;
    case CompOp::Kind::kBeta:
      out = EvalBeta(child);
      break;
    case CompOp::Kind::kGamma:
      out = EvalGamma(c.attrs, child, pool_.get());
      break;
    case CompOp::Kind::kGammaStar:
      out = EvalGammaStar(c.attrs, c.keep, child, pool_.get());
      break;
    case CompOp::Kind::kProject:
      out = EvalProject(c.attrs, child);
      break;
  }
  stats_.comp_ms += MsSince(t0);
  stats_.rows_produced += out.NumRows();
  return out;
}

bool PlansEquivalentOn(const Plan& a, const Plan& b, const Database& db) {
  Executor ea, eb;
  Relation ra = CanonicalizeColumnOrder(ea.Execute(a, db));
  Relation rb = CanonicalizeColumnOrder(eb.Execute(b, db));
  return SameMultiset(ra, rb);
}

}  // namespace eca
