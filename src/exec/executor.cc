#include "exec/executor.h"

namespace eca {

Relation Executor::Execute(const Plan& plan, const Database& db) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return db.table(plan.rel_id());
    case Plan::Kind::kJoin:
      return ExecJoin(plan, db);
    case Plan::Kind::kComp:
      return ExecComp(plan, db);
  }
  return Relation();
}

Relation Executor::ExecJoin(const Plan& plan, const Database& db) {
  Relation left = Execute(*plan.left(), db);
  Relation right = Execute(*plan.right(), db);
  ++stats_.join_nodes;
  Relation out = EvalJoin(plan.op(), plan.pred(), left, right,
                          options_.join_preference, &stats_);
  stats_.rows_produced += out.NumRows();
  return out;
}

Relation Executor::ExecComp(const Plan& plan, const Database& db) {
  Relation child = Execute(*plan.child(), db);
  ++stats_.comp_nodes;
  const CompOp& c = plan.comp();
  Relation out;
  switch (c.kind) {
    case CompOp::Kind::kLambda:
      out = EvalLambda(c.pred, c.attrs, child);
      break;
    case CompOp::Kind::kBeta:
      out = EvalBeta(child);
      break;
    case CompOp::Kind::kGamma:
      out = EvalGamma(c.attrs, child);
      break;
    case CompOp::Kind::kGammaStar:
      out = EvalGammaStar(c.attrs, c.keep, child);
      break;
    case CompOp::Kind::kProject:
      out = EvalProject(c.attrs, child);
      break;
  }
  stats_.rows_produced += out.NumRows();
  return out;
}

bool PlansEquivalentOn(const Plan& a, const Plan& b, const Database& db) {
  Executor ea, eb;
  Relation ra = CanonicalizeColumnOrder(ea.Execute(a, db));
  Relation rb = CanonicalizeColumnOrder(eb.Execute(b, db));
  return SameMultiset(ra, rb);
}

}  // namespace eca
