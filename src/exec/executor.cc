#include "exec/executor.h"

#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/query_context.h"

namespace eca {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

Executor::Executor(Options options) : options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Executor::~Executor() = default;

Relation Executor::Execute(const Plan& plan, const Database& db) {
  TraceSpan span("execute");
  ExecStats before = stats_;
  Relation out = ExecNode(plan, db);
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(out.NumRows()));
  }
  PublishStatsDelta(before);
  return out;
}

void Executor::PublishStatsDelta(const ExecStats& before) const {
  auto& reg = MetricsRegistry::Global();
  static Counter* const rows = reg.counter("exec.rows_produced");
  static Counter* const probes = reg.counter("exec.probe_comparisons");
  static Counter* const joins = reg.counter("exec.join_nodes");
  static Counter* const comps = reg.counter("exec.comp_nodes");
  static Counter* const build_rows = reg.counter("exec.hash_build_rows");
  static Counter* const partitions = reg.counter("exec.partitions_built");
  static Counter* const spilled_parts =
      reg.counter("exec.spilled_partitions");
  static Counter* const spill_bytes = reg.counter("exec.spill_bytes");
  static Counter* const spill_read = reg.counter("exec.spill_read_bytes");
  static Counter* const sort_runs = reg.counter("exec.spilled_sort_runs");
  static Histogram* const join_us = reg.histogram("exec.join_us");
  static Histogram* const comp_us = reg.histogram("exec.comp_us");
  static Histogram* const peak = reg.histogram("exec.peak_bytes");
  rows->Add(stats_.rows_produced - before.rows_produced);
  probes->Add(stats_.probe_comparisons - before.probe_comparisons);
  joins->Add(stats_.join_nodes - before.join_nodes);
  comps->Add(stats_.comp_nodes - before.comp_nodes);
  build_rows->Add(stats_.hash_build_rows - before.hash_build_rows);
  partitions->Add(stats_.partitions_built - before.partitions_built);
  spilled_parts->Add(stats_.spilled_partitions - before.spilled_partitions);
  spill_bytes->Add(stats_.spill_bytes - before.spill_bytes);
  spill_read->Add(stats_.spill_read_bytes - before.spill_read_bytes);
  sort_runs->Add(stats_.spilled_sort_runs - before.spilled_sort_runs);
  if (stats_.join_nodes > before.join_nodes) {
    join_us->Record(
        static_cast<int64_t>((stats_.join_ms - before.join_ms) * 1000.0));
  }
  if (stats_.comp_nodes > before.comp_nodes) {
    comp_us->Record(
        static_cast<int64_t>((stats_.comp_ms - before.comp_ms) * 1000.0));
  }
  if (stats_.peak_bytes > 0) peak->Record(stats_.peak_bytes);
}

Relation Executor::ExecNode(const Plan& plan, const Database& db) {
  // Governed runs stop descending the moment the query is cancelled, past
  // its deadline, or carrying an error: subtrees return empty relations
  // that ExecuteWithContext discards in favor of StopStatus().
  if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
  Relation out;
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      // Leaf scans materialize a copy of the base table; chunk-parallel
      // row copy when a pool is available (output order is by row index
      // either way).
      const Relation& table = db.table(plan.rel_id());
      if (pool_ == nullptr) {
        out = table;
        break;
      }
      out = Relation(table.schema());
      out.mutable_rows().resize(table.rows().size());
      pool_->ParallelFor(
          pool_->ShardsFor(table.NumRows()), [&](int64_t c) {
            int64_t chunks = pool_->ShardsFor(table.NumRows());
            int64_t begin = c * table.NumRows() / chunks;
            int64_t end = (c + 1) * table.NumRows() / chunks;
            for (int64_t i = begin; i < end; ++i) {
              out.mutable_rows()[static_cast<size_t>(i)] =
                  table.rows()[static_cast<size_t>(i)];
            }
          });
      break;
    }
    case Plan::Kind::kJoin:
      out = ExecJoin(plan, db);
      break;
    case Plan::Kind::kComp:
      out = ExecComp(plan, db);
      break;
  }
  // Every plan node's materialized output is charged to the query tracker
  // as it comes into existence; the parent releases it once consumed.
  ChargeNodeOutput(out);
  return out;
}

StatusOr<Relation> Executor::ExecuteWithContext(const Plan& plan,
                                                const Database& db,
                                                QueryContext* ctx) {
  ECA_CHECK(ctx != nullptr);
  TraceSpan span("execute");
  if (span.active()) span.AppendArg("governed", "yes");
  ctx_ = ctx;
  ExecStats before = stats_;
  Relation out = ExecNode(plan, db);
  stats_.peak_bytes = ctx->tracker()->peak();
  PublishStatsDelta(before);
  if (ctx->ShouldStop()) {
    Status s = ctx->StopStatus();
    ctx_ = nullptr;
    if (!s.ok()) return s;
  }
  // Release the root's charge (ctx_ must still be set — ReleaseNodeOutput
  // is a no-op otherwise): the caller owns the result now and the tracker
  // balance returns to zero on success (asserted in tests).
  ReleaseNodeOutput(out);
  ctx_ = nullptr;
  return out;
}

void Executor::ChargeNodeOutput(const Relation& rel) {
  if (ctx_ == nullptr || ctx_->HasError() || rel.NumRows() == 0) return;
  ExecCharge charge(ctx_);
  Status s = charge.Add(ApproxRowsBytes(rel.rows()), "operator output");
  if (!s.ok()) {
    ctx_->RecordError(std::move(s));
    return;
  }
  charge.Detach();
}

void Executor::ReleaseNodeOutput(const Relation& rel) {
  // Mirror of ChargeNodeOutput; once an error is recorded charges stop,
  // so releases stop too (the failed query's tracker is discarded).
  if (ctx_ == nullptr || ctx_->HasError() || rel.NumRows() == 0) return;
  ctx_->tracker()->Release(ApproxRowsBytes(rel.rows()));
}

Relation Executor::ExecJoin(const Plan& plan, const Database& db) {
  Relation left = ExecNode(*plan.left(), db);
  Relation right = ExecNode(*plan.right(), db);
  if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
  ++stats_.join_nodes;
  TraceSpan span("join");
  if (span.active()) span.AppendArg("op", JoinOpName(plan.op()));
  auto t0 = Clock::now();
  Relation out = EvalJoin(plan.op(), plan.pred(), left, right,
                          options_.join_preference, &stats_, pool_.get(),
                          ctx_);
  stats_.join_ms += MsSince(t0);
  stats_.rows_produced += out.NumRows();
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(out.NumRows()));
  }
  ReleaseNodeOutput(left);
  ReleaseNodeOutput(right);
  return out;
}

namespace {

const char* CompSpanName(CompOp::Kind kind) {
  switch (kind) {
    case CompOp::Kind::kLambda:
      return "comp/lambda";
    case CompOp::Kind::kBeta:
      return "comp/beta";
    case CompOp::Kind::kGamma:
      return "comp/gamma";
    case CompOp::Kind::kGammaStar:
      return "comp/gamma-star";
    case CompOp::Kind::kProject:
      return "comp/project";
  }
  return "comp";
}

}  // namespace

Relation Executor::ExecComp(const Plan& plan, const Database& db) {
  Relation child = ExecNode(*plan.child(), db);
  if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
  ++stats_.comp_nodes;
  const CompOp& c = plan.comp();
  TraceSpan span(CompSpanName(c.kind));
  auto t0 = Clock::now();
  Relation out;
  switch (c.kind) {
    case CompOp::Kind::kLambda:
      out = EvalLambda(c.pred, c.attrs, child, pool_.get(), ctx_);
      break;
    case CompOp::Kind::kBeta:
      out = EvalBeta(child, ctx_, &stats_);
      break;
    case CompOp::Kind::kGamma:
      out = EvalGamma(c.attrs, child, pool_.get(), ctx_);
      break;
    case CompOp::Kind::kGammaStar:
      out = EvalGammaStar(c.attrs, c.keep, child, pool_.get(), ctx_,
                          &stats_);
      break;
    case CompOp::Kind::kProject:
      out = EvalProject(c.attrs, child);
      break;
  }
  stats_.comp_ms += MsSince(t0);
  stats_.rows_produced += out.NumRows();
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(out.NumRows()));
  }
  ReleaseNodeOutput(child);
  return out;
}

bool PlansEquivalentOn(const Plan& a, const Plan& b, const Database& db) {
  Executor ea, eb;
  Relation ra = CanonicalizeColumnOrder(ea.Execute(a, db));
  Relation rb = CanonicalizeColumnOrder(eb.Execute(b, db));
  return SameMultiset(ra, rb);
}

}  // namespace eca
