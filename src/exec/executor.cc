#include "exec/executor.h"

#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/fused_comp.h"
#include "exec/query_context.h"

namespace eca {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

// Output schema of `plan` without executing it; the fusion dispatch needs
// the base operator's schema to compile a chain before the base runs.
Schema PlanOutputSchema(const Plan& plan, const Database& db) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return db.table(plan.rel_id()).schema();
    case Plan::Kind::kJoin: {
      Schema left = PlanOutputSchema(*plan.left(), db);
      Schema right = PlanOutputSchema(*plan.right(), db);
      return JoinOutputSchema(plan.op(), left, right);
    }
    case Plan::Kind::kComp: {
      Schema child = PlanOutputSchema(*plan.child(), db);
      if (plan.comp().kind == CompOp::Kind::kProject) {
        return child.Project(plan.comp().attrs);
      }
      return child;  // lambda/beta/gamma/gamma* are schema-preserving
    }
  }
  return Schema();
}

}  // namespace

Executor::Executor(Options options) : options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Executor::~Executor() = default;

Relation Executor::Execute(const Plan& plan, const Database& db) {
  TraceSpan span("execute");
  ExecStats before = stats_;
  Relation out = ExecNode(plan, db);
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(out.NumRows()));
  }
  PublishStatsDelta(before);
  return out;
}

void Executor::PublishStatsDelta(const ExecStats& before) const {
  auto& reg = MetricsRegistry::Global();
  static Counter* const rows = reg.counter("exec.rows_produced");
  static Counter* const probes = reg.counter("exec.probe_comparisons");
  static Counter* const joins = reg.counter("exec.join_nodes");
  static Counter* const comps = reg.counter("exec.comp_nodes");
  static Counter* const build_rows = reg.counter("exec.hash_build_rows");
  static Counter* const partitions = reg.counter("exec.partitions_built");
  static Counter* const spilled_parts =
      reg.counter("exec.spilled_partitions");
  static Counter* const spill_bytes = reg.counter("exec.spill_bytes");
  static Counter* const spill_read = reg.counter("exec.spill_read_bytes");
  static Counter* const sort_runs = reg.counter("exec.spilled_sort_runs");
  static Histogram* const join_us = reg.histogram("exec.join_us");
  static Histogram* const comp_us = reg.histogram("exec.comp_us");
  static Histogram* const peak = reg.histogram("exec.peak_bytes");
  rows->Add(stats_.rows_produced - before.rows_produced);
  probes->Add(stats_.probe_comparisons - before.probe_comparisons);
  joins->Add(stats_.join_nodes - before.join_nodes);
  comps->Add(stats_.comp_nodes - before.comp_nodes);
  build_rows->Add(stats_.hash_build_rows - before.hash_build_rows);
  partitions->Add(stats_.partitions_built - before.partitions_built);
  spilled_parts->Add(stats_.spilled_partitions - before.spilled_partitions);
  spill_bytes->Add(stats_.spill_bytes - before.spill_bytes);
  spill_read->Add(stats_.spill_read_bytes - before.spill_read_bytes);
  sort_runs->Add(stats_.spilled_sort_runs - before.spilled_sort_runs);
  if (stats_.join_nodes > before.join_nodes) {
    join_us->Record(
        static_cast<int64_t>((stats_.join_ms - before.join_ms) * 1000.0));
  }
  if (stats_.comp_nodes > before.comp_nodes) {
    comp_us->Record(
        static_cast<int64_t>((stats_.comp_ms - before.comp_ms) * 1000.0));
  }
  if (stats_.peak_bytes > 0) peak->Record(stats_.peak_bytes);
}

Relation Executor::ExecNode(const Plan& plan, const Database& db) {
  // Governed runs stop descending the moment the query is cancelled, past
  // its deadline, or carrying an error: subtrees return empty relations
  // that ExecuteWithContext discards in favor of StopStatus().
  if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
  Relation out;
  switch (plan.kind()) {
    case Plan::Kind::kLeaf: {
      // Leaf scans materialize a copy of the base table; morsel-parallel
      // row copy when a pool is available (slots are written by row
      // index, so the output is identical either way).
      const Relation& table = db.table(plan.rel_id());
      if (pool_ == nullptr) {
        out = table;
        break;
      }
      out = Relation(table.schema());
      out.mutable_rows().resize(table.rows().size());
      MorselCursor cursor(table.NumRows(),
                          options_.tuning.Clamped().morsel_rows);
      pool_->RunOnWorkers([&](int) {
        int64_t begin, end, morsel;
        while (cursor.Next(&begin, &end, &morsel)) {
          for (int64_t i = begin; i < end; ++i) {
            out.mutable_rows()[static_cast<size_t>(i)] =
                table.rows()[static_cast<size_t>(i)];
          }
        }
      });
      break;
    }
    case Plan::Kind::kJoin:
      out = ExecJoin(plan, db);
      break;
    case Plan::Kind::kComp:
      out = ExecComp(plan, db);
      break;
  }
  // Every plan node's materialized output is charged to the query tracker
  // as it comes into existence; the parent releases it once consumed.
  ChargeNodeOutput(out);
  return out;
}

StatusOr<Relation> Executor::ExecuteWithContext(const Plan& plan,
                                                const Database& db,
                                                QueryContext* ctx) {
  ECA_CHECK(ctx != nullptr);
  TraceSpan span("execute");
  if (span.active()) span.AppendArg("governed", "yes");
  ctx_ = ctx;
  ExecStats before = stats_;
  Relation out = ExecNode(plan, db);
  stats_.peak_bytes = ctx->tracker()->peak();
  PublishStatsDelta(before);
  if (ctx->ShouldStop()) {
    Status s = ctx->StopStatus();
    ctx_ = nullptr;
    if (!s.ok()) return s;
  }
  // Release the root's charge (ctx_ must still be set — ReleaseNodeOutput
  // is a no-op otherwise): the caller owns the result now and the tracker
  // balance returns to zero on success (asserted in tests).
  ReleaseNodeOutput(out);
  ctx_ = nullptr;
  return out;
}

void Executor::ChargeNodeOutput(const Relation& rel) {
  if (ctx_ == nullptr || ctx_->HasError() || rel.NumRows() == 0) return;
  ExecCharge charge(ctx_);
  Status s = charge.Add(ApproxRowsBytes(rel.rows()), "operator output");
  if (!s.ok()) {
    ctx_->RecordError(std::move(s));
    return;
  }
  charge.Detach();
}

void Executor::ReleaseNodeOutput(const Relation& rel) {
  // Mirror of ChargeNodeOutput; once an error is recorded charges stop,
  // so releases stop too (the failed query's tracker is discarded).
  if (ctx_ == nullptr || ctx_->HasError() || rel.NumRows() == 0) return;
  ctx_->tracker()->Release(ApproxRowsBytes(rel.rows()));
}

Relation Executor::ExecJoin(const Plan& plan, const Database& db,
                            const FusedCompChain* fused) {
  Relation left = ExecNode(*plan.left(), db);
  Relation right = ExecNode(*plan.right(), db);
  if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
  ++stats_.join_nodes;
  TraceSpan span("join");
  if (span.active()) {
    span.AppendArg("op", JoinOpName(plan.op()));
    if (fused != nullptr && !fused->empty()) {
      span.AppendArg("fused_steps",
                     static_cast<long long>(fused->num_steps()));
    }
  }
  auto t0 = Clock::now();
  Relation out = EvalJoin(plan.op(), plan.pred(), left, right,
                          options_.join_preference, &stats_, pool_.get(),
                          ctx_, &options_.tuning, fused);
  stats_.join_ms += MsSince(t0);
  stats_.rows_produced += out.NumRows();
  if (span.active()) {
    span.AppendArg("rows", static_cast<long long>(out.NumRows()));
  }
  ReleaseNodeOutput(left);
  ReleaseNodeOutput(right);
  return out;
}

namespace {

const char* CompSpanName(CompOp::Kind kind) {
  switch (kind) {
    case CompOp::Kind::kLambda:
      return "comp/lambda";
    case CompOp::Kind::kBeta:
      return "comp/beta";
    case CompOp::Kind::kGamma:
      return "comp/gamma";
    case CompOp::Kind::kGammaStar:
      return "comp/gamma-star";
    case CompOp::Kind::kProject:
      return "comp/project";
  }
  return "comp";
}

}  // namespace

Relation Executor::ExecComp(const Plan& plan, const Database& db) {
  // Collect the maximal fusable stack of row-local compensation steps
  // rooted at this node: lambda and gamma always fuse; gamma* fuses only
  // as the top of the segment (its best-match half, beta, must run after
  // every fused step, so nothing above a gamma* can join its chain). The
  // walk stops at the first pipeline breaker (beta, project) or non-comp
  // node — that node is the segment's base.
  std::vector<const Plan*> fusable;  // top-down plan order
  const Plan* base = &plan;
  while (base->kind() == Plan::Kind::kComp) {
    const CompOp& op = base->comp();
    bool can_fuse =
        op.kind == CompOp::Kind::kLambda || op.kind == CompOp::Kind::kGamma ||
        (op.kind == CompOp::Kind::kGammaStar && fusable.empty());
    if (!can_fuse) break;
    fusable.push_back(base);
    base = &*base->child();
  }

  if (fusable.empty()) {
    // Pipeline breaker at the top (beta or project): materialize the
    // child (recursively fusing below it) and run the breaker.
    const CompOp& c = plan.comp();
    Relation child = ExecNode(*plan.child(), db);
    if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
    ++stats_.comp_nodes;
    TraceSpan span(CompSpanName(c.kind));
    auto t0 = Clock::now();
    Relation out = c.kind == CompOp::Kind::kBeta
                       ? EvalBeta(child, ctx_, &stats_)
                       : EvalProject(c.attrs, child);
    stats_.comp_ms += MsSince(t0);
    stats_.rows_produced += out.NumRows();
    if (span.active()) {
      span.AppendArg("rows", static_cast<long long>(out.NumRows()));
    }
    ReleaseNodeOutput(child);
    return out;
  }

  // Compile the chain against the base's output schema (every fused step
  // is schema-preserving, so one schema serves the whole chain), deepest
  // step first — the order the rows would have met the operators.
  const bool gamma_star_top =
      fusable.front()->comp().kind == CompOp::Kind::kGammaStar;
  FusedCompChain chain;
  Schema base_schema = PlanOutputSchema(*base, db);
  for (auto it = fusable.rbegin(); it != fusable.rend(); ++it) {
    const CompOp& op = (*it)->comp();
    switch (op.kind) {
      case CompOp::Kind::kLambda:
        chain.AddLambda(op.pred, op.attrs, base_schema);
        break;
      case CompOp::Kind::kGamma:
        chain.AddGamma(op.attrs, base_schema);
        break;
      case CompOp::Kind::kGammaStar:
        chain.AddGammaStarModify(op.attrs, op.keep, base_schema);
        break;
      default:
        break;
    }
  }

  Relation out;
  if (base->kind() == Plan::Kind::kJoin) {
    // The chain rides the join's probe pipeline: every emitted row passes
    // through it in place, no intermediate relation exists.
    out = ExecJoin(*base, db, &chain);
  } else {
    Relation base_rel = ExecNode(*base, db);
    if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
    TraceSpan span("comp/fused");
    if (span.active()) {
      span.AppendArg("steps", static_cast<long long>(chain.num_steps()));
    }
    auto t0 = Clock::now();
    out = ApplyFusedChain(chain, base_rel, pool_.get(), ctx_,
                          &options_.tuning);
    stats_.comp_ms += MsSince(t0);
    ReleaseNodeOutput(base_rel);
  }
  stats_.comp_nodes += static_cast<int64_t>(fusable.size());

  // gamma* at the segment top: its modify half ran fused above; the
  // best-match half is a pipeline breaker over the materialized result.
  if (gamma_star_top) {
    if (ctx_ != nullptr && ctx_->ShouldStop()) return Relation();
    TraceSpan bspan("comp/beta");
    auto t0 = Clock::now();
    Relation bout = EvalBeta(out, ctx_, &stats_);
    stats_.comp_ms += MsSince(t0);
    if (bspan.active()) {
      bspan.AppendArg("rows", static_cast<long long>(bout.NumRows()));
    }
    out = std::move(bout);
  }
  stats_.rows_produced += out.NumRows();
  return out;
}

bool PlansEquivalentOn(const Plan& a, const Plan& b, const Database& db) {
  Executor ea, eb;
  Relation ra = CanonicalizeColumnOrder(ea.Execute(a, db));
  Relation rb = CanonicalizeColumnOrder(eb.Execute(b, db));
  return SameMultiset(ra, rb);
}

}  // namespace eca
