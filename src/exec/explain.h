#ifndef ECA_EXEC_EXPLAIN_H_
#define ECA_EXEC_EXPLAIN_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "exec/database.h"
#include "exec/executor.h"

namespace eca {

// Per-operator execution profile collected by ExplainAnalyze.
struct NodeProfile {
  int depth = 0;
  std::string label;   // operator rendering ("loj[p12]", "gamma{R1}", ...)
  int64_t rows = 0;    // output rows
  double millis = 0;   // time in this operator (children excluded)
};

// Executes `plan` while timing every operator and counting its output.
// The profiles are in preorder (matching Plan::ToString()'s layout).
std::vector<NodeProfile> ProfilePlan(
    const Plan& plan, const Database& db,
    Executor::JoinPreference pref = Executor::JoinPreference::kHash);

// EXPLAIN ANALYZE rendering: the plan tree annotated with actual rows and
// per-operator time. Handy for understanding where a compensated plan
// spends its work (e.g. the best-match sort after a generalized outerjoin).
std::string ExplainAnalyze(
    const Plan& plan, const Database& db,
    Executor::JoinPreference pref = Executor::JoinPreference::kHash);

}  // namespace eca

#endif  // ECA_EXEC_EXPLAIN_H_
