#ifndef ECA_EXEC_ITERATOR_EXEC_H_
#define ECA_EXEC_ITERATOR_EXEC_H_

#include <memory>

#include "algebra/plan.h"
#include "exec/database.h"
#include "exec/executor.h"

namespace eca {

// Pull-based (Volcano-style) execution: each operator exposes Next(), and
// tuples stream through the pipeline without materializing every
// intermediate. Streaming operators: scan, nested-loop/hash-join probe,
// lambda, gamma, projection, and the match-producing part of outerjoins.
// Pipeline breakers: hash-join build, the padding phase of right/full
// outerjoins and semi/antijoin outputs, and the best-match operators
// (beta, gamma*), which inherently need the whole input.
//
// The pull engine produces exactly the same multisets as the materializing
// Executor (verified against it on random plans in iterator_exec_test.cc);
// it exists to bound peak memory for deep plans and as the substrate for
// the row-limit / early-out use cases a library consumer expects.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  // Produces the next tuple; false at end of stream. `out` is only valid
  // when true is returned.
  virtual bool Next(Tuple* out) = 0;

  // Output schema of this operator.
  virtual const Schema& schema() const = 0;
};

// Builds the iterator tree for `plan` over `db`. The returned iterator
// borrows `db` (must outlive it).
std::unique_ptr<RowIterator> OpenPlanIterator(
    const Plan& plan, const Database& db,
    Executor::JoinPreference pref = Executor::JoinPreference::kHash);

// Convenience: drains the iterator into a relation.
Relation DrainIterator(RowIterator& it);

// Governed drain: observes `ctx`'s cancellation/deadline every 1024 rows
// and charges the materialized output to its memory tracker, so even the
// streaming engine honors the --timeout-ms / --mem-limit-mb contract at
// its single materialization point.
StatusOr<Relation> DrainIteratorGoverned(RowIterator& it, QueryContext* ctx);

// Full pull-based execution under a resource governor.
StatusOr<Relation> ExecutePullGoverned(const Plan& plan, const Database& db,
                                       QueryContext* ctx,
                                       Executor::JoinPreference pref =
                                           Executor::JoinPreference::kHash);

// Full pull-based execution of a plan.
Relation ExecutePull(const Plan& plan, const Database& db,
                     Executor::JoinPreference pref =
                         Executor::JoinPreference::kHash);

// Pulls at most `limit` rows — the early-out path a streaming pipeline
// enables (a materializing engine would compute everything first).
Relation ExecutePullLimit(const Plan& plan, const Database& db,
                          int64_t limit);

}  // namespace eca

#endif  // ECA_EXEC_ITERATOR_EXEC_H_
