#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/chunk.h"
#include "exec/executor.h"
#include "exec/fused_comp.h"
#include "exec/query_context.h"
#include "storage/spill_file.h"
#include "types/tri_bool.h"

namespace eca {

namespace {

// A conjunct of the form <left col> = <right col> usable as a hash/merge key.
struct EquiKey {
  ScalarRef left_expr;
  ScalarRef right_expr;
};

// Splits `pred` into equi-key conjuncts across (left_rels, right_rels) and a
// residual predicate (nullptr if none). Only top-level AND conjuncts are
// considered.
void SplitEquiKeys(const PredRef& pred, RelSet left_rels, RelSet right_rels,
                   std::vector<EquiKey>* keys, PredRef* residual) {
  std::vector<PredRef> conjuncts;
  std::vector<PredRef> pending = {pred};
  while (!pending.empty()) {
    PredRef p = pending.back();
    pending.pop_back();
    if (p->kind() == Predicate::Kind::kAnd) {
      for (const PredRef& c : p->children()) pending.push_back(c);
    } else {
      conjuncts.push_back(p);
    }
  }
  std::vector<PredRef> residual_conjuncts;
  for (const PredRef& c : conjuncts) {
    bool is_key = false;
    if (c->kind() == Predicate::Kind::kCompare &&
        c->cmp_op() == Predicate::CmpOp::kEq) {
      RelSet lr = c->scalar_left()->refs();
      RelSet rr = c->scalar_right()->refs();
      if (!lr.Empty() && !rr.Empty()) {
        if (left_rels.ContainsAll(lr) && right_rels.ContainsAll(rr)) {
          keys->push_back({c->scalar_left(), c->scalar_right()});
          is_key = true;
        } else if (right_rels.ContainsAll(lr) && left_rels.ContainsAll(rr)) {
          keys->push_back({c->scalar_right(), c->scalar_left()});
          is_key = true;
        }
      }
    }
    if (!is_key) residual_conjuncts.push_back(c);
  }
  *residual = residual_conjuncts.empty() ? nullptr
                                         : Predicate::And(residual_conjuncts);
}

// Evaluates one side's key expressions for a row. Key expressions are almost
// always bare column refs, so column indexes are precomputed; NULL keys
// never match under null-intolerant equality. Eval is const and touches no
// shared state, so one bound evaluator serves all worker threads.
struct KeyEvaluator {
  std::vector<ScalarRef> exprs;
  std::vector<int> col_fastpath;  // column index or -1
  const Schema* schema = nullptr;

  void Bind(std::vector<ScalarRef> key_exprs, const Schema& s) {
    exprs = std::move(key_exprs);
    schema = &s;
    col_fastpath.clear();
    for (const ScalarRef& e : exprs) {
      if (e->kind() == Scalar::Kind::kColumn) {
        int idx = s.FindColumn(e->rel_id(), e->column_name());
        ECA_CHECK(idx >= 0);
        col_fastpath.push_back(idx);
      } else {
        col_fastpath.push_back(-1);
      }
    }
  }

  // Returns true and fills `out` when all keys are non-NULL.
  bool Eval(const Tuple& row, std::vector<Value>* out) const {
    out->clear();
    for (size_t i = 0; i < exprs.size(); ++i) {
      Value v = col_fastpath[i] >= 0
                    ? row[static_cast<size_t>(col_fastpath[i])]
                    : exprs[i]->Eval(*schema, row);
      if (v.is_null()) return false;
      out->push_back(std::move(v));
    }
    return true;
  }
};

struct JoinShape {
  Schema out_schema;     // schema of emitted tuples
  Schema concat_schema;  // left ++ right, used for predicate evaluation
  int left_width = 0;
  int right_width = 0;
};

JoinShape MakeShape(JoinOp op, const Relation& left, const Relation& right) {
  JoinShape shape;
  shape.concat_schema = left.schema().Concat(right.schema());
  shape.left_width = left.schema().NumColumns();
  shape.right_width = right.schema().NumColumns();
  switch (op) {
    case JoinOp::kLeftSemi:
    case JoinOp::kLeftAnti:
      shape.out_schema = left.schema();
      break;
    case JoinOp::kRightSemi:
    case JoinOp::kRightAnti:
      shape.out_schema = right.schema();
      break;
    default:
      shape.out_schema = shape.concat_schema;
      break;
  }
  return shape;
}

bool NeedsLeftFlags(JoinOp op) {
  return op == JoinOp::kLeftOuter || op == JoinOp::kFullOuter ||
         OutputsOneSide(op);
}

bool NeedsRightFlags(JoinOp op) {
  return op == JoinOp::kRightOuter || op == JoinOp::kFullOuter ||
         OutputsOneSide(op);
}

// The padding / side-emission phase every join algorithm ends with:
// appends outer-join NULL padding for unmatched rows, or emits the
// semi/anti output from the matched flags. Runs sequentially in row
// order, so the tail of the output is independent of how the matched
// flags were computed. A fused compensation chain (operators stacked
// directly above the join in the plan) applies to these rows exactly as
// it applies to matched pairs — the chain sits above the whole join
// output, padding included.
void FinishJoinOutput(JoinOp op, const JoinShape& shape, const Relation& left,
                      const Relation& right,
                      const std::vector<uint8_t>& left_matched,
                      const std::vector<uint8_t>& right_matched,
                      const FusedCompChain* fused, Relation* out) {
  auto add = [&](Tuple t) {
    if (fused == nullptr || fused->Apply(&t)) out->Add(std::move(t));
  };
  auto emit_unmatched_left_padded = [&] {
    Tuple pad =
        NullsFor(shape.concat_schema, shape.left_width, shape.right_width);
    for (size_t i = 0; i < left_matched.size(); ++i) {
      if (!left_matched[i]) add(ConcatTuples(left.rows()[i], pad));
    }
  };
  auto emit_unmatched_right_padded = [&] {
    Tuple pad = NullsFor(shape.concat_schema, 0, shape.left_width);
    for (size_t i = 0; i < right_matched.size(); ++i) {
      if (!right_matched[i]) add(ConcatTuples(pad, right.rows()[i]));
    }
  };
  auto emit_side = [&](const Relation& side,
                       const std::vector<uint8_t>& matched,
                       bool want_matched) {
    for (size_t i = 0; i < matched.size(); ++i) {
      if (static_cast<bool>(matched[i]) == want_matched) {
        add(side.rows()[i]);
      }
    }
  };
  switch (op) {
    case JoinOp::kCross:
    case JoinOp::kInner:
      break;
    case JoinOp::kLeftOuter:
      emit_unmatched_left_padded();
      break;
    case JoinOp::kRightOuter:
      emit_unmatched_right_padded();
      break;
    case JoinOp::kFullOuter:
      emit_unmatched_left_padded();
      emit_unmatched_right_padded();
      break;
    case JoinOp::kLeftSemi:
      emit_side(left, left_matched, /*want_matched=*/true);
      break;
    case JoinOp::kLeftAnti:
      emit_side(left, left_matched, /*want_matched=*/false);
      break;
    case JoinOp::kRightSemi:
      emit_side(right, right_matched, /*want_matched=*/true);
      break;
    case JoinOp::kRightAnti:
      emit_side(right, right_matched, /*want_matched=*/false);
      break;
  }
}

// Assembles the output from per-pair matches plus matched flags, shared by
// the sequential (nested-loop, sort-merge) join algorithms.
class JoinEmitter {
 public:
  JoinEmitter(JoinOp op, const JoinShape& shape, const Relation& left,
              const Relation& right, const FusedCompChain* fused = nullptr)
      : op_(op), shape_(shape), left_(left), right_(right), fused_(fused),
        out_(shape.out_schema) {
    if (NeedsLeftFlags(op)) {
      left_matched_.assign(static_cast<size_t>(left.NumRows()), 0);
    }
    if (NeedsRightFlags(op)) {
      right_matched_.assign(static_cast<size_t>(right.NumRows()), 0);
    }
  }

  void Match(int64_t li, int64_t ri) {
    // Matched flags reflect the join itself; the fused chain only gates
    // what reaches the output (a gamma above the join drops rows, it does
    // not un-match them).
    if (!left_matched_.empty()) left_matched_[static_cast<size_t>(li)] = 1;
    if (!right_matched_.empty()) right_matched_[static_cast<size_t>(ri)] = 1;
    if (OutputsOneSide(op_)) return;  // semi/anti emit in Finish()
    Tuple t = ConcatTuples(left_.rows()[static_cast<size_t>(li)],
                           right_.rows()[static_cast<size_t>(ri)]);
    if (fused_ == nullptr || fused_->Apply(&t)) out_.Add(std::move(t));
  }

  Relation Finish() {
    FinishJoinOutput(op_, shape_, left_, right_, left_matched_,
                     right_matched_, fused_, &out_);
    return std::move(out_);
  }

  // Output accumulated so far (pre-Finish); the governed nested-loop
  // path charges its growth against the memory tracker.
  const Relation& out() const { return out_; }

 private:
  JoinOp op_;
  const JoinShape& shape_;
  const Relation& left_;
  const Relation& right_;
  const FusedCompChain* fused_;
  Relation out_;
  std::vector<uint8_t> left_matched_;
  std::vector<uint8_t> right_matched_;
};

Relation NestedLoopJoin(JoinOp op, const PredRef& pred, const Relation& left,
                        const Relation& right, ExecStats* stats,
                        QueryContext* ctx = nullptr,
                        const FusedCompChain* fused = nullptr) {
  JoinShape shape = MakeShape(op, left, right);
  JoinEmitter emitter(op, shape, left, right, fused);
  CompiledPredicate compiled;
  bool have_pred = pred != nullptr;
  if (have_pred) compiled = CompiledPredicate(pred, shape.concat_schema);
  // Governed runs enforce the hard limit while the output materializes
  // (a cross join can explode well before the executor's node-level
  // charge would see it); the charge is scratch, released on return.
  ExecCharge out_charge(ctx);
  size_t charged_rows = 0;
  int64_t pending_bytes = 0;
  for (int64_t li = 0; li < left.NumRows(); ++li) {
    if (ctx != nullptr && (li & 1023) == 0 && ctx->ShouldStop()) break;
    for (int64_t ri = 0; ri < right.NumRows(); ++ri) {
      if (stats != nullptr) ++stats->probe_comparisons;
      bool match = true;
      if (have_pred) {
        Tuple t = ConcatTuples(left.rows()[static_cast<size_t>(li)],
                               right.rows()[static_cast<size_t>(ri)]);
        match = compiled.EvalTrue(t);
      }
      if (match) emitter.Match(li, ri);
    }
    if (ctx != nullptr) {
      const auto& rows = emitter.out().rows();
      for (; charged_rows < rows.size(); ++charged_rows) {
        pending_bytes += ApproxTupleBytes(rows[charged_rows]);
      }
      if (pending_bytes >= (64 << 10)) {
        Status s = out_charge.Add(pending_bytes, "nested-loop join output");
        pending_bytes = 0;
        if (!s.ok()) {
          ctx->RecordError(std::move(s));
          break;
        }
      }
    }
  }
  return emitter.Finish();
}

// --- Morsel-driven vectorized hash join -----------------------------------
//
// The build side goes into ONE open-addressing table shared by all
// workers: keys are extracted into typed flat columns (KeyChunkSet) and
// inserted with a single compare-exchange per row, in the same morsel
// pass that evaluates the keys. There is no scatter phase, no
// per-partition table build, and — crucially — none of the two barrier
// pairs the old partitioned build ran per join, which dominated runtime
// at small-to-medium build sides and made adding threads a net loss.
//
// Determinism: CAS insertion order varies across runs, but the table is
// only a *set* of row indexes per key — the probe collects every matching
// build row from the linear-probe cluster and sorts the (usually 0- or
// 1-element) match list ascending, restoring the increasing-build-row
// emit order the row engine produced. Probe output is buffered per morsel
// and concatenated in morsel-index order, and morsel boundaries depend
// only on (rows, morsel_rows) — so output bytes are identical for every
// thread count.

// Fanout of the partition-shape statistics (partitions_built,
// max/min_partition_rows, partition_skew): a fixed histogram over the low
// 4 hash bits, computed after the build. The old code derived these from
// the physical partition count (4x threads), so a 1-thread run reported a
// meaningless skew of 1.000 over its single partition and the numbers
// changed shape with --threads; the fixed fanout makes them a property of
// the data, identical at every thread count.
constexpr int kStatFanout = 16;

struct JoinTable {
  KeyChunkSet keys;                         // columnar build-side keys
  std::vector<std::atomic<int64_t>> slots;  // open addressing; -1 = empty
  uint64_t mask = 0;                        // slots.size() - 1 (power of 2)
  int64_t valid_rows = 0;                   // rows with non-NULL keys
};

void BuildJoinTable(const Relation& rel, const std::vector<int>& col_idx,
                    const std::vector<ScalarRef>& exprs,
                    const std::vector<KeyColumn::Tag>& tags, ThreadPool* pool,
                    const ExecTuning& tuning, QueryContext* ctx,
                    ExecStats* stats, JoinTable* table) {
  TraceSpan span("join/build");
  const int64_t n = rel.NumRows();
  if (span.active()) span.AppendArg("rows", static_cast<long long>(n));
  table->keys.Reset(tags, n);
  int64_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  table->slots = std::vector<std::atomic<int64_t>>(static_cast<size_t>(cap));
  for (auto& s : table->slots) s.store(-1, std::memory_order_relaxed);
  table->mask = static_cast<uint64_t>(cap - 1);

  // One fused pass: extract the morsel's keys into the typed columns and
  // CAS each valid row into the table. Load factor stays <= 0.5, so
  // linear-probe clusters are short.
  MorselCursor cursor(n, tuning.morsel_rows);
  auto build_worker = [&](int) {
    int64_t begin, end, morsel;
    while (cursor.Next(&begin, &end, &morsel)) {
      if (ctx != nullptr && ctx->ShouldStop()) return;
      for (int64_t r = begin; r < end; ++r) {
        table->keys.ExtractRow(r, rel.rows()[static_cast<size_t>(r)], col_idx,
                               exprs, rel.schema());
        if (!table->keys.ValidAt(r)) continue;
        uint64_t idx =
            table->keys.hashes[static_cast<size_t>(r)] & table->mask;
        int64_t expected = -1;
        while (!table->slots[idx].compare_exchange_strong(
            expected, r, std::memory_order_release,
            std::memory_order_relaxed)) {
          expected = -1;
          idx = (idx + 1) & table->mask;
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->RunOnWorkers(build_worker);
  } else {
    build_worker(0);
  }

  int64_t counts[kStatFanout] = {0};
  int64_t valid = 0;
  for (int64_t r = 0; r < n; ++r) {
    if (!table->keys.ValidAt(r)) continue;
    ++valid;
    ++counts[table->keys.hashes[static_cast<size_t>(r)] &
             uint64_t{kStatFanout - 1}];
  }
  table->valid_rows = valid;
  if (stats != nullptr) {
    stats->hash_build_rows += valid;
    stats->partitions_built += kStatFanout;
    int64_t max_rows = 0;
    int64_t min_rows = counts[0];
    for (int64_t c : counts) {
      max_rows = std::max(max_rows, c);
      min_rows = std::min(min_rows, c);
    }
    stats->max_partition_rows = std::max(stats->max_partition_rows, max_rows);
    // First-build detection is an explicit flag; the old heuristic
    // (`partitions_built == P`) misfired as soon as two joins in one
    // Execute() used different partition counts, leaving min_partition_rows
    // stuck at the first join's value.
    stats->min_partition_rows = stats->partition_stats_seeded
                                    ? std::min(stats->min_partition_rows,
                                               min_rows)
                                    : min_rows;
    stats->partition_stats_seeded = true;
    double mean = static_cast<double>(valid) / kStatFanout;
    double skew = mean > 0 ? static_cast<double>(max_rows) / mean : 1.0;
    stats->partition_skew = std::max(stats->partition_skew, skew);
  }
}

// --- Grace (spilling) hash join -------------------------------------------
//
// The escalation target when a governed hash join's build side would push
// the memory tracker past its soft threshold: both sides are hash-
// partitioned to temp files (rows with NULL keys never spill — they cannot
// match and their outer/anti handling comes from the matched flags), then
// each partition is joined independently with only its build slice
// resident. A partition whose build side still exceeds the budget is
// re-partitioned recursively on the next 4 hash bits. Peak memory is one
// build partition plus the output.
//
// Output stays byte-identical to the in-memory join: the in-memory probe
// emits matches in ascending (probe row, build row) order — all matches of
// one probe row share its key, hence its hash, hence one bucket whose
// build rows are inserted in increasing row order. Here every spilled row
// carries its global row index as the record tag, partitioning preserves
// relative order per partition, all matches of one probe row land in one
// partition, and a final stable sort on the probe index restores the
// global order. The matched-flag arrays are global, so the sequential
// FinishJoinOutput padding phase is identical too.

constexpr int kGraceFanout = 16;  // partitions per level: 4 hash bits
constexpr int kGraceMaxDepth = 8;  // beyond this, process in memory

size_t GracePartOf(uint64_t h, int depth) {
  return static_cast<size_t>(
      (h >> (4 * depth)) & static_cast<uint64_t>(kGraceFanout - 1));
}

// Lazily-opened fan of partition files for one side of one level.
class GraceFan {
 public:
  GraceFan(SpillDir* dir, SpillStats* stats) : dir_(dir), stats_(stats) {}

  Status Add(size_t part, uint64_t tag, const Tuple& row) {
    SpillWriter& w = writers_[part];
    if (paths_[part].empty()) {
      ECA_ASSIGN_OR_RETURN(std::string path, dir_->NextFilePath());
      ECA_RETURN_IF_ERROR(w.Open(path, stats_));
      paths_[part] = std::move(path);
    }
    return w.Append(tag, row);
  }

  Status FinishAll() {
    for (int p = 0; p < kGraceFanout; ++p) {
      if (!paths_[p].empty()) ECA_RETURN_IF_ERROR(writers_[p].Finish());
    }
    return Status::OK();
  }

  // Empty string when no row landed in `part`.
  const std::string& path(size_t part) const { return paths_[part]; }
  int64_t bytes(size_t part) const { return writers_[part].bytes_written(); }

 private:
  SpillDir* dir_;
  SpillStats* stats_;
  SpillWriter writers_[kGraceFanout];
  std::string paths_[kGraceFanout];
};

class GraceHashJoin {
 public:
  GraceHashJoin(JoinOp op, const JoinShape& shape,
                const KeyEvaluator& build_keys, const KeyEvaluator& probe_keys,
                bool build_left, const CompiledPredicate* residual,
                const FusedCompChain* fused, const Relation& left,
                const Relation& right, QueryContext* ctx, ExecStats* stats)
      : op_(op),
        shape_(shape),
        build_keys_(build_keys),
        probe_keys_(probe_keys),
        build_left_(build_left),
        residual_(residual),
        fused_(fused),
        left_(left),
        right_(right),
        build_(build_left ? left : right),
        probe_(build_left ? right : left),
        ctx_(ctx),
        stats_(stats),
        dir_("eca-grace", ctx->spill_dir()),
        out_charge_(ctx) {
    if (NeedsLeftFlags(op)) {
      left_matched_.assign(static_cast<size_t>(left.NumRows()), 0);
    }
    if (NeedsRightFlags(op)) {
      right_matched_.assign(static_cast<size_t>(right.NumRows()), 0);
    }
  }

  Status Run(Relation* out) {
    SpillStats before = sstats_;
    Status s = RunImpl(out);
    if (stats_ != nullptr) {
      stats_->spill_bytes += sstats_.bytes_written - before.bytes_written;
      stats_->spill_read_bytes += sstats_.bytes_read - before.bytes_read;
    }
    return s;
  }

 private:
  struct TaggedRow {
    uint64_t tag;
    Tuple row;
  };

  // Build-partition budget: a leaf is processed in memory only once its
  // build slice fits under this, otherwise it re-partitions.
  int64_t PartitionBudget() const {
    int64_t soft = ctx_->tracker()->soft_bytes();
    if (soft <= 0) return int64_t{16} << 20;
    return std::max<int64_t>(soft / 4, int64_t{16} << 10);
  }

  Status RunImpl(Relation* out) {
    // Level 0: partition both in-memory sides.
    GraceFan build_fan(&dir_, &sstats_);
    GraceFan probe_fan(&dir_, &sstats_);
    {
      TraceSpan part_span("join/partition");
      ECA_RETURN_IF_ERROR(PartitionRelation(build_, build_keys_, &build_fan));
      ECA_RETURN_IF_ERROR(PartitionRelation(probe_, probe_keys_, &probe_fan));
      ECA_RETURN_IF_ERROR(build_fan.FinishAll());
      ECA_RETURN_IF_ERROR(probe_fan.FinishAll());
    }

    for (int p = 0; p < kGraceFanout; ++p) {
      ECA_RETURN_IF_ERROR(ProcessPartition(build_fan.path(p),
                                           build_fan.bytes(p),
                                           probe_fan.path(p), /*depth=*/1));
    }

    // Stable sort on the probe index restores the in-memory emit order
    // (within one probe row, partition-local order is already ascending
    // build index, and one probe row's matches live in one partition).
    std::stable_sort(matches_.begin(), matches_.end(),
                     [](const TaggedRow& a, const TaggedRow& b) {
                       return a.tag < b.tag;
                     });
    Relation result(shape_.out_schema);
    result.mutable_rows().reserve(matches_.size());
    for (TaggedRow& m : matches_) result.Add(std::move(m.row));
    matches_.clear();
    FinishJoinOutput(op_, shape_, left_, right_, left_matched_,
                     right_matched_, fused_, &result);
    *out = std::move(result);
    return Status::OK();
  }

  Status PartitionRelation(const Relation& rel, const KeyEvaluator& ke,
                           GraceFan* fan) {
    std::vector<Value> kv;
    for (int64_t r = 0; r < rel.NumRows(); ++r) {
      if ((r & 4095) == 0 && ctx_->ShouldStop()) return ctx_->StopStatus();
      const Tuple& row = rel.rows()[static_cast<size_t>(r)];
      if (!ke.Eval(row, &kv)) continue;  // NULL keys never match
      uint64_t h = HashTuple(kv);
      ECA_RETURN_IF_ERROR(
          fan->Add(GracePartOf(h, 0), static_cast<uint64_t>(r), row));
    }
    return Status::OK();
  }

  // Streams a spill file through the key evaluator into a deeper fan.
  Status Repartition(const std::string& path, const KeyEvaluator& ke,
                     int depth, GraceFan* fan) {
    SpillReader reader;
    ECA_RETURN_IF_ERROR(reader.Open(path, &sstats_));
    std::vector<Value> kv;
    uint64_t tag = 0;
    Tuple row;
    bool eof = false;
    int64_t n = 0;
    while (true) {
      ECA_RETURN_IF_ERROR(reader.Next(&tag, &row, &eof));
      if (eof) break;
      if ((++n & 4095) == 0 && ctx_->ShouldStop()) return ctx_->StopStatus();
      bool valid = ke.Eval(row, &kv);
      ECA_DCHECK(valid);  // NULL-key rows were never spilled
      (void)valid;
      ECA_RETURN_IF_ERROR(
          fan->Add(GracePartOf(HashTuple(kv), depth), tag, row));
    }
    return Status::OK();
  }

  Status ProcessPartition(const std::string& build_path, int64_t build_bytes,
                          const std::string& probe_path, int depth) {
    // A side with no file received no rows; nothing can match, and the
    // matched flags already default to unmatched.
    if (build_path.empty() || probe_path.empty()) return Status::OK();
    if (ctx_->ShouldStop()) return ctx_->StopStatus();
    if (depth < kGraceMaxDepth && build_bytes > PartitionBudget()) {
      GraceFan build_fan(&dir_, &sstats_);
      GraceFan probe_fan(&dir_, &sstats_);
      ECA_RETURN_IF_ERROR(
          Repartition(build_path, build_keys_, depth, &build_fan));
      ECA_RETURN_IF_ERROR(
          Repartition(probe_path, probe_keys_, depth, &probe_fan));
      ECA_RETURN_IF_ERROR(build_fan.FinishAll());
      ECA_RETURN_IF_ERROR(probe_fan.FinishAll());
      for (int p = 0; p < kGraceFanout; ++p) {
        ECA_RETURN_IF_ERROR(ProcessPartition(build_fan.path(p),
                                             build_fan.bytes(p),
                                             probe_fan.path(p), depth + 1));
      }
      return Status::OK();
    }
    return ProbeLeaf(build_path, probe_path);
  }

  Status ProbeLeaf(const std::string& build_path,
                   const std::string& probe_path) {
    TraceSpan span("join/spill-probe");
    if (stats_ != nullptr) ++stats_->spilled_partitions;

    // Load the build slice (the only resident piece) and key it by hash;
    // file order is ascending global row index, so bucket vectors are too.
    ExecCharge part_charge(ctx_);
    int64_t pending = 0;
    std::vector<TaggedRow> build_rows;
    std::vector<std::vector<Value>> build_kvs;
    std::unordered_map<uint64_t, std::vector<size_t>> table;
    {
      SpillReader reader;
      ECA_RETURN_IF_ERROR(reader.Open(build_path, &sstats_));
      uint64_t tag = 0;
      Tuple row;
      bool eof = false;
      std::vector<Value> kv;
      while (true) {
        ECA_RETURN_IF_ERROR(reader.Next(&tag, &row, &eof));
        if (eof) break;
        bool valid = build_keys_.Eval(row, &kv);
        ECA_DCHECK(valid);
        (void)valid;
        pending += ApproxTupleBytes(row);
        if (pending >= (64 << 10)) {
          ECA_RETURN_IF_ERROR(
              part_charge.Add(pending, "grace-join build partition"));
          pending = 0;
        }
        table[HashTuple(kv)].push_back(build_rows.size());
        build_rows.push_back({tag, std::move(row)});
        build_kvs.push_back(kv);
        row = Tuple();
      }
    }
    ECA_RETURN_IF_ERROR(
        part_charge.Add(pending, "grace-join build partition"));
    if (stats_ != nullptr) {
      stats_->hash_build_rows += static_cast<int64_t>(build_rows.size());
    }

    // Stream the probe side; nothing but the current row is resident.
    const bool need_build = build_left_ ? !left_matched_.empty()
                                        : !right_matched_.empty();
    const bool need_probe = build_left_ ? !right_matched_.empty()
                                        : !left_matched_.empty();
    std::vector<uint8_t>& build_flags =
        build_left_ ? left_matched_ : right_matched_;
    std::vector<uint8_t>& probe_flags =
        build_left_ ? right_matched_ : left_matched_;
    const bool emit_pairs = !OutputsOneSide(op_);

    SpillReader reader;
    ECA_RETURN_IF_ERROR(reader.Open(probe_path, &sstats_));
    uint64_t ptag = 0;
    Tuple prow;
    bool eof = false;
    std::vector<Value> kv;
    int64_t n = 0;
    int64_t out_pending = 0;
    while (true) {
      ECA_RETURN_IF_ERROR(reader.Next(&ptag, &prow, &eof));
      if (eof) break;
      if ((++n & 1023) == 0 && ctx_->ShouldStop()) return ctx_->StopStatus();
      bool valid = probe_keys_.Eval(prow, &kv);
      ECA_DCHECK(valid);
      (void)valid;
      auto it = table.find(HashTuple(kv));
      if (it == table.end()) continue;
      for (size_t bi : it->second) {
        if (stats_ != nullptr) ++stats_->probe_comparisons;
        const std::vector<Value>& bk = build_kvs[bi];
        bool key_equal = kv.size() == bk.size();
        for (size_t i = 0; key_equal && i < kv.size(); ++i) {
          if (!kv[i].SameAs(bk[i])) key_equal = false;
        }
        if (!key_equal) continue;
        const Tuple& brow = build_rows[bi].row;
        const Tuple& lrow = build_left_ ? brow : prow;
        const Tuple& rrow = build_left_ ? prow : brow;
        if (residual_ != nullptr &&
            !residual_->EvalTrue(ConcatTuples(lrow, rrow))) {
          continue;
        }
        if (need_probe) probe_flags[static_cast<size_t>(ptag)] = 1;
        if (need_build) {
          build_flags[static_cast<size_t>(build_rows[bi].tag)] = 1;
        }
        if (emit_pairs) {
          Tuple t = ConcatTuples(lrow, rrow);
          // The fused chain applies per emitted row here exactly as in the
          // in-memory probe, so escalation stays byte-identical.
          if (fused_ != nullptr && !fused_->Apply(&t)) continue;
          out_pending += ApproxTupleBytes(t);
          matches_.push_back({ptag, std::move(t)});
          if (out_pending >= (64 << 10)) {
            ECA_RETURN_IF_ERROR(
                out_charge_.Add(out_pending, "grace-join output"));
            out_pending = 0;
          }
        }
      }
    }
    return out_charge_.Add(out_pending, "grace-join output");
  }

  const JoinOp op_;
  const JoinShape& shape_;
  const KeyEvaluator& build_keys_;
  const KeyEvaluator& probe_keys_;
  const bool build_left_;
  const CompiledPredicate* residual_;
  const FusedCompChain* fused_;
  const Relation& left_;
  const Relation& right_;
  const Relation& build_;
  const Relation& probe_;
  QueryContext* ctx_;
  ExecStats* stats_;
  SpillDir dir_;
  SpillStats sstats_;
  ExecCharge out_charge_;  // the accumulated match output (scratch here;
                           // the executor re-charges it as node output)
  std::vector<TaggedRow> matches_;  // (probe row index, output tuple)
  std::vector<uint8_t> left_matched_;
  std::vector<uint8_t> right_matched_;
};

Relation HashJoin(JoinOp op, const std::vector<EquiKey>& keys,
                  const PredRef& residual, const Relation& left,
                  const Relation& right, ExecStats* stats, ThreadPool* pool,
                  QueryContext* ctx, const ExecTuning& tuning,
                  const FusedCompChain* fused) {
  JoinShape shape = MakeShape(op, left, right);

  // Build on the smaller input where the operator allows it. Inner, semi
  // and anti joins track matches through side-indexed flags, so either
  // side can host the table; the outer variants keep the historical
  // build-right shape (their padding phase reads the flags either way,
  // but a stable choice keeps plans' observable row order predictable).
  bool build_left = false;
  switch (op) {
    case JoinOp::kInner:
    case JoinOp::kLeftSemi:
    case JoinOp::kRightSemi:
    case JoinOp::kLeftAnti:
    case JoinOp::kRightAnti:
      build_left = left.NumRows() < right.NumRows();
      break;
    default:
      break;
  }
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;

  KeyEvaluator lkeys, rkeys;
  std::vector<ScalarRef> lexprs, rexprs;
  for (const EquiKey& k : keys) {
    lexprs.push_back(k.left_expr);
    rexprs.push_back(k.right_expr);
  }
  lkeys.Bind(std::move(lexprs), left.schema());
  rkeys.Bind(std::move(rexprs), right.schema());
  const KeyEvaluator& build_keys = build_left ? lkeys : rkeys;
  const KeyEvaluator& probe_keys = build_left ? rkeys : lkeys;

  CompiledPredicate compiled_residual;
  bool have_residual = residual != nullptr;
  if (have_residual) {
    compiled_residual = CompiledPredicate(residual, shape.concat_schema);
  }

  // Governed runs: estimate the in-memory build index (key copies, hashes,
  // bucket entries ride on top of the row bytes). Past the soft threshold,
  // escalate to the spilling grace join; otherwise charge the estimate —
  // a hard-limit hit here unwinds the query with kResourceExhausted.
  ExecCharge build_charge(ctx);
  if (ctx != nullptr) {
    int64_t est = ApproxRowsBytes(build.rows()) + build.NumRows() * 64;
    if (ctx->tracker()->WouldExceedSoft(est)) {
      static Counter* const escalations =
          MetricsRegistry::Global().counter("governor.spill_escalate");
      escalations->Increment();
      Tracer::Instant("governor/spill-escalate", "hash-join");
      TraceSpan grace_span("join/grace");
      GraceHashJoin grace(op, shape, build_keys, probe_keys, build_left,
                          have_residual ? &compiled_residual : nullptr, fused,
                          left, right, ctx, stats);
      Relation out(shape.out_schema);
      Status s = grace.Run(&out);
      if (!s.ok()) {
        ctx->RecordError(std::move(s));
        return Relation(shape.out_schema);
      }
      return out;
    }
    Status s = build_charge.Add(est, "hash-join build index");
    if (!s.ok()) {
      ctx->RecordError(std::move(s));
      return Relation(shape.out_schema);
    }
  }

  // Shared key-pair tags; bound column indexes come from the evaluators.
  std::vector<KeyColumn::Tag> tags;
  tags.reserve(keys.size());
  for (const EquiKey& k : keys) {
    const ScalarRef& be = build_left ? k.left_expr : k.right_expr;
    const ScalarRef& pe = build_left ? k.right_expr : k.left_expr;
    tags.push_back(
        KeyColumn::TagFor(be, build.schema(), pe, probe.schema()));
  }

  JoinTable table;
  BuildJoinTable(build, build_keys.col_fastpath, build_keys.exprs, tags, pool,
                 tuning, ctx, stats, &table);

  // Matched flags. Probe-side flags are written by exactly one morsel per
  // row (morsels are disjoint), so plain bytes suffice; build-side rows
  // can match concurrently in several probe morsels, so those flags are
  // relaxed atomics (all writers store 1 — order is irrelevant).
  const bool need_left = NeedsLeftFlags(op);
  const bool need_right = NeedsRightFlags(op);
  const bool need_build = build_left ? need_left : need_right;
  const bool need_probe = build_left ? need_right : need_left;
  const bool emit_pairs = !OutputsOneSide(op);
  std::vector<uint8_t> probe_matched(
      need_probe ? static_cast<size_t>(probe.NumRows()) : 0, 0);
  std::vector<std::atomic<uint8_t>> build_matched(
      need_build ? static_cast<size_t>(build.NumRows()) : 0);
  for (auto& f : build_matched) f.store(0, std::memory_order_relaxed);

  const int64_t pn = probe.NumRows();
  MorselCursor cursor(pn, tuning.morsel_rows);
  const size_t num_morsels = static_cast<size_t>(cursor.num_morsels());
  std::vector<std::vector<Tuple>> morsel_out(emit_pairs ? num_morsels : 0);
  std::vector<int64_t> morsel_comparisons(num_morsels, 0);

  auto probe_worker = [&](int) {
    KeyChunkSet pk;                 // per-worker columnar key scratch
    std::vector<int64_t> matches;   // build rows matching one probe row
    // Per-worker governor charge for buffered output (scratch; the
    // executor re-charges the merged relation as node output). A failed
    // charge records the error and every worker sees ShouldStop() at its
    // next morsel boundary.
    ExecCharge out_charge(ctx);
    int64_t pending = 0;
    int64_t begin, end, morsel;
    while (cursor.Next(&begin, &end, &morsel)) {
      if (ctx != nullptr) {
        if (ctx->ShouldStop()) return;
        if (pending >= (64 << 10)) {
          Status s = out_charge.Add(pending, "hash-join output");
          pending = 0;
          if (!s.ok()) {
            ctx->RecordError(std::move(s));
            return;
          }
        }
      }
      std::vector<Tuple>* out =
          emit_pairs ? &morsel_out[static_cast<size_t>(morsel)] : nullptr;
      int64_t comparisons = 0;
      for (int64_t cb = begin; cb < end; cb += tuning.chunk_rows) {
        const int64_t ce = std::min(cb + tuning.chunk_rows, end);
        const int64_t cn = ce - cb;
        pk.Reset(tags, cn);
        for (int64_t i = 0; i < cn; ++i) {
          pk.ExtractRow(i, probe.rows()[static_cast<size_t>(cb + i)],
                        probe_keys.col_fastpath, probe_keys.exprs,
                        probe.schema());
        }
        for (int64_t i = 0; i < cn; ++i) {
          if (!pk.ValidAt(i)) continue;
          const uint64_t h = pk.hashes[static_cast<size_t>(i)];
          uint64_t idx = h & table.mask;
          matches.clear();
          for (;;) {
            int64_t br = table.slots[idx].load(std::memory_order_acquire);
            if (br < 0) break;
            if (table.keys.hashes[static_cast<size_t>(br)] == h) {
              ++comparisons;
              if (table.keys.RowEqual(br, pk, i)) matches.push_back(br);
            }
            idx = (idx + 1) & table.mask;
          }
          // CAS insertion order is nondeterministic; ascending build-row
          // order per probe row restores the row engine's emit order.
          if (matches.size() > 1) std::sort(matches.begin(), matches.end());
          const int64_t pi = cb + i;
          const Tuple& prow = probe.rows()[static_cast<size_t>(pi)];
          for (int64_t bi : matches) {
            const Tuple& brow = build.rows()[static_cast<size_t>(bi)];
            const Tuple& lrow = build_left ? brow : prow;
            const Tuple& rrow = build_left ? prow : brow;
            if (have_residual &&
                !compiled_residual.EvalTrue(ConcatTuples(lrow, rrow))) {
              continue;
            }
            if (need_probe) probe_matched[static_cast<size_t>(pi)] = 1;
            if (need_build) {
              build_matched[static_cast<size_t>(bi)].store(
                  1, std::memory_order_relaxed);
            }
            if (emit_pairs) {
              Tuple t = ConcatTuples(lrow, rrow);
              if (fused == nullptr || fused->Apply(&t)) {
                if (ctx != nullptr) pending += ApproxTupleBytes(t);
                out->push_back(std::move(t));
              }
            }
          }
        }
      }
      morsel_comparisons[static_cast<size_t>(morsel)] = comparisons;
    }
    if (ctx != nullptr && pending > 0) {
      Status s = out_charge.Add(pending, "hash-join output");
      if (!s.ok()) ctx->RecordError(std::move(s));
    }
  };
  {
    TraceSpan probe_span("join/probe");
    if (probe_span.active()) {
      probe_span.AppendArg("rows", static_cast<long long>(pn));
    }
    if (pool != nullptr && pool->num_threads() > 1) {
      pool->RunOnWorkers(probe_worker);
    } else {
      probe_worker(0);
    }
  }

  if (stats != nullptr) {
    for (int64_t comparisons : morsel_comparisons) {
      stats->probe_comparisons += comparisons;
    }
  }

  // Morsel-ordered merge, then the sequential padding/side phase.
  Relation out(shape.out_schema);
  if (emit_pairs) {
    size_t total = 0;
    for (const auto& part : morsel_out) total += part.size();
    out.mutable_rows().reserve(total);
    for (auto& part : morsel_out) {
      for (Tuple& t : part) out.Add(std::move(t));
    }
  }
  std::vector<uint8_t> left_matched(
      need_left ? static_cast<size_t>(left.NumRows()) : 0, 0);
  std::vector<uint8_t> right_matched(
      need_right ? static_cast<size_t>(right.NumRows()) : 0, 0);
  std::vector<uint8_t>& build_out = build_left ? left_matched : right_matched;
  std::vector<uint8_t>& probe_out = build_left ? right_matched : left_matched;
  for (size_t i = 0; i < build_matched.size(); ++i) {
    build_out[i] = build_matched[i].load(std::memory_order_relaxed);
  }
  if (need_probe) probe_out = std::move(probe_matched);
  FinishJoinOutput(op, shape, left, right, left_matched, right_matched, fused,
                   &out);
  return out;
}

Relation SortMergeJoin(JoinOp op, const std::vector<EquiKey>& keys,
                       const PredRef& residual, const Relation& left,
                       const Relation& right, ExecStats* stats,
                       QueryContext* ctx = nullptr,
                       const FusedCompChain* fused = nullptr) {
  JoinShape shape = MakeShape(op, left, right);
  JoinEmitter emitter(op, shape, left, right, fused);

  KeyEvaluator lkeys, rkeys;
  std::vector<ScalarRef> lexprs, rexprs;
  for (const EquiKey& k : keys) {
    lexprs.push_back(k.left_expr);
    rexprs.push_back(k.right_expr);
  }
  lkeys.Bind(std::move(lexprs), left.schema());
  rkeys.Bind(std::move(rexprs), right.schema());

  CompiledPredicate compiled_residual;
  bool have_residual = residual != nullptr;
  if (have_residual) {
    compiled_residual = CompiledPredicate(residual, shape.concat_schema);
  }

  struct Entry {
    std::vector<Value> key;
    int64_t row;
  };
  auto collect = [](const KeyEvaluator& ke, const Relation& rel) {
    std::vector<Entry> out;
    std::vector<Value> kv;
    for (int64_t i = 0; i < rel.NumRows(); ++i) {
      if (ke.Eval(rel.rows()[static_cast<size_t>(i)], &kv)) {
        out.push_back({kv, i});
      }
      // Rows with NULL keys never match; their outer/anti handling comes
      // from the matched flags defaulting to false.
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return CompareTuples(a.key, b.key) < 0;
    });
    return out;
  };
  std::vector<Entry> ls = collect(lkeys, left);
  std::vector<Entry> rs = collect(rkeys, right);

  // Governed runs charge the sorted key arrays (the algorithm's resident
  // scratch); a hard-limit hit unwinds cleanly before the merge starts.
  ExecCharge key_charge(ctx);
  if (ctx != nullptr) {
    int64_t est = static_cast<int64_t>((ls.size() + rs.size()) *
                                       (sizeof(Entry) + 64));
    Status s = key_charge.Add(est, "sort-merge join keys");
    if (!s.ok()) {
      ctx->RecordError(std::move(s));
      return Relation(shape.out_schema);
    }
  }

  size_t i = 0, j = 0;
  int64_t steps = 0;
  while (i < ls.size() && j < rs.size()) {
    if (ctx != nullptr && (++steps & 1023) == 0 && ctx->ShouldStop()) break;
    int c = CompareTuples(ls[i].key, rs[j].key);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      size_t i_end = i;
      while (i_end < ls.size() && CompareTuples(ls[i_end].key, ls[i].key) == 0)
        ++i_end;
      size_t j_end = j;
      while (j_end < rs.size() && CompareTuples(rs[j_end].key, rs[j].key) == 0)
        ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          if (stats != nullptr) ++stats->probe_comparisons;
          bool match = true;
          if (have_residual) {
            Tuple t = ConcatTuples(
                left.rows()[static_cast<size_t>(ls[a].row)],
                right.rows()[static_cast<size_t>(rs[b].row)]);
            match = compiled_residual.EvalTrue(t);
          }
          if (match) emitter.Match(ls[a].row, rs[b].row);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return emitter.Finish();
}

}  // namespace

Schema JoinOutputSchema(JoinOp op, const Schema& left, const Schema& right) {
  switch (op) {
    case JoinOp::kLeftSemi:
    case JoinOp::kLeftAnti:
      return left;
    case JoinOp::kRightSemi:
    case JoinOp::kRightAnti:
      return right;
    default:
      return left.Concat(right);
  }
}

Relation EvalJoinNaive(JoinOp op, const PredRef& pred, const Relation& left,
                       const Relation& right) {
  return NestedLoopJoin(op, pred, left, right, nullptr);
}

Relation EvalJoin(JoinOp op, const PredRef& pred, const Relation& left,
                  const Relation& right, Executor::JoinPreference pref,
                  ExecStats* stats, ThreadPool* pool, QueryContext* ctx,
                  const ExecTuning* tuning, const FusedCompChain* fused) {
  const ExecTuning t = tuning != nullptr ? tuning->Clamped() : ExecTuning();
  if (fused != nullptr && fused->empty()) fused = nullptr;
  if (pred == nullptr) {
    return NestedLoopJoin(op, pred, left, right, stats, ctx, fused);
  }
  std::vector<EquiKey> keys;
  PredRef residual;
  SplitEquiKeys(pred, left.schema().rels(), right.schema().rels(), &keys,
                &residual);
  if (keys.empty()) {
    return NestedLoopJoin(op, pred, left, right, stats, ctx, fused);
  }
  if (pref == Executor::JoinPreference::kSortMerge) {
    return SortMergeJoin(op, keys, residual, left, right, stats, ctx, fused);
  }
  return HashJoin(op, keys, residual, left, right, stats, pool, ctx, t,
                  fused);
}

}  // namespace eca
