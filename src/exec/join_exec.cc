#include <algorithm>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "types/tri_bool.h"

namespace eca {

namespace {

// A conjunct of the form <left col> = <right col> usable as a hash/merge key.
struct EquiKey {
  ScalarRef left_expr;
  ScalarRef right_expr;
};

// Splits `pred` into equi-key conjuncts across (left_rels, right_rels) and a
// residual predicate (nullptr if none). Only top-level AND conjuncts are
// considered.
void SplitEquiKeys(const PredRef& pred, RelSet left_rels, RelSet right_rels,
                   std::vector<EquiKey>* keys, PredRef* residual) {
  std::vector<PredRef> conjuncts;
  std::vector<PredRef> pending = {pred};
  while (!pending.empty()) {
    PredRef p = pending.back();
    pending.pop_back();
    if (p->kind() == Predicate::Kind::kAnd) {
      for (const PredRef& c : p->children()) pending.push_back(c);
    } else {
      conjuncts.push_back(p);
    }
  }
  std::vector<PredRef> residual_conjuncts;
  for (const PredRef& c : conjuncts) {
    bool is_key = false;
    if (c->kind() == Predicate::Kind::kCompare &&
        c->cmp_op() == Predicate::CmpOp::kEq) {
      RelSet lr = c->scalar_left()->refs();
      RelSet rr = c->scalar_right()->refs();
      if (!lr.Empty() && !rr.Empty()) {
        if (left_rels.ContainsAll(lr) && right_rels.ContainsAll(rr)) {
          keys->push_back({c->scalar_left(), c->scalar_right()});
          is_key = true;
        } else if (right_rels.ContainsAll(lr) && left_rels.ContainsAll(rr)) {
          keys->push_back({c->scalar_right(), c->scalar_left()});
          is_key = true;
        }
      }
    }
    if (!is_key) residual_conjuncts.push_back(c);
  }
  *residual = residual_conjuncts.empty() ? nullptr
                                         : Predicate::And(residual_conjuncts);
}

// Evaluates one side's key expressions for a row. Key expressions are almost
// always bare column refs, so column indexes are precomputed; NULL keys
// never match under null-intolerant equality.
struct KeyEvaluator {
  std::vector<ScalarRef> exprs;
  std::vector<int> col_fastpath;  // column index or -1
  const Schema* schema = nullptr;

  void Bind(std::vector<ScalarRef> key_exprs, const Schema& s) {
    exprs = std::move(key_exprs);
    schema = &s;
    col_fastpath.clear();
    for (const ScalarRef& e : exprs) {
      if (e->kind() == Scalar::Kind::kColumn) {
        int idx = s.FindColumn(e->rel_id(), e->column_name());
        ECA_CHECK(idx >= 0);
        col_fastpath.push_back(idx);
      } else {
        col_fastpath.push_back(-1);
      }
    }
  }

  // Returns true and fills `out` when all keys are non-NULL.
  bool Eval(const Tuple& row, std::vector<Value>* out) const {
    out->clear();
    for (size_t i = 0; i < exprs.size(); ++i) {
      Value v = col_fastpath[i] >= 0
                    ? row[static_cast<size_t>(col_fastpath[i])]
                    : exprs[i]->Eval(*schema, row);
      if (v.is_null()) return false;
      out->push_back(std::move(v));
    }
    return true;
  }
};

struct JoinShape {
  Schema out_schema;     // schema of emitted tuples
  Schema concat_schema;  // left ++ right, used for predicate evaluation
  int left_width = 0;
  int right_width = 0;
};

JoinShape MakeShape(JoinOp op, const Relation& left, const Relation& right) {
  JoinShape shape;
  shape.concat_schema = left.schema().Concat(right.schema());
  shape.left_width = left.schema().NumColumns();
  shape.right_width = right.schema().NumColumns();
  switch (op) {
    case JoinOp::kLeftSemi:
    case JoinOp::kLeftAnti:
      shape.out_schema = left.schema();
      break;
    case JoinOp::kRightSemi:
    case JoinOp::kRightAnti:
      shape.out_schema = right.schema();
      break;
    default:
      shape.out_schema = shape.concat_schema;
      break;
  }
  return shape;
}

// Assembles the output from per-pair matches plus matched flags, shared by
// all join algorithms.
class JoinEmitter {
 public:
  JoinEmitter(JoinOp op, const JoinShape& shape, const Relation& left,
              const Relation& right)
      : op_(op), shape_(shape), left_(left), right_(right),
        out_(shape.out_schema) {
    if (op == JoinOp::kLeftOuter || op == JoinOp::kFullOuter ||
        OutputsOneSide(op)) {
      left_matched_.assign(static_cast<size_t>(left.NumRows()), false);
    }
    if (op == JoinOp::kRightOuter || op == JoinOp::kFullOuter ||
        OutputsOneSide(op)) {
      right_matched_.assign(static_cast<size_t>(right.NumRows()), false);
    }
  }

  void Match(int64_t li, int64_t ri) {
    if (!left_matched_.empty()) left_matched_[static_cast<size_t>(li)] = true;
    if (!right_matched_.empty())
      right_matched_[static_cast<size_t>(ri)] = true;
    if (OutputsOneSide(op_)) return;  // semi/anti emit in Finish()
    out_.Add(ConcatTuples(left_.rows()[static_cast<size_t>(li)],
                          right_.rows()[static_cast<size_t>(ri)]));
  }

  Relation Finish() {
    switch (op_) {
      case JoinOp::kCross:
      case JoinOp::kInner:
        break;
      case JoinOp::kLeftOuter:
        EmitUnmatchedLeftPadded();
        break;
      case JoinOp::kRightOuter:
        EmitUnmatchedRightPadded();
        break;
      case JoinOp::kFullOuter:
        EmitUnmatchedLeftPadded();
        EmitUnmatchedRightPadded();
        break;
      case JoinOp::kLeftSemi:
        EmitSide(left_, left_matched_, /*want_matched=*/true);
        break;
      case JoinOp::kLeftAnti:
        EmitSide(left_, left_matched_, /*want_matched=*/false);
        break;
      case JoinOp::kRightSemi:
        EmitSide(right_, right_matched_, /*want_matched=*/true);
        break;
      case JoinOp::kRightAnti:
        EmitSide(right_, right_matched_, /*want_matched=*/false);
        break;
    }
    return std::move(out_);
  }

 private:
  void EmitUnmatchedLeftPadded() {
    Tuple pad = NullsFor(shape_.concat_schema, shape_.left_width,
                         shape_.right_width);
    for (size_t i = 0; i < left_matched_.size(); ++i) {
      if (!left_matched_[i]) out_.Add(ConcatTuples(left_.rows()[i], pad));
    }
  }
  void EmitUnmatchedRightPadded() {
    Tuple pad = NullsFor(shape_.concat_schema, 0, shape_.left_width);
    for (size_t i = 0; i < right_matched_.size(); ++i) {
      if (!right_matched_[i]) out_.Add(ConcatTuples(pad, right_.rows()[i]));
    }
  }
  void EmitSide(const Relation& side, const std::vector<bool>& matched,
                bool want_matched) {
    for (size_t i = 0; i < matched.size(); ++i) {
      if (matched[i] == want_matched) out_.Add(side.rows()[i]);
    }
  }

  JoinOp op_;
  const JoinShape& shape_;
  const Relation& left_;
  const Relation& right_;
  Relation out_;
  std::vector<bool> left_matched_;
  std::vector<bool> right_matched_;
};

Relation NestedLoopJoin(JoinOp op, const PredRef& pred, const Relation& left,
                        const Relation& right, ExecStats* stats) {
  JoinShape shape = MakeShape(op, left, right);
  JoinEmitter emitter(op, shape, left, right);
  CompiledPredicate compiled;
  bool have_pred = pred != nullptr;
  if (have_pred) compiled = CompiledPredicate(pred, shape.concat_schema);
  for (int64_t li = 0; li < left.NumRows(); ++li) {
    for (int64_t ri = 0; ri < right.NumRows(); ++ri) {
      if (stats != nullptr) ++stats->probe_comparisons;
      bool match = true;
      if (have_pred) {
        Tuple t = ConcatTuples(left.rows()[static_cast<size_t>(li)],
                               right.rows()[static_cast<size_t>(ri)]);
        match = compiled.EvalTrue(t);
      }
      if (match) emitter.Match(li, ri);
    }
  }
  return emitter.Finish();
}

Relation HashJoin(JoinOp op, const std::vector<EquiKey>& keys,
                  const PredRef& residual, const Relation& left,
                  const Relation& right, ExecStats* stats) {
  JoinShape shape = MakeShape(op, left, right);
  JoinEmitter emitter(op, shape, left, right);

  KeyEvaluator lkeys, rkeys;
  std::vector<ScalarRef> lexprs, rexprs;
  for (const EquiKey& k : keys) {
    lexprs.push_back(k.left_expr);
    rexprs.push_back(k.right_expr);
  }
  lkeys.Bind(std::move(lexprs), left.schema());
  rkeys.Bind(std::move(rexprs), right.schema());

  CompiledPredicate compiled_residual;
  bool have_residual = residual != nullptr;
  if (have_residual) {
    compiled_residual = CompiledPredicate(residual, shape.concat_schema);
  }

  // Build on the right input.
  std::unordered_map<uint64_t, std::vector<int64_t>> table;
  std::vector<std::vector<Value>> right_keys(
      static_cast<size_t>(right.NumRows()));
  {
    std::vector<Value> kv;
    for (int64_t ri = 0; ri < right.NumRows(); ++ri) {
      if (!rkeys.Eval(right.rows()[static_cast<size_t>(ri)], &kv)) continue;
      right_keys[static_cast<size_t>(ri)] = kv;
      table[HashTuple(kv)].push_back(ri);
    }
  }

  std::vector<Value> kv;
  for (int64_t li = 0; li < left.NumRows(); ++li) {
    const Tuple& lrow = left.rows()[static_cast<size_t>(li)];
    if (!lkeys.Eval(lrow, &kv)) continue;
    auto it = table.find(HashTuple(kv));
    if (it == table.end()) continue;
    for (int64_t ri : it->second) {
      if (stats != nullptr) ++stats->probe_comparisons;
      const std::vector<Value>& rk = right_keys[static_cast<size_t>(ri)];
      bool key_equal = true;
      for (size_t i = 0; i < kv.size(); ++i) {
        if (!kv[i].SameAs(rk[i])) {
          key_equal = false;
          break;
        }
      }
      if (!key_equal) continue;
      bool match = true;
      if (have_residual) {
        Tuple t = ConcatTuples(lrow, right.rows()[static_cast<size_t>(ri)]);
        match = compiled_residual.EvalTrue(t);
      }
      if (match) emitter.Match(li, ri);
    }
  }
  return emitter.Finish();
}

Relation SortMergeJoin(JoinOp op, const std::vector<EquiKey>& keys,
                       const PredRef& residual, const Relation& left,
                       const Relation& right, ExecStats* stats) {
  JoinShape shape = MakeShape(op, left, right);
  JoinEmitter emitter(op, shape, left, right);

  KeyEvaluator lkeys, rkeys;
  std::vector<ScalarRef> lexprs, rexprs;
  for (const EquiKey& k : keys) {
    lexprs.push_back(k.left_expr);
    rexprs.push_back(k.right_expr);
  }
  lkeys.Bind(std::move(lexprs), left.schema());
  rkeys.Bind(std::move(rexprs), right.schema());

  CompiledPredicate compiled_residual;
  bool have_residual = residual != nullptr;
  if (have_residual) {
    compiled_residual = CompiledPredicate(residual, shape.concat_schema);
  }

  struct Entry {
    std::vector<Value> key;
    int64_t row;
  };
  auto collect = [](const KeyEvaluator& ke, const Relation& rel) {
    std::vector<Entry> out;
    std::vector<Value> kv;
    for (int64_t i = 0; i < rel.NumRows(); ++i) {
      if (ke.Eval(rel.rows()[static_cast<size_t>(i)], &kv)) {
        out.push_back({kv, i});
      }
      // Rows with NULL keys never match; their outer/anti handling comes
      // from the matched flags defaulting to false.
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return CompareTuples(a.key, b.key) < 0;
    });
    return out;
  };
  std::vector<Entry> ls = collect(lkeys, left);
  std::vector<Entry> rs = collect(rkeys, right);

  size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    int c = CompareTuples(ls[i].key, rs[j].key);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      size_t i_end = i;
      while (i_end < ls.size() && CompareTuples(ls[i_end].key, ls[i].key) == 0)
        ++i_end;
      size_t j_end = j;
      while (j_end < rs.size() && CompareTuples(rs[j_end].key, rs[j].key) == 0)
        ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          if (stats != nullptr) ++stats->probe_comparisons;
          bool match = true;
          if (have_residual) {
            Tuple t = ConcatTuples(
                left.rows()[static_cast<size_t>(ls[a].row)],
                right.rows()[static_cast<size_t>(rs[b].row)]);
            match = compiled_residual.EvalTrue(t);
          }
          if (match) emitter.Match(ls[a].row, rs[b].row);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return emitter.Finish();
}

}  // namespace

Relation EvalJoinNaive(JoinOp op, const PredRef& pred, const Relation& left,
                       const Relation& right) {
  return NestedLoopJoin(op, pred, left, right, nullptr);
}

Relation EvalJoin(JoinOp op, const PredRef& pred, const Relation& left,
                  const Relation& right, Executor::JoinPreference pref,
                  ExecStats* stats) {
  if (pred == nullptr) {
    return NestedLoopJoin(op, pred, left, right, stats);
  }
  std::vector<EquiKey> keys;
  PredRef residual;
  SplitEquiKeys(pred, left.schema().rels(), right.schema().rels(), &keys,
                &residual);
  if (keys.empty()) {
    return NestedLoopJoin(op, pred, left, right, stats);
  }
  if (pref == Executor::JoinPreference::kSortMerge) {
    return SortMergeJoin(op, keys, residual, left, right, stats);
  }
  return HashJoin(op, keys, residual, left, right, stats);
}

}  // namespace eca
