#include "exec/chunk.h"

namespace eca {

namespace {

// True when `e` is a bare column reference; fills the bound index.
bool BindColumn(const ScalarRef& e, const Schema& schema, int* col,
                DataType* type) {
  if (e->kind() != Scalar::Kind::kColumn) return false;
  int idx = schema.FindColumn(e->rel_id(), e->column_name());
  ECA_CHECK(idx >= 0);
  *col = idx;
  *type = schema.column(idx).type;
  return true;
}

}  // namespace

KeyColumn::Tag KeyColumn::TagFor(const ScalarRef& build_expr,
                                 const Schema& build_schema,
                                 const ScalarRef& probe_expr,
                                 const Schema& probe_schema) {
  int bc = -1, pc = -1;
  DataType bt, pt;
  if (!BindColumn(build_expr, build_schema, &bc, &bt) ||
      !BindColumn(probe_expr, probe_schema, &pc, &pt)) {
    return Tag::kGeneric;
  }
  if (bt == pt) {
    switch (bt) {
      case DataType::kInt64:
        return Tag::kInt64;
      case DataType::kDouble:
        return Tag::kDouble;
      case DataType::kString:
        return Tag::kString;
    }
  }
  bool b_num = bt != DataType::kString;
  bool p_num = pt != DataType::kString;
  // Mixed numeric types meet under promotion; mixed string/numeric pairs
  // never compare equal, but kGeneric reproduces the row engine's
  // Value::SameAs verdicts (including that one) verbatim.
  return (b_num && p_num) ? Tag::kNumeric : Tag::kGeneric;
}

void KeyColumn::Reset(Tag tag, int64_t n) {
  tag_ = tag;
  ints_.clear();
  doubles_.clear();
  strs_.clear();
  vals_.clear();
  size_t sn = static_cast<size_t>(n);
  switch (tag_) {
    case Tag::kInt64:
      ints_.resize(sn);
      break;
    case Tag::kDouble:
    case Tag::kNumeric:
      doubles_.resize(sn);
      break;
    case Tag::kString:
      strs_.resize(sn, nullptr);
      break;
    case Tag::kGeneric:
      vals_.resize(sn);
      break;
  }
}

bool KeyColumn::SetFromRow(int64_t r, const Tuple& row, int col,
                           const ScalarRef& expr, const Schema& schema) {
  size_t sr = static_cast<size_t>(r);
  if (col >= 0) {
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) return false;
    switch (tag_) {
      case Tag::kInt64:
        ints_[sr] = v.raw_int();
        return true;
      case Tag::kDouble:
        doubles_[sr] = v.raw_double();
        return true;
      case Tag::kNumeric:
        doubles_[sr] = v.NumericValue();
        return true;
      case Tag::kString:
        strs_[sr] = &v.raw_str();
        return true;
      case Tag::kGeneric:
        vals_[sr] = v;
        return true;
    }
    return true;
  }
  Value v = expr->Eval(schema, row);
  if (v.is_null()) return false;
  ECA_DCHECK(tag_ == Tag::kGeneric);  // computed keys always take kGeneric
  vals_[sr] = std::move(v);
  return true;
}

uint64_t KeyColumn::HashAt(int64_t r) const {
  size_t sr = static_cast<size_t>(r);
  switch (tag_) {
    case Tag::kInt64:
      return HashInt64Key(ints_[sr]);
    case Tag::kDouble:
    case Tag::kNumeric:
      return HashDoubleKey(doubles_[sr]);
    case Tag::kString:
      return HashStringKey(*strs_[sr]);
    case Tag::kGeneric:
      return vals_[sr].Hash();
  }
  return 0;
}

bool KeyColumn::Equal(const KeyColumn& a, int64_t ra, const KeyColumn& b,
                      int64_t rb) {
  ECA_DCHECK(a.tag_ == b.tag_);
  size_t sa = static_cast<size_t>(ra);
  size_t sb = static_cast<size_t>(rb);
  switch (a.tag_) {
    case Tag::kInt64:
      // Value::Compare orders numerics after double promotion; for two
      // int64 columns raw equality matches it everywhere the promotion is
      // exact, and the existing hash lookup already separated values that
      // only collide after promotion.
      return a.ints_[sa] == b.ints_[sb];
    case Tag::kDouble:
    case Tag::kNumeric:
      return a.doubles_[sa] == b.doubles_[sb];
    case Tag::kString:
      return *a.strs_[sa] == *b.strs_[sb];
    case Tag::kGeneric:
      return a.vals_[sa].SameAs(b.vals_[sb]);
  }
  return false;
}

void KeyChunkSet::Reset(const std::vector<KeyColumn::Tag>& tags, int64_t n) {
  cols.resize(tags.size());
  for (size_t k = 0; k < tags.size(); ++k) cols[k].Reset(tags[k], n);
  hashes.assign(static_cast<size_t>(n), 0);
  valid.assign(static_cast<size_t>(n), 0);
}

void KeyChunkSet::ExtractRow(int64_t r, const Tuple& row,
                             const std::vector<int>& col_idx,
                             const std::vector<ScalarRef>& exprs,
                             const Schema& schema) {
  // FNV combine over per-column hashes, matching HashTuple's shape so a
  // single-column key buckets like the row engine did.
  uint64_t h = 14695981039346656037ULL;
  for (size_t k = 0; k < cols.size(); ++k) {
    if (!cols[k].SetFromRow(r, row, col_idx[k], exprs[k], schema)) {
      return;  // NULL key: row stays invalid
    }
    h ^= cols[k].HashAt(r);
    h *= 1099511628211ULL;
  }
  hashes[static_cast<size_t>(r)] = h;
  valid[static_cast<size_t>(r)] = 1;
}

void NullMaskMatrix::Build(const Relation& in) {
  num_rows_ = in.NumRows();
  const size_t cols = static_cast<size_t>(in.schema().NumColumns());
  words_per_row_ = cols == 0 ? 1 : (cols + 63) / 64;
  words_.assign(static_cast<size_t>(num_rows_) * words_per_row_, 0);
  for (int64_t r = 0; r < num_rows_; ++r) {
    const Tuple& t = in.rows()[static_cast<size_t>(r)];
    uint64_t* w = words_.data() + static_cast<size_t>(r) * words_per_row_;
    for (size_t c = 0; c < t.size(); ++c) {
      if (t[c].is_null()) w[c / 64] |= uint64_t{1} << (c % 64);
    }
  }
}

}  // namespace eca
