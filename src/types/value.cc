#include "types/value.h"

#include <cmath>

#include "common/str_util.h"

namespace eca {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  // Numeric types compare by numeric value so that Int(3) == Real(3.0);
  // mixed numeric/string never occurs in well-typed plans but is ordered by
  // type tag for totality.
  bool a_num = type_ != DataType::kString;
  bool b_num = other.type_ != DataType::kString;
  if (a_num != b_num) return a_num ? -1 : 1;
  if (a_num) {
    double a = NumericValue(), b = other.NumericValue();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  int c = str_.compare(other.str_);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

uint64_t HashInt64Key(int64_t x) {
  uint64_t h = static_cast<uint64_t>(x);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashDoubleKey(double d) {
  // Hash doubles representing integers identically to the int64 hash so
  // that equi-join hashing across numeric types is consistent with
  // Compare().
  uint64_t h;
  if (d == std::floor(d) && std::abs(d) < 9.0e18) {
    return HashInt64Key(static_cast<int64_t>(d));
  }
  static_assert(sizeof(double) == sizeof(uint64_t));
  __builtin_memcpy(&h, &d, sizeof(h));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashStringKey(const std::string& s) {
  // String hashes are in a separate family; no avalanche mixing needed.
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Value::Hash() const {
  if (null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case DataType::kInt64:
      return HashInt64Key(int_);
    case DataType::kDouble:
      return HashDoubleKey(double_);
    case DataType::kString:
      return HashStringKey(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  if (null_) return "null";
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(int_);
    case DataType::kDouble:
      return StrFormat("%g", double_);
    case DataType::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

}  // namespace eca
