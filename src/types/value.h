#ifndef ECA_TYPES_VALUE_H_
#define ECA_TYPES_VALUE_H_

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace eca {

// Column data types. Values additionally carry a null flag; NULL is a
// property of a value, not a type.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType t);

// A single (nullable) SQL value.
//
// Values are small and copyable. The total order used for sorting and
// best-match processing places NULL before every non-null value; this is an
// implementation ordering, distinct from SQL comparison semantics which are
// handled by the expression evaluator (3-valued logic).
class Value {
 public:
  // A null value of the given type.
  static Value Null(DataType type = DataType::kInt64) {
    Value v;
    v.type_ = type;
    v.null_ = true;
    return v;
  }
  static Value Int(int64_t x) {
    Value v;
    v.type_ = DataType::kInt64;
    v.null_ = false;
    v.int_ = x;
    return v;
  }
  static Value Real(double x) {
    Value v;
    v.type_ = DataType::kDouble;
    v.null_ = false;
    v.double_ = x;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.null_ = false;
    v.str_ = std::move(s);
    return v;
  }

  Value() : type_(DataType::kInt64), null_(true), int_(0) {}

  bool is_null() const { return null_; }
  DataType type() const { return type_; }

  int64_t AsInt() const {
    ECA_DCHECK(!null_ && type_ == DataType::kInt64);
    return int_;
  }
  double AsDouble() const {
    ECA_DCHECK(!null_ && type_ == DataType::kDouble);
    return double_;
  }
  const std::string& AsStr() const {
    ECA_DCHECK(!null_ && type_ == DataType::kString);
    return str_;
  }

  // Numeric view: int64 promoted to double. Valid for numeric non-nulls.
  double NumericValue() const {
    ECA_DCHECK(!null_);
    if (type_ == DataType::kInt64) return static_cast<double>(int_);
    ECA_DCHECK(type_ == DataType::kDouble);
    return double_;
  }

  // Total order for sorting: NULL first, then by type tag, then by value.
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  // Exact equality under the total order (NULL == NULL here). Used for
  // duplicate detection and result comparison, not for predicate semantics.
  bool SameAs(const Value& other) const { return Compare(other) == 0; }

  uint64_t Hash() const;

  std::string ToString() const;

  // Columnar accessors: raw payload reads for the vectorized executor's
  // typed column extraction (exec/chunk.h). Unlike AsInt()/AsDouble()/
  // AsStr() these do not assert type or nullness — the caller has already
  // dispatched on the column's declared type and checked the null flag
  // once per column, not once per value.
  int64_t raw_int() const { return int_; }
  double raw_double() const { return double_; }
  const std::string& raw_str() const { return str_; }

 private:
  DataType type_;
  bool null_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

// Per-type key hash functions, identical to Value::Hash() on non-null
// values of that type but callable on raw column data (exec/chunk.h).
// HashDoubleKey maps integer-valued doubles to HashInt64Key of that
// integer, keeping hashing consistent with Compare()'s numeric promotion
// (Int(3) and Real(3.0) hash — and compare — equal).
uint64_t HashInt64Key(int64_t x);
uint64_t HashDoubleKey(double d);
uint64_t HashStringKey(const std::string& s);

}  // namespace eca

#endif  // ECA_TYPES_VALUE_H_
