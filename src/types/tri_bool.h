#ifndef ECA_TYPES_TRI_BOOL_H_
#define ECA_TYPES_TRI_BOOL_H_

namespace eca {

// SQL three-valued logic. Predicates over tuples with NULLs evaluate to
// kUnknown when a referenced operand is NULL (null-intolerant semantics,
// Section 1 footnote 1 of the paper); a join/filter accepts a tuple only if
// the predicate evaluates to kTrue.
enum class TriBool {
  kFalse = 0,
  kUnknown = 1,
  kTrue = 2,
};

inline TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown)
    return TriBool::kUnknown;
  return TriBool::kTrue;
}

inline TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown)
    return TriBool::kUnknown;
  return TriBool::kFalse;
}

inline TriBool TriNot(TriBool a) {
  if (a == TriBool::kUnknown) return TriBool::kUnknown;
  return a == TriBool::kTrue ? TriBool::kFalse : TriBool::kTrue;
}

inline bool IsTrue(TriBool a) { return a == TriBool::kTrue; }

inline TriBool FromBool(bool b) {
  return b ? TriBool::kTrue : TriBool::kFalse;
}

}  // namespace eca

#endif  // ECA_TYPES_TRI_BOOL_H_
