#ifndef ECA_EXPR_PRED_NORMALIZE_H_
#define ECA_EXPR_PRED_NORMALIZE_H_

#include "expr/expr.h"

namespace eca {

// Logical cleanup of predicate trees. The rewrite layer's lambda folds
// conjoin predicates repeatedly (labels like "p2&p0&gt"), which nests ANDs;
// normalization keeps evaluation and display tidy:
//   - flattens nested AND / OR
//   - drops TRUE conjuncts and FALSE disjuncts
//   - collapses AND with a FALSE child to FALSE, OR with TRUE to TRUE
//   - removes duplicate conjuncts / disjuncts (textual identity)
//   - eliminates double negation
// The result is logically equivalent under three-valued logic (verified by
// randomized testing); labels are preserved.
PredRef NormalizePredicate(const PredRef& pred);

}  // namespace eca

#endif  // ECA_EXPR_PRED_NORMALIZE_H_
