#include "expr/pred_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace eca {

namespace {

struct Cursor {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  void Fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
  }
  void SkipSpace() {
    while (pos < text.size() && std::isspace(text[pos])) ++pos;
  }
  char Peek() const { return pos < text.size() ? text[pos] : '\0'; }
  bool ConsumeWord(const std::string& w) {
    if (text.compare(pos, w.size(), w) == 0) {
      pos += w.size();
      return true;
    }
    return false;
  }
};

ScalarRef ParseOperand(Cursor* c) {
  c->SkipSpace();
  if (c->Peek() == 'R') {
    ++c->pos;
    if (!std::isdigit(c->Peek())) {
      c->Fail("expected relation id after 'R'");
      return nullptr;
    }
    int rel = 0;
    while (std::isdigit(c->Peek())) rel = rel * 10 + (c->text[c->pos++] - '0');
    if (c->Peek() != '.') {
      c->Fail("expected '.' after relation id");
      return nullptr;
    }
    ++c->pos;
    size_t start = c->pos;
    while (c->pos < c->text.size() &&
           (std::isalnum(c->Peek()) || c->Peek() == '_')) {
      ++c->pos;
    }
    if (c->pos == start) {
      c->Fail("expected column name");
      return nullptr;
    }
    return Col(rel, c->text.substr(start, c->pos - start));
  }
  if (std::isdigit(c->Peek()) || c->Peek() == '-' || c->Peek() == '+') {
    size_t start = c->pos;
    ++c->pos;
    bool is_real = false;
    while (c->pos < c->text.size() &&
           (std::isdigit(c->Peek()) || c->Peek() == '.' ||
            c->Peek() == 'e' || c->Peek() == 'E')) {
      if (c->Peek() == '.' || c->Peek() == 'e' || c->Peek() == 'E') {
        is_real = true;
      }
      ++c->pos;
    }
    std::string num = c->text.substr(start, c->pos - start);
    if (is_real) return LitReal(std::strtod(num.c_str(), nullptr));
    return Lit(std::strtoll(num.c_str(), nullptr, 10));
  }
  c->Fail("expected 'R<k>.<col>' or a numeric literal");
  return nullptr;
}

PredRef ParseTerm(Cursor* c) {
  ScalarRef left = ParseOperand(c);
  if (left == nullptr) return nullptr;
  c->SkipSpace();
  Predicate::CmpOp op;
  if (c->ConsumeWord("<>")) {
    op = Predicate::CmpOp::kNe;
  } else if (c->ConsumeWord("<=")) {
    op = Predicate::CmpOp::kLe;
  } else if (c->ConsumeWord(">=")) {
    op = Predicate::CmpOp::kGe;
  } else if (c->ConsumeWord("=")) {
    op = Predicate::CmpOp::kEq;
  } else if (c->ConsumeWord("<")) {
    op = Predicate::CmpOp::kLt;
  } else if (c->ConsumeWord(">")) {
    op = Predicate::CmpOp::kGt;
  } else {
    c->Fail("expected a comparison operator");
    return nullptr;
  }
  ScalarRef right = ParseOperand(c);
  if (right == nullptr) return nullptr;
  return Predicate::Compare(op, std::move(left), std::move(right));
}

}  // namespace

PredRef ParsePredicate(const std::string& text, const std::string& label,
                       std::string* error) {
  Cursor c{text, 0, {}};
  std::vector<PredRef> terms;
  while (true) {
    PredRef term = ParseTerm(&c);
    if (term == nullptr) {
      if (error != nullptr) *error = c.error;
      return nullptr;
    }
    terms.push_back(std::move(term));
    c.SkipSpace();
    if (c.ConsumeWord("AND")) continue;
    break;
  }
  c.SkipSpace();
  if (c.pos != c.text.size()) {
    if (error != nullptr) {
      *error = "trailing input at offset " + std::to_string(c.pos);
    }
    return nullptr;
  }
  PredRef combined = Predicate::And(std::move(terms));
  return label.empty() ? combined
                       : Predicate::WithLabel(std::move(combined), label);
}

}  // namespace eca
