#ifndef ECA_EXPR_PRED_PARSER_H_
#define ECA_EXPR_PRED_PARSER_H_

#include <string>

#include "expr/expr.h"

namespace eca {

// Parses a simple predicate expression for tooling and tests:
//
//   pred   := term (" AND " term)*
//   term   := operand cmp operand
//   cmp    := "=" | "<>" | "<" | "<=" | ">" | ">="
//   operand:= "R<k>.<column>" | integer | floating literal
//
// e.g. "R0.a = R1.a AND R0.b > 5". Returns nullptr and fills *error on
// malformed input. The result carries `label` for plan rendering.
PredRef ParsePredicate(const std::string& text, const std::string& label,
                       std::string* error = nullptr);

}  // namespace eca

#endif  // ECA_EXPR_PRED_PARSER_H_
