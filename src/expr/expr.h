#ifndef ECA_EXPR_EXPR_H_
#define ECA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/rel_set.h"
#include "storage/relation.h"
#include "types/tri_bool.h"
#include "types/value.h"

namespace eca {

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

class Scalar;
using ScalarRef = std::shared_ptr<const Scalar>;

// An immutable scalar expression: a column reference, a constant, or an
// arithmetic combination. Scalars are shared between plans (plans clone
// cheaply by sharing ScalarRefs).
class Scalar {
 public:
  enum class Kind { kColumn, kConst, kArith };
  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  static ScalarRef Column(int rel_id, std::string name);
  static ScalarRef Const(Value v);
  static ScalarRef Arith(ArithOp op, ScalarRef l, ScalarRef r);

  Kind kind() const { return kind_; }
  int rel_id() const { return rel_id_; }
  const std::string& column_name() const { return column_name_; }
  const Value& const_value() const { return const_value_; }
  ArithOp arith_op() const { return arith_op_; }
  const ScalarRef& left() const { return left_; }
  const ScalarRef& right() const { return right_; }

  // Relations referenced by this expression.
  RelSet refs() const { return refs_; }

  // Evaluates against a tuple; NULL if any referenced column is NULL.
  // Slow path (per-call column lookup); the executor uses Compile().
  Value Eval(const Schema& schema, const Tuple& tuple) const;

  std::string ToString() const;

 private:
  Scalar() = default;

  Kind kind_ = Kind::kConst;
  int rel_id_ = -1;
  std::string column_name_;
  Value const_value_;
  ArithOp arith_op_ = ArithOp::kAdd;
  ScalarRef left_, right_;
  RelSet refs_;
};

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

class Predicate;
using PredRef = std::shared_ptr<const Predicate>;

// An immutable boolean expression evaluated under SQL three-valued logic.
//
// Comparisons are null-intolerant: they evaluate to kUnknown whenever an
// operand is NULL, so they can never be true on NULL inputs (the class of
// predicates the paper's completeness results assume). kIsNull is the one
// null-tolerant form; it is used by the SQL generator (gamma rendering) and
// by the Appendix D null-tolerant extension.
class Predicate {
 public:
  enum class Kind {
    kCompare,
    kAnd,
    kOr,
    kNot,
    kConstBool,
    kIsNull,
    kAllNullBlock,
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  static PredRef Compare(CmpOp op, ScalarRef l, ScalarRef r);
  static PredRef And(std::vector<PredRef> children);
  static PredRef Or(std::vector<PredRef> children);
  static PredRef Not(PredRef child);
  static PredRef ConstBool(bool b);
  static PredRef IsNull(ScalarRef s);
  // True iff every attribute of the relations in `rels` is NULL — the
  // gamma-test as a predicate (used when folding gamma* into a join
  // predicate during pull-up; null-tolerant by nature).
  static PredRef AllNull(RelSet rels);

  // Attaches a display label (e.g. "p12"). Returns a relabeled copy.
  static PredRef WithLabel(PredRef p, std::string label);

  Kind kind() const { return kind_; }
  CmpOp cmp_op() const { return cmp_op_; }
  const ScalarRef& scalar_left() const { return scalar_left_; }
  const ScalarRef& scalar_right() const { return scalar_right_; }
  const std::vector<PredRef>& children() const { return children_; }
  bool const_bool() const { return const_bool_; }
  RelSet all_null_rels() const { return all_null_rels_; }
  const std::string& label() const { return label_; }

  RelSet refs() const { return refs_; }

  // True if the predicate contains no null-tolerant subexpression, i.e. it
  // cannot evaluate to kTrue when any referenced column is NULL.
  bool null_intolerant() const { return null_intolerant_; }

  TriBool Eval(const Schema& schema, const Tuple& tuple) const;

  // Short form: the label if one is set, else the full expression.
  std::string DisplayName() const;
  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kConstBool;
  CmpOp cmp_op_ = CmpOp::kEq;
  ScalarRef scalar_left_, scalar_right_;
  std::vector<PredRef> children_;
  bool const_bool_ = false;
  RelSet all_null_rels_;
  std::string label_;
  RelSet refs_;
  bool null_intolerant_ = true;
};

// Structural fingerprints ----------------------------------------------------

// A 64-bit hash of the expression's structure (kinds, operators, column
// references, constants). Structurally identical expressions fingerprint
// equal regardless of where they live in memory; labels are ignored.
// Used wherever expressions key a cache that outlives the expression
// objects themselves (e.g. the cost model's sampled-selectivity cache).
uint64_t StructuralFingerprint(const Scalar& s);
uint64_t StructuralFingerprint(const Predicate& p);

// Convenience builders -------------------------------------------------------

ScalarRef Col(int rel_id, std::string name);
ScalarRef Lit(int64_t v);
ScalarRef LitReal(double v);
ScalarRef LitStr(std::string v);

PredRef Eq(ScalarRef l, ScalarRef r);
PredRef Lt(ScalarRef l, ScalarRef r);
PredRef Gt(ScalarRef l, ScalarRef r);

// Equi-join predicate R<a>.x = R<b>.y with label.
PredRef EquiJoin(int rel_a, const std::string& col_a, int rel_b,
                 const std::string& col_b, std::string label = "");

// ---------------------------------------------------------------------------
// Compiled predicates (fast evaluation path)
// ---------------------------------------------------------------------------

// A predicate bound to a concrete schema: column references are resolved to
// tuple indexes once, so evaluation is lookup-free.
class CompiledPredicate {
 public:
  CompiledPredicate() = default;
  // Binds `pred` to `schema`. All referenced columns must be present.
  CompiledPredicate(const PredRef& pred, const Schema& schema);

  TriBool Eval(const Tuple& tuple) const;
  bool EvalTrue(const Tuple& tuple) const { return IsTrue(Eval(tuple)); }

 private:
  struct Node {
    Predicate::Kind kind;
    Predicate::CmpOp cmp_op;
    bool const_bool;
    int scalar_l = -1, scalar_r = -1;  // indexes into scalar node pool
    std::vector<int> children;         // indexes into pred node pool
    std::vector<int> all_null_columns; // kAllNullBlock: resolved columns
  };
  struct ScalarNode {
    Scalar::Kind kind;
    int column_index = -1;  // kColumn
    Value const_value;      // kConst
    Scalar::ArithOp arith_op = Scalar::ArithOp::kAdd;
    int l = -1, r = -1;
  };

  int CompilePred(const Predicate& p, const Schema& schema);
  int CompileScalar(const Scalar& s, const Schema& schema);
  Value EvalScalar(int idx, const Tuple& tuple) const;
  TriBool EvalNode(int idx, const Tuple& tuple) const;

  std::vector<Node> preds_;
  std::vector<ScalarNode> scalars_;
  int root_ = -1;
};

}  // namespace eca

#endif  // ECA_EXPR_EXPR_H_
