#include "expr/expr.h"

#include "common/str_util.h"

namespace eca {

// ---------------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------------

ScalarRef Scalar::Column(int rel_id, std::string name) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kColumn;
  s->rel_id_ = rel_id;
  s->column_name_ = std::move(name);
  s->refs_ = RelSet::Single(rel_id);
  return s;
}

ScalarRef Scalar::Const(Value v) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kConst;
  s->const_value_ = std::move(v);
  return s;
}

ScalarRef Scalar::Arith(ArithOp op, ScalarRef l, ScalarRef r) {
  ECA_CHECK(l != nullptr && r != nullptr);
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kArith;
  s->arith_op_ = op;
  s->refs_ = l->refs().Union(r->refs());
  s->left_ = std::move(l);
  s->right_ = std::move(r);
  return s;
}

namespace {

Value ApplyArith(Scalar::ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null(DataType::kDouble);
  double x = a.NumericValue(), y = b.NumericValue();
  double r = 0;
  switch (op) {
    case Scalar::ArithOp::kAdd:
      r = x + y;
      break;
    case Scalar::ArithOp::kSub:
      r = x - y;
      break;
    case Scalar::ArithOp::kMul:
      r = x * y;
      break;
    case Scalar::ArithOp::kDiv:
      if (y == 0) return Value::Null(DataType::kDouble);
      r = x / y;
      break;
  }
  return Value::Real(r);
}

const char* ArithOpSymbol(Scalar::ArithOp op) {
  switch (op) {
    case Scalar::ArithOp::kAdd:
      return "+";
    case Scalar::ArithOp::kSub:
      return "-";
    case Scalar::ArithOp::kMul:
      return "*";
    case Scalar::ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* CmpOpSymbol(Predicate::CmpOp op) {
  switch (op) {
    case Predicate::CmpOp::kEq:
      return "=";
    case Predicate::CmpOp::kNe:
      return "<>";
    case Predicate::CmpOp::kLt:
      return "<";
    case Predicate::CmpOp::kLe:
      return "<=";
    case Predicate::CmpOp::kGt:
      return ">";
    case Predicate::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

TriBool ApplyCompare(Predicate::CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return TriBool::kUnknown;
  int c = a.Compare(b);
  switch (op) {
    case Predicate::CmpOp::kEq:
      return FromBool(c == 0);
    case Predicate::CmpOp::kNe:
      return FromBool(c != 0);
    case Predicate::CmpOp::kLt:
      return FromBool(c < 0);
    case Predicate::CmpOp::kLe:
      return FromBool(c <= 0);
    case Predicate::CmpOp::kGt:
      return FromBool(c > 0);
    case Predicate::CmpOp::kGe:
      return FromBool(c >= 0);
  }
  return TriBool::kUnknown;
}

}  // namespace

Value Scalar::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kColumn: {
      int idx = schema.FindColumn(rel_id_, column_name_);
      ECA_CHECK_MSG(idx >= 0, ("unresolved column " + ToString()).c_str());
      return tuple[static_cast<size_t>(idx)];
    }
    case Kind::kConst:
      return const_value_;
    case Kind::kArith:
      return ApplyArith(arith_op_, left_->Eval(schema, tuple),
                        right_->Eval(schema, tuple));
  }
  return Value::Null();
}

std::string Scalar::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return "R" + std::to_string(rel_id_) + "." + column_name_;
    case Kind::kConst:
      return const_value_.ToString();
    case Kind::kArith:
      return "(" + left_->ToString() + " " + ArithOpSymbol(arith_op_) + " " +
             right_->ToString() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Predicate
// ---------------------------------------------------------------------------

PredRef Predicate::Compare(CmpOp op, ScalarRef l, ScalarRef r) {
  ECA_CHECK(l != nullptr && r != nullptr);
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->cmp_op_ = op;
  p->refs_ = l->refs().Union(r->refs());
  p->scalar_left_ = std::move(l);
  p->scalar_right_ = std::move(r);
  p->null_intolerant_ = true;
  return p;
}

PredRef Predicate::And(std::vector<PredRef> children) {
  ECA_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  for (const PredRef& c : children) {
    ECA_CHECK(c != nullptr);
    p->refs_ = p->refs_.Union(c->refs());
    p->null_intolerant_ = p->null_intolerant_ && c->null_intolerant();
  }
  p->children_ = std::move(children);
  return p;
}

PredRef Predicate::Or(std::vector<PredRef> children) {
  ECA_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  for (const PredRef& c : children) {
    ECA_CHECK(c != nullptr);
    p->refs_ = p->refs_.Union(c->refs());
    p->null_intolerant_ = p->null_intolerant_ && c->null_intolerant();
  }
  p->children_ = std::move(children);
  return p;
}

PredRef Predicate::Not(PredRef child) {
  ECA_CHECK(child != nullptr);
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->refs_ = child->refs();
  // NOT(unknown) = unknown, so NOT of a null-intolerant predicate is still
  // never true on null inputs only if the child is never *false* on them;
  // conservatively classify NOT as null-intolerant (comparisons yield
  // kUnknown on nulls and NOT preserves kUnknown).
  p->null_intolerant_ = child->null_intolerant();
  p->children_.push_back(std::move(child));
  return p;
}

PredRef Predicate::ConstBool(bool b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kConstBool;
  p->const_bool_ = b;
  // FALSE is vacuously null-intolerant; TRUE is null-tolerant (it is true
  // regardless of nulls).
  p->null_intolerant_ = !b;
  return p;
}

PredRef Predicate::IsNull(ScalarRef s) {
  ECA_CHECK(s != nullptr);
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kIsNull;
  p->refs_ = s->refs();
  p->scalar_left_ = std::move(s);
  p->null_intolerant_ = false;
  return p;
}

PredRef Predicate::AllNull(RelSet rels) {
  ECA_CHECK(!rels.Empty());
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAllNullBlock;
  p->all_null_rels_ = rels;
  // The tested relations count as referenced: the rewrite layer's
  // containment and projection-survival checks must keep these attributes
  // visible wherever the predicate is evaluated (a conservative choice —
  // the test only observes nullness, but losing the columns would change
  // its meaning silently).
  p->refs_ = rels;
  p->null_intolerant_ = false;
  return p;
}

PredRef Predicate::WithLabel(PredRef src, std::string label) {
  ECA_CHECK(src != nullptr);
  auto p = std::shared_ptr<Predicate>(new Predicate(*src));
  p->label_ = std::move(label);
  return p;
}

TriBool Predicate::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kCompare:
      return ApplyCompare(cmp_op_, scalar_left_->Eval(schema, tuple),
                          scalar_right_->Eval(schema, tuple));
    case Kind::kAnd: {
      TriBool acc = TriBool::kTrue;
      for (const PredRef& c : children_) {
        acc = TriAnd(acc, c->Eval(schema, tuple));
        if (acc == TriBool::kFalse) break;
      }
      return acc;
    }
    case Kind::kOr: {
      TriBool acc = TriBool::kFalse;
      for (const PredRef& c : children_) {
        acc = TriOr(acc, c->Eval(schema, tuple));
        if (acc == TriBool::kTrue) break;
      }
      return acc;
    }
    case Kind::kNot:
      return TriNot(children_[0]->Eval(schema, tuple));
    case Kind::kConstBool:
      return FromBool(const_bool_);
    case Kind::kIsNull:
      return FromBool(scalar_left_->Eval(schema, tuple).is_null());
    case Kind::kAllNullBlock: {
      for (int c : schema.ColumnsOf(all_null_rels_)) {
        if (!tuple[static_cast<size_t>(c)].is_null()) {
          return TriBool::kFalse;
        }
      }
      return TriBool::kTrue;
    }
  }
  return TriBool::kUnknown;
}

std::string Predicate::DisplayName() const {
  return label_.empty() ? ToString() : label_;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kCompare:
      return scalar_left_->ToString() + " " + CmpOpSymbol(cmp_op_) + " " +
             scalar_right_->ToString();
    case Kind::kAnd: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const PredRef& c : children_) parts.push_back(c->ToString());
      return "(" + StrJoin(parts, " AND ") + ")";
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const PredRef& c : children_) parts.push_back(c->ToString());
      return "(" + StrJoin(parts, " OR ") + ")";
    }
    case Kind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case Kind::kConstBool:
      return const_bool_ ? "TRUE" : "FALSE";
    case Kind::kIsNull:
      return scalar_left_->ToString() + " IS NULL";
    case Kind::kAllNullBlock:
      return "ALLNULL" + all_null_rels_.ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Structural fingerprints
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * kFnvPrime;
}

uint64_t MixStr(uint64_t h, const std::string& s) {
  for (char c : s) h = Mix(h, static_cast<uint64_t>(c));
  return Mix(h, s.size());
}

}  // namespace

uint64_t StructuralFingerprint(const Scalar& s) {
  uint64_t h = Mix(kFnvOffset, static_cast<uint64_t>(s.kind()));
  switch (s.kind()) {
    case Scalar::Kind::kColumn:
      h = Mix(h, static_cast<uint64_t>(s.rel_id()));
      h = MixStr(h, s.column_name());
      break;
    case Scalar::Kind::kConst:
      h = Mix(h, s.const_value().is_null() ? 0x517cc1b7ULL
                                           : s.const_value().Hash());
      h = Mix(h, static_cast<uint64_t>(s.const_value().type()));
      break;
    case Scalar::Kind::kArith:
      h = Mix(h, static_cast<uint64_t>(s.arith_op()));
      h = Mix(h, StructuralFingerprint(*s.left()));
      h = Mix(h, StructuralFingerprint(*s.right()));
      break;
  }
  return h;
}

uint64_t StructuralFingerprint(const Predicate& p) {
  uint64_t h = Mix(kFnvOffset, static_cast<uint64_t>(p.kind()) + 0x51ULL);
  switch (p.kind()) {
    case Predicate::Kind::kCompare:
      h = Mix(h, static_cast<uint64_t>(p.cmp_op()));
      h = Mix(h, StructuralFingerprint(*p.scalar_left()));
      h = Mix(h, StructuralFingerprint(*p.scalar_right()));
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      for (const PredRef& c : p.children()) {
        h = Mix(h, StructuralFingerprint(*c));
      }
      h = Mix(h, p.children().size());
      break;
    case Predicate::Kind::kConstBool:
      h = Mix(h, p.const_bool() ? 1 : 2);
      break;
    case Predicate::Kind::kIsNull:
      h = Mix(h, StructuralFingerprint(*p.scalar_left()));
      break;
    case Predicate::Kind::kAllNullBlock:
      for (int id : p.all_null_rels()) h = Mix(h, static_cast<uint64_t>(id));
      break;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

ScalarRef Col(int rel_id, std::string name) {
  return Scalar::Column(rel_id, std::move(name));
}
ScalarRef Lit(int64_t v) { return Scalar::Const(Value::Int(v)); }
ScalarRef LitReal(double v) { return Scalar::Const(Value::Real(v)); }
ScalarRef LitStr(std::string v) {
  return Scalar::Const(Value::Str(std::move(v)));
}

PredRef Eq(ScalarRef l, ScalarRef r) {
  return Predicate::Compare(Predicate::CmpOp::kEq, std::move(l), std::move(r));
}
PredRef Lt(ScalarRef l, ScalarRef r) {
  return Predicate::Compare(Predicate::CmpOp::kLt, std::move(l), std::move(r));
}
PredRef Gt(ScalarRef l, ScalarRef r) {
  return Predicate::Compare(Predicate::CmpOp::kGt, std::move(l), std::move(r));
}

PredRef EquiJoin(int rel_a, const std::string& col_a, int rel_b,
                 const std::string& col_b, std::string label) {
  PredRef p = Eq(Col(rel_a, col_a), Col(rel_b, col_b));
  if (!label.empty()) p = Predicate::WithLabel(p, std::move(label));
  return p;
}

// ---------------------------------------------------------------------------
// CompiledPredicate
// ---------------------------------------------------------------------------

CompiledPredicate::CompiledPredicate(const PredRef& pred,
                                     const Schema& schema) {
  ECA_CHECK(pred != nullptr);
  root_ = CompilePred(*pred, schema);
}

int CompiledPredicate::CompileScalar(const Scalar& s, const Schema& schema) {
  ScalarNode node;
  node.kind = s.kind();
  switch (s.kind()) {
    case Scalar::Kind::kColumn:
      node.column_index = schema.FindColumn(s.rel_id(), s.column_name());
      ECA_CHECK_MSG(node.column_index >= 0, s.ToString().c_str());
      break;
    case Scalar::Kind::kConst:
      node.const_value = s.const_value();
      break;
    case Scalar::Kind::kArith:
      node.arith_op = s.arith_op();
      node.l = CompileScalar(*s.left(), schema);
      node.r = CompileScalar(*s.right(), schema);
      break;
  }
  scalars_.push_back(std::move(node));
  return static_cast<int>(scalars_.size()) - 1;
}

int CompiledPredicate::CompilePred(const Predicate& p, const Schema& schema) {
  Node node;
  node.kind = p.kind();
  node.cmp_op = p.cmp_op();
  node.const_bool = p.const_bool();
  switch (p.kind()) {
    case Predicate::Kind::kCompare:
      node.scalar_l = CompileScalar(*p.scalar_left(), schema);
      node.scalar_r = CompileScalar(*p.scalar_right(), schema);
      break;
    case Predicate::Kind::kIsNull:
      node.scalar_l = CompileScalar(*p.scalar_left(), schema);
      break;
    case Predicate::Kind::kAllNullBlock:
      node.all_null_columns = schema.ColumnsOf(p.all_null_rels());
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      for (const PredRef& c : p.children()) {
        node.children.push_back(CompilePred(*c, schema));
      }
      break;
    case Predicate::Kind::kConstBool:
      break;
  }
  preds_.push_back(std::move(node));
  return static_cast<int>(preds_.size()) - 1;
}

Value CompiledPredicate::EvalScalar(int idx, const Tuple& tuple) const {
  const ScalarNode& n = scalars_[static_cast<size_t>(idx)];
  switch (n.kind) {
    case Scalar::Kind::kColumn:
      return tuple[static_cast<size_t>(n.column_index)];
    case Scalar::Kind::kConst:
      return n.const_value;
    case Scalar::Kind::kArith:
      return ApplyArith(n.arith_op, EvalScalar(n.l, tuple),
                        EvalScalar(n.r, tuple));
  }
  return Value::Null();
}

TriBool CompiledPredicate::EvalNode(int idx, const Tuple& tuple) const {
  const Node& n = preds_[static_cast<size_t>(idx)];
  switch (n.kind) {
    case Predicate::Kind::kCompare:
      return ApplyCompare(n.cmp_op, EvalScalar(n.scalar_l, tuple),
                          EvalScalar(n.scalar_r, tuple));
    case Predicate::Kind::kAnd: {
      TriBool acc = TriBool::kTrue;
      for (int c : n.children) {
        acc = TriAnd(acc, EvalNode(c, tuple));
        if (acc == TriBool::kFalse) break;
      }
      return acc;
    }
    case Predicate::Kind::kOr: {
      TriBool acc = TriBool::kFalse;
      for (int c : n.children) {
        acc = TriOr(acc, EvalNode(c, tuple));
        if (acc == TriBool::kTrue) break;
      }
      return acc;
    }
    case Predicate::Kind::kNot:
      return TriNot(EvalNode(n.children[0], tuple));
    case Predicate::Kind::kConstBool:
      return FromBool(n.const_bool);
    case Predicate::Kind::kIsNull:
      return FromBool(EvalScalar(n.scalar_l, tuple).is_null());
    case Predicate::Kind::kAllNullBlock: {
      for (int col : n.all_null_columns) {
        if (!tuple[static_cast<size_t>(col)].is_null()) {
          return TriBool::kFalse;
        }
      }
      return TriBool::kTrue;
    }
  }
  return TriBool::kUnknown;
}

TriBool CompiledPredicate::Eval(const Tuple& tuple) const {
  ECA_DCHECK(root_ >= 0);
  return EvalNode(root_, tuple);
}

}  // namespace eca
