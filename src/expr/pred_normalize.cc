#include "expr/pred_normalize.h"

#include <set>
#include <vector>

namespace eca {

namespace {

// Collects the child predicates of a flattened AND/OR chain.
void Flatten(const PredRef& p, Predicate::Kind kind,
             std::vector<PredRef>* out) {
  if (p->kind() == kind) {
    for (const PredRef& c : p->children()) Flatten(c, kind, out);
  } else {
    out->push_back(p);
  }
}

}  // namespace

PredRef NormalizePredicate(const PredRef& pred) {
  ECA_CHECK(pred != nullptr);
  switch (pred->kind()) {
    case Predicate::Kind::kCompare:
    case Predicate::Kind::kConstBool:
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kAllNullBlock:
      return pred;
    case Predicate::Kind::kNot: {
      PredRef child = NormalizePredicate(pred->children()[0]);
      if (child->kind() == Predicate::Kind::kNot) {
        // NOT(NOT(x)) = x under 3VL (kUnknown maps to kUnknown twice).
        PredRef inner = child->children()[0];
        return pred->label().empty()
                   ? inner
                   : Predicate::WithLabel(inner, pred->label());
      }
      if (child->kind() == Predicate::Kind::kConstBool) {
        return Predicate::ConstBool(!child->const_bool());
      }
      PredRef result = Predicate::Not(std::move(child));
      return pred->label().empty()
                 ? result
                 : Predicate::WithLabel(std::move(result), pred->label());
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      break;
  }

  const bool is_and = pred->kind() == Predicate::Kind::kAnd;
  std::vector<PredRef> flat;
  Flatten(pred, pred->kind(), &flat);
  std::vector<PredRef> kept;
  std::set<std::string> seen;
  for (const PredRef& raw : flat) {
    PredRef c = NormalizePredicate(raw);
    if (c->kind() == Predicate::Kind::kConstBool) {
      if (c->const_bool() == is_and) continue;  // neutral element
      // Absorbing element: AND with FALSE / OR with TRUE.
      return Predicate::ConstBool(!is_and);
    }
    if (seen.insert(c->ToString()).second) {
      kept.push_back(std::move(c));
    }
  }
  if (kept.empty()) {
    // All children were neutral: the chain is TRUE (AND) / FALSE (OR).
    return Predicate::ConstBool(is_and);
  }
  PredRef result = is_and ? Predicate::And(std::move(kept))
                          : Predicate::Or(std::move(kept));
  return pred->label().empty()
             ? result
             : Predicate::WithLabel(std::move(result), pred->label());
}

}  // namespace eca
