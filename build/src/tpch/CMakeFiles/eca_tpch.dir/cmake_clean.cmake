file(REMOVE_RECURSE
  "CMakeFiles/eca_tpch.dir/paper_queries.cc.o"
  "CMakeFiles/eca_tpch.dir/paper_queries.cc.o.d"
  "CMakeFiles/eca_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/eca_tpch.dir/tpch_gen.cc.o.d"
  "libeca_tpch.a"
  "libeca_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
