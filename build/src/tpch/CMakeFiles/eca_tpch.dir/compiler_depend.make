# Empty compiler generated dependencies file for eca_tpch.
# This may be replaced when dependencies are built.
