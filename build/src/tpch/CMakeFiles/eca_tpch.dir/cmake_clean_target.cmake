file(REMOVE_RECURSE
  "libeca_tpch.a"
)
