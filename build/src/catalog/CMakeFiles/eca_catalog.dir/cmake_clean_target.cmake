file(REMOVE_RECURSE
  "libeca_catalog.a"
)
