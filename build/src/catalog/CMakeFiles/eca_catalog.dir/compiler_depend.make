# Empty compiler generated dependencies file for eca_catalog.
# This may be replaced when dependencies are built.
