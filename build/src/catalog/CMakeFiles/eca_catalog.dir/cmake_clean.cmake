file(REMOVE_RECURSE
  "CMakeFiles/eca_catalog.dir/schema.cc.o"
  "CMakeFiles/eca_catalog.dir/schema.cc.o.d"
  "libeca_catalog.a"
  "libeca_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
