# Empty dependencies file for eca_enumerate.
# This may be replaced when dependencies are built.
