file(REMOVE_RECURSE
  "libeca_enumerate.a"
)
