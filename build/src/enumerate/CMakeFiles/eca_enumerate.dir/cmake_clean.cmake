file(REMOVE_RECURSE
  "CMakeFiles/eca_enumerate.dir/enumerator.cc.o"
  "CMakeFiles/eca_enumerate.dir/enumerator.cc.o.d"
  "CMakeFiles/eca_enumerate.dir/exhaustive.cc.o"
  "CMakeFiles/eca_enumerate.dir/exhaustive.cc.o.d"
  "CMakeFiles/eca_enumerate.dir/join_order.cc.o"
  "CMakeFiles/eca_enumerate.dir/join_order.cc.o.d"
  "CMakeFiles/eca_enumerate.dir/realize.cc.o"
  "CMakeFiles/eca_enumerate.dir/realize.cc.o.d"
  "CMakeFiles/eca_enumerate.dir/subtree.cc.o"
  "CMakeFiles/eca_enumerate.dir/subtree.cc.o.d"
  "libeca_enumerate.a"
  "libeca_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
