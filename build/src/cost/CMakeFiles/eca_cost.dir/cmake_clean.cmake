file(REMOVE_RECURSE
  "CMakeFiles/eca_cost.dir/cost_model.cc.o"
  "CMakeFiles/eca_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/eca_cost.dir/histogram.cc.o"
  "CMakeFiles/eca_cost.dir/histogram.cc.o.d"
  "libeca_cost.a"
  "libeca_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
