file(REMOVE_RECURSE
  "libeca_cost.a"
)
