# Empty compiler generated dependencies file for eca_cost.
# This may be replaced when dependencies are built.
