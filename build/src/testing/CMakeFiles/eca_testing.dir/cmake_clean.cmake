file(REMOVE_RECURSE
  "CMakeFiles/eca_testing.dir/random_data.cc.o"
  "CMakeFiles/eca_testing.dir/random_data.cc.o.d"
  "CMakeFiles/eca_testing.dir/random_query.cc.o"
  "CMakeFiles/eca_testing.dir/random_query.cc.o.d"
  "libeca_testing.a"
  "libeca_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
