# Empty compiler generated dependencies file for eca_testing.
# This may be replaced when dependencies are built.
