file(REMOVE_RECURSE
  "libeca_testing.a"
)
