file(REMOVE_RECURSE
  "libeca_exec.a"
)
