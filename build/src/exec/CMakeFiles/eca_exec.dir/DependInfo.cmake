
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/comp_exec.cc" "src/exec/CMakeFiles/eca_exec.dir/comp_exec.cc.o" "gcc" "src/exec/CMakeFiles/eca_exec.dir/comp_exec.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/eca_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/eca_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/explain.cc" "src/exec/CMakeFiles/eca_exec.dir/explain.cc.o" "gcc" "src/exec/CMakeFiles/eca_exec.dir/explain.cc.o.d"
  "/root/repo/src/exec/iterator_exec.cc" "src/exec/CMakeFiles/eca_exec.dir/iterator_exec.cc.o" "gcc" "src/exec/CMakeFiles/eca_exec.dir/iterator_exec.cc.o.d"
  "/root/repo/src/exec/join_exec.cc" "src/exec/CMakeFiles/eca_exec.dir/join_exec.cc.o" "gcc" "src/exec/CMakeFiles/eca_exec.dir/join_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/eca_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/eca_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eca_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eca_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eca_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
