# Empty dependencies file for eca_exec.
# This may be replaced when dependencies are built.
