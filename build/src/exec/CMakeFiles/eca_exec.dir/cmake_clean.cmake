file(REMOVE_RECURSE
  "CMakeFiles/eca_exec.dir/comp_exec.cc.o"
  "CMakeFiles/eca_exec.dir/comp_exec.cc.o.d"
  "CMakeFiles/eca_exec.dir/executor.cc.o"
  "CMakeFiles/eca_exec.dir/executor.cc.o.d"
  "CMakeFiles/eca_exec.dir/explain.cc.o"
  "CMakeFiles/eca_exec.dir/explain.cc.o.d"
  "CMakeFiles/eca_exec.dir/iterator_exec.cc.o"
  "CMakeFiles/eca_exec.dir/iterator_exec.cc.o.d"
  "CMakeFiles/eca_exec.dir/join_exec.cc.o"
  "CMakeFiles/eca_exec.dir/join_exec.cc.o.d"
  "libeca_exec.a"
  "libeca_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
