file(REMOVE_RECURSE
  "libeca_sqlgen.a"
)
