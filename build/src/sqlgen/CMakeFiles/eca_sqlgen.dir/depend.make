# Empty dependencies file for eca_sqlgen.
# This may be replaced when dependencies are built.
