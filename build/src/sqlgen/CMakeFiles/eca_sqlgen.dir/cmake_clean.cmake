file(REMOVE_RECURSE
  "CMakeFiles/eca_sqlgen.dir/sqlgen.cc.o"
  "CMakeFiles/eca_sqlgen.dir/sqlgen.cc.o.d"
  "libeca_sqlgen.a"
  "libeca_sqlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_sqlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
