file(REMOVE_RECURSE
  "CMakeFiles/eca_types.dir/value.cc.o"
  "CMakeFiles/eca_types.dir/value.cc.o.d"
  "libeca_types.a"
  "libeca_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
