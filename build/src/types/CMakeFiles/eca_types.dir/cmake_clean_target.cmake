file(REMOVE_RECURSE
  "libeca_types.a"
)
