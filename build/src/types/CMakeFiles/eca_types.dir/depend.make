# Empty dependencies file for eca_types.
# This may be replaced when dependencies are built.
