file(REMOVE_RECURSE
  "CMakeFiles/eca_common.dir/str_util.cc.o"
  "CMakeFiles/eca_common.dir/str_util.cc.o.d"
  "libeca_common.a"
  "libeca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
