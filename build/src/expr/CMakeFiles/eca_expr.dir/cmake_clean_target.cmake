file(REMOVE_RECURSE
  "libeca_expr.a"
)
