file(REMOVE_RECURSE
  "CMakeFiles/eca_expr.dir/expr.cc.o"
  "CMakeFiles/eca_expr.dir/expr.cc.o.d"
  "CMakeFiles/eca_expr.dir/pred_normalize.cc.o"
  "CMakeFiles/eca_expr.dir/pred_normalize.cc.o.d"
  "CMakeFiles/eca_expr.dir/pred_parser.cc.o"
  "CMakeFiles/eca_expr.dir/pred_parser.cc.o.d"
  "libeca_expr.a"
  "libeca_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
