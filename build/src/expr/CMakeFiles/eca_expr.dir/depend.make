# Empty dependencies file for eca_expr.
# This may be replaced when dependencies are built.
