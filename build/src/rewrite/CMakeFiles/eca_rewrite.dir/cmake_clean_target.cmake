file(REMOVE_RECURSE
  "libeca_rewrite.a"
)
