
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/comp_simplify.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/comp_simplify.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/comp_simplify.cc.o.d"
  "/root/repo/src/rewrite/oj_simplify.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/oj_simplify.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/oj_simplify.cc.o.d"
  "/root/repo/src/rewrite/paper_rules.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/paper_rules.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/paper_rules.cc.o.d"
  "/root/repo/src/rewrite/property_probe.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/property_probe.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/property_probe.cc.o.d"
  "/root/repo/src/rewrite/rules_pull.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/rules_pull.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/rules_pull.cc.o.d"
  "/root/repo/src/rewrite/rules_swap.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/rules_swap.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/rules_swap.cc.o.d"
  "/root/repo/src/rewrite/transform.cc" "src/rewrite/CMakeFiles/eca_rewrite.dir/transform.cc.o" "gcc" "src/rewrite/CMakeFiles/eca_rewrite.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/eca_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/eca_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eca_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/eca_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eca_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eca_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eca_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
