# Empty dependencies file for eca_rewrite.
# This may be replaced when dependencies are built.
