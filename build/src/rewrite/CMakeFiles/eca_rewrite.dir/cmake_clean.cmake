file(REMOVE_RECURSE
  "CMakeFiles/eca_rewrite.dir/comp_simplify.cc.o"
  "CMakeFiles/eca_rewrite.dir/comp_simplify.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/oj_simplify.cc.o"
  "CMakeFiles/eca_rewrite.dir/oj_simplify.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/paper_rules.cc.o"
  "CMakeFiles/eca_rewrite.dir/paper_rules.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/property_probe.cc.o"
  "CMakeFiles/eca_rewrite.dir/property_probe.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/rules_pull.cc.o"
  "CMakeFiles/eca_rewrite.dir/rules_pull.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/rules_swap.cc.o"
  "CMakeFiles/eca_rewrite.dir/rules_swap.cc.o.d"
  "CMakeFiles/eca_rewrite.dir/transform.cc.o"
  "CMakeFiles/eca_rewrite.dir/transform.cc.o.d"
  "libeca_rewrite.a"
  "libeca_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
