file(REMOVE_RECURSE
  "libeca_storage.a"
)
