# Empty dependencies file for eca_storage.
# This may be replaced when dependencies are built.
