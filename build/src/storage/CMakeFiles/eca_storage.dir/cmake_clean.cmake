file(REMOVE_RECURSE
  "CMakeFiles/eca_storage.dir/csv.cc.o"
  "CMakeFiles/eca_storage.dir/csv.cc.o.d"
  "CMakeFiles/eca_storage.dir/relation.cc.o"
  "CMakeFiles/eca_storage.dir/relation.cc.o.d"
  "libeca_storage.a"
  "libeca_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
