file(REMOVE_RECURSE
  "libeca_algebra.a"
)
