file(REMOVE_RECURSE
  "CMakeFiles/eca_algebra.dir/join_op.cc.o"
  "CMakeFiles/eca_algebra.dir/join_op.cc.o.d"
  "CMakeFiles/eca_algebra.dir/plan.cc.o"
  "CMakeFiles/eca_algebra.dir/plan.cc.o.d"
  "CMakeFiles/eca_algebra.dir/plan_parser.cc.o"
  "CMakeFiles/eca_algebra.dir/plan_parser.cc.o.d"
  "CMakeFiles/eca_algebra.dir/validate.cc.o"
  "CMakeFiles/eca_algebra.dir/validate.cc.o.d"
  "libeca_algebra.a"
  "libeca_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
