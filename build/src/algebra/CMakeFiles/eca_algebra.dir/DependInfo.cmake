
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/join_op.cc" "src/algebra/CMakeFiles/eca_algebra.dir/join_op.cc.o" "gcc" "src/algebra/CMakeFiles/eca_algebra.dir/join_op.cc.o.d"
  "/root/repo/src/algebra/plan.cc" "src/algebra/CMakeFiles/eca_algebra.dir/plan.cc.o" "gcc" "src/algebra/CMakeFiles/eca_algebra.dir/plan.cc.o.d"
  "/root/repo/src/algebra/plan_parser.cc" "src/algebra/CMakeFiles/eca_algebra.dir/plan_parser.cc.o" "gcc" "src/algebra/CMakeFiles/eca_algebra.dir/plan_parser.cc.o.d"
  "/root/repo/src/algebra/validate.cc" "src/algebra/CMakeFiles/eca_algebra.dir/validate.cc.o" "gcc" "src/algebra/CMakeFiles/eca_algebra.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/eca_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eca_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eca_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eca_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
