# Empty dependencies file for eca_algebra.
# This may be replaced when dependencies are built.
