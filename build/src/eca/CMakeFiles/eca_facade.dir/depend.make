# Empty dependencies file for eca_facade.
# This may be replaced when dependencies are built.
