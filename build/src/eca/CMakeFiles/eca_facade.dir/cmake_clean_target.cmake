file(REMOVE_RECURSE
  "libeca_facade.a"
)
