file(REMOVE_RECURSE
  "CMakeFiles/eca_facade.dir/optimizer.cc.o"
  "CMakeFiles/eca_facade.dir/optimizer.cc.o.d"
  "libeca_facade.a"
  "libeca_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
