file(REMOVE_RECURSE
  "CMakeFiles/bench_reorderability.dir/bench_reorderability.cc.o"
  "CMakeFiles/bench_reorderability.dir/bench_reorderability.cc.o.d"
  "bench_reorderability"
  "bench_reorderability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorderability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
