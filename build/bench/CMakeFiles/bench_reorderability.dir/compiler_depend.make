# Empty compiler generated dependencies file for bench_reorderability.
# This may be replaced when dependencies are built.
