# Empty dependencies file for bench_appendix_f.
# This may be replaced when dependencies are built.
