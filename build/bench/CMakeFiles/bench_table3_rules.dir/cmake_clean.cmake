file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rules.dir/bench_table3_rules.cc.o"
  "CMakeFiles/bench_table3_rules.dir/bench_table3_rules.cc.o.d"
  "bench_table3_rules"
  "bench_table3_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
