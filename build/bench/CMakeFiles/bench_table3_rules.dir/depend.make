# Empty dependencies file for bench_table3_rules.
# This may be replaced when dependencies are built.
