# Empty dependencies file for bench_ablation_dedges.
# This may be replaced when dependencies are built.
