file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dedges.dir/bench_ablation_dedges.cc.o"
  "CMakeFiles/bench_ablation_dedges.dir/bench_ablation_dedges.cc.o.d"
  "bench_ablation_dedges"
  "bench_ablation_dedges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dedges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
