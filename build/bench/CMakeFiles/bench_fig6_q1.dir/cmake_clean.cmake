file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_q1.dir/bench_fig6_q1.cc.o"
  "CMakeFiles/bench_fig6_q1.dir/bench_fig6_q1.cc.o.d"
  "bench_fig6_q1"
  "bench_fig6_q1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_q1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
