file(REMOVE_RECURSE
  "CMakeFiles/bench_table45_rules.dir/bench_table45_rules.cc.o"
  "CMakeFiles/bench_table45_rules.dir/bench_table45_rules.cc.o.d"
  "bench_table45_rules"
  "bench_table45_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table45_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
