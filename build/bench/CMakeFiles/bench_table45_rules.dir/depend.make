# Empty dependencies file for bench_table45_rules.
# This may be replaced when dependencies are built.
