# Empty dependencies file for bench_fig6_q3.
# This may be replaced when dependencies are built.
