# Empty compiler generated dependencies file for bench_compensation_ops.
# This may be replaced when dependencies are built.
