file(REMOVE_RECURSE
  "CMakeFiles/bench_compensation_ops.dir/bench_compensation_ops.cc.o"
  "CMakeFiles/bench_compensation_ops.dir/bench_compensation_ops.cc.o.d"
  "bench_compensation_ops"
  "bench_compensation_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compensation_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
