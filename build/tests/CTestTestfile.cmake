# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_tests "/root/repo/build/tests/base_tests")
set_tests_properties(base_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_tests "/root/repo/build/tests/exec_tests")
set_tests_properties(exec_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cost_tests "/root/repo/build/tests/cost_tests")
set_tests_properties(cost_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;34;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rewrite_tests "/root/repo/build/tests/rewrite_tests")
set_tests_properties(rewrite_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;39;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(enumerate_tests "/root/repo/build/tests/enumerate_tests")
set_tests_properties(enumerate_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;50;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpch_tests "/root/repo/build/tests/tpch_tests")
set_tests_properties(tpch_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;59;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sqlgen_tests "/root/repo/build/tests/sqlgen_tests")
set_tests_properties(sqlgen_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;64;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(facade_tests "/root/repo/build/tests/facade_tests")
set_tests_properties(facade_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;69;eca_add_test;/root/repo/tests/CMakeLists.txt;0;")
