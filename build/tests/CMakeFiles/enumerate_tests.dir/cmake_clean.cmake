file(REMOVE_RECURSE
  "CMakeFiles/enumerate_tests.dir/enumerate/dedge_reuse_test.cc.o"
  "CMakeFiles/enumerate_tests.dir/enumerate/dedge_reuse_test.cc.o.d"
  "CMakeFiles/enumerate_tests.dir/enumerate/enumerator_test.cc.o"
  "CMakeFiles/enumerate_tests.dir/enumerate/enumerator_test.cc.o.d"
  "CMakeFiles/enumerate_tests.dir/enumerate/exhaustive_test.cc.o"
  "CMakeFiles/enumerate_tests.dir/enumerate/exhaustive_test.cc.o.d"
  "CMakeFiles/enumerate_tests.dir/enumerate/null_tolerant_test.cc.o"
  "CMakeFiles/enumerate_tests.dir/enumerate/null_tolerant_test.cc.o.d"
  "CMakeFiles/enumerate_tests.dir/enumerate/robustness_test.cc.o"
  "CMakeFiles/enumerate_tests.dir/enumerate/robustness_test.cc.o.d"
  "enumerate_tests"
  "enumerate_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
