# Empty dependencies file for enumerate_tests.
# This may be replaced when dependencies are built.
