# Empty dependencies file for facade_tests.
# This may be replaced when dependencies are built.
