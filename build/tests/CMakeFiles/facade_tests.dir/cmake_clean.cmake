file(REMOVE_RECURSE
  "CMakeFiles/facade_tests.dir/eca/optimizer_test.cc.o"
  "CMakeFiles/facade_tests.dir/eca/optimizer_test.cc.o.d"
  "facade_tests"
  "facade_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facade_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
