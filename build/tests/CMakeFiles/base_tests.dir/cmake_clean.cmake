file(REMOVE_RECURSE
  "CMakeFiles/base_tests.dir/base/common_test.cc.o"
  "CMakeFiles/base_tests.dir/base/common_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/csv_test.cc.o"
  "CMakeFiles/base_tests.dir/base/csv_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/expr_test.cc.o"
  "CMakeFiles/base_tests.dir/base/expr_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/plan_parser_test.cc.o"
  "CMakeFiles/base_tests.dir/base/plan_parser_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/plan_test.cc.o"
  "CMakeFiles/base_tests.dir/base/plan_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/pred_parser_test.cc.o"
  "CMakeFiles/base_tests.dir/base/pred_parser_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/relation_test.cc.o"
  "CMakeFiles/base_tests.dir/base/relation_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/schema_test.cc.o"
  "CMakeFiles/base_tests.dir/base/schema_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/value_test.cc.o"
  "CMakeFiles/base_tests.dir/base/value_test.cc.o.d"
  "base_tests"
  "base_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
