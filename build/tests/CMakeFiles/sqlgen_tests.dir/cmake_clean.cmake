file(REMOVE_RECURSE
  "CMakeFiles/sqlgen_tests.dir/sqlgen/sqlgen_test.cc.o"
  "CMakeFiles/sqlgen_tests.dir/sqlgen/sqlgen_test.cc.o.d"
  "sqlgen_tests"
  "sqlgen_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
