# Empty compiler generated dependencies file for sqlgen_tests.
# This may be replaced when dependencies are built.
