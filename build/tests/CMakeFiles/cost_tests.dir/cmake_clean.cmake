file(REMOVE_RECURSE
  "CMakeFiles/cost_tests.dir/cost/cost_model_test.cc.o"
  "CMakeFiles/cost_tests.dir/cost/cost_model_test.cc.o.d"
  "cost_tests"
  "cost_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
