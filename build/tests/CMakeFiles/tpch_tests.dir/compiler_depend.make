# Empty compiler generated dependencies file for tpch_tests.
# This may be replaced when dependencies are built.
