file(REMOVE_RECURSE
  "CMakeFiles/tpch_tests.dir/tpch/tpch_test.cc.o"
  "CMakeFiles/tpch_tests.dir/tpch/tpch_test.cc.o.d"
  "tpch_tests"
  "tpch_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
