file(REMOVE_RECURSE
  "CMakeFiles/rewrite_tests.dir/rewrite/cba_canonical_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/cba_canonical_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/comp_simplify_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/comp_simplify_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/oj_simplify_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/oj_simplify_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/paper_examples_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/paper_examples_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/paper_rules_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/paper_rules_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/pull_rules_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/pull_rules_test.cc.o.d"
  "CMakeFiles/rewrite_tests.dir/rewrite/swap_test.cc.o"
  "CMakeFiles/rewrite_tests.dir/rewrite/swap_test.cc.o.d"
  "rewrite_tests"
  "rewrite_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
