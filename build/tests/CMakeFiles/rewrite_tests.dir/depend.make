# Empty dependencies file for rewrite_tests.
# This may be replaced when dependencies are built.
