file(REMOVE_RECURSE
  "CMakeFiles/exec_tests.dir/exec/comp_exec_test.cc.o"
  "CMakeFiles/exec_tests.dir/exec/comp_exec_test.cc.o.d"
  "CMakeFiles/exec_tests.dir/exec/iterator_exec_test.cc.o"
  "CMakeFiles/exec_tests.dir/exec/iterator_exec_test.cc.o.d"
  "CMakeFiles/exec_tests.dir/exec/join_exec_test.cc.o"
  "CMakeFiles/exec_tests.dir/exec/join_exec_test.cc.o.d"
  "CMakeFiles/exec_tests.dir/exec/metamorphic_test.cc.o"
  "CMakeFiles/exec_tests.dir/exec/metamorphic_test.cc.o.d"
  "CMakeFiles/exec_tests.dir/exec/union_normalize_test.cc.o"
  "CMakeFiles/exec_tests.dir/exec/union_normalize_test.cc.o.d"
  "exec_tests"
  "exec_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
