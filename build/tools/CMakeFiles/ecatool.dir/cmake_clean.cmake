file(REMOVE_RECURSE
  "CMakeFiles/ecatool.dir/ecatool.cc.o"
  "CMakeFiles/ecatool.dir/ecatool.cc.o.d"
  "ecatool"
  "ecatool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecatool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
