# Empty compiler generated dependencies file for ecatool.
# This may be replaced when dependencies are built.
