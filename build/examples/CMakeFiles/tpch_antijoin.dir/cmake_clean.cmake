file(REMOVE_RECURSE
  "CMakeFiles/tpch_antijoin.dir/tpch_antijoin.cpp.o"
  "CMakeFiles/tpch_antijoin.dir/tpch_antijoin.cpp.o.d"
  "tpch_antijoin"
  "tpch_antijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_antijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
