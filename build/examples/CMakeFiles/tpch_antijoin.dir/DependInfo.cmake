
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tpch_antijoin.cpp" "examples/CMakeFiles/tpch_antijoin.dir/tpch_antijoin.cpp.o" "gcc" "examples/CMakeFiles/tpch_antijoin.dir/tpch_antijoin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eca/CMakeFiles/eca_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/eca_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/eca_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerate/CMakeFiles/eca_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlgen/CMakeFiles/eca_sqlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/eca_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/eca_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/eca_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eca_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/eca_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eca_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eca_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eca_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
