# Empty dependencies file for tpch_antijoin.
# This may be replaced when dependencies are built.
