file(REMOVE_RECURSE
  "CMakeFiles/profile_plans.dir/profile_plans.cpp.o"
  "CMakeFiles/profile_plans.dir/profile_plans.cpp.o.d"
  "profile_plans"
  "profile_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
