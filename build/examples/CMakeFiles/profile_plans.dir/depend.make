# Empty dependencies file for profile_plans.
# This may be replaced when dependencies are built.
