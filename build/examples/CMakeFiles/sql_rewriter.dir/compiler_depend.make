# Empty compiler generated dependencies file for sql_rewriter.
# This may be replaced when dependencies are built.
