file(REMOVE_RECURSE
  "CMakeFiles/sql_rewriter.dir/sql_rewriter.cpp.o"
  "CMakeFiles/sql_rewriter.dir/sql_rewriter.cpp.o.d"
  "sql_rewriter"
  "sql_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
