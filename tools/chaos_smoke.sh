#!/usr/bin/env bash
# Process-level chaos harness for ecad's crash-safe plan cache
# (docs/robustness.md, "Crash safety & persistence"). Twenty cycles of
# crash-then-restart, each crash injected at a different global
# CrashInjector hit count (--crash-at N), so the _exit(137) lands at a
# different kCrashPoint step — query admission, post-execution, the
# write-behind append, the snapshot's pre-sync / pre-rename /
# post-rename windows — plus one real external `kill -9` mid-query.
# After every crash the restarted daemon must:
#
#   - come up (the loader NEVER fails the daemon: load-or-degrade),
#   - print its plan-cache load line,
#   - sweep every orphaned spill dir (one is planted per cycle),
#   - answer the probe query with the same sorted bytes as a cold
#     daemon that never had a cache,
#   - drain on SIGTERM with the tracker at zero.
#
# The surviving cache files then go through `ecafuzz --cache-file`: the
# every-offset truncation sweep and seeded single-bit flips must
# load-or-degrade without ever crashing the loader. Run by ctest as
# `chaos_smoke` (including the ASan lane):
#
#   chaos_smoke.sh <ecad> <ecaclient> <ecafuzz> [workdir]
set -u

ECAD=${1:?usage: chaos_smoke.sh <ecad> <ecaclient> <ecafuzz> [workdir]}
ECACLIENT=${2:?usage: chaos_smoke.sh <ecad> <ecaclient> <ecafuzz> [workdir]}
ECAFUZZ=${3:?usage: chaos_smoke.sh <ecad> <ecaclient> <ecafuzz> [workdir]}
WORK=${4:-$(mktemp -d /tmp/eca-chaos-XXXXXX)}
rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/ecad.sock"
SPILL="$WORK/spill"
CACHE="$WORK/plan.cache"
LOG="$WORK/ecad.log"
CYCLES=20

# Small fixed catalog: the same --rels/--rows seed the same random
# database in every daemon, so results are comparable across restarts.
DBFLAGS="--rels 3 --rows 64"
PLAN3='(R0 join[p01] (R1 join[p12] R2))'
PLAN2='(R0 join[p01] R1)'
P01='p01=R0.a = R1.a'
P12='p12=R1.b = R2.b'

ECAD_PID=
DRIVER_PID=
cleanup() {
  [ -n "$DRIVER_PID" ] && kill "$DRIVER_PID" 2>/dev/null
  if [ -n "$ECAD_PID" ] && kill -0 "$ECAD_PID" 2>/dev/null; then
    kill -9 "$ECAD_PID" 2>/dev/null
    wait "$ECAD_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "chaos_smoke: FAIL: $*" >&2
  echo "--- ecad log ---" >&2
  cat "$LOG" >&2 2>/dev/null
  exit 1
}

# Starts ecad with the given extra flags; waits for the listening line.
# FLUSH_MS is per-cycle: slow flushes put the crash hits on the query
# and append steps, fast flushes reach the every-8th-flush snapshot
# (and its pre-sync/pre-rename/post-rename crash windows) early enough
# for the armed hit to land there.
FLUSH_MS=50
start_ecad() {
  "$ECAD" --socket "$SOCK" --spill-dir "$SPILL" $DBFLAGS \
    --plan-cache-file "$CACHE" --cache-flush-ms "$FLUSH_MS" "$@" \
    > "$LOG" 2>&1 &
  ECAD_PID=$!
  local i
  for i in $(seq 1 400); do
    grep -q "listening" "$LOG" 2>/dev/null && return 0
    kill -0 "$ECAD_PID" 2>/dev/null || return 1
    sleep 0.05
  done
  return 1
}

# Background query driver: keeps the daemon busy (and the crash-hit
# counter moving) until the daemon dies. Alternates the two join shapes
# so the first iterations publish fresh memo entries and the write-
# behind append path gets exercised, not just the query steps.
drive_queries() {
  while :; do
    "$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" \
      --retries 0 > /dev/null 2>&1 || true
    "$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" \
      --pred "$P12" --retries 0 > /dev/null 2>&1 || true
    kill -0 "$1" 2>/dev/null || break
    sleep 0.02
  done
}

# --- reference: a cold daemon that never had a cache ------------------------

"$ECAD" --socket "$SOCK" --spill-dir "$SPILL" $DBFLAGS > "$LOG" 2>&1 &
ECAD_PID=$!
for i in $(seq 1 400); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  sleep 0.05
done
grep -q "listening" "$LOG" || fail "reference ecad never started"
"$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --print-rows \
  > "$WORK/ref.raw" 2>&1 || fail "reference probe failed"
VOLATILE='^queue_wait_ms=\|^peak_bytes=\|^degraded=\|^trigger='
grep -v "$VOLATILE" "$WORK/ref.raw" | sort > "$WORK/ref.sorted"
kill -TERM "$ECAD_PID"
wait "$ECAD_PID" || fail "reference ecad did not drain cleanly"
ECAD_PID=

# --- crash/restart cycles ---------------------------------------------------

STEPS="$WORK/crash_steps.txt"
: > "$STEPS"
MAX_LOADED=0

run_recovery_checks() {
  local tag=$1
  # Plant an orphan spill dir from "the previous life"; the restart
  # sweep must reclaim it.
  mkdir -p "$SPILL/eca-q2000000$tag-0"
  echo "orphan rows" > "$SPILL/eca-q2000000$tag-0/partition-0.bin"

  start_ecad || fail "cycle $tag: recovery daemon failed to start" \
    " (the loader must never fail the daemon)"
  grep -q "ecad: plan cache" "$LOG" ||
    fail "cycle $tag: recovery daemon printed no plan-cache load line"
  local loaded
  loaded=$(sed -n 's/.*plan cache .*loaded \([0-9]*\) entries.*/\1/p' \
    "$LOG" | head -1)
  [ -n "$loaded" ] || loaded=0
  [ "$loaded" -gt "$MAX_LOADED" ] && MAX_LOADED=$loaded
  [ -d "$SPILL/eca-q2000000$tag-0" ] &&
    fail "cycle $tag: orphan spill dir survived the recovery sweep"

  # The recovered daemon must answer the probe with the same sorted
  # bytes as the cold reference (warm plans may reorder rows).
  "$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --print-rows \
    > "$WORK/probe.raw" 2>&1 || fail "cycle $tag: recovery probe failed"
  grep -v "$VOLATILE" "$WORK/probe.raw" | sort > "$WORK/probe.sorted"
  cmp -s "$WORK/probe.sorted" "$WORK/ref.sorted" ||
    fail "cycle $tag: recovered answer differs from the cold reference"

  kill -TERM "$ECAD_PID"
  wait "$ECAD_PID" || fail "cycle $tag: recovery daemon did not drain cleanly"
  ECAD_PID=
  grep -q "drained, tracker=0 bytes" "$LOG" ||
    fail "cycle $tag: recovery tracker not at zero after drain"
}

# Cycles 1-14: query traffic drives the hit counter, so crashes land on
# query-admitted / query-executed / cache-append-pre-sync in workload
# order. Cycles 15-20: NO traffic — the only MaybeCrash sites an idle
# daemon reaches are the periodic snapshot's, so crash-at 1/2/3 (twice)
# deterministically hits cache-snapshot-pre-sync, -pre-rename and
# -post-rename.
for N in $(seq 1 "$CYCLES"); do
  if [ "$N" -le 14 ]; then
    FLUSH_MS=50 CRASH_AT=$N DRIVE=1
  else
    FLUSH_MS=10 CRASH_AT=$(( (N - 15) % 3 + 1 )) DRIVE=0
  fi
  start_ecad --crash-at "$CRASH_AT" ||
    fail "cycle $N: crash daemon failed to start"

  DRIVER_PID=
  if [ "$DRIVE" -eq 1 ]; then
    drive_queries "$ECAD_PID" &
    DRIVER_PID=$!
  fi
  # The CRASH_AT-th CrashInjector hit fires _exit(137); the driver (if
  # any) stops once the daemon is gone.
  for i in $(seq 1 600); do
    kill -0 "$ECAD_PID" 2>/dev/null || break
    sleep 0.05
  done
  kill -0 "$ECAD_PID" 2>/dev/null &&
    fail "cycle $N: crash at hit $CRASH_AT never fired"
  wait "$ECAD_PID" 2>/dev/null
  RC=$?
  ECAD_PID=
  if [ -n "$DRIVER_PID" ]; then
    wait "$DRIVER_PID" 2>/dev/null
    DRIVER_PID=
  fi
  [ "$RC" -eq 137 ] || fail "cycle $N: crashed daemon exited $RC (want 137)"
  sed -n 's/.*CRASH INJECTED at step [0-9]* (\(.*\)).*/\1/p' "$LOG" \
    >> "$STEPS"

  FLUSH_MS=50
  run_recovery_checks "$N"
done

# The 20 hit counts must have landed on several distinct kCrashPoint
# steps — query admission/execution, the write-behind append AND the
# snapshot windows — or the harness is only testing one ordering.
DISTINCT=$(sort -u "$STEPS" | grep -c .)
[ "$DISTINCT" -ge 4 ] ||
  fail "only $DISTINCT distinct crash steps hit: $(sort -u "$STEPS" | tr '\n' ' ')"
grep -q "cache-append" "$STEPS" ||
  fail "no crash landed in the append step: $(sort -u "$STEPS" | tr '\n' ' ')"
grep -q "cache-snapshot" "$STEPS" ||
  fail "no crash landed in a snapshot step: $(sort -u "$STEPS" | tr '\n' ' ')"

# --- external kill -9 mid-query ---------------------------------------------

start_ecad || fail "kill-9 cycle: daemon failed to start"
"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --retries 0 > /dev/null 2>&1 &
HOLDER_PID=$!
sleep 0.3
kill -9 "$ECAD_PID"
wait "$ECAD_PID" 2>/dev/null
ECAD_PID=
wait "$HOLDER_PID" 2>/dev/null || true
run_recovery_checks 99

# The cycles must actually have persisted something, or every recovery
# above was a trivial cold start.
[ "$MAX_LOADED" -gt 0 ] ||
  fail "no recovery ever loaded a cache entry; persistence never engaged"

# --- corruption fuzz on the crash-survivor cache files ----------------------

[ -s "$CACHE" ] || fail "no cache snapshot survived the chaos run"
"$ECAFUZZ" --cache-file "$CACHE" --queries 120 --seed 20260809 ||
  fail "ecafuzz --cache-file rejected the surviving snapshot"
if [ -s "$CACHE.log" ]; then
  "$ECAFUZZ" --cache-file "$CACHE.log" --queries 120 --seed 20260810 ||
    fail "ecafuzz --cache-file rejected the surviving append log"
fi

echo "chaos_smoke: $CYCLES injected crashes + 1 kill -9," \
  "$DISTINCT distinct crash steps, max $MAX_LOADED entries reloaded," \
  "all recovery invariants held"
