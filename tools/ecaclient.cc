// ecaclient — command-line client for the ecad service (docs/service.md).
//
//   ecaclient --socket <path> query "<plan>" --pred name="<expr>"...
//             [--approach eca|tba|cba] [--timeout-ms N] [--mem-limit-mb N]
//             [--print-rows] [--deadline-ms N] [--retries N]
//   ecaclient --socket <path> metrics
//   ecaclient --socket <path> ping
//
// Transient failures — connection refused (daemon still starting),
// connections dropped at accept, kUnavailable responses from a draining
// server — are retried with exponential backoff plus deterministic
// jitter, bounded by --retries and by the end-to-end --deadline-ms
// budget. Non-retryable errors (kInvalidArgument, kResourceExhausted
// shed, kCancelled drain, query failures) surface immediately.
//
// Exit codes: 0 success; 1 the server answered with an error (its status
// and message are printed); 2 bad usage; 3 the retry budget or deadline
// ran out without ever getting a response.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/status.h"
#include "service/wire.h"

namespace eca {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ecaclient --socket <path> query \"<plan>\" --pred name=\"<expr>\""
      "... [--approach eca|tba|cba] [--timeout-ms N] [--mem-limit-mb N] "
      "[--print-rows] [--deadline-ms N] [--retries N]\n"
      "  ecaclient --socket <path> metrics\n"
      "  ecaclient --socket <path> ping\n");
  return 2;
}

bool ParseIntFlag(const char* flag, const char* text, int64_t min,
                  int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min) {
    std::fprintf(stderr, "bad %s value '%s' (want an integer >= %lld)\n",
                 flag, text, static_cast<long long>(min));
    return false;
  }
  *out = value;
  return true;
}

#ifndef _WIN32

// One request over a fresh connection, with retry on the kUnavailable
// class (IsRetryableWireStatus): exponential backoff with deterministic
// jitter (RetryBackoffMs, salted by pid), bounded by the end-to-end
// deadline. `retries` counts re-attempts after the first try.
StatusOr<WireMessage> Call(const std::string& path, const WireMessage& req,
                           int64_t retries, int64_t deadline_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(
                         deadline_ms > 0 ? deadline_ms : (int64_t{1} << 40));
  Status last = Status::OK();
  for (int64_t attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      int64_t backoff_ms =
          RetryBackoffMs(attempt, static_cast<uint64_t>(::getpid()));
      Clock::time_point wake =
          Clock::now() + std::chrono::milliseconds(backoff_ms);
      if (wake >= deadline) {
        return Status::DeadlineExceeded(
            "client deadline exhausted after " + std::to_string(attempt) +
            " attempts; last: " + last.ToString());
      }
      ::usleep(static_cast<useconds_t>(backoff_ms * 1000));
    }
    StatusOr<int> fd = ConnectUnixSocket(path);
    if (!fd.ok()) {
      last = fd.status();
      if (IsRetryableWireStatus(last)) continue;
      return last;
    }
    StatusOr<WireMessage> response = RoundTrip(*fd, req);
    ::close(*fd);
    if (!response.ok()) {
      last = response.status();
      if (IsRetryableWireStatus(last)) continue;
      return last;
    }
    // A draining server answers kUnavailable in-band; that is the one
    // server-reported status worth retrying (another instance may be up).
    if (response->type == "ERROR") {
      const std::string* code = response->Find("status");
      if (code != nullptr &&
          ParseStatusCodeName(*code) == StatusCode::kUnavailable) {
        const std::string* msg = response->Find("message");
        last = Status::Unavailable(msg != nullptr ? *msg : "unavailable");
        continue;
      }
    }
    return response;
  }
  return Status::Unavailable("retries exhausted; last: " + last.ToString());
}

int Main(int argc, char** argv) {
  std::string socket_path, command, plan;
  WireMessage request;
  int64_t retries = 5, deadline_ms = 0;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else {
      break;
    }
  }
  if (socket_path.empty() || i >= argc) return Usage();
  command = argv[i++];

  if (command == "ping") {
    request.type = "PING";
  } else if (command == "metrics") {
    request.type = "METRICS";
  } else if (command == "query") {
    if (i >= argc) return Usage();
    request.type = "QUERY";
    request.Add("plan", argv[i++]);
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return Usage();
  }

  for (; i < argc; ++i) {
    int64_t parsed = 0;
    if (std::strcmp(argv[i], "--pred") == 0 && i + 1 < argc) {
      request.Add("pred", argv[++i]);
    } else if (std::strcmp(argv[i], "--approach") == 0 && i + 1 < argc) {
      request.Add("approach", argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--timeout-ms", argv[++i], 1, &parsed)) return 2;
      request.AddInt("timeout_ms", parsed);
    } else if (std::strcmp(argv[i], "--mem-limit-mb") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--mem-limit-mb", argv[++i], 1, &parsed)) return 2;
      request.AddInt("mem_limit_mb", parsed);
    } else if (std::strcmp(argv[i], "--print-rows") == 0) {
      request.AddInt("rows", 1);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--deadline-ms", argv[++i], 1, &deadline_ms)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--retries", argv[++i], 0, &retries)) return 2;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return Usage();
    }
  }

  StatusOr<WireMessage> response =
      Call(socket_path, request, retries, deadline_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 3;
  }

  if (response->type == "ERROR") {
    const std::string* code = response->Find("status");
    const std::string* message = response->Find("message");
    std::fprintf(stderr, "error: %s: %s\n",
                 code != nullptr ? code->c_str() : "?",
                 message != nullptr ? message->c_str() : "");
    return 1;
  }
  if (response->type == "PONG") {
    std::printf("pong\n");
    return 0;
  }
  if (response->type == "METRICS") {
    const std::string* json = response->Find("json");
    std::printf("%s\n", json != nullptr ? json->c_str() : "{}");
    return 0;
  }
  // RESULT: stable key=value summary, then the rows when requested.
  for (const char* key :
       {"rows", "degraded", "trigger", "queue_wait_ms", "peak_bytes"}) {
    const std::string* value = response->Find(key);
    if (value != nullptr) std::printf("%s=%s\n", key, value->c_str());
  }
  const std::string* data = response->Find("data");
  if (data != nullptr) std::printf("%s", data->c_str());
  return 0;
}

#else  // _WIN32

int Main(int, char**) {
  std::fprintf(stderr, "ecaclient is POSIX-only\n");
  return 1;
}

#endif

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
