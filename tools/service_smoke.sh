#!/usr/bin/env bash
# End-to-end smoke of the ecad service over a real socket with real
# processes: startup sweep, admit, queue-then-run with byte-identical
# results, overload shed, degraded planning under a tight deadline,
# accept-fault retry, and SIGTERM drain with a clean kCancelled and the
# tracker at zero. Run by ctest as `service_smoke`:
#
#   service_smoke.sh <ecad> <ecaclient> [workdir]
#
# The daemon serves 3 relations x 400 rows of seeded random data
# (domain-4 join keys): the 3-way join is the slow "holder" workload
# (~1.6M output rows, seconds on one core), the 2-way join the quick
# probe whose bytes are compared across contended and idle runs.
set -u

ECAD=${1:?usage: service_smoke.sh <ecad> <ecaclient> [workdir]}
ECACLIENT=${2:?usage: service_smoke.sh <ecad> <ecaclient> [workdir]}
WORK=${3:-$(mktemp -d /tmp/eca-smoke-XXXXXX)}
mkdir -p "$WORK"
SOCK="$WORK/ecad.sock"
SPILL="$WORK/spill"
LOG="$WORK/ecad.log"

PLAN3='(R0 join[p01] (R1 join[p12] R2))'
PLAN2='(R0 join[p01] R1)'
P01='p01=R0.a = R1.a'
P12='p12=R1.b = R2.b'

ECAD_PID=
cleanup() {
  if [ -n "$ECAD_PID" ] && kill -0 "$ECAD_PID" 2>/dev/null; then
    kill -9 "$ECAD_PID" 2>/dev/null
    wait "$ECAD_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "service_smoke: FAIL: $*" >&2
  echo "--- ecad log ---" >&2
  cat "$LOG" >&2 2>/dev/null
  exit 1
}

# Scrape one service.* counter from the metrics JSON (0 when absent, so
# baselines read before any event stay arithmetic-safe).
counter() {
  local value
  value=$("$ECACLIENT" --socket "$SOCK" metrics 2>/dev/null |
    grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2)
  echo "${value:-0}"
}

# Poll until `counter $1` is >= $2 (bounded); echoes the final value.
wait_counter_at_least() {
  local name=$1 want=$2 value=0 i
  for i in $(seq 1 200); do
    value=$(counter "$name")
    [ -n "$value" ] && [ "$value" -ge "$want" ] && { echo "$value"; return 0; }
    sleep 0.05
  done
  echo "${value:-0}"
  return 1
}

# --- startup: crash-recovery sweep ------------------------------------------

mkdir -p "$SPILL/eca-q2000000000-0"
echo "rows from a crashed ecad" > "$SPILL/eca-q2000000000-0/partition-0.bin"

# --degrade-below-ms 60000: only requests that carry a deadline under a
# minute plan in degraded sizes-only mode; the probes below send none.
"$ECAD" --socket "$SOCK" --spill-dir "$SPILL" --rels 3 --rows 400 \
  --max-concurrent 1 --queue-depth 1 --client-mem-limit-mb 1024 \
  --degrade-below-ms 60000 > "$LOG" 2>&1 &
ECAD_PID=$!

for i in $(seq 1 200); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  kill -0 "$ECAD_PID" 2>/dev/null || fail "ecad died during startup"
  sleep 0.05
done
grep -q "listening" "$LOG" || fail "ecad never printed its listening line"
grep -q "swept 1 orphaned spill dirs" "$LOG" ||
  fail "startup sweep did not reclaim the orphan"
[ ! -d "$SPILL/eca-q2000000000-0" ] || fail "orphan spill dir survived"

"$ECACLIENT" --socket "$SOCK" ping | grep -q pong || fail "ping"

# --- queue-then-run with byte-identical results -----------------------------

ADMITTED0=$(counter service.admitted)
QUEUED0=$(counter service.queued)
SHED0=$(counter service.shed)

# Holder: the slow 3-way join occupies the single slot.
"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  > "$WORK/holder.out" 2> "$WORK/holder.err" &
HOLDER_PID=$!
wait_counter_at_least service.admitted $((ADMITTED0 + 1)) > /dev/null ||
  fail "holder query was never admitted"

# Probe: queues behind the holder (max-concurrent 1, queue-depth 1),
# then runs; its bytes must match an idle run exactly.
"$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --print-rows \
  > "$WORK/contended.out" 2> "$WORK/contended.err" &
PROBE_PID=$!
wait_counter_at_least service.queued $((QUEUED0 + 1)) > /dev/null ||
  fail "probe query never queued"

# --- overload shed while saturated ------------------------------------------

# Slot busy + queue full: a third arrival is shed immediately.
"$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --retries 0 \
  > "$WORK/shed.out" 2> "$WORK/shed.err"
SHED_RC=$?
[ "$SHED_RC" -eq 1 ] || fail "shed query exited $SHED_RC (want 1)"
grep -q "RESOURCE_EXHAUSTED" "$WORK/shed.err" ||
  fail "shed error is not RESOURCE_EXHAUSTED: $(cat "$WORK/shed.err")"
[ "$(counter service.shed)" -gt "$SHED0" ] || fail "service.shed never moved"

wait "$HOLDER_PID" || fail "holder query failed: $(cat "$WORK/holder.err")"
wait "$PROBE_PID" || fail "probe query failed: $(cat "$WORK/contended.err")"
grep -q "^queue_wait_ms=" "$WORK/contended.out" ||
  fail "probe response has no queue_wait_ms"

# Idle run of the same probe: byte-identical data. Only the volatile
# summary keys (wait time, peak bytes, degrade markers) may differ.
VOLATILE='^queue_wait_ms=\|^peak_bytes=\|^degraded=\|^trigger='
"$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --print-rows \
  > "$WORK/idle.out" 2>&1 || fail "idle probe failed"
grep -v "$VOLATILE" "$WORK/contended.out" > "$WORK/contended.cmp"
grep -v "$VOLATILE" "$WORK/idle.out" > "$WORK/idle.cmp"
cmp -s "$WORK/contended.cmp" "$WORK/idle.cmp" ||
  fail "contended and idle results differ (queue must not change bytes)"

# --- degraded planning under a tight deadline -------------------------------

# A 30s deadline is far below --degrade-below-ms 60000, so admission
# flips the degrade bit while leaving ample real time to finish.
DEGRADED0=$(counter service.degraded)
"$ECACLIENT" --socket "$SOCK" query "$PLAN2" --pred "$P01" --print-rows \
  --timeout-ms 30000 > "$WORK/degraded.out" 2>&1 ||
  fail "degraded query failed: $(cat "$WORK/degraded.out")"
grep -q "^degraded=1$" "$WORK/degraded.out" ||
  fail "tight deadline did not degrade planning"
grep -q "^trigger=sizes-only-fallback$" "$WORK/degraded.out" ||
  fail "degraded response missing the trigger"
[ "$(counter service.degraded)" -gt "$DEGRADED0" ] ||
  fail "service.degraded never moved"
# Sizes-only planning may pick a different join order, which permutes
# row order; the result multiset (and the row count) must be unchanged.
grep -v "$VOLATILE" "$WORK/degraded.out" | sort > "$WORK/degraded.cmp"
sort "$WORK/idle.cmp" > "$WORK/idle.sorted"
cmp -s "$WORK/degraded.cmp" "$WORK/idle.sorted" ||
  fail "degraded planning changed the results"

# --- SIGTERM drain: clean kCancelled, tracker at zero -----------------------

DRAINED0=$(counter service.drained)
ADMITTED1=$(counter service.admitted)
"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --retries 0 > "$WORK/drain.out" 2> "$WORK/drain.err" &
VICTIM_PID=$!
wait_counter_at_least service.admitted $((ADMITTED1 + 1)) > /dev/null ||
  fail "drain victim was never admitted"

kill -TERM "$ECAD_PID"
wait "$VICTIM_PID"
VICTIM_RC=$?
wait "$ECAD_PID"
ECAD_RC=$?
ECAD_PID=

[ "$ECAD_RC" -eq 0 ] || fail "ecad exited $ECAD_RC after SIGTERM (want 0)"
grep -q "drained, tracker=0 bytes" "$LOG" ||
  fail "ecad did not report a zero tracker after the drain"
[ "$VICTIM_RC" -eq 1 ] || fail "drained query exited $VICTIM_RC (want 1)"
grep -q "CANCELLED" "$WORK/drain.err" ||
  fail "drained query did not see kCancelled: $(cat "$WORK/drain.err")"

# --- warm plan cache: repeated identical query hits the shared memo ---------

# Fresh daemon with the cross-query plan cache enabled. The service's
# database is fixed for its lifetime, so the stats epoch never advances
# and the second identical query should find essentially every subplan
# already published (docs/service.md, --plan-cache-mb).
"$ECAD" --socket "$SOCK" --spill-dir "$SPILL" --rels 3 --rows 64 \
  --plan-cache-mb 16 > "$LOG" 2>&1 &
ECAD_PID=$!
for i in $(seq 1 200); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  sleep 0.05
done
grep -q "listening" "$LOG" || fail "plan-cache ecad never started listening"

"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --print-rows > "$WORK/cold.out" 2>&1 || fail "cold plan-cache query failed"
PROBES1=$(counter memo.probes)
HITS1=$(counter memo.hits)
"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --print-rows > "$WORK/warm.out" 2>&1 || fail "warm plan-cache query failed"
PROBES2=$(counter memo.probes)
HITS2=$(counter memo.hits)

PROBES_D=$((PROBES2 - PROBES1))
HITS_D=$((HITS2 - HITS1))
[ "$PROBES_D" -gt 0 ] || fail "warm query issued no memo probes"
# Warm hit rate >= 90%: the second identical query must reuse the cache.
[ $((HITS_D * 10)) -ge $((PROBES_D * 9)) ] ||
  fail "warm hit rate too low: $HITS_D hits / $PROBES_D probes"
# Warm reuse is cost-preserving but may pick a cost-equal plan with a
# different shape, which permutes row order; the multiset must match.
grep -v "$VOLATILE" "$WORK/cold.out" | sort > "$WORK/cold.cmp"
grep -v "$VOLATILE" "$WORK/warm.out" | sort > "$WORK/warm.cmp"
cmp -s "$WORK/cold.cmp" "$WORK/warm.cmp" ||
  fail "warm plan-cache query changed the result multiset"

# Drain: the cache is charged to the root tracker, so a zero tracker
# after SIGTERM proves the service released every cached byte.
kill -TERM "$ECAD_PID"
wait "$ECAD_PID" || fail "plan-cache ecad did not drain cleanly"
ECAD_PID=
grep -q "drained, tracker=0 bytes" "$LOG" ||
  fail "plan-cache ecad tracker not at zero after drain"

# --- kill -9, restart: the persisted cache warms the next daemon ------------

# Same catalog, but with crash-safe persistence on. The first daemon
# fills the cache and flushes the write-behind log; kill -9 gives it no
# chance to drain, so everything the restart knows comes off disk. The
# restarted daemon must report a warm load and hit >= 90% of its memo
# probes on the first repeat of the query — the same bar the in-process
# warm run above clears (docs/robustness.md, "Crash safety &
# persistence").
PCACHE="$WORK/plan.cache"
"$ECAD" --socket "$SOCK" --spill-dir "$SPILL" --rels 3 --rows 64 \
  --plan-cache-mb 16 --plan-cache-file "$PCACHE" --cache-flush-ms 100 \
  > "$LOG" 2>&1 &
ECAD_PID=$!
for i in $(seq 1 200); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  sleep 0.05
done
grep -q "listening" "$LOG" || fail "persistent-cache ecad never started"

"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --print-rows > "$WORK/persist-cold.out" 2>&1 ||
  fail "persistent-cache cold query failed"
# Wait for the write-behind flush to land the published entries, then
# for the file size to go quiet so the kill can't race a half-written
# batch into the torn-tail (recovered-with-fewer-entries) path.
for i in $(seq 1 100); do
  [ -s "$PCACHE" ] || [ -s "$PCACHE.log" ] && break
  sleep 0.05
done
[ -s "$PCACHE" ] || [ -s "$PCACHE.log" ] ||
  fail "write-behind flush never persisted anything"
LAST_SIZE=-1
for i in $(seq 1 100); do
  SIZE=$(cat "$PCACHE" "$PCACHE.log" 2>/dev/null | wc -c)
  [ "$SIZE" = "$LAST_SIZE" ] && break
  LAST_SIZE=$SIZE
  sleep 0.1
done

kill -9 "$ECAD_PID"
wait "$ECAD_PID" 2>/dev/null
ECAD_PID=

"$ECAD" --socket "$SOCK" --spill-dir "$SPILL" --rels 3 --rows 64 \
  --plan-cache-mb 16 --plan-cache-file "$PCACHE" --cache-flush-ms 100 \
  > "$LOG" 2>&1 &
ECAD_PID=$!
for i in $(seq 1 200); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  sleep 0.05
done
grep -q "listening" "$LOG" || fail "ecad did not restart after kill -9"
grep -q "ecad: plan cache" "$LOG" ||
  fail "restarted ecad printed no plan-cache load line"
RELOADED=$(sed -n 's/.*plan cache .*loaded \([0-9]*\) entries.*/\1/p' \
  "$LOG" | head -1)
[ "${RELOADED:-0}" -gt 0 ] ||
  fail "restart after kill -9 loaded no cache entries"

PROBES1=$(counter memo.probes)
HITS1=$(counter memo.hits)
"$ECACLIENT" --socket "$SOCK" query "$PLAN3" --pred "$P01" --pred "$P12" \
  --print-rows > "$WORK/persist-warm.out" 2>&1 ||
  fail "post-restart warm query failed"
PROBES2=$(counter memo.probes)
HITS2=$(counter memo.hits)
PROBES_D=$((PROBES2 - PROBES1))
HITS_D=$((HITS2 - HITS1))
[ "$PROBES_D" -gt 0 ] || fail "post-restart query issued no memo probes"
[ $((HITS_D * 10)) -ge $((PROBES_D * 9)) ] ||
  fail "post-restart warm hit rate too low: $HITS_D hits / $PROBES_D probes"
grep -v "$VOLATILE" "$WORK/persist-cold.out" | sort > "$WORK/persist-cold.cmp"
grep -v "$VOLATILE" "$WORK/persist-warm.out" | sort > "$WORK/persist-warm.cmp"
cmp -s "$WORK/persist-cold.cmp" "$WORK/persist-warm.cmp" ||
  fail "disk-warmed query changed the result multiset"

kill -TERM "$ECAD_PID"
wait "$ECAD_PID" || fail "persistent-cache ecad did not drain cleanly"
ECAD_PID=
grep -q "drained, tracker=0 bytes" "$LOG" ||
  fail "persistent-cache ecad tracker not at zero after drain"

# --- accept-fault: the client retry loop rides through a dropped accept -----

"$ECAD" --socket "$SOCK" --rels 2 --rows 16 --fault-accept 0 \
  > "$LOG" 2>&1 &
ECAD_PID=$!
for i in $(seq 1 200); do
  grep -q "listening" "$LOG" 2>/dev/null && break
  sleep 0.05
done
# First accepted connection is dropped; the client's backoff-retry must
# land the second attempt.
"$ECACLIENT" --socket "$SOCK" ping --retries 5 | grep -q pong ||
  fail "client did not retry through the accept fault"
kill -TERM "$ECAD_PID"
wait "$ECAD_PID" || fail "faulted ecad did not drain cleanly"
ECAD_PID=

echo "service_smoke: all checks passed"
