#!/usr/bin/env python3
"""Compare a fresh bench JSON against its committed baseline.

Used by the CI bench-regression job (docs/observability.md):

    bench_check.py --baseline BENCH_enum.json --candidate build/enum.json

The bench type is autodetected from the "bench" field; the four
recognized producers are bench_enumerator_perf, bench_parallel_exec
("parallel_exec"), bench_spill and bench_policy.

Two classes of checks:

  * identity metrics (identity_pass, per-row "identical", row counts)
    must hold EXACTLY -- a reordered or spilled plan that stops producing
    the direct plan's multiset is a correctness bug, not a regression;
  * work-reduction metrics (bench_enumerator_perf's work_reduction /
    work_reduction_enhanced) and parallel_exec's per-thread-count speedup
    geomean (across workloads) may not drop by more than --max-regress
    (default 0.25) relative to the baseline. Speedups are t(1)/t(N)
    ratios computed within one run, so they cancel machine speed: a
    reintroduced cross-thread barrier fails this gate even on a
    single-core runner. Averaging across workloads keeps the gate stable
    against per-workload scheduling noise on oversubscribed runners.

Raw wall-clock timings are INFORMATIONAL ONLY: CI runners are too noisy
to gate on, so timings are printed side by side but never fail the check.

Exit status: 0 when every gated check passes, 1 otherwise, 2 on usage or
malformed input.
"""

import argparse
import json
import sys

PASS = "ok"
FAIL = "FAIL"

# bench_enumerator_perf parallel-overhead gate: geometric mean of
# fast_ms_t4 / fast_ms_t1 over the candidate's rows with rels >=
# ENUM_RATIO_MIN_RELS must stay at or below this. The ratio is measured
# within one run, so it cancels machine speed: 1.0 means 4 threads cost
# nothing over 1 (the barrier-free scheduler's contract on a small host),
# anything well above it means per-query thread spin-up or cross-task
# synchronization crept back in. Small queries amortize nothing and are
# all scheduling noise, so the gate starts where enumeration time does.
ENUM_T4_T1_LIMIT = 1.05
ENUM_RATIO_MIN_RELS = 7

# bench_policy planning-time gates: the cheap policies must stay under a
# fixed fraction of DP's planning time, summed over the rows where both
# sides do real work. Ratios are within-run (policy ms / dp ms on the same
# machine, same workloads), so machine speed cancels. The fraction is
# deliberately loose -- measured values sit near 0.001; a policy that
# silently falls through to DP enumeration lands near 1.0, which is what
# the gate exists to catch.
POLICY_RATIO_LIMIT = 0.2
# sizes-only plans every size; the gate starts where DP time is
# non-trivial. greedy defers to DP at <= max_join_size (10) relations by
# design, so its ratio is only meaningful from 12 relations up.
POLICY_SIZES_MIN_RELS = 10
POLICY_GREEDY_MIN_RELS = 12


class Checker:
    """Accumulates per-check results and renders a report."""

    def __init__(self):
        self.failures = 0
        self.lines = []

    def gate(self, label, ok, detail=""):
        status = PASS if ok else FAIL
        if not ok:
            self.failures += 1
        self.lines.append(f"  [{status}] {label}" + (f"  {detail}" if detail else ""))

    def info(self, label):
        self.lines.append(f"  [info] {label}")

    def report(self, title):
        print(title)
        for line in self.lines:
            print(line)
        print(f"  {self.failures} gated failure(s)")
        return self.failures == 0


def rel_drop(baseline, candidate):
    """Relative drop of candidate below baseline; <= 0 means no regression."""
    if baseline <= 0:
        return 0.0
    return (baseline - candidate) / baseline


def check_work_metric(c, label, base_val, cand_val, max_regress):
    drop = rel_drop(base_val, cand_val)
    ok = drop <= max_regress
    c.gate(
        f"{label}: {base_val:.2f} -> {cand_val:.2f}",
        ok,
        f"(drop {drop * 100:.1f}%, limit {max_regress * 100:.0f}%)",
    )


def check_enum(c, base, cand, max_regress):
    c.gate(
        f"identity_pass: {base['identity_pass']} -> {cand['identity_pass']}",
        cand["identity_pass"] is True,
    )
    base_rows = {r["rels"]: r for r in base["rows"]}
    for row in cand["rows"]:
        rels = row["rels"]
        b = base_rows.get(rels)
        if b is None:
            c.info(f"rels={rels}: no baseline row, skipping")
            continue
        for key in ("work_reduction", "work_reduction_enhanced"):
            # A row whose reference did not run carries null (or, in old
            # baselines, a fabricated 0.00) — not a measurement; skip it.
            if b.get(key) and row.get(key):
                check_work_metric(c, f"rels={rels} {key}", b[key], row[key], max_regress)
        if b.get("fast_ms_t1") and row.get("fast_ms_t1"):
            c.info(
                f"rels={rels} fast_ms_t1 {b['fast_ms_t1']:.2f} -> {row['fast_ms_t1']:.2f} ms"
            )
    missing = set(base_rows) - {r["rels"] for r in cand["rows"]}
    c.gate(f"all baseline rel counts present (missing: {sorted(missing)})", not missing)

    # Parallel-overhead gate (candidate-only; see ENUM_T4_T1_LIMIT above).
    ratios = [
        row["fast_ms_t4"] / row["fast_ms_t1"]
        for row in cand["rows"]
        if row["rels"] >= ENUM_RATIO_MIN_RELS
        and row.get("fast_ms_t1")
        and row.get("fast_ms_t4")
    ]
    if ratios:
        g = geomean(ratios)
        c.gate(
            f"t4/t1 geomean over {len(ratios)} row(s) with rels>="
            f"{ENUM_RATIO_MIN_RELS}: {g:.3f}",
            g <= ENUM_T4_T1_LIMIT,
            f"(limit {ENUM_T4_T1_LIMIT})",
        )
    else:
        c.info(f"no rows with rels>={ENUM_RATIO_MIN_RELS}; t4/t1 gate skipped")


def geomean(values):
    product = 1.0
    for v in values:
        product *= max(v, 1e-9)
    return product ** (1.0 / len(values)) if values else 0.0


def check_exec(c, base, cand, max_regress):
    # Scaling gate on speedup RATIOS, not raw wall clocks: speedup is
    # t(1 thread) / t(N threads) measured within one run, so it cancels
    # machine speed and stays comparable across runners. Per-workload
    # speedups on an oversubscribed single-core runner are too noisy to
    # gate individually (+-0.2 run to run), so the gate compares the
    # GEOMETRIC MEAN across workloads per thread count, which is stable;
    # per-workload ratios stay informational. A change that reintroduces
    # per-operator barriers drags every workload's multi-thread speedup
    # down together, which is exactly what the mean detects.
    speedups = {}  # threads -> (base list, cand list), common workloads only
    base_wl = {(w["query"], w["plan"]): w for w in base["workloads"]}
    for w in cand["workloads"]:
        key = (w["query"], w["plan"])
        b = base_wl.get(key)
        if b is None:
            c.info(f"{key}: no baseline workload, skipping")
            continue
        c.gate(f"{key} identical across thread counts", w["identical"] is True)
        c.gate(
            f"{key} rows_out: {b['rows_out']} -> {w['rows_out']}",
            w["rows_out"] == b["rows_out"],
        )
        base_runs = {r["threads"]: r for r in b.get("runs", [])}
        for run in w.get("runs", []):
            threads = run["threads"]
            br = base_runs.get(threads)
            if br is None:
                c.info(f"{key} threads={threads}: no baseline run, skipping")
                continue
            c.info(
                f"{key} threads={threads}: {run['ms']:.1f} ms, "
                f"speedup {run.get('speedup', 0.0):.2f}x "
                f"(baseline {br['ms']:.1f} ms, {br.get('speedup', 0.0):.2f}x)"
            )
            if threads == 1:
                continue
            bs, cs = speedups.setdefault(threads, ([], []))
            bs.append(br.get("speedup", 0.0))
            cs.append(run.get("speedup", 0.0))
    for threads in sorted(speedups):
        bs, cs = speedups[threads]
        check_work_metric(
            c,
            f"threads={threads} speedup geomean over {len(cs)} workload(s)",
            geomean(bs),
            geomean(cs),
            max_regress,
        )
    missing = set(base_wl) - {(w["query"], w["plan"]) for w in cand["workloads"]}
    c.gate(f"all baseline workloads present (missing: {sorted(missing)})", not missing)


def check_spill(c, base, cand, max_regress):
    del max_regress  # bench_spill has identity gates only
    c.gate(
        f"identity_pass: {base['identity_pass']} -> {cand['identity_pass']}",
        cand["identity_pass"] is True,
    )
    base_rows = {(r["plan"], r["mode"]): r for r in base["rows"]}
    for row in cand["rows"]:
        key = (row["plan"], row["mode"])
        b = base_rows.get(key)
        if b is None:
            c.info(f"{key}: no baseline row, skipping")
            continue
        c.gate(f"{key} identical", row["identical"] is True)
        c.gate(f"{key} rows: {b['rows']} -> {row['rows']}", row["rows"] == b["rows"])
        # Spill must still engage where the baseline spilled: a run that
        # stops spilling under the same soft limit silently stopped
        # honoring the governor.
        if b["spilled_partitions"] > 0:
            c.gate(
                f"{key} still spills ({row['spilled_partitions']} partitions)",
                row["spilled_partitions"] > 0,
            )
        if b["spilled_sort_runs"] > 0:
            c.gate(
                f"{key} still sorts externally ({row['spilled_sort_runs']} runs)",
                row["spilled_sort_runs"] > 0,
            )
        c.info(f"{key}: {row['wall_ms']:.1f} ms (baseline {b['wall_ms']:.1f} ms)")
    missing = set(base_rows) - {(r["plan"], r["mode"]) for r in cand["rows"]}
    c.gate(f"all baseline rows present (missing: {sorted(missing)})", not missing)


def check_policy(c, base, cand, max_regress):
    del max_regress  # gates are absolute contracts and fixed ratios
    c.gate(
        f"contract_pass: {base['contract_pass']} -> {cand['contract_pass']}",
        cand["contract_pass"] is True,
    )
    base_rows = {(r["topology"], r["rels"]): r for r in base["rows"]}
    dp_ms_sizes, sizes_ms = 0.0, 0.0
    dp_ms_greedy, greedy_ms = 0.0, 0.0
    for row in cand["rows"]:
        key = (row["topology"], row["rels"])
        b = base_rows.get(key)
        if b is None:
            c.info(f"{key}: no baseline row, skipping")
            continue
        topo, rels = key
        # Policy contract: deliberate policies never degrade; the Yannakakis
        # pass fires on every acyclic workload and never on a cyclic one;
        # the default DP budget completes small queries and trips on the
        # star workloads the cheap policies exist for.
        c.gate(
            f"{key} sizes-only/greedy undegraded",
            row["sizes_only_degraded"] == 0 and row["greedy_degraded"] == 0,
        )
        if topo == "clique":
            c.gate(f"{key} semijoin defers on cyclic", row["semijoin_applied"] == 0)
        else:
            c.gate(
                f"{key} semijoin applied {row['semijoin_applied']}/{row['queries']}",
                row["semijoin_applied"] == row["queries"],
            )
        if rels <= 10:
            c.gate(f"{key} dp completes inside budget", row["dp_degraded"] == 0)
        if topo == "star" and rels >= 12:
            c.gate(
                f"{key} dp trips budget ({row['dp_degraded']}/{row['queries']})",
                row["dp_degraded"] > 0,
            )
        if rels >= POLICY_SIZES_MIN_RELS:
            dp_ms_sizes += row["dp_ms"]
            sizes_ms += row["sizes_only_ms"]
        if rels >= POLICY_GREEDY_MIN_RELS:
            dp_ms_greedy += row["dp_ms"]
            greedy_ms += row["greedy_ms"]
        c.info(
            f"{key}: dp {row['dp_ms']:.1f} ms / {row['dp_subplan_calls']} calls, "
            f"sizes {row['sizes_only_ms']:.2f} ms, greedy {row['greedy_ms']:.2f} ms, "
            f"semijoin {row['semijoin_ms']:.2f} ms "
            f"(baseline dp {b['dp_ms']:.1f} ms)"
        )
    if dp_ms_sizes > 0:
        ratio = sizes_ms / dp_ms_sizes
        c.gate(
            f"sizes-only/dp planning-time ratio at rels>="
            f"{POLICY_SIZES_MIN_RELS}: {ratio:.4f}",
            ratio <= POLICY_RATIO_LIMIT,
            f"(limit {POLICY_RATIO_LIMIT})",
        )
    if dp_ms_greedy > 0:
        ratio = greedy_ms / dp_ms_greedy
        c.gate(
            f"greedy/dp planning-time ratio at rels>="
            f"{POLICY_GREEDY_MIN_RELS}: {ratio:.4f}",
            ratio <= POLICY_RATIO_LIMIT,
            f"(limit {POLICY_RATIO_LIMIT})",
        )
    missing = set(base_rows) - {(r["topology"], r["rels"]) for r in cand["rows"]}
    c.gate(f"all baseline rows present (missing: {sorted(missing)})", not missing)


CHECKERS = {
    "bench_enumerator_perf": check_enum,
    "parallel_exec": check_exec,
    "bench_spill": check_spill,
    "bench_policy": check_policy,
}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--candidate", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="max relative drop of work-reduction metrics (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.candidate) as f:
            cand = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot load input: {e}", file=sys.stderr)
        return 2

    bench = base.get("bench")
    if bench != cand.get("bench"):
        print(
            f"bench_check: bench mismatch: baseline={bench!r} "
            f"candidate={cand.get('bench')!r}",
            file=sys.stderr,
        )
        return 2
    checker_fn = CHECKERS.get(bench)
    if checker_fn is None:
        print(
            f"bench_check: unknown bench {bench!r} "
            f"(known: {sorted(CHECKERS)})",
            file=sys.stderr,
        )
        return 2

    c = Checker()
    checker_fn(c, base, cand, args.max_regress)
    ok = c.report(f"bench_check [{bench}]: {args.candidate} vs {args.baseline}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
