// ecatool — command-line front end for the library.
//
//   ecatool gen-tpch <sf> <dir>
//       Generate TPC-H-style .tbl files (supplier, partsupp, part,
//       lineitem, orders) at the given scale factor.
//
//   ecatool orderings "<plan>" --pred name="<expr>" ...
//       List every join ordering of the query and which approach
//       (TBA / CBA / ECA) can realize it.
//
//   ecatool explain "<plan>" --pred name="<expr>" ... [--rows N]
//           [--approach eca|tba|cba] [--data <dir>] [--threads N]
//           [--morsel-rows N] [--chunk-rows N]
//           [--explain-stats] [--timeout-ms N] [--mem-limit-mb N]
//       Optimize the query — with all three approaches, or just the one
//       named by --approach — and print plans, costs and EXPLAIN ANALYZE.
//       Data is random (N rows per relation) unless --data names a
//       directory of R<i>.tbl files (columns k,a,b as written by the
//       generators; see gen-tpch for TPC-H-style tables). --threads runs
//       the enumeration's root pair loop and the executions on a worker
//       pool; results are identical for every thread count
//       (docs/performance.md). --explain-stats additionally prints the
//       full EnumeratorStats of each optimization (search-tree nodes,
//       memo reuses, branch-and-bound prunes, cloned nodes, budget
//       trigger, ...) together with its wall-clock time.
//
//       --trace-out=<file.json> (or --trace-out <file.json>) records a
//       Chrome-trace/Perfetto span timeline of the whole run — optimizer
//       phases, waves, operator build/probe/partition/spill phases,
//       governor instants — and writes it when the command finishes.
//       --metrics prints, per approach, the delta of the process metrics
//       registry (docs/observability.md) over that approach's
//       optimize+execute; --metrics-json prints one cumulative JSON
//       snapshot of the registry on the last line instead of tables.
//
//       --timeout-ms and --mem-limit-mb run each approach under the
//       resource governor (docs/robustness.md): the deadline covers
//       enumeration and execution end to end, the memory limit makes hash
//       joins spill (grace join) and best-matches sort externally past the
//       soft threshold, and exhausting either produces a clean diagnostic
//       and exit 1 instead of an abort or OOM kill. Governed runs print
//       the governor counters (peak_bytes, spilled_partitions, ...).
//
//       Governed runs also handle Ctrl-C cleanly: SIGINT/SIGTERM fire the
//       query's CancelToken, the executor unwinds with kCancelled
//       releasing every tracker byte and its spill files, and ecatool
//       exits 130. --spill-dir places spill files under a per-query
//       subdirectory of the given directory; --self-interrupt-ms N raises
//       SIGINT from a timer thread (the deterministic test hook for the
//       Ctrl-C contract).
//
//   ecatool sweep-spill-dir <dir>
//       Reclaim per-query spill subdirectories orphaned by crashed
//       processes (docs/robustness.md, "Crash-safe spilling").
//
// Plan syntax is the library's compact notation, e.g.
//   "(R0 laj[p01] (R1 laj[p12] R2))"
// with predicates like --pred p01="R0.a = R1.a".
//
// Bad arguments, unknown approach names, unreadable or malformed data
// files and invalid plans all produce a diagnostic on stderr and a
// nonzero exit — never an abort.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "algebra/plan_parser.h"
#include "algebra/validate.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "exec/explain.h"
#include "expr/pred_parser.h"
#include "storage/csv.h"
#include "storage/spill_file.h"
#include "testing/random_data.h"
#include "tpch/tpch_gen.h"

namespace eca {
namespace {

// Clean Ctrl-C for governed runs (docs/robustness.md, "Service
// hardening"): SIGINT/SIGTERM fire the active query's CancelToken — an
// atomic store, async-signal-safe — so the executor unwinds with
// kCancelled, releases every tracker byte and removes its spill
// subdirectory, and ecatool exits 130 with a diagnostic instead of dying
// mid-spill.
std::atomic<CancelToken*> g_active_cancel{nullptr};
volatile std::sig_atomic_t g_interrupted = 0;

void HandleInterrupt(int) {
  g_interrupted = 1;
  CancelToken* token = g_active_cancel.load(std::memory_order_acquire);
  if (token != nullptr) token->Cancel();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ecatool gen-tpch <sf> <dir>\n"
               "  ecatool orderings \"<plan>\" --pred name=\"<expr>\"...\n"
               "  ecatool explain \"<plan>\" --pred name=\"<expr>\"... "
               "[--rows N] [--approach eca|tba|cba] "
               "[--policy dp|sizes-only|greedy|semijoin] [--data <dir>] "
               "[--threads N] [--morsel-rows N] [--chunk-rows N] "
               "[--explain-stats] "
               "[--timeout-ms N] [--mem-limit-mb N] [--spill-dir <dir>] "
               "[--trace-out <file.json>] [--metrics] [--metrics-json]\n"
               "  ecatool sweep-spill-dir <dir>\n");
  return 2;
}

// Strict base-10 parse for numeric flags: rejects empty values, trailing
// garbage ("12abc"), out-of-range input and anything below `min`, with a
// diagnostic naming the flag. atoi-style silent truncation turned flag
// typos into surprising-but-valid runs.
bool ParseIntFlag(const char* flag, const char* text, int64_t min,
                  int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min) {
    std::fprintf(stderr, "bad %s value '%s' (want an integer >= %lld)\n",
                 flag, text, static_cast<long long>(min));
    return false;
  }
  *out = value;
  return true;
}

// Optional-flag sink for explain: approaches to run and a data directory.
struct ExplainArgs {
  std::vector<Optimizer::Approach> approaches;
  // Plan policy applied to every listed approach
  // (docs/planner-policies.md); provenance records it per plan.
  PlanPolicy policy = PlanPolicy::kDp;
  std::string data_dir;
  int num_threads = 1;
  int64_t morsel_rows = 0;  // 0 = executor default
  int64_t chunk_rows = 0;   // 0 = executor default
  bool explain_stats = false;
  int64_t timeout_ms = 0;     // 0 = no deadline
  int64_t mem_limit_mb = 0;   // 0 = no memory limit
  std::string spill_dir;      // "" = system temp dir
  // Test hook for the Ctrl-C contract: raise SIGINT from a timer thread
  // after N ms, exercising the real signal handler deterministically.
  int64_t self_interrupt_ms = 0;
  std::string trace_out;      // empty = tracing stays disabled
  bool metrics = false;
  bool metrics_json = false;

  bool governed() const { return timeout_ms > 0 || mem_limit_mb > 0; }
};

bool ParsePredArgs(int argc, char** argv, int start,
                   std::map<std::string, PredRef>* preds, int* rows,
                   ExplainArgs* explain = nullptr) {
  for (int i = start; i < argc; ++i) {
    if (explain != nullptr && std::strcmp(argv[i], "--approach") == 0 &&
        i + 1 < argc) {
      auto approach = Optimizer::ParseApproach(argv[++i]);
      if (!approach.ok()) {
        std::fprintf(stderr, "%s\n", approach.status().ToString().c_str());
        return false;
      }
      explain->approaches.push_back(*approach);
    } else if (explain != nullptr && std::strcmp(argv[i], "--policy") == 0 &&
               i + 1 < argc) {
      auto policy = ParsePlanPolicy(argv[++i]);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return false;
      }
      explain->policy = *policy;
    } else if (explain != nullptr && std::strcmp(argv[i], "--data") == 0 &&
               i + 1 < argc) {
      explain->data_dir = argv[++i];
    } else if (explain != nullptr && std::strcmp(argv[i], "--threads") == 0 &&
               i + 1 < argc) {
      int64_t threads = 0;
      if (!ParseIntFlag("--threads", argv[++i], 1, &threads)) return false;
      if (threads > 4096) {
        std::fprintf(stderr, "bad --threads value '%s' (want <= 4096)\n",
                     argv[i]);
        return false;
      }
      explain->num_threads = static_cast<int>(threads);
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--morsel-rows") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--morsel-rows", argv[++i], 1,
                        &explain->morsel_rows)) {
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--chunk-rows") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--chunk-rows", argv[++i], 1, &explain->chunk_rows)) {
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--timeout-ms", argv[++i], 1, &explain->timeout_ms)) {
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--mem-limit-mb") == 0 && i + 1 < argc) {
      if (!ParseIntFlag("--mem-limit-mb", argv[++i], 1,
                        &explain->mem_limit_mb)) {
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      explain->spill_dir = argv[++i];
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--self-interrupt-ms") == 0 &&
               i + 1 < argc) {
      if (!ParseIntFlag("--self-interrupt-ms", argv[++i], 1,
                        &explain->self_interrupt_ms)) {
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--explain-stats") == 0) {
      explain->explain_stats = true;
    } else if (explain != nullptr &&
               std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      explain->trace_out = argv[i] + 12;
      if (explain->trace_out.empty()) {
        std::fprintf(stderr, "bad --trace-out value (want a file path)\n");
        return false;
      }
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      explain->trace_out = argv[++i];
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--metrics") == 0) {
      explain->metrics = true;
    } else if (explain != nullptr &&
               std::strcmp(argv[i], "--metrics-json") == 0) {
      explain->metrics_json = true;
    } else if (std::strcmp(argv[i], "--pred") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --pred spec '%s'\n", spec.c_str());
        return false;
      }
      std::string name = spec.substr(0, eq);
      std::string expr = spec.substr(eq + 1);
      std::string error;
      PredRef p = ParsePredicate(expr, name, &error);
      if (p == nullptr) {
        std::fprintf(stderr, "cannot parse predicate '%s': %s\n",
                     expr.c_str(), error.c_str());
        return false;
      }
      (*preds)[name] = std::move(p);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      int64_t parsed = 0;
      if (!ParseIntFlag("--rows", argv[++i], 1, &parsed)) return false;
      if (parsed > (int64_t{1} << 30)) {
        std::fprintf(stderr, "bad --rows value '%s' (want <= 2^30)\n",
                     argv[i]);
        return false;
      }
      *rows = static_cast<int>(parsed);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

Database RandomDataFor(const Plan& plan, int rows) {
  Rng rng(12345);
  RandomDataOptions opts;
  opts.min_rows = rows;
  opts.max_rows = rows;
  opts.empty_prob = 0;
  int max_rel = 0;
  for (int id : plan.leaves()) max_rel = std::max(max_rel, id);
  Database db;
  for (int i = 0; i <= max_rel; ++i) {
    db.Add(RandomRelation(rng, i, opts));
  }
  return db;
}

// Loads R<i>.tbl from `dir` for every relation the plan touches, in the
// generators' (k, a, b) int64 schema.
StatusOr<Database> DataFromDir(const Plan& plan, const std::string& dir) {
  int max_rel = 0;
  for (int id : plan.leaves()) max_rel = std::max(max_rel, id);
  Database db;
  for (int i = 0; i <= max_rel; ++i) {
    Schema schema({{i, "k", DataType::kInt64},
                   {i, "a", DataType::kInt64},
                   {i, "b", DataType::kInt64}});
    Relation rel{schema};
    ECA_RETURN_IF_ERROR(
        ReadRelationFile(dir + "/R" + std::to_string(i) + ".tbl", schema,
                         &rel));
    db.Add(std::move(rel));
  }
  return db;
}

int GenTpch(int argc, char** argv) {
  if (argc < 4) return Usage();
  char* end = nullptr;
  double sf = std::strtod(argv[2], &end);
  if (end == argv[2] || *end != '\0' || sf <= 0) {
    std::fprintf(stderr, "bad scale factor '%s' (want a positive number)\n",
                 argv[2]);
    return 2;
  }
  std::string dir = argv[3];
  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 42);
  struct {
    const char* name;
    const Relation* rel;
  } tables[] = {
      {"supplier", &data.supplier}, {"partsupp", &data.partsupp},
      {"part", &data.part},         {"lineitem", &data.lineitem},
      {"orders", &data.orders},
  };
  for (const auto& t : tables) {
    std::string path = dir + "/" + t.name + ".tbl";
    if (!WriteRelationFile(path, *t.rel)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("%-10s %8lld rows -> %s\n", t.name,
                static_cast<long long>(t.rel->NumRows()), path.c_str());
  }
  return 0;
}

int Orderings(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::map<std::string, PredRef> preds;
  int rows = 8;
  if (!ParsePredArgs(argc, argv, 3, &preds, &rows)) return 2;
  std::string error;
  PlanPtr plan = ParsePlan(argv[2], preds, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "cannot parse plan: %s\n", error.c_str());
    return 2;
  }
  // Validate against the synthetic (k, a, b) schemas the data generators
  // use, so a hand-typed plan with duplicate leaves or a typo'd column
  // fails with a diagnostic instead of aborting mid-reorder.
  Status valid =
      ValidatePlanStatus(*plan, RandomDataFor(*plan, 1).BaseSchemas());
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  Optimizer::Options tba_opts;
  tba_opts.approach = Optimizer::Approach::kTBA;
  Optimizer::Options cba_opts;
  cba_opts.approach = Optimizer::Approach::kCBA;
  Optimizer tba{tba_opts};
  Optimizer cba{cba_opts};
  Optimizer eca;
  auto thetas =
      AllJoinOrderingTrees(plan->leaves(), PredicateRefSets(*plan));
  std::printf("JoinOrder(Q): %zu orderings\n", thetas.size());
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr via_eca = eca.Reorder(*plan, *theta);
    std::printf("%-32s TBA:%s CBA:%s ECA:%s\n", theta->Key().c_str(),
                tba.Reorder(*plan, *theta) ? "yes" : " no",
                cba.Reorder(*plan, *theta) ? "yes" : " no",
                via_eca ? "yes" : " no");
    if (via_eca != nullptr) {
      std::printf("    %s\n", via_eca->ToInlineString().c_str());
    }
  }
  return 0;
}

int Explain(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::map<std::string, PredRef> preds;
  int rows = 64;
  ExplainArgs extra;
  if (!ParsePredArgs(argc, argv, 3, &preds, &rows, &extra)) return 2;
  std::string error;
  PlanPtr plan = ParsePlan(argv[2], preds, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "cannot parse plan: %s\n", error.c_str());
    return 2;
  }
  Database db;
  if (!extra.data_dir.empty()) {
    StatusOr<Database> loaded = DataFromDir(*plan, extra.data_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load data from '%s': %s\n",
                   extra.data_dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  } else {
    db = RandomDataFor(*plan, rows);
  }
  if (extra.approaches.empty()) {
    extra.approaches = {Optimizer::Approach::kTBA, Optimizer::Approach::kCBA,
                        Optimizer::Approach::kECA};
  }
  struct JoinOnExit {
    std::thread t;
    ~JoinOnExit() {
      if (t.joinable()) t.join();
    }
  } interrupt_timer;
  if (extra.governed()) {
    // OptimizeGoverned skips the validating front door, so validate the
    // hand-typed plan here once for all approaches.
    Status valid = ValidatePlanStatus(*plan, db.BaseSchemas());
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return 1;
    }
    std::signal(SIGINT, HandleInterrupt);
    std::signal(SIGTERM, HandleInterrupt);
    if (extra.self_interrupt_ms > 0) {
      interrupt_timer.t = std::thread([ms = extra.self_interrupt_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        std::raise(SIGINT);
      });
    }
  }
  if (!extra.trace_out.empty()) Tracer::Enable();
  std::printf("query:\n%s\n", plan->ToString().c_str());
  for (auto approach : extra.approaches) {
    MetricsSnapshot metrics_before;
    if (extra.metrics) {
      metrics_before = MetricsRegistry::Global().Snapshot();
    }
    Optimizer::Options opts;
    opts.approach = approach;
    opts.plan_policy = extra.policy;
    opts.num_threads = extra.num_threads;
    if (extra.morsel_rows > 0) {
      opts.exec_tuning.morsel_rows = static_cast<int>(extra.morsel_rows);
    }
    if (extra.chunk_rows > 0) {
      opts.exec_tuning.chunk_rows = static_cast<int>(extra.chunk_rows);
    }
    Optimizer opt{opts};
    // Each approach runs as its own governed query: fresh tracker, fresh
    // deadline, so --timeout-ms bounds every optimize+execute pair.
    QueryContext::Limits limits;
    limits.mem_limit_bytes = extra.mem_limit_mb << 20;
    limits.timeout_ms = extra.timeout_ms;
    limits.spill_dir = extra.spill_dir;
    QueryContext ctx(limits);
    if (extra.governed()) {
      ctx.Arm();
      g_active_cancel.store(ctx.cancel_token(), std::memory_order_release);
    }
    auto opt_start = std::chrono::steady_clock::now();
    StatusOr<Optimizer::Optimized> best =
        extra.governed()
            ? StatusOr<Optimizer::Optimized>(
                  opt.OptimizeGoverned(*plan, db, &ctx))
            : opt.OptimizeChecked(*plan, db);
    double opt_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - opt_start)
                        .count();
    if (!best.ok()) {
      std::fprintf(stderr, "%s\n", best.status().ToString().c_str());
      return 1;
    }
    if (extra.governed()) {
      // ExplainAnalyze profiles by executing ungoverned; under a memory
      // limit that would dodge the very contract the flags ask for, so
      // governed runs print the plan and execute it once, governed.
      std::printf("---- %s (estimated cost %.1f) ----\n%s",
                  Optimizer::ApproachName(approach), best->estimated_cost,
                  best->plan->ToString().c_str());
    } else {
      std::printf("---- %s (estimated cost %.1f) ----\n%s",
                  Optimizer::ApproachName(approach), best->estimated_cost,
                  ExplainAnalyze(*best->plan, db).c_str());
    }
    std::printf("%s", best->provenance.ToString().c_str());
    if (extra.explain_stats) {
      const EnumeratorStats& s = best->stats;
      std::printf(
          "enumerator stats (optimized in %.2f ms):\n"
          "  subplan_calls=%lld pairs_considered=%lld root_tasks=%lld\n"
          "  swaps_attempted=%lld swaps_failed=%lld "
          "swap_chain_guard_trips=%lld\n"
          "  plans_completed=%lld reuses=%lld cache_entries=%lld "
          "sig_collisions=%lld\n"
          "  prunes=%lld cost_evals=%lld cost_memo_hits=%lld "
          "cloned_nodes=%lld\n"
          "  degraded=%s trigger=%s\n",
          opt_ms, static_cast<long long>(s.subplan_calls),
          static_cast<long long>(s.pairs_considered),
          static_cast<long long>(s.root_tasks),
          static_cast<long long>(s.swaps_attempted),
          static_cast<long long>(s.swaps_failed),
          static_cast<long long>(s.swap_chain_guard_trips),
          static_cast<long long>(s.plans_completed),
          static_cast<long long>(s.reuses),
          static_cast<long long>(s.cache_entries),
          static_cast<long long>(s.sig_collisions),
          static_cast<long long>(s.prunes),
          static_cast<long long>(s.cost_evals),
          static_cast<long long>(s.cost_memo_hits),
          static_cast<long long>(s.cloned_nodes),
          s.degraded ? "yes" : "no", BudgetTriggerName(s.trigger));
    }
    if (extra.governed()) {
      ExecStats xs;
      StatusOr<Relation> res = opt.ExecuteGoverned(*best->plan, db, &ctx, &xs);
      std::printf(
          "governor: degraded=%s peak_bytes=%lld spilled_partitions=%lld "
          "spill_bytes=%lld spill_read_bytes=%lld spilled_sort_runs=%lld\n",
          best->stats.degraded ? "yes" : "no",
          static_cast<long long>(xs.peak_bytes),
          static_cast<long long>(xs.spilled_partitions),
          static_cast<long long>(xs.spill_bytes),
          static_cast<long long>(xs.spill_read_bytes),
          static_cast<long long>(xs.spilled_sort_runs));
      g_active_cancel.store(nullptr, std::memory_order_release);
      if (!res.ok()) {
        if (g_interrupted != 0 &&
            res.status().code() == StatusCode::kCancelled) {
          std::fprintf(stderr,
                       "ecatool: interrupted — query cancelled cleanly "
                       "(tracker=%lld bytes)\n",
                       static_cast<long long>(ctx.tracker()->used()));
          return 130;
        }
        std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
        return 1;
      }
      std::printf("rows: %lld\n\n", static_cast<long long>(res->NumRows()));
    } else {
      Relation a = opt.Execute(*plan, db);
      Relation b = opt.Execute(*best->plan, db);
      std::printf("result matches query: %s\n\n",
                  SameMultiset(CanonicalizeColumnOrder(a),
                               CanonicalizeColumnOrder(b))
                      ? "yes"
                      : "NO!");
    }
    if (extra.metrics) {
      MetricsSnapshot delta =
          MetricsRegistry::Global().Snapshot().DiffSince(metrics_before);
      std::printf("metrics (%s):\n%s\n", Optimizer::ApproachName(approach),
                  delta.ToTable().c_str());
    }
  }
  // A self-interrupt that fired after the last query completed still ends
  // the run as an interruption: wait for the timer, then report.
  if (interrupt_timer.t.joinable()) interrupt_timer.t.join();
  if (g_interrupted != 0) {
    std::fprintf(stderr, "ecatool: interrupted\n");
    return 130;
  }
  if (!extra.trace_out.empty()) {
    Status written = Tracer::WriteJson(extra.trace_out);
    Tracer::Disable();
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %lld events (%lld dropped) -> %s\n",
                static_cast<long long>(Tracer::EventCount()),
                static_cast<long long>(Tracer::DroppedCount()),
                extra.trace_out.c_str());
  }
  if (extra.metrics_json) {
    std::printf("%s\n", MetricsRegistry::Global().Snapshot().ToJson().c_str());
  }
  return 0;
}

// Crash recovery for standalone runs: reclaim per-query spill
// subdirectories whose owning process is gone (a crashed or killed -9
// ecatool/ecad left them behind). The ecad service runs the same sweep on
// startup; this subcommand covers operator-driven cleanup.
int SweepSpillDir(int argc, char** argv) {
  if (argc < 3) return Usage();
  int64_t swept = SweepOrphanQuerySpillDirs(argv[2]);
  std::printf("swept %lld orphaned spill dirs under %s\n",
              static_cast<long long>(swept), argv[2]);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen-tpch") == 0) return GenTpch(argc, argv);
  if (std::strcmp(argv[1], "orderings") == 0) return Orderings(argc, argv);
  if (std::strcmp(argv[1], "explain") == 0) return Explain(argc, argv);
  if (std::strcmp(argv[1], "sweep-spill-dir") == 0 ||
      std::strcmp(argv[1], "--sweep-spill-dir") == 0) {
    return SweepSpillDir(argc, argv);
  }
  return Usage();
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
