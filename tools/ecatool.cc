// ecatool — command-line front end for the library.
//
//   ecatool gen-tpch <sf> <dir>
//       Generate TPC-H-style .tbl files (supplier, partsupp, part,
//       lineitem, orders) at the given scale factor.
//
//   ecatool orderings "<plan>" --pred name="<expr>" ...
//       List every join ordering of the query and which approach
//       (TBA / CBA / ECA) can realize it.
//
//   ecatool explain "<plan>" --pred name="<expr>" ... [--rows N]
//       Optimize the query with all three approaches over random data
//       (N rows per relation) and print plans, costs and EXPLAIN ANALYZE.
//
// Plan syntax is the library's compact notation, e.g.
//   "(R0 laj[p01] (R1 laj[p12] R2))"
// with predicates like --pred p01="R0.a = R1.a".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "algebra/plan_parser.h"
#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "exec/explain.h"
#include "expr/pred_parser.h"
#include "storage/csv.h"
#include "testing/random_data.h"
#include "tpch/tpch_gen.h"

namespace eca {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ecatool gen-tpch <sf> <dir>\n"
               "  ecatool orderings \"<plan>\" --pred name=\"<expr>\"...\n"
               "  ecatool explain \"<plan>\" --pred name=\"<expr>\"... "
               "[--rows N]\n");
  return 2;
}

bool ParsePredArgs(int argc, char** argv, int start,
                   std::map<std::string, PredRef>* preds, int* rows) {
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pred") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --pred spec '%s'\n", spec.c_str());
        return false;
      }
      std::string name = spec.substr(0, eq);
      std::string expr = spec.substr(eq + 1);
      std::string error;
      PredRef p = ParsePredicate(expr, name, &error);
      if (p == nullptr) {
        std::fprintf(stderr, "cannot parse predicate '%s': %s\n",
                     expr.c_str(), error.c_str());
        return false;
      }
      (*preds)[name] = std::move(p);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      *rows = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

Database RandomDataFor(const Plan& plan, int rows) {
  Rng rng(12345);
  RandomDataOptions opts;
  opts.min_rows = rows;
  opts.max_rows = rows;
  opts.empty_prob = 0;
  int max_rel = 0;
  for (int id : plan.leaves()) max_rel = std::max(max_rel, id);
  Database db;
  for (int i = 0; i <= max_rel; ++i) {
    db.Add(RandomRelation(rng, i, opts));
  }
  return db;
}

int GenTpch(int argc, char** argv) {
  if (argc < 4) return Usage();
  double sf = std::atof(argv[2]);
  std::string dir = argv[3];
  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 42);
  struct {
    const char* name;
    const Relation* rel;
  } tables[] = {
      {"supplier", &data.supplier}, {"partsupp", &data.partsupp},
      {"part", &data.part},         {"lineitem", &data.lineitem},
      {"orders", &data.orders},
  };
  for (const auto& t : tables) {
    std::string path = dir + "/" + t.name + ".tbl";
    if (!WriteRelationFile(path, *t.rel)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("%-10s %8lld rows -> %s\n", t.name,
                static_cast<long long>(t.rel->NumRows()), path.c_str());
  }
  return 0;
}

int Orderings(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::map<std::string, PredRef> preds;
  int rows = 8;
  if (!ParsePredArgs(argc, argv, 3, &preds, &rows)) return 2;
  std::string error;
  PlanPtr plan = ParsePlan(argv[2], preds, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "cannot parse plan: %s\n", error.c_str());
    return 2;
  }
  Optimizer tba{Optimizer::Options{Optimizer::Approach::kTBA}};
  Optimizer cba{Optimizer::Options{Optimizer::Approach::kCBA}};
  Optimizer eca;
  auto thetas =
      AllJoinOrderingTrees(plan->leaves(), PredicateRefSets(*plan));
  std::printf("JoinOrder(Q): %zu orderings\n", thetas.size());
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr via_eca = eca.Reorder(*plan, *theta);
    std::printf("%-32s TBA:%s CBA:%s ECA:%s\n", theta->Key().c_str(),
                tba.Reorder(*plan, *theta) ? "yes" : " no",
                cba.Reorder(*plan, *theta) ? "yes" : " no",
                via_eca ? "yes" : " no");
    if (via_eca != nullptr) {
      std::printf("    %s\n", via_eca->ToInlineString().c_str());
    }
  }
  return 0;
}

int Explain(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::map<std::string, PredRef> preds;
  int rows = 64;
  if (!ParsePredArgs(argc, argv, 3, &preds, &rows)) return 2;
  std::string error;
  PlanPtr plan = ParsePlan(argv[2], preds, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "cannot parse plan: %s\n", error.c_str());
    return 2;
  }
  Database db = RandomDataFor(*plan, rows);
  std::printf("query:\n%s\n", plan->ToString().c_str());
  for (auto approach : {Optimizer::Approach::kTBA, Optimizer::Approach::kCBA,
                        Optimizer::Approach::kECA}) {
    const char* name = approach == Optimizer::Approach::kTBA   ? "TBA"
                       : approach == Optimizer::Approach::kCBA ? "CBA"
                                                               : "ECA";
    Optimizer opt{Optimizer::Options{approach}};
    auto best = opt.Optimize(*plan, db);
    std::printf("---- %s (estimated cost %.1f) ----\n%s", name,
                best.estimated_cost,
                ExplainAnalyze(*best.plan, db).c_str());
    Relation a = opt.Execute(*plan, db);
    Relation b = opt.Execute(*best.plan, db);
    std::printf("result matches query: %s\n\n",
                SameMultiset(CanonicalizeColumnOrder(a),
                             CanonicalizeColumnOrder(b))
                    ? "yes"
                    : "NO!");
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen-tpch") == 0) return GenTpch(argc, argv);
  if (std::strcmp(argv[1], "orderings") == 0) return Orderings(argc, argv);
  if (std::strcmp(argv[1], "explain") == 0) return Explain(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
