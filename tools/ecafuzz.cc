// ecafuzz — fault-injected differential fuzzer for the optimizer pipeline.
//
//   ecafuzz [--queries N] [--seed S] [--max-rels N] [--threads N]
//           [--smoke] [--verbose] [--enum-diff] [--mem-limit-mb N]
//
// Each iteration derives everything from one seed: a random database, a
// random query, a random approach (ECA / TBA / CBA), a random enumeration
// budget and randomly armed fault-injection points. The optimized plan is
// executed against the unoptimized query as a semantic oracle: any
// divergence is a bug, budget or no budget, fault or no fault. Every
// fourth iteration additionally mutates the query's plan notation and
// feeds it through the parse -> validate -> optimize pipeline, which must
// reject garbage with a Status, never abort.
//
// On divergence the failing configuration is minimized (faults dropped,
// then budgets dropped) and a single-seed repro command is printed.
//
//   --smoke   deterministic CI profile: 200 queries, fixed seed, no
//             wall-clock budgets (those are timing-dependent).
//   --threads runs the optimized plan on a worker pool while the oracle
//             side stays single-threaded, so the differential check also
//             proves parallel execution matches sequential execution.
//   --enum-diff  enumerator-differential mode: no budgets and no faults;
//             each seeded query is enumerated at 1, 2 and 4 threads and
//             with branch-and-bound and the cost memo toggled, asserting a
//             byte-identical plan (cost and structural fingerprint), plus
//             reuse on/off, asserting an identical plan cost. Threaded
//             variants force the worker pool on (pool_spinup_us = 0), so
//             the identity claim is exercised under real concurrency.
//   --plan-cache  (with --enum-diff) routes every trial through one
//             shared cross-query SharedMemo, advancing its stats epoch
//             between trials (each trial has its own database): cached
//             cold and warm runs must reproduce the private-memo plan
//             cost bitwise, the warm plan must stay semantically
//             equivalent to the query (execution oracle), and the cache
//             must drain to zero tracked bytes at the end.
//   --cache-file <path>  plan-cache corruption fuzz: the persistent-cache
//             loader (storage/cache_store.h) must load-or-degrade — never
//             crash, never fail the caller, never unbalance the memory
//             tracker — for the file truncated at EVERY byte offset and
//             for --queries seeded single-bit flips. A missing file is
//             first synthesized from seeded random plans through the real
//             snapshot writer, so the CI lane is self-contained;
//             tools/chaos_smoke.sh points this mode at cache files a real
//             daemon wrote and was SIGKILLed over.
//   --policy <p>  plan-policy differential over seeded JOB-style workloads
//             (src/sqlgen/workload.h): chain, star and clique topologies
//             of 8+ relations, each optimized under the named policy (dp /
//             sizes-only / greedy / semijoin — "all" runs every policy on
//             every workload) and executed against the unoptimized query
//             as the multiset-identity oracle. dp runs under a fixed
//             deterministic node budget (large join graphs are the whole
//             point), so its degraded fallback path is exercised too; a
//             semijoin run must apply the Yannakakis pass on at least one
//             acyclic workload or the run fails.
//   --mem-limit-mb  spilled-vs-in-memory differential: after the oracle
//             comparison, the optimized plan is re-executed under a
//             resource governor with the given hard limit and a
//             deliberately tiny soft threshold, forcing hash joins onto
//             the grace (spill-to-disk) path and best-matches onto
//             external merge sort. The governed result must be
//             value-identical, row for row, to the in-memory result;
//             kResourceExhausted / kDeadlineExceeded are accepted as
//             clean outcomes (docs/robustness.md).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "algebra/plan_parser.h"
#include "algebra/validate.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "eca/optimizer.h"
#include "enumerate/shared_memo.h"
#include "exec/executor.h"
#include "exec/query_context.h"
#include "sqlgen/workload.h"
#include "storage/cache_store.h"
#include "testing/fault_injection.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

struct FuzzConfig {
  int64_t queries = 500;
  uint64_t seed = 1;
  int max_rels = 5;
  int threads = 1;
  bool smoke = false;
  bool verbose = false;
  bool enum_diff = false;
  bool plan_cache = false;  // --enum-diff through a shared cross-query memo
  // --cache-file: corruption-fuzz a persistent plan-cache file instead of
  // running query differentials (empty = off).
  std::string cache_file;
  // --policy: plan-policy differential over generated JOB-style workloads
  // ("dp" / "sizes-only" / "greedy" / "semijoin" smoke one policy, "all"
  // runs the cross-policy multiset-identity differential; "" = off).
  std::string policy;
  int64_t mem_limit_mb = 0;  // > 0: governed re-execution differential
  // Executor morsel/chunk granularity for the optimized side (0 = engine
  // default). Results must be byte-identical for every legal value, so
  // these knobs widen the parallel-vs-sequential differential the same
  // way --threads does.
  int morsel_rows = 0;
  int chunk_rows = 0;
};

// One iteration's randomized setup, minus the data/query (regenerated
// from the seed on demand so minimization can replay exactly).
struct TrialSetup {
  Optimizer::Approach approach = Optimizer::Approach::kECA;
  bool reuse_subplans = true;
  EnumeratorBudget budget;
  // Thread count for executing the optimized plan (--threads); the oracle
  // side is always single-threaded, so the comparison doubles as a
  // parallel-vs-sequential equivalence check.
  int exec_threads = 1;
  // Hard memory limit (MB) for the governed re-execution differential;
  // 0 disables it.
  int64_t mem_limit_mb = 0;
  // Morsel/chunk granularity for the optimized side (0 = default).
  int morsel_rows = 0;
  int chunk_rows = 0;
  // skip counts per fault point; -1 = disarmed. Filled in the constructor
  // so every point starts disarmed however many FaultPoints exist.
  int64_t fault_skip[static_cast<int>(FaultPoint::kNumPoints)];

  TrialSetup() {
    for (int64_t& s : fault_skip) s = -1;
  }

  bool AnyFault() const {
    for (int64_t s : fault_skip) {
      if (s >= 0) return true;
    }
    return false;
  }
  std::string ToString() const {
    std::string out = std::string("approach=") +
                      Optimizer::ApproachName(approach) +
                      (reuse_subplans ? " reuse" : " no-reuse");
    if (budget.max_enumerated_nodes > 0) {
      out += " nodes=" + std::to_string(budget.max_enumerated_nodes);
    }
    if (budget.max_memo_entries > 0) {
      out += " memo=" + std::to_string(budget.max_memo_entries);
    }
    if (budget.wall_clock_ms > 0) {
      out += " wall_ms=" + std::to_string(budget.wall_clock_ms);
    }
    if (exec_threads != 1) {
      out += " threads=" + std::to_string(exec_threads);
    }
    if (mem_limit_mb > 0) {
      out += " mem_limit_mb=" + std::to_string(mem_limit_mb);
    }
    if (morsel_rows > 0) {
      out += " morsel_rows=" + std::to_string(morsel_rows);
    }
    if (chunk_rows > 0) {
      out += " chunk_rows=" + std::to_string(chunk_rows);
    }
    for (int p = 0; p < static_cast<int>(FaultPoint::kNumPoints); ++p) {
      if (fault_skip[p] >= 0) {
        out += std::string(" fault:") +
               FaultPointName(static_cast<FaultPoint>(p)) + "+" +
               std::to_string(fault_skip[p]);
      }
    }
    return out;
  }
};

struct Trial {
  Database db;
  PlanPtr query;
  TrialSetup setup;
};

// Deterministically rebuilds iteration `seed`'s world. The data/query
// stream and the setup stream are drawn from one Rng in a fixed order, so
// the same seed always means the same trial.
Trial MakeTrial(uint64_t seed, const FuzzConfig& cfg) {
  Rng rng(seed * 0x9e3779b9u + 17);
  Trial t;
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = static_cast<int>(rng.Uniform(2, cfg.max_rels));
  qopts.allow_full_outer = rng.Bernoulli(0.15);
  qopts.tolerant_pred_prob = rng.Bernoulli(0.2) ? 0.3 : 0.0;
  t.db = RandomDatabase(rng, qopts.num_rels, dopts);
  t.query = RandomQuery(rng, qopts, dopts);

  TrialSetup& s = t.setup;
  s.exec_threads = cfg.threads;
  s.mem_limit_mb = cfg.mem_limit_mb;
  s.morsel_rows = cfg.morsel_rows;
  s.chunk_rows = cfg.chunk_rows;
  s.approach = static_cast<Optimizer::Approach>(rng.Uniform(0, 2));
  s.reuse_subplans = rng.Bernoulli(0.7);
  if (rng.Bernoulli(0.5)) {
    // Biased low so the cap actually bites: small queries only enumerate
    // a handful of nodes, and the nodes=1 extreme is the acceptance case.
    s.budget.max_enumerated_nodes =
        rng.Bernoulli(0.4) ? rng.Uniform(1, 8) : rng.Uniform(1, 300);
  }
  if (rng.Bernoulli(0.3)) {
    s.budget.max_memo_entries = rng.Uniform(1, 32);
  }
  if (!cfg.smoke && rng.Bernoulli(0.15)) {
    s.budget.wall_clock_ms = rng.Uniform(1, 4);
  }
  for (int p = 0; p < static_cast<int>(FaultPoint::kNumPoints); ++p) {
    if (rng.Bernoulli(0.25)) {
      s.fault_skip[p] =
          rng.Bernoulli(0.5) ? rng.Uniform(0, 8) : rng.Uniform(0, 200);
    }
  }
  return t;
}

// Value-identity including row order — the contract the spill paths make
// (byte-identical output), strictly stronger than SameMultiset.
bool IdenticalRelations(const Relation& a, const Relation& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  for (size_t r = 0; r < a.rows().size(); ++r) {
    if (CompareTuples(a.rows()[r], b.rows()[r]) != 0) return false;
  }
  return true;
}

// Runs one optimize-and-compare round. Returns an empty string on
// success, else a description of the failure.
std::string RunTrial(const Trial& t, const TrialSetup& setup,
                     EnumeratorStats* stats_out = nullptr) {
  FaultInjector::Reset();
  for (int p = 0; p < static_cast<int>(FaultPoint::kNumPoints); ++p) {
    if (setup.fault_skip[p] >= 0) {
      FaultInjector::Arm(static_cast<FaultPoint>(p), setup.fault_skip[p]);
    }
  }
  Optimizer::Options opts;
  opts.approach = setup.approach;
  opts.reuse_subplans = setup.reuse_subplans;
  opts.budget = setup.budget;
  Optimizer opt(opts);
  StatusOr<Optimizer::Optimized> best = opt.OptimizeChecked(*t.query, t.db);
  FaultInjector::Reset();
  if (!best.ok()) {
    return "OptimizeChecked failed on a valid query: " +
           best.status().ToString();
  }
  if (best->plan == nullptr) return "Optimize returned a null plan";
  if (stats_out != nullptr) *stats_out = best->stats;

  Status valid = ValidatePlanStatus(*best->plan, t.db.BaseSchemas());
  if (!valid.ok()) {
    return "optimized plan fails validation: " + valid.ToString();
  }
  // A one-node budget leaves no room to complete any enumeration: the
  // result must be flagged degraded.
  if (setup.budget.max_enumerated_nodes == 1 && !best->stats.degraded) {
    return "nodes=1 budget did not set stats.degraded";
  }

  Optimizer plain;  // the oracle side always executes single-threaded
  Relation expect = plain.Execute(*t.query, t.db);
  Optimizer::Options exec_opts;
  exec_opts.num_threads = setup.exec_threads;
  if (setup.morsel_rows > 0) exec_opts.exec_tuning.morsel_rows = setup.morsel_rows;
  if (setup.chunk_rows > 0) exec_opts.exec_tuning.chunk_rows = setup.chunk_rows;
  Optimizer threaded{exec_opts};
  Relation got = threaded.Execute(*best->plan, t.db);
  if (!SameMultiset(CanonicalizeColumnOrder(expect),
                    CanonicalizeColumnOrder(got))) {
    return "DIVERGENCE: optimized plan result differs from the query\n" +
           best->plan->ToString();
  }

  if (setup.mem_limit_mb > 0) {
    // Spilled-vs-in-memory differential: re-execute the optimized plan
    // under the governor with a tiny soft threshold so every hash join
    // takes the grace path and best-matches sort externally. With the
    // trial's faults re-armed, any Status is a clean outcome; a success
    // must be value-identical, row for row, to the ungoverned run.
    for (int p = 0; p < static_cast<int>(FaultPoint::kNumPoints); ++p) {
      if (setup.fault_skip[p] >= 0) {
        FaultInjector::Arm(static_cast<FaultPoint>(p), setup.fault_skip[p]);
      }
    }
    QueryContext::Limits limits;
    limits.mem_limit_bytes = setup.mem_limit_mb << 20;
    limits.mem_soft_bytes = 16 << 10;
    QueryContext ctx(limits);
    ctx.Arm();
    Executor::Options xopts;
    xopts.num_threads = setup.exec_threads;
    if (setup.morsel_rows > 0) xopts.tuning.morsel_rows = setup.morsel_rows;
    if (setup.chunk_rows > 0) xopts.tuning.chunk_rows = setup.chunk_rows;
    Executor ex(xopts);
    StatusOr<Relation> governed = ex.ExecuteWithContext(*best->plan, t.db,
                                                        &ctx);
    FaultInjector::Reset();
    if (governed.ok()) {
      if (!IdenticalRelations(*governed, got)) {
        return "SPILL DIVERGENCE: governed (spilled) execution differs "
               "from the in-memory result\n" +
               best->plan->ToString();
      }
      if (ctx.tracker()->used() != 0) {
        return "governed execution leaked " +
               std::to_string(ctx.tracker()->used()) +
               " tracked bytes (reservation imbalance)";
      }
    }
  }
  return "";
}

// Enumerator-differential round: the same query enumerated with the fast
// paths toggled one by one, with no budgets and no faults. Parallel root
// enumeration, branch-and-bound and the cost memo all promise a
// byte-identical plan; subplan reuse promises an identical plan cost
// (Theorem 5.4 guards its soundness, and in practice it is plan-identical
// too — but the cost is the contract). Any difference is a bug.
std::string RunEnumDiff(const Trial& t, SharedMemo* cache) {
  CostModel cost = CostModel::FromDatabase(t.db);
  SwapPolicy policy = SwapPolicy::kECA;
  if (t.setup.approach == Optimizer::Approach::kTBA) policy = SwapPolicy::kTBA;
  if (t.setup.approach == Optimizer::Approach::kCBA) policy = SwapPolicy::kCBA;
  auto run = [&](int threads, bool reuse, bool prune, bool cost_memo,
                 SharedMemo* memo = nullptr) {
    EnumeratorOptions o;
    o.policy = policy;
    o.reuse_subplans = reuse;
    o.prune = prune;
    o.cost_memo = cost_memo;
    o.num_threads = threads;
    // Always fan the pool out: queries this small would otherwise stay on
    // the sequential fast path and never exercise real concurrency.
    o.pool_spinup_us = 0;
    o.shared_memo = memo;
    TopDownEnumerator e(&cost, o);
    return e.Optimize(*t.query);
  };
  TopDownEnumerator::Result base = run(1, true, true, true);
  if (base.plan == nullptr) return "enum-diff: null plan from the baseline";
  const uint64_t base_fp = PlanFingerprint(*base.plan);

  struct Variant {
    const char* name;
    int threads;
    bool reuse, prune, cost_memo;
    bool plan_identical;  // else: cost-identical only
  };
  const Variant variants[] = {
      {"threads=2", 2, true, true, true, true},
      {"threads=4", 4, true, true, true, true},
      {"no-prune", 1, true, false, true, true},
      {"no-cost-memo", 1, true, true, false, true},
      {"no-reuse", 1, false, true, true, false},
  };
  for (const Variant& v : variants) {
    TopDownEnumerator::Result r = run(v.threads, v.reuse, v.prune,
                                      v.cost_memo);
    if (r.plan == nullptr) {
      return std::string("enum-diff: null plan from ") + v.name;
    }
    if (r.cost != base.cost) {
      return std::string("enum-diff: ") + v.name + " changed the plan cost";
    }
    if (v.plan_identical && PlanFingerprint(*r.plan) != base_fp) {
      return std::string("enum-diff: ") + v.name + " changed the plan\n" +
             r.plan->ToString();
    }
  }

  if (cache != nullptr) {
    // Cross-query plan-cache differential: a cold cached run must land on
    // the private-memo cost bitwise; so must a warm 4-thread run against
    // the entries the cold run just published (every cached entry is a
    // true optimum for its full key, so reuse can never change the chosen
    // cost — only skip re-derivation). Warm plan bytes are NOT promised
    // identical to cold, so the warm plan is checked semantically against
    // the query instead.
    TopDownEnumerator::Result cached_cold = run(1, true, true, true, cache);
    if (cached_cold.plan == nullptr) {
      return "plan-cache: null plan from the cold cached run";
    }
    if (cached_cold.cost != base.cost) {
      return "plan-cache: cold cached run changed the plan cost";
    }
    TopDownEnumerator::Result warm = run(4, true, true, true, cache);
    if (warm.plan == nullptr) {
      return "plan-cache: null plan from the warm cached run";
    }
    if (warm.cost != base.cost) {
      return "plan-cache: warm cached run changed the plan cost";
    }
    Status valid = ValidatePlanStatus(*warm.plan, t.db.BaseSchemas());
    if (!valid.ok()) {
      return "plan-cache: warm plan fails validation: " + valid.ToString();
    }
    Optimizer plain;
    Relation expect = plain.Execute(*t.query, t.db);
    Relation got = plain.Execute(*warm.plan, t.db);
    if (!SameMultiset(CanonicalizeColumnOrder(expect),
                      CanonicalizeColumnOrder(got))) {
      return "plan-cache DIVERGENCE: warm cached plan result differs from "
             "the query\n" +
             warm.plan->ToString();
    }
  }
  return "";
}

// Shrinks a failing setup: drop the faults, then each budget knob, and
// keep any reduction that still fails. The result is the smallest
// configuration (for this seed) that reproduces the bug.
TrialSetup Minimize(const Trial& t, TrialSetup setup) {
  TrialSetup no_faults = setup;
  for (int64_t& s : no_faults.fault_skip) s = -1;
  if (!RunTrial(t, no_faults).empty()) setup = no_faults;

  TrialSetup no_nodes = setup;
  no_nodes.budget.max_enumerated_nodes = 0;
  if (!RunTrial(t, no_nodes).empty()) setup = no_nodes;

  TrialSetup no_memo = setup;
  no_memo.budget.max_memo_entries = 0;
  if (!RunTrial(t, no_memo).empty()) setup = no_memo;

  TrialSetup no_wall = setup;
  no_wall.budget.wall_clock_ms = 0;
  if (!RunTrial(t, no_wall).empty()) setup = no_wall;

  TrialSetup no_spill = setup;
  no_spill.mem_limit_mb = 0;
  if (!RunTrial(t, no_spill).empty()) setup = no_spill;

  return setup;
}

// Feeds a mutated copy of the query's plan notation through the
// parse -> validate -> optimize pipeline. Nothing here may abort; a
// mutated plan that still parses and validates must stay semantically
// consistent under optimization.
std::string RunMutatedNotation(const Trial& t, uint64_t seed) {
  Rng rng(seed ^ 0xf00dULL);
  std::string text = t.query->ToInlineString();
  int edits = static_cast<int>(rng.Uniform(1, 3));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(text.size()) - 1));
    switch (rng.Uniform(0, 2)) {
      case 0:  // truncate
        text = text.substr(0, pos);
        break;
      case 1:  // overwrite with a random structural character
        text[pos] = "()[]R0123 joxl"[rng.Uniform(0, 13)];
        break;
      default:  // duplicate a chunk
        text = text + text.substr(pos);
        break;
    }
  }
  std::map<std::string, PredRef> preds;
  std::vector<Plan*> joins;
  CollectJoins(t.query.get(), &joins);
  for (const Plan* j : joins) {
    if (j->pred() != nullptr && !j->pred()->label().empty()) {
      preds[j->pred()->label()] = j->pred();
    }
  }
  std::string error;
  PlanPtr mutated = ParsePlan(text, preds, &error);
  if (mutated == nullptr) return "";  // rejected at the parser: fine
  Optimizer opt;
  StatusOr<Optimizer::Optimized> best = opt.OptimizeChecked(*mutated, t.db);
  if (!best.ok()) return "";  // rejected at validation: fine
  Relation expect = opt.Execute(*mutated, t.db);
  Relation got = opt.Execute(*best->plan, t.db);
  if (!SameMultiset(CanonicalizeColumnOrder(expect),
                    CanonicalizeColumnOrder(got))) {
    return "DIVERGENCE on mutated notation '" + text + "'";
  }
  return "";
}

// --- plan-cache corruption fuzz (--cache-file) -----------------------------

std::vector<unsigned char> ReadCacheBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteCacheBytes(const std::string& path,
                     const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Synthesizes a snapshot at `path` from seeded random plans through the
// real writer, so the CI lane needs no daemon run first. Returns false on
// a write failure.
bool SynthesizeCacheFile(const std::string& path, uint64_t seed,
                         int max_rels, uint64_t catalog_fp) {
  MemoryTracker root(0, 0);
  SharedMemo::Config mc;
  mc.parent = &root;
  SharedMemo memo(mc);
  Rng rng(seed ^ 0x5eedcafeULL);
  for (int i = 0; i < 12; ++i) {
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = static_cast<int>(rng.Uniform(2, max_rels));
    qopts.allow_full_outer = rng.Bernoulli(0.25);
    qopts.tolerant_pred_prob = rng.Bernoulli(0.3) ? 0.3 : 0.0;
    auto payload = std::make_shared<MemoPayload>();
    payload->subtree = RandomQuery(rng, qopts, dopts);
    payload->s = payload->subtree->leaves();
    payload->query_fp = rng.Next();
    payload->policy = static_cast<int>(rng.Uniform(0, 2));
    payload->epoch = 0;
    payload->cost = static_cast<double>(rng.Uniform(1, 1 << 20));
    payload->bytes = 64 + static_cast<int64_t>(rng.Uniform(0, 4096));
    memo.Import(rng.Next(), std::move(payload));
  }
  CacheStore store(path);
  Status written = store.WriteSnapshot(&memo, catalog_fp);
  memo.Clear();
  return written.ok();
}

// Corruption fuzz for the persistent plan cache: every mutation of the
// input file must load-or-degrade — Load never fails, never crashes, and
// the memory tracker balances to zero after Clear. Returns the process
// exit code.
int RunCacheFileFuzz(const FuzzConfig& cfg) {
  namespace fs = std::filesystem;
  const std::string& path = cfg.cache_file;
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    // Missing file: self-contained profile. The fingerprint constant is
    // arbitrary — PeekCacheFileHeader reads it back below like it would
    // from a daemon-written file.
    if (!SynthesizeCacheFile(path, cfg.seed, cfg.max_rels,
                             0x5eedecafc0ffee01ull)) {
      std::fprintf(stderr, "cache-file: cannot synthesize %s\n",
                   path.c_str());
      return 2;
    }
  }
  std::vector<unsigned char> pristine = ReadCacheBytes(path);
  if (pristine.empty()) {
    std::fprintf(stderr, "cache-file: %s is unreadable or empty\n",
                 path.c_str());
    return 2;
  }
  // Fuzz under the file's own epoch/fingerprint so entry decoding is
  // actually reached; a garbage header just means every load degrades at
  // the header, which is still a valid (if shallow) run.
  uint64_t epoch = 0;
  uint64_t catalog_fp = 0;
  if (!PeekCacheFileHeader(path, &epoch, &catalog_fp)) {
    std::fprintf(stderr,
                 "cache-file: %s has no readable header; fuzzing under a "
                 "zero fingerprint\n",
                 path.c_str());
  }

  const std::string victim = path + ".fuzz-victim";
  int64_t failures = 0;
  int64_t baseline_loaded = 0;

  // One load of whatever currently sits at `victim` (+ possibly a log the
  // loader itself truncates), with every invariant checked.
  auto check_load = [&](const std::string& what,
                        CacheStore::LoadResult* out) {
    MemoryTracker root(0, 0);
    SharedMemo::Config mc;
    mc.parent = &root;
    SharedMemo memo(mc);
    for (uint64_t e = 0; e < epoch && e < (1u << 16); ++e) {
      memo.AdvanceEpoch();
    }
    CacheStore store(victim);
    CacheStore::LoadResult result = store.Load(&memo, catalog_fp);
    bool ok = true;
    if (root.used() != memo.used_bytes()) {
      std::fprintf(stderr,
                   "cache-file %s: tracker (%lld) != memo bytes (%lld) "
                   "after load\n",
                   what.c_str(), static_cast<long long>(root.used()),
                   static_cast<long long>(memo.used_bytes()));
      ok = false;
    }
    memo.Clear();
    if (memo.used_bytes() != 0 || root.used() != 0) {
      std::fprintf(stderr,
                   "cache-file %s: %lld memo / %lld tracked bytes left "
                   "after Clear\n",
                   what.c_str(), static_cast<long long>(memo.used_bytes()),
                   static_cast<long long>(root.used()));
      ok = false;
    }
    if (out != nullptr) *out = result;
    return ok;
  };

  // Baseline: the pristine bytes must satisfy the same invariants. A
  // degraded baseline is reported but allowed — chaos_smoke.sh hands this
  // mode files a SIGKILLed daemon left torn on purpose.
  WriteCacheBytes(victim, pristine);
  CacheStore::LoadResult baseline;
  if (!check_load("baseline", &baseline)) ++failures;
  baseline_loaded = baseline.loaded;
  if (baseline.degraded) {
    std::fprintf(stderr, "cache-file: baseline is degraded (%s)\n",
                 baseline.detail.c_str());
  }

  // Truncation sweep: every byte offset for small files, a seeded sample
  // for big ones. Offsets that land on a record boundary legitimately
  // load clean with fewer entries (a record stream carries no trailer);
  // the invariant is only load-or-degrade, never more entries than the
  // baseline.
  std::vector<size_t> cuts;
  if (pristine.size() <= (64u << 10)) {
    for (size_t c = 0; c <= pristine.size(); ++c) cuts.push_back(c);
  } else {
    Rng cut_rng(cfg.seed ^ 0x7277cafeULL);
    for (int64_t i = 0; i < cfg.queries; ++i) {
      cuts.push_back(static_cast<size_t>(cut_rng.Next() %
                                         (pristine.size() + 1)));
    }
  }
  for (size_t cut : cuts) {
    std::vector<unsigned char> torn(pristine.begin(),
                                    pristine.begin() + cut);
    WriteCacheBytes(victim, torn);
    CacheStore::LoadResult r;
    if (!check_load("truncate@" + std::to_string(cut), &r)) ++failures;
    if (r.loaded > baseline_loaded) {
      std::fprintf(stderr,
                   "cache-file truncate@%zu: loaded %lld entries from a "
                   "prefix of a file that held %lld\n",
                   cut, static_cast<long long>(r.loaded),
                   static_cast<long long>(baseline_loaded));
      ++failures;
    }
    // (Skipped for an already-degraded baseline: cutting off a torn tail
    // can legitimately yield a clean file with the same entries.)
    if (cut < pristine.size() && !baseline.degraded &&
        baseline_loaded > 0 && !r.degraded && r.loaded == baseline_loaded) {
      std::fprintf(stderr,
                   "cache-file truncate@%zu: a shortened file claims the "
                   "full %lld entries without degrading\n",
                   cut, static_cast<long long>(baseline_loaded));
      ++failures;
    }
  }

  // Single-bit flips: --queries seeded mutations, each one bit somewhere
  // in the file. The checksum catches nearly all; the rest must decode to
  // either a clean rejection or a valid entry — never an abort.
  Rng flip_rng(cfg.seed ^ 0xb17f11bULL);
  for (int64_t i = 0; i < cfg.queries; ++i) {
    std::vector<unsigned char> mutated = pristine;
    size_t pos = static_cast<size_t>(flip_rng.Next() % mutated.size());
    int bit = static_cast<int>(flip_rng.Next() % 8);
    mutated[pos] ^= static_cast<unsigned char>(1u << bit);
    WriteCacheBytes(victim, mutated);
    std::string what = "bitflip@" + std::to_string(pos) + "." +
                       std::to_string(bit);
    if (!check_load(what, nullptr)) ++failures;
  }

  fs::remove(victim, ec);
  fs::remove(victim + ".log", ec);
  std::printf(
      "ecafuzz --cache-file: %s (%zu bytes, %lld entries%s), %zu "
      "truncations, %lld bit flips, %lld failure(s)\n",
      path.c_str(), pristine.size(),
      static_cast<long long>(baseline_loaded),
      baseline.degraded ? ", degraded" : "", cuts.size(),
      static_cast<long long>(cfg.queries),
      static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

// --policy mode: the cross-policy differential over JOB-style workloads.
// Every iteration generates a seeded (database, query) pair in a rotating
// topology (chain / star / clique) with 8+ relations, optimizes it under
// each requested policy, validates the plan (relaxed: Yannakakis reducers
// hide duplicate leaves in pruning sides) and compares execution against
// the unoptimized query. The node budget given to dp is deterministic, so
// the runs where dp trips its budget — and reroutes through the
// sizes-only fallback — replay exactly from the printed seed.
int RunPolicyFuzz(const FuzzConfig& cfg, const std::string& repro_suffix) {
  std::vector<PlanPolicy> policies;
  if (cfg.policy == "all") {
    policies = {PlanPolicy::kDp, PlanPolicy::kSizesOnly, PlanPolicy::kGreedy,
                PlanPolicy::kSemijoin};
  } else {
    StatusOr<PlanPolicy> parsed = ParsePlanPolicy(cfg.policy);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    policies = {*parsed};
  }
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kClique};

  int64_t failures = 0, degraded = 0, semijoin_applied = 0;
  bool semijoin_ran = false;
  for (int64_t i = 0; i < cfg.queries; ++i) {
    uint64_t seed = cfg.seed + static_cast<uint64_t>(i);
    Rng rng(seed * 0x51f15eedULL + 3);
    WorkloadOptions wopts;
    wopts.topology = topologies[i % 3];
    wopts.num_rels = static_cast<int>(
        rng.Uniform(8, cfg.max_rels > 8 ? cfg.max_rels : 12));
    wopts.seed = seed;
    // Small rows and a tight domain keep chains of 8+ inner joins
    // executable: the expected per-join growth factor stays near 1.
    wopts.data.min_rows = 2;
    wopts.data.max_rows = 6;
    wopts.data.domain = 3;
    Workload w = GenerateWorkload(wopts);

    Optimizer plain;  // the oracle executes the query as written
    Relation expect = plain.Execute(*w.query, w.db);

    for (PlanPolicy policy : policies) {
      Optimizer::Options opts;
      opts.plan_policy = policy;
      if (policy == PlanPolicy::kDp) {
        // Large join graphs are the point of this mode; an unbudgeted DP
        // enumeration over 8-20 relations would dominate the run. The
        // node cap is deterministic (unlike wall clock), so every
        // degraded trial replays bit-for-bit from its seed.
        opts.budget.max_enumerated_nodes = 20000;
      }
      Optimizer opt(opts);
      Optimizer::Optimized best = opt.Optimize(*w.query, w.db);
      std::string failure;
      ValidateOptions vopts;
      vopts.allow_hidden_duplicates = true;
      Status valid =
          ValidatePlanStatus(*best.plan, w.db.BaseSchemas(), vopts);
      if (!valid.ok()) {
        failure = "optimized plan fails validation: " + valid.ToString();
      } else if ((policy == PlanPolicy::kSizesOnly ||
                  policy == PlanPolicy::kGreedy) &&
                 best.stats.degraded) {
        // Deliberate policy choices are not degradations; only budget or
        // deadline fallbacks may set the flag.
        failure = "policy-selected planner flagged stats.degraded";
      } else {
        Relation got = opt.Execute(*best.plan, w.db);
        if (!SameMultiset(CanonicalizeColumnOrder(expect),
                          CanonicalizeColumnOrder(got))) {
          failure =
              "POLICY DIVERGENCE: optimized plan result differs from the "
              "query\n" +
              best.plan->ToString();
        }
      }
      if (best.stats.degraded) ++degraded;
      if (policy == PlanPolicy::kSemijoin) {
        semijoin_ran = true;
        if (best.provenance.policy_note.rfind("yannakakis", 0) == 0) {
          ++semijoin_applied;
        }
      }
      if (!failure.empty()) {
        std::fprintf(
            stderr,
            "seed %llu [%s, %d rels, policy %s]: %s\n"
            "  repro: ecafuzz --seed %llu --queries 1%s\n",
            static_cast<unsigned long long>(seed),
            TopologyName(wopts.topology), wopts.num_rels,
            PlanPolicyName(policy), failure.c_str(),
            static_cast<unsigned long long>(seed), repro_suffix.c_str());
        ++failures;
      } else if (cfg.verbose) {
        std::printf("seed %llu [%s, %d rels] policy %s ok%s\n",
                    static_cast<unsigned long long>(seed),
                    TopologyName(wopts.topology), wopts.num_rels,
                    PlanPolicyName(policy),
                    best.stats.degraded ? " [degraded]" : "");
      }
    }
  }
  if (semijoin_ran && semijoin_applied == 0) {
    std::fprintf(stderr,
                 "semijoin policy never applied the Yannakakis pass — the "
                 "chain/star workloads should be GYO-acyclic\n");
    ++failures;
  }
  std::printf(
      "ecafuzz --policy %s: %lld workloads x %zu policies, %lld degraded "
      "gracefully, %lld yannakakis plans, %lld failure(s)\n",
      cfg.policy.c_str(), static_cast<long long>(cfg.queries),
      policies.size(), static_cast<long long>(degraded),
      static_cast<long long>(semijoin_applied),
      static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

// Parses command-line flags into `cfg`. Returns false (after printing
// usage) on an unknown flag. `queries_set` reports whether --queries was
// given explicitly (smoke mode lowers the default).
bool ParseArgs(int argc, char** argv, FuzzConfig* cfg, bool* queries_set) {
  *queries_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      cfg->queries = std::atoll(argv[++i]);
      *queries_set = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg->seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-rels") == 0 && i + 1 < argc) {
      cfg->max_rels = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg->threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg->smoke = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      cfg->verbose = true;
    } else if (std::strcmp(argv[i], "--enum-diff") == 0) {
      cfg->enum_diff = true;
    } else if (std::strcmp(argv[i], "--plan-cache") == 0) {
      cfg->plan_cache = true;
    } else if (std::strcmp(argv[i], "--cache-file") == 0 && i + 1 < argc) {
      cfg->cache_file = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      cfg->policy = argv[++i];
    } else if (std::strcmp(argv[i], "--mem-limit-mb") == 0 && i + 1 < argc) {
      cfg->mem_limit_mb = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--morsel-rows") == 0 && i + 1 < argc) {
      cfg->morsel_rows = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--chunk-rows") == 0 && i + 1 < argc) {
      cfg->chunk_rows = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: ecafuzz [--queries N] "
                   "[--seed S] [--max-rels N] [--threads N] [--smoke] "
                   "[--verbose] [--enum-diff] [--plan-cache] "
                   "[--cache-file PATH] "
                   "[--policy dp|sizes-only|greedy|semijoin|all] "
                   "[--mem-limit-mb N] "
                   "[--morsel-rows N] [--chunk-rows N]\n",
                   argv[i]);
      return false;
    }
  }
  return true;
}

// Every flag that changes what MakeTrial / RunTrial does for a given
// seed must appear in the printed repro command, or replaying it runs a
// different trial: --smoke changes the query-shape distribution,
// --max-rels seeds different relation counts, --threads picks the
// parallel execution path, --mem-limit-mb arms the governor, and
// --morsel-rows/--chunk-rows move the executor's work-claim granularity.
std::string ReproSuffix(const FuzzConfig& cfg) {
  std::string repro_suffix = cfg.smoke ? " --smoke" : "";
  if (cfg.max_rels != FuzzConfig{}.max_rels) {
    repro_suffix += " --max-rels " + std::to_string(cfg.max_rels);
  }
  if (cfg.threads != 1) {
    repro_suffix += " --threads " + std::to_string(cfg.threads);
  }
  if (cfg.plan_cache) {
    repro_suffix += " --plan-cache";
  }
  if (!cfg.cache_file.empty()) {
    repro_suffix += " --cache-file " + cfg.cache_file;
  }
  if (!cfg.policy.empty()) {
    repro_suffix += " --policy " + cfg.policy;
  }
  if (cfg.mem_limit_mb > 0) {
    repro_suffix += " --mem-limit-mb " + std::to_string(cfg.mem_limit_mb);
  }
  if (cfg.morsel_rows > 0) {
    repro_suffix += " --morsel-rows " + std::to_string(cfg.morsel_rows);
  }
  if (cfg.chunk_rows > 0) {
    repro_suffix += " --chunk-rows " + std::to_string(cfg.chunk_rows);
  }
  return repro_suffix;
}

// Self-check: re-parsing "--seed S --queries 1<ReproSuffix(cfg)>" must
// reproduce every trial-relevant field of `cfg`. This is the property the
// printed repro lines rely on; a flag added to FuzzConfig but forgotten
// in ReproSuffix fails here (in --smoke CI) instead of producing repro
// commands that silently replay a different trial.
bool ReproSuffixRoundTrips(const FuzzConfig& cfg) {
  std::string cmd = "--seed " + std::to_string(cfg.seed) + " --queries 1" +
                    ReproSuffix(cfg);
  std::vector<std::string> tokens;
  for (size_t pos = 0; pos < cmd.size();) {
    size_t space = cmd.find(' ', pos);
    if (space == std::string::npos) space = cmd.size();
    if (space > pos) tokens.push_back(cmd.substr(pos, space - pos));
    pos = space + 1;
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("ecafuzz"));
  for (std::string& t : tokens) argv.push_back(t.data());
  FuzzConfig replay;
  bool queries_set = false;
  if (!ParseArgs(static_cast<int>(argv.size()), argv.data(), &replay,
                 &queries_set)) {
    return false;
  }
  return replay.seed == cfg.seed && replay.smoke == cfg.smoke &&
         replay.max_rels == cfg.max_rels && replay.threads == cfg.threads &&
         replay.plan_cache == cfg.plan_cache &&
         replay.cache_file == cfg.cache_file &&
         replay.policy == cfg.policy &&
         replay.mem_limit_mb == cfg.mem_limit_mb &&
         replay.morsel_rows == cfg.morsel_rows &&
         replay.chunk_rows == cfg.chunk_rows && queries_set &&
         replay.queries == 1;
}

int Main(int argc, char** argv) {
  FuzzConfig cfg;
  bool queries_set = false;
  if (!ParseArgs(argc, argv, &cfg, &queries_set)) return 2;
  if (cfg.smoke && !queries_set) {
    // Policy trials optimize and execute 8+-relation workloads per policy,
    // an order of magnitude heavier than a default trial.
    cfg.queries = cfg.policy.empty() ? 200 : 24;
  }
  if (cfg.max_rels < 2 || cfg.queries <= 0 || cfg.threads < 1 ||
      cfg.mem_limit_mb < 0 || cfg.morsel_rows < 0 || cfg.chunk_rows < 0) {
    std::fprintf(stderr,
                 "need --max-rels >= 2, --queries > 0, --threads >= 1 and "
                 "non-negative --mem-limit-mb/--morsel-rows/--chunk-rows\n");
    return 2;
  }
  if (cfg.smoke && !ReproSuffixRoundTrips(cfg)) {
    std::fprintf(stderr,
                 "repro-suffix round-trip failed: a printed repro command "
                 "would not replay this configuration\n");
    return 2;
  }

  std::string repro_suffix = ReproSuffix(cfg);

  if (!cfg.cache_file.empty()) return RunCacheFileFuzz(cfg);

  if (!cfg.policy.empty()) return RunPolicyFuzz(cfg, repro_suffix);

  if (cfg.enum_diff) {
    // --plan-cache: one shared memo for the whole run, tracked so the
    // final drain check can prove byte balance.
    MemoryTracker cache_root(0, 0);
    std::unique_ptr<SharedMemo> cache;
    if (cfg.plan_cache) {
      SharedMemo::Config cache_config;
      cache_config.max_bytes = 8ll << 20;
      cache_config.parent = &cache_root;
      cache = std::make_unique<SharedMemo>(cache_config);
    }
    int64_t failures = 0;
    for (int64_t i = 0; i < cfg.queries; ++i) {
      uint64_t seed = cfg.seed + static_cast<uint64_t>(i);
      Trial t = MakeTrial(seed, cfg);
      if (cache != nullptr) {
        // Every trial has its own database, i.e. new base-relation
        // statistics: the epoch advance is what keeps entries costed
        // under trial i's stats unreachable from trial i+1.
        cache->AdvanceEpoch();
        if (i % 16 == 15) cache->Sweep();  // exercise reclamation mid-run
      }
      std::string failure = RunEnumDiff(t, cache.get());
      if (!failure.empty()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), failure.c_str());
        std::fprintf(
            stderr,
            "  query: %s\n"
            "  repro: ecafuzz --enum-diff --seed %llu --queries 1%s\n",
            t.query->ToInlineString().c_str(),
            static_cast<unsigned long long>(seed), repro_suffix.c_str());
        ++failures;
      } else if (cfg.verbose) {
        std::printf("seed %llu ok\n", static_cast<unsigned long long>(seed));
      }
    }
    if (cache != nullptr) {
      cache->Clear();
      if (cache->used_bytes() != 0 || cache_root.used() != 0) {
        std::fprintf(stderr,
                     "plan-cache: %lld cached / %lld tracked bytes left "
                     "after Clear (accounting imbalance)\n",
                     static_cast<long long>(cache->used_bytes()),
                     static_cast<long long>(cache_root.used()));
        ++failures;
      }
    }
    std::printf("ecafuzz --enum-diff: %lld queries, %lld failure(s)\n",
                static_cast<long long>(cfg.queries),
                static_cast<long long>(failures));
    return failures == 0 ? 0 : 1;
  }

  int64_t failures = 0, degraded = 0, mutants_parsed = 0;
  for (int64_t i = 0; i < cfg.queries; ++i) {
    uint64_t seed = cfg.seed + static_cast<uint64_t>(i);
    Trial t = MakeTrial(seed, cfg);
    EnumeratorStats stats;
    std::string failure = RunTrial(t, t.setup, &stats);
    if (stats.degraded) ++degraded;
    if (failure.empty() && i % 4 == 0) {
      failure = RunMutatedNotation(t, seed);
      if (!failure.empty()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), failure.c_str());
        std::fprintf(stderr,
                     "repro: ecafuzz --seed %llu --queries 1%s\n",
                     static_cast<unsigned long long>(seed),
                     repro_suffix.c_str());
        ++failures;
        continue;
      }
      ++mutants_parsed;
    }
    if (!failure.empty()) {
      TrialSetup minimal = Minimize(t, t.setup);
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed), failure.c_str());
      std::fprintf(stderr, "  query: %s\n",
                   t.query->ToInlineString().c_str());
      std::fprintf(stderr, "  minimized config: %s\n",
                   minimal.ToString().c_str());
      std::fprintf(stderr, "  repro: ecafuzz --seed %llu --queries 1%s\n",
                   static_cast<unsigned long long>(seed),
                   repro_suffix.c_str());
      ++failures;
    } else if (cfg.verbose) {
      std::printf("seed %llu ok: %s%s\n",
                  static_cast<unsigned long long>(seed),
                  t.setup.ToString().c_str(),
                  stats.degraded ? " [degraded]" : "");
    }
  }
  std::printf(
      "ecafuzz: %lld queries, %lld degraded gracefully, %lld mutated-"
      "notation probes, %lld failure(s)\n",
      static_cast<long long>(cfg.queries), static_cast<long long>(degraded),
      static_cast<long long>(mutants_parsed),
      static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
